"""Automated claim checker: re-verifies the paper's headline claims.

Runs a fast, self-contained version of every quantitative claim the
reproduction targets and prints PASS/FAIL per claim::

    python -m repro.bench.claims [--scale 0.35]

This is deliberately smaller than the full Figure 6 sweep (seconds, not
minutes) — a smoke test that the *shape* of the evaluation still holds
after any code change.  EXPERIMENTS.md records the full-size numbers.
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass
from typing import Callable

from repro.bench.figure6 import build_database
from repro.xmark import query_text


@dataclass
class ClaimResult:
    claim: str
    passed: bool
    detail: str


def _time(fn: Callable, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def check_claims(scale: float = 0.35, seed: int = 42) -> list[ClaimResult]:
    """Run all claim checks; returns one result per claim."""
    results: list[ClaimResult] = []
    db, label = build_database(scale, seed)
    db_small, _ = build_database(scale / 2, seed)

    def add(claim: str, passed: bool, detail: str) -> None:
        results.append(ClaimResult(claim, passed, detail))

    # -- §3.1: the four joins return the paper's table ------------------
    video = _video_db()
    table = {
        "select-narrow": ["Intro"],
        "select-wide": ["Intro", "Interview"],
        "reject-narrow": ["Interview", "Outro"],
        "reject-wide": ["Outro"],
    }
    ok = True
    for op, expected in table.items():
        got = [n.get_attribute("id") for n in video.query(
            f'doc("video.xml")//music[@artist="U2"]/{op}::shot')]
        ok = ok and got == expected
    add("§3.1 table: four joins on Figure 1", ok,
        "all four operators" if ok else "MISMATCH")

    # -- §4.6: strategies agree on all benchmark queries -----------------
    ok = True
    for qid in ("q1", "q2", "q6", "q7"):
        query = query_text(qid, "xmark.xml", standoff=True)
        rendered = {s: db_small.query(query, strategy=s).serialize()
                    for s in ("udf", "basic", "ll")}
        ok = ok and len(set(rendered.values())) == 1
    add("§4.6: udf/basic/ll return identical results", ok, "q1,q2,q6,q7")

    # -- §4.6 Q2: loop-lifted beats basic by a factor that GROWS with
    # document size (the basic variant re-scans the index per iteration,
    # so it eventually DNFs in the full sweep) ---------------------------
    q2 = query_text("q2", "xmark.xml", standoff=True)
    basic = _time(lambda: db.query(q2, strategy="basic"), repeats=2)
    ll = _time(lambda: db.query(q2, strategy="ll"), repeats=2)
    basic_small = _time(lambda: db_small.query(q2, strategy="basic"),
                        repeats=2)
    ll_small_q2 = _time(lambda: db_small.query(q2, strategy="ll"),
                        repeats=2)
    ratio = basic / ll if ll else float("inf")
    ratio_small = (basic_small / ll_small_q2 if ll_small_q2
                   else float("inf"))
    add("§4.6 Q2: basic/loop-lifted gap grows with document size",
        ratio > max(1.1, ratio_small),
        f"ratio {ratio_small:.1f}x -> {ratio:.1f}x at {label} "
        "(18x at 6MB in the full sweep)")

    # -- §4.6 Q2: the UDF variant grows quadratically ---------------------
    udf_small = _time(lambda: db_small.query(q2, strategy="udf"),
                      repeats=1)
    udf_large = _time(lambda: db.query(q2, strategy="udf"), repeats=1)
    ll_small = _time(lambda: db_small.query(q2, strategy="ll"), repeats=1)
    udf_growth = udf_large / udf_small if udf_small else float("inf")
    ll_growth = ll / ll_small if ll_small else float("inf")
    add("§4.6 Q2: UDF growth factor exceeds loop-lifted growth",
        udf_growth > ll_growth * 1.3,
        f"udf x{udf_growth:.1f} vs ll x{ll_growth:.1f} per size doubling")

    # -- §4.6 claim C: select-narrow within 2x of staircase --------------
    from repro.core.mergejoin_ll import IterContext, ll_select_narrow
    from repro.staircase.loop_lifted import ll_descendant_join

    stored = db.store.get("xmark.xml")
    shredded = stored.shredded
    index = stored.region_index()
    auctions = shredded.elements_named("open_auction")
    rows = [(it, int(pre)) for it, pre in enumerate(auctions.tolist())]
    bidders = shredded.elements_named("bidder")
    cand = index.candidates(bidders)
    fetched = index.fetch([pre for _it, pre in rows])
    spans = {i: (s, e) for s, e, i in zip(
        fetched.starts.tolist(), fetched.ends.tolist(),
        fetched.ids.tolist())}
    context = IterContext.from_rows(
        (it, pre, *spans[pre]) for it, pre in rows)
    t_stair = _time(lambda: ll_descendant_join(shredded, rows, bidders))
    t_narrow = _time(lambda: ll_select_narrow(context, cand))
    ratio = t_narrow / t_stair if t_stair else float("inf")
    add("§4.6: select-narrow <= 2x loop-lifted staircase descendant",
        ratio <= 2.0, f"ratio {ratio:.2f}x (paper: <=1.2x)")

    # -- §3.3 (ii): per-document query beats global index ----------------
    from repro.core import StandoffOp, basic_join
    from repro.core.global_index import (
        GlobalRegionIndex,
        global_standoff_join,
    )

    per_frag = {i: stored.region_index() for i in range(1, 9)}
    gidx = GlobalRegionIndex(per_frag)
    ctx_ids = index.annotated_ids()[:100]
    ctx_table = index.fetch(ctx_ids.tolist())
    ctx_rows = [(0, 1, int(n)) for n in ctx_ids]
    t_local = _time(lambda: basic_join(StandoffOp.SELECT_WIDE,
                                       ctx_table, index.table))
    t_global = _time(lambda: global_standoff_join(
        StandoffOp.SELECT_WIDE, ctx_rows, gidx, per_frag))
    add("§3.3 (ii): single-doc query faster on per-document index",
        t_local < t_global,
        f"local {t_local * 1e3:.1f}ms vs global {t_global * 1e3:.1f}ms "
        "(8-doc collection)")

    # -- §3.3 (iii): pushdown wins for selective name tests --------------
    q_selective = ('doc("xmark.xml")//site'
                   '/select-narrow::people/select-narrow::person')
    t_push = _time(lambda: db.query(q_selective, pushdown="always"),
                   repeats=2)
    t_post = _time(lambda: db.query(q_selective, pushdown="never"),
                   repeats=2)
    add("§3.3 (iii): pushdown beats post-filter on selective tests",
        t_push < t_post,
        f"pushdown {t_push * 1e3:.0f}ms vs post-filter "
        f"{t_post * 1e3:.0f}ms")

    return results


def _video_db():
    from repro.xquery import Database

    db = Database()
    db.add_document("video.xml", """
        <sample>
          <video>
            <shot id="Intro" start="0" end="8"/>
            <shot id="Interview" start="8" end="64"/>
            <shot id="Outro" start="64" end="94"/>
          </video>
          <audio>
            <music artist="U2" start="0" end="31"/>
            <music artist="Bach" start="52" end="94"/>
          </audio>
        </sample>""")
    return db


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Re-verify the paper's headline claims (fast)")
    parser.add_argument("--scale", type=float, default=0.35)
    args = parser.parse_args(argv)
    results = check_claims(scale=args.scale)
    width = max(len(r.claim) for r in results) + 2
    failures = 0
    for r in results:
        status = "PASS" if r.passed else "FAIL"
        if not r.passed:
            failures += 1
        print(f"{status}  {r.claim.ljust(width)} {r.detail}")
    print(f"\n{len(results) - failures}/{len(results)} claims hold")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
