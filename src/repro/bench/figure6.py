"""Figure 6 regeneration: StandOff XMark Q1/Q2/Q6/Q7 across document
sizes for the three implementations.

The paper's panels plot seconds (log scale) over document sizes
11 MB-1100 MB for *XQuery Function with Candidate Sequence* (our
``udf`` strategy), *Basic StandOff MergeJoin* (``basic``) and
*Loop-Lifted StandOff MergeJoin* (``ll``), with DNF marks where a
variant exceeded one hour.  We sweep a geometric scale series (document
sizes reported in real megabytes of serialized XML) under a
configurable DNF budget.

Run from the command line::

    python -m repro.bench.figure6 --scales 0.25,0.5,1,2 --budget 20

or programmatically via :func:`run_figure6`.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field

from repro.bench.harness import DNF, Measurement, format_table, \
    median_runtime
from repro.xmark import generate_xmark_document, query_text, standoffize
from repro.xquery import Database

STRATEGY_LABELS = {
    "udf": "XQuery Function w/ Cand.Seq.",
    "basic": "Basic StandOff MergeJoin",
    "ll": "Loop-Lifted StandOff MergeJoin",
}

QUERIES = ("q1", "q2", "q6", "q7")


@dataclass
class Figure6Config:
    scales: tuple[float, ...] = (0.25, 0.5, 1.0)
    queries: tuple[str, ...] = QUERIES
    strategies: tuple[str, ...] = ("udf", "basic", "ll")
    budget_seconds: float = 20.0
    repeats: int = 1
    seed: int = 42
    skip_after_dnf: bool = True


@dataclass
class Figure6Result:
    config: Figure6Config
    size_labels: dict[float, str] = field(default_factory=dict)
    measurements: dict[str, list[Measurement]] = field(
        default_factory=dict)

    def tables(self) -> str:
        parts = []
        for query in self.config.queries:
            parts.append(format_table(
                f"StandOff XMark {query.upper()} (seconds)",
                self.measurements[query]))
        return "\n\n".join(parts)


def build_database(scale: float, seed: int = 42) -> tuple[Database, str]:
    """Generate, standoffize and load one scale point; returns the
    database and the size label (serialized megabytes)."""
    source = generate_xmark_document(scale=scale, seed=seed)
    bundle = standoffize(source, permute=True)
    size_mb = len(bundle.document.serialize()) / 1e6
    label = f"{size_mb:.2f}MB"
    db = Database()
    db.store.add("xmark.xml", bundle.document)
    return db, label


def run_figure6(config: Figure6Config | None = None,
                verbose: bool = False) -> Figure6Result:
    config = config or Figure6Config()
    result = Figure6Result(config)
    databases: dict[float, tuple[Database, str]] = {}
    for scale in config.scales:
        databases[scale] = build_database(scale, config.seed)
        result.size_labels[scale] = databases[scale][1]

    for query_id in config.queries:
        rows: list[Measurement] = []
        dnf_strategies: set[str] = set()
        for scale in config.scales:
            db, label = databases[scale]
            query = query_text(query_id, "xmark.xml", standoff=True)
            for strategy in config.strategies:
                if config.skip_after_dnf and strategy in dnf_strategies:
                    rows.append(Measurement(STRATEGY_LABELS[strategy],
                                            label, DNF))
                    continue
                seconds = median_runtime(
                    lambda: db.query(query, strategy=strategy),
                    config.budget_seconds, config.repeats)
                rows.append(Measurement(STRATEGY_LABELS[strategy],
                                        label, seconds))
                if seconds == DNF:
                    dnf_strategies.add(strategy)
                if verbose:
                    shown = "DNF" if seconds == DNF else f"{seconds:.3f}s"
                    print(f"  {query_id} {label} {strategy}: {shown}",
                          flush=True)
        result.measurements[query_id] = rows
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate Figure 6 of the paper")
    parser.add_argument("--scales", default="0.25,0.5,1",
                        help="comma-separated XMark scale factors")
    parser.add_argument("--queries", default="q1,q2,q6,q7")
    parser.add_argument("--strategies", default="udf,basic,ll")
    parser.add_argument("--budget", type=float, default=20.0,
                        help="DNF budget per run (seconds)")
    parser.add_argument("--repeats", type=int, default=1)
    args = parser.parse_args(argv)
    config = Figure6Config(
        scales=tuple(float(s) for s in args.scales.split(",")),
        queries=tuple(args.queries.split(",")),
        strategies=tuple(args.strategies.split(",")),
        budget_seconds=args.budget,
        repeats=args.repeats,
    )
    result = run_figure6(config, verbose=True)
    print()
    print(result.tables())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
