"""Experiment harness: timed runs with DNF (did-not-finish) budgets.

The paper reports DNF for runs exceeding one hour on its 2.4 GHz
machine; our pure-Python substrate runs proportionally smaller inputs
with proportionally smaller budgets (default 30 s).  Timeouts use
``SIGALRM``, so a quadratic variant is *actually interrupted* rather
than merely predicted to be slow.
"""

from __future__ import annotations

import gc
import math
import signal
import time
from dataclasses import dataclass
from typing import Callable

from repro.errors import BenchmarkTimeout

#: Sentinel runtime for runs that exceeded the budget.
DNF = float("inf")


def _alarm_handler(signum, frame):
    raise BenchmarkTimeout("experiment exceeded its DNF budget", 0)


def run_with_budget(fn: Callable[[], object], budget_seconds: float
                    ) -> tuple[float, object | None]:
    """Run ``fn`` under a wall-clock budget.

    :returns: ``(elapsed_seconds, result)``, or ``(DNF, None)`` when the
        budget was exceeded (the run is interrupted via SIGALRM).
    """
    if budget_seconds <= 0 or math.isinf(budget_seconds):
        start = time.perf_counter()
        result = fn()
        return time.perf_counter() - start, result
    old_handler = signal.signal(signal.SIGALRM, _alarm_handler)
    signal.setitimer(signal.ITIMER_REAL, budget_seconds)
    start = time.perf_counter()
    try:
        result = fn()
        return time.perf_counter() - start, result
    except BenchmarkTimeout:
        return DNF, None
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, old_handler)


def median_runtime(fn: Callable[[], object], budget_seconds: float,
                   repeats: int = 3) -> float:
    """Median of *repeats* timed runs; DNF short-circuits.

    The repeats start from a collected heap: generation counters left
    near a threshold by *earlier* scenarios (e.g. a million-node DOM
    build) would otherwise charge a full-heap GC pass to whichever
    unlucky measurement the crossing lands in.  Collecting once before
    the loop — not per repeat — keeps the later repeats cache-warm;
    the median is insensitive to the one cold first run.
    """
    times = []
    gc.collect()
    for _ in range(repeats):
        try:
            elapsed, _result = run_with_budget(fn, budget_seconds)
        except BenchmarkTimeout:
            # The alarm can fire during the last bytecodes of fn(); the
            # handler then raises at the next check, which may fall in
            # run_with_budget's finally block — after the timer is
            # cancelled but outside its except clause.  The run still
            # exceeded its budget.
            return DNF
        if elapsed is DNF or math.isinf(elapsed):
            return DNF
        times.append(elapsed)
    times.sort()
    return times[len(times) // 2]


@dataclass
class Measurement:
    """One cell of a result table."""

    series: str           # e.g. strategy name
    point: str            # e.g. document size label
    seconds: float        # DNF when not finished

    @property
    def finished(self) -> bool:
        return not math.isinf(self.seconds)

    def render(self) -> str:
        return "DNF" if not self.finished else f"{self.seconds:8.3f}"


def format_table(title: str, measurements: list[Measurement]) -> str:
    """Render measurements as a series-by-point text table."""
    points: list[str] = []
    series: list[str] = []
    for m in measurements:
        if m.point not in points:
            points.append(m.point)
        if m.series not in series:
            series.append(m.series)
    cells = {(m.series, m.point): m.render() for m in measurements}
    width = max(12, *(len(s) for s in series)) + 2
    colw = max(10, *(len(p) for p in points)) + 2
    lines = [title,
             "=" * len(title),
             " " * width + "".join(p.rjust(colw) for p in points)]
    for s in series:
        row = s.ljust(width)
        row += "".join(cells.get((s, p), "-").rjust(colw) for p in points)
        lines.append(row)
    return "\n".join(lines)


def speedup(slow: float, fast: float) -> float:
    """Ratio slow/fast; infinite when the slow side DNFed."""
    if math.isinf(slow):
        return math.inf
    if fast <= 0:
        return math.inf
    return slow / fast
