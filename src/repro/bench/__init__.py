"""Benchmark harness regenerating the paper's evaluation (§4.6).

Submodules are re-exported lazily so that ``python -m
repro.bench.figure6`` does not import the module twice.
"""

from repro.bench.harness import (
    DNF,
    Measurement,
    format_table,
    median_runtime,
    run_with_budget,
    speedup,
)

__all__ = [
    "DNF",
    "Measurement",
    "format_table",
    "median_runtime",
    "run_with_budget",
    "speedup",
    "Figure6Config",
    "Figure6Result",
    "build_database",
    "run_figure6",
]

_FIGURE6_NAMES = {"Figure6Config", "Figure6Result", "build_database",
                  "run_figure6"}


def __getattr__(name):
    if name in _FIGURE6_NAMES:
        from repro.bench import figure6

        return getattr(figure6, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
