"""Concurrent query serving: the asyncio front-end over the engine.

The paper pitches a standoff-annotation *service*; this package is the
serving layer that makes the engine answer like one.  A
:class:`QueryServer` admits many queries at once over one or more
published stores, reusing the cross-query substrate the earlier
optimization work put in place — the per-``Database`` compiled-plan
LRU (keyed through ``Database._static_fingerprint``, so sessions with
different static contexts share one cache safely) and the process-wide
content-hash shred cache — and dispatching the actual evaluation onto
the existing shared thread/process shard executors.

Two serving-specific mechanisms live here:

* **admission control** — every query passes a general concurrency
  semaphore, and queries whose *estimated pair budget*
  (:func:`estimate_pair_budget`) crosses the configured threshold must
  additionally win a slot in a much smaller heavy-query lane, so a
  scale-16 scan can never occupy every slot and starve point lookups;
* **timeout/cancellation** — each query runs under a
  :class:`repro.exec.cancel.CancelToken` whose deadline (or an asyncio
  task cancellation) propagates into the shard-future wait loops of
  both executors, cancelling pending shard work and reaping in-flight
  shared-memory results instead of orphaning them.

Use it embedded::

    async with QueryServer(store_path="corpus.repro") as server:
        result = await server.query("doc('d.xml')//s[@id='7']")

or over TCP (JSON lines; ``python -m repro.cli --serve``) via
:func:`serve`.
"""

from repro.serve.server import (
    QueryTimeout,
    QueryServer,
    ServeResult,
    estimate_pair_budget,
    serve,
)

__all__ = [
    "QueryServer",
    "QueryTimeout",
    "ServeResult",
    "estimate_pair_budget",
    "serve",
]
