"""The query server: admission control, timeouts, JSON-lines TCP.

See the package docstring for the design overview.  The asyncio side
of this module never evaluates anything itself: queries run on a
dedicated dispatch thread pool (one thread per admitted query — the
engine API is synchronous), and those threads in turn fan shard work
out to the shared thread/process executors exactly as a standalone
``Database.query`` call would.  The event loop only coordinates:
semaphores, timeouts, protocol framing.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import suppress
from dataclasses import dataclass
from functools import partial

from repro.config import (
    DEFAULT_KERNEL,
    DEFAULT_SERVE_CONCURRENCY,
    DEFAULT_SERVE_HEAVY_PAIRS,
    DEFAULT_SERVE_HEAVY_SLOTS,
    DEFAULT_SERVE_TIMEOUT,
    DEFAULT_SHARD_MIN_ROWS,
    DEFAULT_STAIRCASE_KERNEL,
    DEFAULT_WORKERS,
    EXECUTOR_PROCESS,
    normalize_executor,
    normalize_workers,
)
from repro.errors import ReproError
from repro.exec.cancel import CancelToken, QueryCancelled, cancel_scope
from repro.xquery import ast

#: Axes whose candidate pool is (a large fraction of) the whole
#: document: one such step scans; one nested under another multiplies.
_BROAD_AXES = frozenset({
    "descendant", "descendant-or-self",
    "following", "preceding",
})

#: StandOff step/function names that scan a region table.
_BROAD_STANDOFF_PREFIXES = ("select-", "reject-")


def _walk_ast(node):
    """Generic pre-order walk over the dataclass AST."""
    if dataclasses.is_dataclass(node) and not isinstance(node, type):
        yield node
        for field in dataclasses.fields(node):
            yield from _walk_ast(getattr(node, field.name))
    elif isinstance(node, (list, tuple)):
        for item in node:
            yield from _walk_ast(item)


def _count_broad_steps(module: ast.Module) -> int:
    """How many document-scale scans the compiled module contains."""
    broad = 0
    for node in _walk_ast(module):
        if isinstance(node, ast.AxisStep):
            axis = node.axis
            if axis in _BROAD_AXES \
                    or axis.startswith(_BROAD_STANDOFF_PREFIXES):
                broad += 1
        elif isinstance(node, ast.FunctionCall):
            name = node.name.rpartition(":")[2]
            if name.startswith(_BROAD_STANDOFF_PREFIXES):
                broad += 1
    return broad


def estimate_pair_budget(db, module: ast.Module) -> int:
    """Estimate the (context row, candidate) pairs *module* will probe.

    Deliberately coarse — admission control only needs to separate
    "scan over a scan" from "point lookup", not predict runtimes:

    * no document-scale step: ``0`` (pure arithmetic, variable echo);
    * one broad step: ~``n`` pairs — a single scan of the largest
      stored document's ``n`` nodes;
    * two or more broad steps: ``n**2`` — the loop-lifted shape of a
      scan whose context itself came from a scan (``for $s in //s
      return $s/following::w``), which is where the pair budget
      actually explodes.

    Compilation is free here: :meth:`Database.compile` hits the shared
    plan cache, and the miss it might take is one the subsequent
    evaluation would have paid anyway.
    """
    broad = _count_broad_steps(module)
    if broad == 0:
        return 0
    n = _collection_nodes(db)
    return n if broad == 1 else n * n


def _collection_nodes(db) -> int:
    """Node count of the largest stored document (shredded length —
    O(1) for mapped stores, and for memory stores a build the first
    real query would trigger anyway)."""
    n = 0
    for stored in db.store:
        n = max(n, int(stored.shredded.pre.size))
    return n


class QueryTimeout(ReproError):
    """A served query exceeded its timeout and was cancelled."""


@dataclass(frozen=True)
class ServeResult:
    """One answered query: the serialized items plus serving metadata."""

    serialized: str
    item_count: int
    lane: str
    elapsed: float


class QueryServer:
    """Admit concurrent queries over a shared :class:`Database`.

    Construct with exactly one of *db* (an engine to share — its plan
    cache and stored documents serve every session) or *store_path* (a
    published store file, opened O(1)).

    :param max_concurrency: queries evaluated at once (dispatch pool
        size and general admission semaphore).
    :param heavy_slots: slots of the heavy-query lane.
    :param heavy_pairs: pair-budget threshold for the heavy lane.
    :param default_timeout: per-query timeout (seconds) applied when a
        call/request carries none; ``0`` disables.
    :param prefork: warm the process pool at :meth:`start` — spawn the
        workers, import the engine in each, and (when serving a store
        file) have each worker ``open_store`` it, so the first
        process-executor query pays a shard job, not a cold start.
        Only meaningful with ``executor="process"``.

    The remaining keyword arguments mirror :meth:`Database.query` and
    set the engine options every served query runs under.
    """

    def __init__(self, db=None, *, store_path: str | None = None,
                 max_concurrency: int | None = None,
                 heavy_slots: int | None = None,
                 heavy_pairs: int | None = None,
                 default_timeout: float | None = None,
                 strategy: str = "ll",
                 kernel: str = DEFAULT_KERNEL,
                 staircase_kernel: str = DEFAULT_STAIRCASE_KERNEL,
                 workers=DEFAULT_WORKERS,
                 shard_min_rows: int = DEFAULT_SHARD_MIN_ROWS,
                 executor: str | None = None,
                 plan_cache_size: int | None = None,
                 prefork: bool = False):
        if (db is None) == (store_path is None):
            raise ValueError(
                "pass exactly one of db= or store_path=")
        if db is None:
            from repro import storage

            db = storage.open_store(store_path,
                                    plan_cache_size=plan_cache_size)
        self.db = db
        self.store_path = store_path
        self.max_concurrency = (DEFAULT_SERVE_CONCURRENCY
                                if max_concurrency is None
                                else int(max_concurrency))
        if self.max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        self.heavy_slots = (DEFAULT_SERVE_HEAVY_SLOTS
                            if heavy_slots is None else int(heavy_slots))
        self.heavy_slots = max(1, min(self.heavy_slots,
                                      self.max_concurrency))
        self.heavy_pairs = (DEFAULT_SERVE_HEAVY_PAIRS
                            if heavy_pairs is None else int(heavy_pairs))
        self.default_timeout = (DEFAULT_SERVE_TIMEOUT
                                if default_timeout is None
                                else float(default_timeout))
        self.strategy = strategy
        self.kernel = kernel
        self.staircase_kernel = staircase_kernel
        self.workers = workers
        self.shard_min_rows = shard_min_rows
        self.executor = executor
        self.prefork = prefork
        self._threads: ThreadPoolExecutor | None = None
        self._admission: asyncio.Semaphore | None = None
        self._heavy_lane: asyncio.Semaphore | None = None
        self._in_flight = 0
        self._heavy_in_flight = 0
        #: serving counters (mutated only on the event-loop thread)
        self.stats: dict[str, int] = {
            "submitted": 0, "completed": 0, "errors": 0,
            "timeouts": 0, "cancelled": 0,
            "light": 0, "heavy": 0,
            "max_in_flight": 0, "max_heavy_in_flight": 0,
        }

    # -- lifecycle ------------------------------------------------------

    @property
    def started(self) -> bool:
        return self._threads is not None

    async def start(self) -> "QueryServer":
        """Create the admission structures (idempotent) and, with
        ``prefork=True``, warm the process-pool workers."""
        if self.started:
            return self
        self._admission = asyncio.Semaphore(self.max_concurrency)
        self._heavy_lane = asyncio.Semaphore(self.heavy_slots)
        self._threads = ThreadPoolExecutor(
            max_workers=self.max_concurrency,
            thread_name_prefix="repro-serve")
        if self.prefork \
                and normalize_executor(self.executor) == EXECUTOR_PROCESS:
            from repro.exec import procpool

            count = normalize_workers(self.workers)
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(
                self._threads, partial(procpool.warm_pool, count))
            if self.store_path is not None:
                uris = tuple(self.db.store.uris())
                await loop.run_in_executor(
                    self._threads,
                    partial(procpool.warm_store, count,
                            self.store_path, uris))
        return self

    async def stop(self) -> None:
        """Tear down the dispatch pool (in-flight queries finish)."""
        threads, self._threads = self._threads, None
        self._admission = None
        self._heavy_lane = None
        if threads is not None:
            await asyncio.get_running_loop().run_in_executor(
                None, partial(threads.shutdown, wait=True))

    async def __aenter__(self) -> "QueryServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- admission ------------------------------------------------------

    def classify(self, text: str,
                 session_options: dict | None = None) -> str:
        """``"heavy"`` or ``"light"`` for *text* (see
        :func:`estimate_pair_budget`).  Queries that fail to compile
        classify light — the error surfaces on the query path, where
        the caller expects it."""
        try:
            module, _static = self.db.compile(
                text, session_options=session_options)
        except ReproError:
            return "light"
        budget = estimate_pair_budget(self.db, module)
        return "heavy" if budget >= self.heavy_pairs else "light"

    # -- querying -------------------------------------------------------

    async def query(self, text: str, *, timeout: float | None = None,
                    session_options: dict | None = None) -> ServeResult:
        """Admit, evaluate and answer one query.

        :param timeout: per-query timeout in seconds (``None``: the
            server default; ``0``: none).  On expiry the query's
            cancel token fires, the shard wait loops unwind, and
            :class:`QueryTimeout` is raised.
        :raises QueryTimeout: the timeout elapsed.
        :raises ReproError: whatever the engine raised.
        """
        if not self.started:
            raise RuntimeError("QueryServer is not started "
                               "(use 'async with server:' or await "
                               "server.start())")
        lane = self.classify(text, session_options)
        heavy = lane == "heavy"
        self.stats["submitted"] += 1
        self.stats[lane] += 1
        async with self._admission:
            if heavy:
                await self._heavy_lane.acquire()
            try:
                self._in_flight += 1
                self._heavy_in_flight += heavy
                self.stats["max_in_flight"] = max(
                    self.stats["max_in_flight"], self._in_flight)
                self.stats["max_heavy_in_flight"] = max(
                    self.stats["max_heavy_in_flight"],
                    self._heavy_in_flight)
                return await self._dispatch(text, timeout,
                                            session_options, lane)
            finally:
                self._in_flight -= 1
                self._heavy_in_flight -= heavy
                if heavy:
                    self._heavy_lane.release()

    async def _dispatch(self, text: str, timeout: float | None,
                        session_options: dict | None,
                        lane: str) -> ServeResult:
        effective = self.default_timeout if timeout is None \
            else float(timeout)
        token = CancelToken.after(effective if effective > 0 else None)
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(
            self._threads,
            partial(self._evaluate, text, token, session_options, lane))
        try:
            result = await asyncio.shield(future)
        except asyncio.CancelledError:
            # The awaiting task was cancelled: propagate to the shard
            # futures through the token, wait for the dispatch thread
            # to unwind (it holds shm segments and pool slots), then
            # let the cancellation continue.
            token.cancel()
            with suppress(BaseException):
                await future
            self.stats["cancelled"] += 1
            raise
        except QueryCancelled:
            self.stats["timeouts"] += 1
            raise QueryTimeout(
                f"query exceeded its {effective:g}s timeout") from None
        except BaseException:
            self.stats["errors"] += 1
            raise
        self.stats["completed"] += 1
        return result

    def _evaluate(self, text: str, token: CancelToken,
                  session_options: dict | None, lane: str) -> ServeResult:
        """Thread-side: run the query under its cancel scope."""
        started = time.perf_counter()
        with cancel_scope(token):
            result = self.db.query(
                text, strategy=self.strategy, kernel=self.kernel,
                staircase_kernel=self.staircase_kernel,
                workers=self.workers,
                shard_min_rows=self.shard_min_rows,
                executor=self.executor,
                session_options=session_options)
            serialized = result.serialize()
        return ServeResult(serialized, len(result), lane,
                           time.perf_counter() - started)

    # -- the JSON-lines TCP protocol --------------------------------------

    async def handle_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        """One client connection: JSON object per line, in and out.

        Requests on one connection are served *concurrently* (each
        gets its own task) — responses carry the request ``id`` and
        may arrive out of order, which is exactly what lets a point
        lookup overtake a pipelined scan.
        """
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    request = json.loads(line)
                    if not isinstance(request, dict):
                        raise ValueError("not an object")
                except ValueError:
                    await self._send(writer, write_lock, {
                        "id": None, "ok": False, "code": "bad-request",
                        "error": "each line must be one JSON object"})
                    continue
                task = asyncio.ensure_future(
                    self._respond(request, writer, write_lock))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        finally:
            for task in tasks:
                task.cancel()
            with suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _respond(self, request: dict,
                       writer: asyncio.StreamWriter,
                       write_lock: asyncio.Lock) -> None:
        reply: dict = {"id": request.get("id")}
        op = request.get("op", "query")
        if op == "ping":
            reply.update(ok=True, pong=True)
        elif op == "stats":
            reply.update(ok=True, stats=dict(self.stats))
        elif op == "query":
            text = request.get("query")
            if not isinstance(text, str):
                reply.update(ok=False, code="bad-request",
                             error="'query' must be a string")
            else:
                reply.update(await self._answer(text, request))
        else:
            reply.update(ok=False, code="bad-request",
                         error=f"unknown op {op!r}")
        await self._send(writer, write_lock, reply)

    async def _answer(self, text: str, request: dict) -> dict:
        timeout = request.get("timeout")
        options = request.get("options")
        if timeout is not None and not isinstance(timeout, (int, float)):
            return {"ok": False, "code": "bad-request",
                    "error": "'timeout' must be a number"}
        if options is not None and not (
                isinstance(options, dict)
                and all(isinstance(k, str) and isinstance(v, str)
                        for k, v in options.items())):
            return {"ok": False, "code": "bad-request",
                    "error": "'options' must map strings to strings"}
        try:
            result = await self.query(text, timeout=timeout,
                                      session_options=options)
        except QueryTimeout as error:
            return {"ok": False, "code": "timeout", "error": str(error)}
        except ReproError as error:
            return {"ok": False, "code": "error", "error": str(error)}
        except Exception as error:   # noqa: BLE001 - protocol boundary
            return {"ok": False, "code": "internal",
                    "error": f"{type(error).__name__}: {error}"}
        return {"ok": True, "result": result.serialized,
                "items": result.item_count, "lane": result.lane,
                "elapsed_ms": round(result.elapsed * 1000.0, 3)}

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, lock: asyncio.Lock,
                    payload: dict) -> None:
        data = json.dumps(payload, ensure_ascii=False).encode() + b"\n"
        async with lock:
            writer.write(data)
            await writer.drain()


async def serve(server: QueryServer, host: str = "127.0.0.1",
                port: int = 0) -> asyncio.base_events.Server:
    """Start *server* (if needed) and listen on ``host:port``.

    Returns the asyncio server; ``port=0`` picks a free port
    (``sockets[0].getsockname()[1]`` reads it back).  Close it with
    ``tcp.close()`` / ``await tcp.wait_closed()``; stopping the
    :class:`QueryServer` afterwards is the caller's business.
    """
    await server.start()
    return await asyncio.start_server(server.handle_connection,
                                      host, port)
