"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
applications can catch one type at the boundary.  The XQuery-facing errors
carry the W3C-style error codes (``err:XPST0003`` etc.) where a natural
counterpart exists, because users of a real XQuery engine grep for those.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class RegionError(ReproError):
    """An invalid region was constructed or parsed (e.g. ``start > end``)."""


class XMLSyntaxError(ReproError):
    """The XML tokenizer or parser rejected the input document.

    Carries the 1-based ``line`` and ``column`` of the offending position.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class ShredError(ReproError):
    """The relational shredder met a document it cannot encode."""


class RelationalError(ReproError):
    """Misuse of the column-store substrate (schema mismatch, bad arity)."""


class StorageFormatError(ReproError):
    """An on-disk store file is unreadable: bad magic, unsupported
    format version, truncated file, corrupt header, or a blob failing
    its checksum.  Raised by :mod:`repro.storage` so callers never see
    a cryptic NumPy/JSON error for a damaged store."""


class UnknownKernelError(ReproError, ValueError):
    """An unregistered join family or kernel name was requested.

    Raised by :class:`repro.config.KernelRegistry` lookups; the message
    lists the valid choices (families, or kernels of the named family).
    Subclasses :class:`ValueError` so callers that predate the dedicated
    type keep working.
    """


class XQueryError(ReproError):
    """Base class for XQuery static and dynamic errors.

    :param code: W3C-style error code such as ``err:XPST0003``; ``None``
        for errors that have no standard counterpart (e.g. subset limits).
    """

    def __init__(self, message: str, code: str | None = None):
        self.code = code
        if code:
            message = f"[{code}] {message}"
        super().__init__(message)


class XQuerySyntaxError(XQueryError):
    """Static error: the query text is not in our XQuery subset grammar."""

    def __init__(self, message: str, line: int = 0, column: int = 0,
                 code: str = "err:XPST0003"):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message, code=code)


class XQueryStaticError(XQueryError):
    """Static error other than a syntax error (unknown function, etc.)."""


class XQueryTypeError(XQueryError):
    """Dynamic type error (e.g. atomizing a sequence of length > 1)."""

    def __init__(self, message: str, code: str = "err:XPTY0004"):
        super().__init__(message, code=code)


class XQueryDynamicError(XQueryError):
    """Dynamic evaluation error (undefined variable, div by zero, ...)."""


class UnsupportedFeatureError(XQueryError):
    """The query uses a feature outside the implemented XQuery subset."""


class BenchmarkTimeout(BaseException):
    """An experiment exceeded its DNF (did-not-finish) budget.

    Deliberately *not* a ``ReproError`` (nor an ``Exception``): the DNF
    harness raises it asynchronously from a ``SIGALRM`` handler, so it
    can surface at any bytecode boundary — including inside a broad
    ``except Exception`` in the lexer or evaluator, which would swallow
    the interrupt and misreport it as a library error.  Like
    ``KeyboardInterrupt``, it derives from ``BaseException`` so only
    the harness's explicit handlers catch it.
    """

    def __init__(self, message: str, budget_seconds: float):
        self.budget_seconds = budget_seconds
        super().__init__(message)
