"""The versioned on-disk columnar store format (low level).

One store file holds any number of shredded documents::

    magic (8) | format version (u32 LE) | header length (u64 LE)
    | header JSON (UTF-8) | 64-byte-aligned blobs ...

The JSON header carries the format version again (self-describing), a
dtype table, the per-document metadata (URI, doc id, name dictionary,
blob references), and a blob directory mapping each blob name to its
``{offset, nbytes, dtype, crc32}``.  Every numeric column is written
with an explicit little-endian dtype, so a store is byte-identical
across platforms.

Opening a store is **O(1) in the document size**: only the fixed
prefix and the JSON header are read and validated eagerly; the blobs
are returned as ``np.memmap`` slices, so pages fault in lazily and are
shared read-only between every process that maps the same file.
Blob checksums are therefore *not* verified at open (that would touch
every page); :meth:`StoreFile.verify` does the full pass on demand.

All structural validation failures raise
:class:`repro.errors.StorageFormatError` — never a cryptic NumPy or
JSON error.
"""

from __future__ import annotations

import json
import os
import zlib

import numpy as np

from repro.errors import StorageFormatError

#: File magic: identifies a repro columnar store.
MAGIC = b"REPROSTO"

#: Current format version.  Readers reject any other version outright;
#: the version is stored both in the fixed prefix (so rejection never
#: needs the JSON parse) and in the header (self-description).
FORMAT_VERSION = 1

#: Blob alignment: every blob starts on a 64-byte boundary, so any
#: mapped column is aligned for every NumPy dtype (and for cache
#: lines, which is what makes the zero-copy views cheap to scan).
ALIGNMENT = 64

_PREFIX_BYTES = len(MAGIC) + 4 + 8  # magic + version + header length


def _aligned(offset: int) -> int:
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def _little_endian(arr: np.ndarray) -> np.ndarray:
    """A C-contiguous little-endian view/copy of *arr*."""
    dt = arr.dtype.newbyteorder("<")
    return np.ascontiguousarray(arr.astype(dt, copy=False))


def write_store(path: str, documents: list[dict],
                *, extra_header: dict | None = None) -> None:
    """Write a store file.

    Each entry of *documents* describes one document::

        {
            "uri": str, "doc_id": int, "n_nodes": int,
            "names": [str, ...],            # name dictionary
            "keep_whitespace_text": bool,   # reparse flag for the XML
            "columns": {blob suffix: np.ndarray or bytes, ...},
        }

    Column arrays are coerced to explicit little-endian dtypes; the
    per-document blob names are ``d<i>/<suffix>``.
    """
    blobs: list[tuple[str, bytes, str]] = []  # (name, payload, dtype str)
    doc_metas = []
    for i, doc in enumerate(documents):
        prefix = f"d{i}"
        meta = {key: value for key, value in doc.items()
                if key != "columns"}
        meta["prefix"] = prefix
        meta["columns"] = sorted(doc["columns"])
        doc_metas.append(meta)
        for suffix, payload in sorted(doc["columns"].items()):
            if isinstance(payload, np.ndarray):
                arr = _little_endian(payload)
                blobs.append((f"{prefix}/{suffix}", arr.tobytes(),
                              arr.dtype.str))
            else:
                blobs.append((f"{prefix}/{suffix}", bytes(payload),
                              "bytes"))

    directory: dict[str, dict] = {}
    # Lay blobs out after a header whose own length depends on the
    # directory: compute with offset 0 first, then shift by the real
    # data start (the JSON length is invariant under the shift because
    # offsets are rewritten in a second serialization pass).
    header = {
        "format_version": FORMAT_VERSION,
        "alignment": ALIGNMENT,
        "dtype_table": {name: dtype for name, _p, dtype in blobs},
        "documents": doc_metas,
        "blobs": directory,
    }
    if extra_header:
        header.update(extra_header)
    offset = 0
    for name, payload, dtype in blobs:
        offset = _aligned(offset)
        directory[name] = {
            "offset": offset,
            "nbytes": len(payload),
            "dtype": dtype,
            "crc32": zlib.crc32(payload),
        }
        offset += len(payload)

    # Two-pass header sizing: serialize once to learn the data start,
    # shift every offset by it, and pad the JSON to its first-pass
    # length so the shift cannot change the header size again.
    draft = json.dumps(header, separators=(",", ":")).encode("utf-8")
    header_len = len(draft) + 1  # newline pad terminator
    data_start = _aligned(_PREFIX_BYTES + header_len)
    for entry in directory.values():
        entry["offset"] += data_start
    final = json.dumps(header, separators=(",", ":")).encode("utf-8")
    if len(final) > header_len:
        # Offsets grew in digit count; re-shift against the larger
        # header until stable (at most a few iterations).
        while len(final) + 1 > header_len:
            delta = _aligned(_PREFIX_BYTES + len(final) + 1) - data_start
            data_start += delta
            header_len = len(final) + 1
            for entry in directory.values():
                entry["offset"] += delta
            final = json.dumps(header,
                               separators=(",", ":")).encode("utf-8")
    final = final + b"\n" * (header_len - len(final))

    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as fh:
        fh.write(MAGIC)
        fh.write(np.array(FORMAT_VERSION, dtype="<u4").tobytes())
        fh.write(np.array(header_len, dtype="<u8").tobytes())
        fh.write(final)
        pos = _PREFIX_BYTES + header_len
        for name, payload, _dtype in blobs:
            target = directory[name]["offset"]
            fh.write(b"\0" * (target - pos))
            fh.write(payload)
            pos = target + len(payload)
    os.replace(tmp, path)


class StoreFile:
    """A validated, memory-mapped store file.

    Construction reads and checks the fixed prefix and the JSON header
    (O(1) in document size) and maps the file once; :meth:`column` and
    :meth:`blob_bytes` hand out zero-copy views of the mapping.
    """

    def __init__(self, path: str):
        self.path = str(path)
        try:
            size = os.path.getsize(self.path)
        except OSError as exc:
            raise StorageFormatError(
                f"cannot open store {self.path!r}: {exc}") from None
        if size < _PREFIX_BYTES:
            raise StorageFormatError(
                f"store {self.path!r} is truncated: {size} bytes is "
                f"smaller than the {_PREFIX_BYTES}-byte prefix")
        with open(self.path, "rb") as fh:
            prefix = fh.read(_PREFIX_BYTES)
            magic = prefix[:len(MAGIC)]
            if magic != MAGIC:
                raise StorageFormatError(
                    f"{self.path!r} is not a repro store "
                    f"(bad magic {magic!r})")
            version = int(np.frombuffer(
                prefix, dtype="<u4", count=1, offset=len(MAGIC))[0])
            if version != FORMAT_VERSION:
                raise StorageFormatError(
                    f"store {self.path!r} has format version {version}; "
                    f"this reader supports version {FORMAT_VERSION}")
            header_len = int(np.frombuffer(
                prefix, dtype="<u8", count=1, offset=len(MAGIC) + 4)[0])
            if _PREFIX_BYTES + header_len > size:
                raise StorageFormatError(
                    f"store {self.path!r} is truncated: header claims "
                    f"{header_len} bytes but the file has only "
                    f"{size - _PREFIX_BYTES} after the prefix")
            raw = fh.read(header_len)
        try:
            header = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise StorageFormatError(
                f"store {self.path!r} has a corrupt header: {exc}"
            ) from None
        if not isinstance(header, dict) or \
                header.get("format_version") != FORMAT_VERSION or \
                not isinstance(header.get("blobs"), dict) or \
                not isinstance(header.get("documents"), list):
            raise StorageFormatError(
                f"store {self.path!r} has a malformed header")
        for name, entry in header["blobs"].items():
            try:
                end = entry["offset"] + entry["nbytes"]
            except (TypeError, KeyError):
                raise StorageFormatError(
                    f"store {self.path!r}: malformed directory entry "
                    f"for blob {name!r}") from None
            if entry["offset"] < 0 or end > size:
                raise StorageFormatError(
                    f"store {self.path!r} is truncated: blob {name!r} "
                    f"extends to byte {end} of a {size}-byte file")
        self.header = header
        self.file_size = size
        self._mm = np.memmap(self.path, dtype=np.uint8, mode="r")

    def _entry(self, name: str) -> dict:
        try:
            return self.header["blobs"][name]
        except KeyError:
            raise StorageFormatError(
                f"store {self.path!r} has no blob {name!r}") from None

    def column(self, name: str) -> np.ndarray:
        """A zero-copy read-only mapped view of a numeric column."""
        entry = self._entry(name)
        raw = self._mm[entry["offset"]:entry["offset"] + entry["nbytes"]]
        try:
            return raw.view(np.dtype(entry["dtype"]))
        except (TypeError, ValueError) as exc:
            raise StorageFormatError(
                f"store {self.path!r}: blob {name!r} cannot be viewed "
                f"as {entry['dtype']!r}: {exc}") from None

    def blob_bytes(self, name: str) -> bytes:
        """The raw bytes of a blob (copies — used for XML text only)."""
        entry = self._entry(name)
        return bytes(
            self._mm[entry["offset"]:entry["offset"] + entry["nbytes"]])

    def verify(self) -> None:
        """Full checksum pass over every blob (touches every page).

        :raises StorageFormatError: on the first CRC mismatch.
        """
        for name, entry in sorted(self.header["blobs"].items()):
            payload = self._mm[entry["offset"]:
                               entry["offset"] + entry["nbytes"]]
            crc = zlib.crc32(payload.tobytes())
            if crc != entry["crc32"]:
                raise StorageFormatError(
                    f"store {self.path!r}: blob {name!r} fails its "
                    f"checksum (stored {entry['crc32']}, computed {crc})")
