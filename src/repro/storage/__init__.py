"""Out-of-core, zero-copy storage for shredded documents.

``save_store(path, db)`` writes every stored document's shredded
columns — pre/size/level/parent/kind/name, the value string heap, the
element-name index, the default-config region table, and the XML text
— into one versioned store file (:mod:`repro.storage.format`).
``open_store(path)`` maps it back with ``np.memmap``:

* **O(1) cold start** — only the header is read; columns are zero-copy
  mapped views, so no shred, no region extraction, no XML parse happens
  at open.  The DOM is parsed lazily, the first time a caller actually
  asks for nodes (query results decode through ``node_by_pre``); the
  join kernels themselves run entirely off the mapped columns.
* **page sharing** — any number of processes mapping the same file
  share its pages read-only, which is what makes the process-pool
  executor (:mod:`repro.exec.procpool`) ship `(path, slice)` job
  descriptors instead of array payloads.

The same machinery backs the ``REPRO_STORAGE=mmap`` mode: a
:class:`~repro.xmldb.store.StoredDocument` spills its freshly shredded
columns to a store file in a temp directory and immediately re-opens
them mapped (:func:`spill_document`), keeping its in-memory DOM for
node decoding.
"""

from __future__ import annotations

import atexit
import os
import shutil
import tempfile

import numpy as np

from repro.config import DEFAULT_CONFIG, STORAGE_MMAP
from repro.core.region_index import RegionIndex, RegionTable
from repro.errors import StorageFormatError
from repro.exec import lockcheck
from repro.storage.format import (
    ALIGNMENT,
    FORMAT_VERSION,
    MAGIC,
    StoreFile,
    write_store,
)
from repro.xmldb.dom import Document
from repro.xmldb.parser import parse_document
from repro.xmldb.shred import (
    ShreddedDocument,
    StringHeap,
    fragment_fingerprint,
    shred,
)
from repro.xmldb.store import DocumentStore, StoredDocument, extract_regions

__all__ = [
    "ALIGNMENT", "FORMAT_VERSION", "MAGIC", "StoreFile", "StoreReader",
    "MappedStoredDocument", "save_store", "open_store",
    "open_store_reader", "spill_document", "spill_directory",
    "store_stats",
]


# ----------------------------------------------------------------------
# Saving
# ----------------------------------------------------------------------

def _serialized_form(document: Document) -> tuple[str, bool]:
    """The document's XML text plus the reparse flag that round-trips.

    The store keeps the XML only for *lazy* DOM recovery; the columns
    are authoritative.  That is only sound if reparsing the serialized
    text reproduces the exact node numbering the columns were built
    from, so the round-trip is checked here via the structural
    fingerprint (whitespace-only text nodes decide which
    ``keep_whitespace_text`` setting reproduces the original).
    """
    document.renumber()
    xml = document.serialize()
    want = fragment_fingerprint(document.all_nodes())
    for keep_ws in (False, True):
        reparsed = parse_document(xml, uri=document.uri,
                                  doc_id=document.doc_id,
                                  keep_whitespace_text=keep_ws)
        if fragment_fingerprint(reparsed.all_nodes()) == want:
            return xml, keep_ws
    raise StorageFormatError(
        f"document {document.uri!r} does not survive a "
        f"serialize/reparse round-trip; cannot store it")


def _default_region_table(document: Document) -> RegionTable | None:
    """The default-config region table, or ``None`` when the document
    cannot be extracted under the default config (e.g. it declares
    ``xs:double`` positions).  A ``None`` table is simply not persisted;
    region lookups then fall back to DOM extraction, which reproduces
    the exact in-memory error semantics at query time."""
    from repro.errors import RegionError

    try:
        return RegionIndex.build(
            extract_regions(document, DEFAULT_CONFIG)).table
    except RegionError:
        return None


def _document_entry(document: Document, shredded: ShreddedDocument,
                    region_table: RegionTable | None) -> dict:
    """One document's ``write_store`` entry (columns + metadata)."""
    xml, keep_ws = _serialized_form(document)
    values = shredded.values
    heap = (values if isinstance(values, StringHeap)
            else StringHeap.from_dict(values))
    items = sorted(shredded._element_index.items())
    elind_offsets = np.zeros(len(items) + 1, dtype="<i8")
    if items:
        np.cumsum([len(pres) for _nid, pres in items],
                  out=elind_offsets[1:])
        elind_pres = np.concatenate([pres for _nid, pres in items])
    else:
        elind_pres = np.empty(0, dtype="<i8")
    columns = {
        "pre": shredded.pre,
        "size": shredded.size,
        "level": shredded.level,
        "kind": shredded.kind,
        "parent": shredded.parent,
        "name": shredded.name,
        "elind_nids": np.asarray([nid for nid, _p in items],
                                 dtype="<i4"),
        "elind_offsets": elind_offsets,
        "elind_pres": elind_pres,
        "val_pres": heap.pres,
        "val_offsets": heap.offsets,
        "val_heap": heap.heap,
        "xml": xml.encode("utf-8"),
    }
    if region_table is not None:
        columns["reg_starts"] = region_table.starts
        columns["reg_ends"] = region_table.ends
        columns["reg_ids"] = region_table.ids
    return {
        "uri": document.uri,
        "doc_id": document.doc_id,
        "n_nodes": len(shredded),
        "names": list(shredded.names),
        "keep_whitespace_text": keep_ws,
        "has_regions": region_table is not None,
        "columns": columns,
    }


def save_store(path: str, source) -> str:
    """Write a store file holding every document of *source*.

    *source* is a :class:`~repro.xquery.engine.Database`, a
    :class:`~repro.xmldb.store.DocumentStore`, or an iterable of
    :class:`~repro.xmldb.store.StoredDocument`.  Region tables are
    persisted for the default standoff configuration (queries with a
    custom ``declare option`` preamble fall back to DOM extraction).
    """
    store = getattr(source, "store", source)
    entries = []
    for stored in store:
        entries.append(_document_entry(
            stored.document, stored.shredded,
            _default_region_table(stored.document)))
    write_store(str(path), entries,
                extra_header={"region_config": "default"})
    return str(path)


# ----------------------------------------------------------------------
# Opening
# ----------------------------------------------------------------------

class StoreReader:
    """Engine-level view of one mapped store file.

    Wraps the low-level :class:`~repro.storage.format.StoreFile` and
    rebuilds the engine objects from the mapped columns:
    :meth:`shredded` (zero-copy :class:`ShreddedDocument`),
    :meth:`region_index`, :meth:`document` (parses the stored XML), and
    :meth:`stored` (a lazy :class:`MappedStoredDocument`).
    """

    def __init__(self, path: str):
        self._file = StoreFile(path)
        self.path = self._file.path
        self._metas = {meta["uri"]: meta
                       for meta in self._file.header["documents"]}
        self._stored: dict[str, MappedStoredDocument] = {}
        self._stored_lock = lockcheck.new_lock("StoreReader._stored_lock")

    @property
    def file_size(self) -> int:
        return self._file.file_size

    def uris(self) -> list[str]:
        return list(self._metas)

    def meta(self, uri: str) -> dict:
        try:
            return self._metas[uri]
        except KeyError:
            raise StorageFormatError(
                f"store {self.path!r} holds no document {uri!r} "
                f"(has: {sorted(self._metas)})") from None

    def _column(self, uri: str, suffix: str) -> np.ndarray:
        return self._file.column(f"{self.meta(uri)['prefix']}/{suffix}")

    def shredded(self, uri: str, *, document: Document | None = None,
                 doc_factory=None) -> ShreddedDocument:
        """The document's shred over zero-copy mapped columns."""
        meta = self.meta(uri)
        col = lambda suffix: self._column(uri, suffix)  # noqa: E731
        nids = col("elind_nids")
        offsets = col("elind_offsets")
        pres = col("elind_pres")
        element_index = {
            int(nid): pres[offsets[i]:offsets[i + 1]]
            for i, nid in enumerate(nids.tolist())}
        if document is None and doc_factory is None:
            doc_factory = lambda: self.document(uri)  # noqa: E731
        return ShreddedDocument.from_columns(
            pre=col("pre"), size=col("size"), level=col("level"),
            kind=col("kind"), parent=col("parent"), name=col("name"),
            names=meta["names"],
            values=StringHeap(col("val_pres"), col("val_offsets"),
                              col("val_heap")),
            element_index=element_index,
            document=document, doc_factory=doc_factory,
            store_ref=(self.path, uri))

    def has_regions(self, uri: str) -> bool:
        """True when the store persists *uri*'s default region table."""
        return bool(self.meta(uri).get("has_regions", True))

    def region_index(self, uri: str) -> RegionIndex:
        """The default-config region index over mapped columns."""
        if not self.has_regions(uri):
            raise StorageFormatError(
                f"store {self.path!r} holds no default-config region "
                f"table for {uri!r}")
        table = RegionTable(self._column(uri, "reg_starts"),
                            self._column(uri, "reg_ends"),
                            self._column(uri, "reg_ids"),
                            presorted=True)
        index = RegionIndex(table)
        index.store_ref = (self.path, uri)
        return index

    def document(self, uri: str) -> Document:
        """Parse the stored XML back into a DOM (the lazy path)."""
        meta = self.meta(uri)
        xml = self._file.blob_bytes(
            f"{meta['prefix']}/xml").decode("utf-8")
        return parse_document(
            xml, uri=meta["uri"], doc_id=meta["doc_id"],
            keep_whitespace_text=meta["keep_whitespace_text"])

    def stored(self, uri: str) -> "MappedStoredDocument":
        """The (cached) lazy stored-document facade for *uri*."""
        # Locked: concurrent first touches must agree on one facade,
        # or downstream node-identity checks see two DOM instances.
        with self._stored_lock:
            cached = self._stored.get(uri)
            if cached is None:
                cached = MappedStoredDocument(self, self.meta(uri))
                lockcheck.assert_locked(self._stored_lock,
                                        "StoreReader._stored")
                self._stored[uri] = cached
            return cached

    def verify(self) -> None:
        """Full checksum verification (reads every page)."""
        self._file.verify()


class MappedStoredDocument(StoredDocument):
    """A stored document whose derived structures come from a store
    file: columns and region tables are mapped views, the DOM is parsed
    from the stored XML only when node decoding requires it.

    A structural update detaches the document from the (immutable)
    store file: derived structures rebuild in memory from then on.
    """

    def __init__(self, reader: StoreReader, meta: dict):
        super().__init__(None)
        self._reader = reader
        self._meta = meta
        self._detached = False

    @property
    def doc_id(self) -> int:
        return self._meta["doc_id"]

    @property
    def uri(self) -> str:
        return self._meta["uri"]

    @property
    def document(self) -> Document:
        # Double-checked behind the inherited build lock: the node
        # identity layer (DocumentStore.by_document, transient caches)
        # relies on one DOM instance per stored document, so two
        # first-touch threads must never each parse their own.
        document = self._document
        if document is not None:
            return document
        with self._build_lock:
            if self._document is None:
                self._document = self._reader.document(self.uri)
            return self._document

    @property
    def shredded(self) -> ShreddedDocument:
        shredded = self._shredded
        if shredded is not None:
            return shredded
        with self._build_lock:
            if self._shredded is None:
                if self._detached:
                    self._shredded = shred(self.document)
                else:
                    self._shredded = self._reader.shredded(
                        self.uri, document=self._document,
                        doc_factory=lambda: self.document)
            return self._shredded

    def region_index(self, config=DEFAULT_CONFIG) -> RegionIndex:
        index = self._region_indexes.get(config)
        if index is not None:
            return index
        with self._build_lock:
            index = self._region_indexes.get(config)
            if index is None and config == DEFAULT_CONFIG \
                    and not self._detached \
                    and self._reader.has_regions(self.uri):
                index = self._reader.region_index(self.uri)
                self._region_indexes[config] = index
            if index is None:
                index = RegionIndex.build(
                    extract_regions(self.document, config))
                lockcheck.assert_locked(
                    self._build_lock, "MappedStoredDocument._region_indexes")
                self._region_indexes[config] = index
            return index

    def invalidate(self) -> None:
        with self._build_lock:
            self._detached = True
            self.document.renumber()
            self._shredded = None
            self._region_indexes.clear()


def open_store(path: str, *, plan_cache_size: int | None = None):
    """Open a saved store as a ready-to-query ``Database``.

    O(1) in document size: nothing is parsed or shredded; every
    registered document resolves its columns from the mapping and its
    DOM lazily.
    """
    from repro.xquery.engine import Database

    reader = StoreReader(path)
    db = Database(plan_cache_size=plan_cache_size)
    for uri in reader.uris():
        db.store.register(reader.stored(uri))
    return db


#: Process-wide reader cache — worker processes re-open each store file
#: exactly once and reuse the mapping across shard jobs.
_READERS: dict[str, StoreReader] = {}
_READERS_LOCK = lockcheck.new_lock("storage._READERS_LOCK")


def open_store_reader(path: str) -> StoreReader:
    """A cached :class:`StoreReader` for *path* (worker-side hot path)."""
    path = str(path)
    with _READERS_LOCK:
        reader = _READERS.get(path)
        if reader is None:
            reader = StoreReader(path)
            _READERS[path] = reader
        return reader


# ----------------------------------------------------------------------
# Spilling (the REPRO_STORAGE=mmap backend)
# ----------------------------------------------------------------------

_SPILL_DIR: str | None = None
_SPILL_LOCK = lockcheck.new_lock("storage._SPILL_LOCK")
_SPILL_SEQ = 0


def spill_directory() -> str:
    """The directory automatic spill files are written to.

    ``REPRO_STORAGE_DIR`` (read live, so a test harness can point it at
    a session temp dir) or a private temp directory removed at exit.
    """
    global _SPILL_DIR
    configured = os.environ.get("REPRO_STORAGE_DIR")
    if configured:
        os.makedirs(configured, exist_ok=True)
        return configured
    with _SPILL_LOCK:
        if _SPILL_DIR is None:
            _SPILL_DIR = tempfile.mkdtemp(prefix="repro-stores-")
            atexit.register(shutil.rmtree, _SPILL_DIR,
                            ignore_errors=True)
        return _SPILL_DIR


def spill_document(document: Document) -> tuple[str, StoreReader]:
    """Write one document's columns to a spill store and map them back.

    The mmap storage backend's workhorse: the document is shredded and
    its default region table extracted *once*, written to a store file,
    and immediately re-opened — the caller keeps the mapped columns
    (and its in-memory DOM for node decoding), and worker processes can
    re-open the same file by path.
    """
    global _SPILL_SEQ
    shredded = shred(document)
    table = _default_region_table(document)
    with _SPILL_LOCK:
        _SPILL_SEQ += 1
        seq = _SPILL_SEQ
    path = os.path.join(
        spill_directory(),
        f"spill-{os.getpid()}-{seq}-doc{document.doc_id}.repro")
    write_store(path, [_document_entry(document, shredded, table)],
                extra_header={"region_config": "default"})
    return path, StoreReader(path)


# ----------------------------------------------------------------------
# Introspection (CLI `\store stats`)
# ----------------------------------------------------------------------

def _smaps_stats(path: str) -> tuple[int, int] | None:
    """(mapped, resident) bytes of this process's mappings of *path*,
    from ``/proc/self/smaps``; ``None`` when unavailable."""
    try:
        with open("/proc/self/smaps") as fh:
            lines = fh.readlines()
    except OSError:
        return None
    real = os.path.realpath(path)
    mapped = resident = 0
    found = in_target = False
    for line in lines:
        if "-" in line.split(" ", 1)[0] and " " in line:
            # A mapping header: "addr-addr perms offset dev inode path"
            parts = line.split(None, 5)
            target = len(parts) == 6 and \
                os.path.realpath(parts[5].strip()) == real
            if target:
                lo, _sep, hi = parts[0].partition("-")
                try:
                    mapped += int(hi, 16) - int(lo, 16)
                except ValueError:
                    target = False
            in_target = target
            found = found or target
        elif in_target and line.startswith("Rss:"):
            try:
                resident += int(line.split()[1]) * 1024
            except (IndexError, ValueError):
                pass
    return (mapped, resident) if found else None


def store_stats(db) -> list[dict]:
    """Per-document storage stats for a database (CLI ``\\store stats``).

    Each row: uri, backend, store path (if any), file size, and —
    on Linux — mapped vs resident bytes of this process's mapping.
    """
    rows = []
    for stored in db.store:
        row = {"uri": stored.uri, "backend": "memory", "path": None,
               "file_size": None, "mapped_bytes": None,
               "resident_bytes": None}
        shredded = stored._shredded
        ref = shredded.store_ref if shredded is not None else None
        if isinstance(stored, MappedStoredDocument) and \
                not stored._detached:
            ref = (stored._reader.path, stored.uri)
        if ref is not None:
            row["backend"] = "mmap"
            row["path"] = ref[0]
            try:
                row["file_size"] = os.path.getsize(ref[0])
            except OSError:
                pass
            stats = _smaps_stats(ref[0])
            if stats is not None:
                row["mapped_bytes"], row["resident_bytes"] = stats
        elif stored.storage_backend == STORAGE_MMAP:
            row["backend"] = "mmap (not yet spilled)"
        rows.append(row)
    return rows
