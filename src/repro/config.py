"""Configuration of the stand-off annotation representation.

The paper (Section 2) makes the representation of regions configurable via
``declare option`` pragmas in the XQuery preamble::

    declare option standoff-type   "qualified-name"
    declare option standoff-start  "qualified-name"
    declare option standoff-end    "qualified-name"
    declare option standoff-region "qualified-name"

Two representations are supported:

* **attribute form** (default): the element carries ``start``/``end``
  attributes — compact, one region per element;
* **element form** (when ``standoff-region`` is declared): the element has
  one or more ``<region><start>..</start><end>..</end></region>`` children,
  allowing *non-contiguous* multi-region areas.

:class:`StandoffConfig` captures these settings and knows how to extract
regions from a DOM element under either representation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RegionError, XQueryStaticError

#: Option names understood in the ``declare option`` preamble.
OPTION_TYPE = "standoff-type"
OPTION_START = "standoff-start"
OPTION_END = "standoff-end"
OPTION_REGION = "standoff-region"

STANDOFF_OPTION_NAMES = frozenset(
    {OPTION_TYPE, OPTION_START, OPTION_END, OPTION_REGION}
)

#: Position datatypes supported for region endpoints.  The paper's
#: implementation assumes 64-bit integers but notes this is not conceptual;
#: we additionally allow doubles (e.g. time offsets in seconds).
SUPPORTED_TYPES = ("xs:integer", "xs:long", "xs:double", "xs:decimal")


# ----------------------------------------------------------------------
# StandOff join kernel selection
# ----------------------------------------------------------------------

#: The reference kernel: row-at-a-time loop-lifted merge join
#: (paper Listing 1; ``list`` or ``heap`` active-items structure).
KERNEL_LL = "ll"

#: The batched NumPy kernel (:mod:`repro.core.kernels_vec`): windowed
#: ``searchsorted`` pruning over the start-clustered candidate table plus
#: segmented prefix-max containment/overlap tests.
KERNEL_VECTORIZED = "vectorized"

#: Per-join automatic choice: ``ll`` for small inputs (where NumPy call
#: overhead dominates the row-at-a-time merge's cost), ``vectorized``
#: otherwise — the optimizer-style selection resolved per join call by
#: :func:`select_kernel` once the input sizes are known.
KERNEL_AUTO = "auto"

SUPPORTED_KERNELS = (KERNEL_LL, KERNEL_VECTORIZED, KERNEL_AUTO)

DEFAULT_KERNEL = KERNEL_LL

#: ``auto`` threshold: total input rows (context + candidates) below
#: which the reference merge beats the batched kernel.  The crossover
#: sits where ~20 NumPy dispatches (~50-100 us of fixed overhead)
#: outweigh the per-row cost of the interpreted merge (~0.5-2 us/row
#: depending on active-list churn); measured crossovers fall between
#: ~100 and ~250 total rows, so the threshold is set at the low end —
#: misclassifying a small join as vectorized costs tens of
#: microseconds, misclassifying a large one as ``ll`` costs far more.
AUTO_KERNEL_MIN_ROWS = 128


def validate_kernel(name: str) -> str:
    """Check *name* against :data:`SUPPORTED_KERNELS`.

    :raises ValueError: for unknown kernel names.
    """
    if name not in SUPPORTED_KERNELS:
        raise ValueError(
            f"unknown join kernel {name!r}; expected one of "
            f"{list(SUPPORTED_KERNELS)}")
    return name


def resolve_kernel(name: str, *, tracing: bool = False) -> str:
    """Validate *name* and resolve the effective kernel.

    Trace sinks observe the row-at-a-time merge (add/replace/trim/emit
    events of Listing 1), which the batched kernel does not produce, so
    tracing always falls back to the reference ``ll`` kernel.  ``auto``
    stays ``auto`` (it needs input sizes; see :func:`select_kernel`).
    """
    validate_kernel(name)
    if tracing:
        return KERNEL_LL
    return name


def select_kernel(name: str, *, context_rows: int = 0,
                  candidate_rows: int = 0, tracing: bool = False) -> str:
    """Resolve the effective kernel for one join call.

    Like :func:`resolve_kernel`, but with the join's input sizes in
    hand so ``auto`` can be decided: below
    :data:`AUTO_KERNEL_MIN_ROWS` total rows the row-at-a-time merge
    wins (NumPy call overhead dominates), above it the batched kernel
    does.

    :returns: :data:`KERNEL_LL` or :data:`KERNEL_VECTORIZED`.
    """
    name = resolve_kernel(name, tracing=tracing)
    if name == KERNEL_AUTO:
        if context_rows + candidate_rows < AUTO_KERNEL_MIN_ROWS:
            return KERNEL_LL
        return KERNEL_VECTORIZED
    return name


@dataclass(frozen=True)
class StandoffConfig:
    """Runtime settings for locating region information on elements.

    :param position_type: qualified name of the position datatype
        (default ``xs:integer``; see :data:`SUPPORTED_TYPES`).
    :param start_name: name of the start attribute *or* element.
    :param end_name: name of the end attribute *or* element.
    :param region_name: when not ``None``, the element-form representation
        is active and this is the name of the ``<region>`` child elements.
    """

    position_type: str = "xs:integer"
    start_name: str = "start"
    end_name: str = "end"
    region_name: str | None = None

    def __post_init__(self) -> None:
        if self.position_type not in SUPPORTED_TYPES:
            raise XQueryStaticError(
                f"unsupported standoff-type {self.position_type!r}; "
                f"expected one of {', '.join(SUPPORTED_TYPES)}"
            )
        if not self.start_name or not self.end_name:
            raise XQueryStaticError(
                "standoff-start and standoff-end must be non-empty names"
            )
        if self.start_name == self.end_name:
            raise XQueryStaticError(
                "standoff-start and standoff-end must differ "
                f"(both are {self.start_name!r})"
            )

    @property
    def uses_region_elements(self) -> bool:
        """True when regions are stored as ``<region>`` child elements."""
        return self.region_name is not None

    @property
    def integral_positions(self) -> bool:
        """True when the configured position type is an integer type."""
        return self.position_type in ("xs:integer", "xs:long")

    def parse_position(self, text: str):
        """Convert attribute/element text to a position value.

        :raises RegionError: if the text is not a valid literal of the
            configured position type.
        """
        text = text.strip()
        try:
            if self.integral_positions:
                return int(text)
            return float(text)
        except ValueError:
            raise RegionError(
                f"cannot parse {text!r} as {self.position_type}"
            ) from None

    @classmethod
    def from_options(cls, options: dict[str, str]) -> "StandoffConfig":
        """Build a config from ``declare option`` name/value pairs.

        Unknown ``standoff-*`` options raise; other options are the
        caller's business and must be filtered out beforehand.
        """
        unknown = set(options) - STANDOFF_OPTION_NAMES
        if unknown:
            raise XQueryStaticError(
                f"unknown standoff option(s): {', '.join(sorted(unknown))}"
            )
        return cls(
            position_type=options.get(OPTION_TYPE, "xs:integer"),
            start_name=options.get(OPTION_START, "start"),
            end_name=options.get(OPTION_END, "end"),
            region_name=options.get(OPTION_REGION),
        )


#: The paper's default configuration (attribute form, integer offsets).
DEFAULT_CONFIG = StandoffConfig()
