"""Configuration of the stand-off annotation representation.

The paper (Section 2) makes the representation of regions configurable via
``declare option`` pragmas in the XQuery preamble::

    declare option standoff-type   "qualified-name"
    declare option standoff-start  "qualified-name"
    declare option standoff-end    "qualified-name"
    declare option standoff-region "qualified-name"

Two representations are supported:

* **attribute form** (default): the element carries ``start``/``end``
  attributes — compact, one region per element;
* **element form** (when ``standoff-region`` is declared): the element has
  one or more ``<region><start>..</start><end>..</end></region>`` children,
  allowing *non-contiguous* multi-region areas.

:class:`StandoffConfig` captures these settings and knows how to extract
regions from a DOM element under either representation.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.errors import RegionError, UnknownKernelError, XQueryStaticError

#: Option names understood in the ``declare option`` preamble.
OPTION_TYPE = "standoff-type"
OPTION_START = "standoff-start"
OPTION_END = "standoff-end"
OPTION_REGION = "standoff-region"

STANDOFF_OPTION_NAMES = frozenset(
    {OPTION_TYPE, OPTION_START, OPTION_END, OPTION_REGION}
)

#: Position datatypes supported for region endpoints.  The paper's
#: implementation assumes 64-bit integers but notes this is not conceptual;
#: we additionally allow doubles (e.g. time offsets in seconds).
SUPPORTED_TYPES = ("xs:integer", "xs:long", "xs:double", "xs:decimal")


# ----------------------------------------------------------------------
# Join kernel registry (StandOff joins + Staircase axes)
# ----------------------------------------------------------------------

#: The two loop-lifted join families of the paper (§4.1/§4.6): the
#: StandOff MergeJoin over annotation regions and the Staircase Join
#: over the shredded pre/size encoding.  Both families offer the same
#: kernel choices, resolved through one registry.
FAMILY_STANDOFF = "standoff"
FAMILY_STAIRCASE = "staircase"

SUPPORTED_FAMILIES = (FAMILY_STANDOFF, FAMILY_STAIRCASE)

#: The reference kernel: row-at-a-time loop-lifted merge join
#: (paper Listing 1; ``list`` or ``heap`` active-items structure) for
#: the StandOff family, the bisect/insort loop-lifted Staircase Join
#: (``repro.staircase.loop_lifted``) for the staircase family.
KERNEL_LL = "ll"

#: The batched NumPy kernels (:mod:`repro.core.kernels_vec` /
#: :mod:`repro.staircase.kernels_vec`): windowed ``searchsorted``
#: pruning plus segmented prefix-max tests, building columnar results.
KERNEL_VECTORIZED = "vectorized"

#: Per-join automatic choice: ``ll`` for small inputs (where NumPy call
#: overhead dominates the row-at-a-time merge's cost), ``vectorized``
#: otherwise — the optimizer-style selection resolved per join call by
#: :meth:`KernelRegistry.select` once the input sizes are known.
KERNEL_AUTO = "auto"

SUPPORTED_KERNELS = (KERNEL_LL, KERNEL_VECTORIZED, KERNEL_AUTO)

#: The tree axes every staircase-family kernel serves on the shredded
#: pre/size encoding.  Registered on the family's kernel specs so that
#: axis validation (and its :class:`~repro.errors.UnknownKernelError`
#: listing) comes from the same registry that resolves kernel names —
#: the DOM walk remains only as the ``basic``-strategy oracle.
STAIRCASE_AXIS_NAMES = (
    "descendant", "ancestor", "child", "following", "preceding",
    "following-sibling", "preceding-sibling",
)

DEFAULT_KERNEL = KERNEL_LL

#: Staircase axes default to ``auto``: the vectorized axis kernels are
#: exact (tree windows never partially overlap, so there is no
#: pair-expansion blowup and no trace-event concern), which makes the
#: size-based per-join choice safe as the default.
DEFAULT_STAIRCASE_KERNEL = KERNEL_AUTO

#: ``auto`` threshold: total input rows (context + candidates) below
#: which the reference merge beats the batched kernel.  The crossover
#: sits where ~20 NumPy dispatches (~50-100 us of fixed overhead)
#: outweigh the per-row cost of the interpreted merge (~0.5-2 us/row
#: depending on active-list churn); measured crossovers fall between
#: ~100 and ~250 total rows, so the threshold is set at the low end —
#: misclassifying a small join as vectorized costs tens of
#: microseconds, misclassifying a large one as ``ll`` costs far more.
AUTO_KERNEL_MIN_ROWS = 128

#: Density cutoff for ``auto``: when the estimated number of
#: (iteration, candidate) probe pairs the batched StandOff kernel would
#: materialize exceeds this bound, ``auto`` picks ``ll`` directly — the
#: vectorized kernel would hit its identical ``PAIR_BUDGET`` and fall
#: back to the reference merge anyway, after paying for the window
#: computation.  Overlap-dense workloads (huge regions, many
#: iterations) are exactly where the size-only cutoff misclassifies.
AUTO_KERNEL_MAX_PAIRS = 32_000_000


# ----------------------------------------------------------------------
# Sharded fan-out execution (workers / shard sizing)
# ----------------------------------------------------------------------

#: The deterministic reference execution mode: no worker pool, a single
#: shard per kernel call — byte-identical to the unsharded pipeline.
WORKERS_SERIAL = "serial"

#: Default worker setting.  ``REPRO_WORKERS`` overrides it process-wide
#: (CI runs the tier-1 suite under ``REPRO_WORKERS=4`` so every
#: engine-level test exercises the sharded dispatch path).
DEFAULT_WORKERS = os.environ.get("REPRO_WORKERS", WORKERS_SERIAL)

#: Minimum rows of the partitioned dimension (candidate pool rows for
#: staircase shards, context rows for StandOff iteration shards) a
#: shard must own before the planner fans out: per-shard dispatch costs
#: roughly a thread hop plus one extra round of fixed NumPy call
#: overhead (~100-200 us), so workloads below a few thousand rows are
#: faster executed as the single serial call.  ``REPRO_SHARD_MIN_ROWS``
#: overrides it process-wide — CI pairs ``REPRO_WORKERS=4`` with
#: ``REPRO_SHARD_MIN_ROWS=1`` so the tier-1 rerun genuinely fans out
#: on its small test documents instead of planning single shards.
DEFAULT_SHARD_MIN_ROWS = int(os.environ.get("REPRO_SHARD_MIN_ROWS",
                                            "8192"))

#: Shard executors.  ``thread`` dispatches shard jobs onto the shared
#: :class:`~concurrent.futures.ThreadPoolExecutor`
#: (:mod:`repro.exec.sharding`); ``process`` routes them to a pool of
#: worker *processes* (:mod:`repro.exec.procpool`) that re-open the
#: same memory-mapped store file — the backend PR 4 identified for the
#: bandwidth-bound ``following``/``preceding`` axes, where threads gain
#: nothing under the GIL.  The process executor requires store-backed
#: columns (a ``store_ref``); jobs without one fall back to threads, so
#: the knob is always safe to set.
EXECUTOR_THREAD = "thread"
EXECUTOR_PROCESS = "process"

SUPPORTED_EXECUTORS = (EXECUTOR_THREAD, EXECUTOR_PROCESS)

#: Default shard executor; ``REPRO_EXECUTOR`` overrides process-wide.
DEFAULT_EXECUTOR = os.environ.get("REPRO_EXECUTOR", EXECUTOR_THREAD)


# ----------------------------------------------------------------------
# Storage backends (in-memory columns vs memory-mapped store files)
# ----------------------------------------------------------------------

#: Shredded columns and region tables live as process-private NumPy
#: arrays rebuilt from the DOM at load time.
STORAGE_MEMORY = "memory"

#: Columns are written once to a versioned store file
#: (:mod:`repro.storage`) and mapped back with ``np.memmap`` — O(1)
#: cold start, pages shared across processes.
STORAGE_MMAP = "mmap"

SUPPORTED_STORAGE_BACKENDS = (STORAGE_MEMORY, STORAGE_MMAP)

#: Default storage backend for stored documents; ``REPRO_STORAGE``
#: overrides process-wide (CI runs a tier-1 pass under
#: ``REPRO_STORAGE=mmap`` so every engine-level test exercises the
#: store round-trip).
DEFAULT_STORAGE_BACKEND = os.environ.get("REPRO_STORAGE", STORAGE_MEMORY)

#: Directory for automatic store spill files under the mmap backend
#: (``None``: a per-process temp directory, removed at exit).
STORAGE_SPILL_DIR = os.environ.get("REPRO_STORAGE_DIR") or None


def normalize_executor(executor) -> str:
    """Normalize an ``executor`` setting (``None`` -> the default).

    :raises ValueError: for anything but ``thread`` / ``process``.
    """
    if executor is None:
        return DEFAULT_EXECUTOR
    if executor not in SUPPORTED_EXECUTORS:
        raise ValueError(
            f"invalid executor {executor!r}; expected one of "
            f"{list(SUPPORTED_EXECUTORS)}")
    return executor


def normalize_storage_backend(backend) -> str:
    """Normalize a storage-backend setting (``None`` -> the default).

    :raises ValueError: for anything but ``memory`` / ``mmap``.
    """
    if backend is None:
        return DEFAULT_STORAGE_BACKEND
    if backend not in SUPPORTED_STORAGE_BACKENDS:
        raise ValueError(
            f"invalid storage backend {backend!r}; expected one of "
            f"{list(SUPPORTED_STORAGE_BACKENDS)}")
    return backend


# ----------------------------------------------------------------------
# Concurrent query serving (repro.serve)
# ----------------------------------------------------------------------

#: Total queries a :class:`repro.serve.QueryServer` evaluates at once
#: (the size of its dispatch thread pool and general admission
#: semaphore).  ``REPRO_SERVE_CONCURRENCY`` overrides process-wide.
DEFAULT_SERVE_CONCURRENCY = int(os.environ.get("REPRO_SERVE_CONCURRENCY",
                                               "8"))

#: Slots of the heavy-query lane.  Queries whose estimated pair budget
#: reaches :data:`DEFAULT_SERVE_HEAVY_PAIRS` additionally acquire this
#: (much smaller) semaphore, so a handful of scale-16 scans can never
#: occupy every general slot and starve the point lookups behind them.
#: ``REPRO_SERVE_HEAVY_SLOTS`` overrides process-wide.
DEFAULT_SERVE_HEAVY_SLOTS = int(os.environ.get("REPRO_SERVE_HEAVY_SLOTS",
                                               "2"))

#: Pair-budget admission threshold: a query estimated to probe at
#: least this many (context row, candidate) pairs is classified heavy.
#: The estimate is deliberately coarse (see
#: :func:`repro.serve.estimate_pair_budget`) — it only has to separate
#: "scan of a scan" from "point lookup", not predict runtimes.
#: ``REPRO_SERVE_HEAVY_PAIRS`` overrides process-wide.
DEFAULT_SERVE_HEAVY_PAIRS = int(os.environ.get("REPRO_SERVE_HEAVY_PAIRS",
                                               "2000000"))

#: Default per-query timeout (seconds) a server enforces when the
#: request carries none; ``0`` disables.  ``REPRO_SERVE_TIMEOUT``
#: overrides process-wide.
DEFAULT_SERVE_TIMEOUT = float(os.environ.get("REPRO_SERVE_TIMEOUT", "30"))


# ----------------------------------------------------------------------
# Cross-query caches (compiled plans, fragment shreds)
# ----------------------------------------------------------------------

#: Compiled-plan LRU capacity (entries) of
#: :class:`repro.xquery.engine.PlanCache`: parsed modules plus their
#: static contexts, keyed on query text + static-context fingerprint.
#: ``REPRO_PLAN_CACHE`` overrides process-wide; ``0`` disables (every
#: query re-parses — the cold-path reference CI runs tier-1 under).
DEFAULT_PLAN_CACHE_SIZE = int(os.environ.get("REPRO_PLAN_CACHE", "256"))

#: Entry budget of the content-hash shred cache
#: (:data:`repro.xmldb.shred.SHRED_CACHE`): shredded column sets of
#: constructed fragments, keyed on a structural fingerprint so repeated
#: constructions of identical content reuse the columns across queries.
#: ``REPRO_SHRED_CACHE`` overrides process-wide; ``0`` disables.
DEFAULT_SHRED_CACHE_ENTRIES = int(os.environ.get("REPRO_SHRED_CACHE",
                                                 "512"))

#: Byte budget of the shred cache (sum of cached column ``nbytes``);
#: the LRU evicts past either budget.  ``REPRO_SHRED_CACHE_BYTES``
#: overrides process-wide.
DEFAULT_SHRED_CACHE_BYTES = int(os.environ.get("REPRO_SHRED_CACHE_BYTES",
                                               str(64 * 1024 * 1024)))


def normalize_workers(workers) -> int:
    """Normalize a ``workers`` setting to a worker count (``>= 1``).

    Accepts :data:`WORKERS_SERIAL` (or ``None``) for the deterministic
    serial reference, or a positive integer / integer string.

    :raises ValueError: for anything else.
    """
    if workers is None or workers == WORKERS_SERIAL:
        return 1
    try:
        count = int(workers)
    except (TypeError, ValueError):
        raise ValueError(
            f"invalid workers setting {workers!r}; expected "
            f"{WORKERS_SERIAL!r} or a positive integer") from None
    if count < 1:
        raise ValueError(
            f"invalid workers setting {workers!r}; expected "
            f"{WORKERS_SERIAL!r} or a positive integer")
    return count


@dataclass(frozen=True)
class KernelSpec:
    """One registered join kernel.

    :param family: :data:`FAMILY_STANDOFF` or :data:`FAMILY_STAIRCASE`.
    :param name: kernel name (``ll`` | ``vectorized`` | ``auto``).
    :param batched: True for the NumPy batch kernels that build columnar
        results natively.
    :param traceable: True when the kernel can report Listing 1's
        add/replace/trim/emit events to a trace sink.
    :param axes: the axis steps the kernel serves (staircase family:
        :data:`STAIRCASE_AXIS_NAMES`); empty for families whose joins
        are not axis-shaped (StandOff).
    """

    family: str
    name: str
    batched: bool = False
    traceable: bool = False
    axes: tuple[str, ...] = ()


class KernelRegistry:
    """The single kernel-selection mechanism for all join families.

    Every layer (engine, CLI, step layer, bulk evaluator) resolves its
    kernel choice here: :meth:`validate` checks a configured name,
    :meth:`resolve` applies tracing constraints, :meth:`select` decides
    ``auto`` per join call from input sizes and the probe-pair density
    estimate.
    """

    def __init__(self) -> None:
        self._specs: dict[tuple[str, str], KernelSpec] = {}
        self._axes_cache: dict[str, tuple[str, ...]] = {}

    def register(self, spec: KernelSpec) -> KernelSpec:
        self._specs[(spec.family, spec.name)] = spec
        self._axes_cache.clear()
        return spec

    def families(self) -> tuple[str, ...]:
        return tuple(dict.fromkeys(f for f, _n in self._specs))

    def names(self, family: str) -> tuple[str, ...]:
        found = tuple(n for f, n in self._specs if f == family)
        if not found:
            raise UnknownKernelError(
                f"unknown join family {family!r}; expected one of "
                f"{list(self.families())}")
        return found

    def spec(self, family: str, name: str) -> KernelSpec:
        self.validate(family, name)
        return self._specs[(family, name)]

    def axes(self, family: str) -> tuple[str, ...]:
        """The union of axis steps the family's kernels serve (cached —
        axis validation sits on the kernel dispatch hot path)."""
        cached = self._axes_cache.get(family)
        if cached is not None:
            return cached
        self.names(family)
        out: dict[str, None] = {}
        for (f, _n), spec in self._specs.items():
            if f == family:
                out.update(dict.fromkeys(spec.axes))
        self._axes_cache[family] = tuple(out)
        return self._axes_cache[family]

    def validate_axis(self, family: str, axis: str) -> str:
        """Check *axis* against the family's registered axis steps.

        :raises UnknownKernelError: when no kernel of the family serves
            the axis; the message lists the valid axes.
        """
        axes = self.axes(family)
        if axis not in axes:
            raise UnknownKernelError(
                f"no {family} kernel for axis {axis!r}; expected one of "
                f"{sorted(axes)}")
        return axis

    def validate(self, family: str, name: str) -> str:
        """Check *name* against the family's registered kernels.

        :raises UnknownKernelError: for unknown families or kernel
            names; the message lists the family's valid kernels (or the
            registered families when the family itself is unknown).
        """
        if (family, name) not in self._specs:
            raise UnknownKernelError(
                f"unknown join kernel {name!r} for the {family} family; "
                f"expected one of {list(self.names(family))}")
        return name

    def resolve(self, family: str, name: str, *,
                tracing: bool = False) -> str:
        """Validate *name* and resolve the effective kernel.

        Trace sinks observe the row-at-a-time merge (add/replace/trim/
        emit events of Listing 1), which the batched kernels do not
        produce, so tracing falls back to the family's traceable
        kernel.  ``auto`` stays ``auto`` (it needs input sizes; see
        :meth:`select`).

        :raises ValueError: when tracing is requested and the family
            registers no traceable kernel.
        """
        self.validate(family, name)
        if tracing and not self._specs[(family, name)].traceable:
            for spec in self._specs.values():
                if spec.family == family and spec.traceable:
                    return spec.name
            raise ValueError(
                f"the {family} family has no traceable kernel")
        return name

    def select(self, family: str, name: str, *, context_rows: int = 0,
               candidate_rows: int = 0, probe_pairs: int | None = None,
               tracing: bool = False) -> str:
        """Resolve the effective kernel for one join call.

        Like :meth:`resolve`, but with the join's input sizes in hand
        so ``auto`` can be decided: below :data:`AUTO_KERNEL_MIN_ROWS`
        total rows the row-at-a-time merge wins (NumPy call overhead
        dominates).  When the caller supplies *probe_pairs* — the
        estimated (iteration, candidate) pairs the batched kernel
        would materialize (see
        :func:`repro.core.kernels_vec.estimate_probe_pairs`) — a
        density above :data:`AUTO_KERNEL_MAX_PAIRS` also selects
        ``ll``: the vectorized kernel would exhaust its pair budget
        and delegate to the reference merge anyway.

        :returns: :data:`KERNEL_LL` or :data:`KERNEL_VECTORIZED`.
        """
        name = self.resolve(family, name, tracing=tracing)
        if name != KERNEL_AUTO:
            return name
        if context_rows + candidate_rows < AUTO_KERNEL_MIN_ROWS:
            return KERNEL_LL
        if probe_pairs is not None and probe_pairs > AUTO_KERNEL_MAX_PAIRS:
            return KERNEL_LL
        return KERNEL_VECTORIZED


#: The process-wide registry; both join families register their three
#: kernel choices (``ll`` reference, ``vectorized`` batch, ``auto``).
KERNELS = KernelRegistry()

for _family in SUPPORTED_FAMILIES:
    _axes = STAIRCASE_AXIS_NAMES if _family == FAMILY_STAIRCASE else ()
    KERNELS.register(KernelSpec(_family, KERNEL_LL,
                                traceable=_family == FAMILY_STANDOFF,
                                axes=_axes))
    KERNELS.register(KernelSpec(_family, KERNEL_VECTORIZED, batched=True,
                                axes=_axes))
    KERNELS.register(KernelSpec(_family, KERNEL_AUTO, axes=_axes))
del _family, _axes


@dataclass(frozen=True)
class StandoffConfig:
    """Runtime settings for locating region information on elements.

    :param position_type: qualified name of the position datatype
        (default ``xs:integer``; see :data:`SUPPORTED_TYPES`).
    :param start_name: name of the start attribute *or* element.
    :param end_name: name of the end attribute *or* element.
    :param region_name: when not ``None``, the element-form representation
        is active and this is the name of the ``<region>`` child elements.
    """

    position_type: str = "xs:integer"
    start_name: str = "start"
    end_name: str = "end"
    region_name: str | None = None

    def __post_init__(self) -> None:
        if self.position_type not in SUPPORTED_TYPES:
            raise XQueryStaticError(
                f"unsupported standoff-type {self.position_type!r}; "
                f"expected one of {', '.join(SUPPORTED_TYPES)}"
            )
        if not self.start_name or not self.end_name:
            raise XQueryStaticError(
                "standoff-start and standoff-end must be non-empty names"
            )
        if self.start_name == self.end_name:
            raise XQueryStaticError(
                "standoff-start and standoff-end must differ "
                f"(both are {self.start_name!r})"
            )

    @property
    def uses_region_elements(self) -> bool:
        """True when regions are stored as ``<region>`` child elements."""
        return self.region_name is not None

    @property
    def integral_positions(self) -> bool:
        """True when the configured position type is an integer type."""
        return self.position_type in ("xs:integer", "xs:long")

    def parse_position(self, text: str):
        """Convert attribute/element text to a position value.

        :raises RegionError: if the text is not a valid literal of the
            configured position type.
        """
        text = text.strip()
        try:
            if self.integral_positions:
                return int(text)
            return float(text)
        except ValueError:
            raise RegionError(
                f"cannot parse {text!r} as {self.position_type}"
            ) from None

    @classmethod
    def from_options(cls, options: dict[str, str]) -> "StandoffConfig":
        """Build a config from ``declare option`` name/value pairs.

        Unknown ``standoff-*`` options raise; other options are the
        caller's business and must be filtered out beforehand.
        """
        unknown = set(options) - STANDOFF_OPTION_NAMES
        if unknown:
            raise XQueryStaticError(
                f"unknown standoff option(s): {', '.join(sorted(unknown))}"
            )
        return cls(
            position_type=options.get(OPTION_TYPE, "xs:integer"),
            start_name=options.get(OPTION_START, "start"),
            end_name=options.get(OPTION_END, "end"),
            region_name=options.get(OPTION_REGION),
        )


#: The paper's default configuration (attribute form, integer offsets).
DEFAULT_CONFIG = StandoffConfig()
