r"""Command-line shell for the StandOff XQuery database.

One-shot::

    python -m repro.cli --load video.xml --query \
        'doc("video.xml")//music[@artist="U2"]/select-wide::shot'

Interactive::

    python -m repro.cli --load video.xml
    standoff> doc("video.xml")//shot
    standoff> \strategy ll
    standoff> \timing on
    standoff> \quit

Backslash commands: ``\load <uri> [path]``, ``\blob <uri> <path>``,
``\docs``, ``\strategy udf|basic|ll``, ``\kernel [standoff|staircase]
ll|vectorized|auto``, ``\workers serial|<n>``, ``\executor
thread|process``, ``\save-store <path>``, ``\store stats``,
``\cache stats|clear``, ``\timing on|off``, ``\help``, ``\quit``.
Everything else is evaluated as a query; results print one item per
line (nodes serialized as XML).

Out-of-core stores: ``--store <path>`` opens a store file written by
``\save-store`` (or :func:`repro.storage.save_store`) instead of
parsing XML — an O(1) cold start off the memory-mapped columns.
``--storage mmap`` spills freshly loaded documents to mapped store
files, which is what lets ``--executor process`` fan shards out to
worker processes sharing the column pages.

Serving: ``--serve`` starts a concurrent JSON-lines query server
(:mod:`repro.serve`) over the loaded documents or opened store
instead of the REPL::

    python -m repro.cli --store corpus.repro --serve --port 7700

Each request is one JSON object per line (``{"op": "query", "query":
..., "id": ...}``); responses may arrive out of order and echo the
request ``id``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.config import (
    DEFAULT_EXECUTOR,
    DEFAULT_KERNEL,
    DEFAULT_SHARD_MIN_ROWS,
    DEFAULT_STAIRCASE_KERNEL,
    DEFAULT_STORAGE_BACKEND,
    DEFAULT_WORKERS,
    FAMILY_STAIRCASE,
    FAMILY_STANDOFF,
    SUPPORTED_EXECUTORS,
    SUPPORTED_FAMILIES,
    SUPPORTED_KERNELS,
    SUPPORTED_STORAGE_BACKENDS,
    WORKERS_SERIAL,
    normalize_workers,
)
from repro.errors import ReproError
from repro.xquery.engine import Database

PROMPT = "standoff> "

HELP = """\
\\load <uri> [path]   parse an XML file and store it under <uri>
\\blob <uri> <path>   register a BLOB file
\\docs                list stored documents and BLOBs
\\strategy <name>     set evaluation strategy: udf | basic | ll
\\kernel [family] <name>
                     set the join kernel (ll | vectorized | auto) for a
                     family (standoff | staircase; default standoff)
\\workers <n>         shard joins across <n> worker threads
                     (serial = single-shard deterministic reference)
\\executor <name>     where sharded joins run: thread | process
                     (process needs store-backed documents — open a
                     store with --store or use --storage mmap)
\\save-store <path>   write every stored document's columns to a
                     versioned store file (reopen with --store)
\\store stats         per-document storage backend, file size, and
                     mapped vs resident bytes
\\cache stats|clear   show / reset the cross-query caches (compiled
                     plans, constructed-fragment shreds)
\\timing on|off       print query wall-clock times
\\help                this text
\\quit                exit
any other input      evaluate as an XQuery query"""


class CliSession:
    """A scriptable shell session (the REPL drives this object)."""

    def __init__(self, out=None, *, plan_cache_size: int | None = None,
                 storage_backend: str | None = None,
                 store_path: str | None = None):
        if store_path is not None:
            from repro import storage

            self.db = storage.open_store(
                store_path, plan_cache_size=plan_cache_size)
        else:
            self.db = Database(plan_cache_size=plan_cache_size,
                               storage_backend=storage_backend)
        self.strategy = "basic"
        self.kernel = DEFAULT_KERNEL
        self.staircase_kernel = DEFAULT_STAIRCASE_KERNEL
        self.workers = DEFAULT_WORKERS
        self.shard_min_rows = DEFAULT_SHARD_MIN_ROWS
        self.executor = DEFAULT_EXECUTOR
        self.timing = False
        self.out = out if out is not None else sys.stdout
        self.done = False

    def emit(self, text: str = "") -> None:
        print(text, file=self.out)

    # -- commands -----------------------------------------------------------

    def load_document(self, uri: str, path: str | None = None) -> None:
        source = Path(path if path is not None else uri)
        self.db.add_document(uri, source.read_text(encoding="utf-8"))
        stored = self.db.document(uri)
        self.emit(f"loaded {uri} "
                  f"({stored.document.node_count} nodes)")

    def load_blob(self, uri: str, path: str) -> None:
        self.db.add_blob(uri, Path(path).read_bytes())
        self.emit(f"registered BLOB {uri}")

    def list_docs(self) -> None:
        uris = self.db.store.uris()
        if not uris and not len(self.db.blobs):
            self.emit("(no documents)")
            return
        for uri in uris:
            stored = self.db.document(uri)
            self.emit(f"doc  {uri}  ({stored.document.node_count} nodes)")
        for uri in self.db.blobs.uris():
            blob = self.db.blobs.get(uri)
            self.emit(f"blob {uri}  ({len(blob)} bytes)")

    def set_strategy(self, name: str) -> None:
        if name not in ("udf", "basic", "ll"):
            self.emit(f"unknown strategy {name!r} "
                      "(expected udf, basic or ll)")
            return
        self.strategy = name
        self.emit(f"strategy = {name}")

    def set_kernel(self, name: str, family: str = FAMILY_STANDOFF) -> None:
        if family not in SUPPORTED_FAMILIES:
            self.emit(f"unknown join family {family!r} "
                      f"(expected {' or '.join(SUPPORTED_FAMILIES)})")
            return
        if name not in SUPPORTED_KERNELS:
            self.emit(f"unknown kernel {name!r} "
                      f"(expected {' or '.join(SUPPORTED_KERNELS)})")
            return
        if family == FAMILY_STAIRCASE:
            self.staircase_kernel = name
            self.emit(f"staircase kernel = {name}")
        else:
            self.kernel = name
            self.emit(f"kernel = {name}")

    def set_workers(self, value: str) -> None:
        try:
            normalize_workers(value)
        except ValueError:
            self.emit(f"invalid workers {value!r} "
                      f"(expected {WORKERS_SERIAL!r} or a positive "
                      "integer)")
            return
        self.workers = value
        self.emit(f"workers = {value}")

    def set_executor(self, name: str) -> None:
        if name not in SUPPORTED_EXECUTORS:
            self.emit(f"unknown executor {name!r} "
                      f"(expected {' or '.join(SUPPORTED_EXECUTORS)})")
            return
        self.executor = name
        self.emit(f"executor = {name}")

    def save_store(self, path: str) -> None:
        from repro import storage

        storage.save_store(path, self.db)
        size = Path(path).stat().st_size
        self.emit(f"saved {len(self.db.store)} document(s) to {path} "
                  f"({size} bytes)")

    def store_stats(self) -> None:
        from repro import storage

        rows = storage.store_stats(self.db)
        if not rows:
            self.emit("(no documents)")
            return
        for row in rows:
            line = f"{row['uri']}  backend={row['backend']}"
            if row["path"]:
                line += f"  file={row['path']}"
            if row["file_size"] is not None:
                line += f"  size={row['file_size']}"
            if row["mapped_bytes"] is not None:
                line += (f"  mapped={row['mapped_bytes']}"
                         f"  resident={row['resident_bytes']}")
            self.emit(line)

    def cache_command(self, action: str) -> None:
        from repro.xmldb.shred import SHRED_CACHE

        if action == "clear":
            self.db.plan_cache.clear()
            SHRED_CACHE.clear()
            self.emit("caches cleared")
            return
        if action != "stats":
            self.emit(f"unknown cache action {action!r} "
                      "(expected stats or clear)")
            return
        plan = self.db.plan_cache.stats()
        shred = SHRED_CACHE.stats()
        self.emit(f"plan cache:  entries={plan['entries']}"
                  f"/{plan['max_entries']} hits={plan['hits']} "
                  f"misses={plan['misses']} "
                  f"evictions={plan['evictions']}")
        self.emit(f"shred cache: entries={shred['entries']}"
                  f"/{shred['max_entries']} bytes={shred['bytes']}"
                  f"/{shred['max_bytes']} hits={shred['hits']} "
                  f"misses={shred['misses']} "
                  f"evictions={shred['evictions']}")

    def run_query(self, text: str) -> None:
        start = time.perf_counter()
        try:
            result = self.db.query(text, strategy=self.strategy,
                                   kernel=self.kernel,
                                   staircase_kernel=self.staircase_kernel,
                                   workers=self.workers,
                                   shard_min_rows=self.shard_min_rows,
                                   executor=self.executor)
        except ReproError as error:
            self.emit(f"error: {error}")
            return
        elapsed = time.perf_counter() - start
        for line in result.serialize().splitlines():
            self.emit(line)
        summary = f"({len(result)} item(s)"
        if self.timing:
            summary += f", {elapsed:.3f}s"
        self.emit(summary + ")")

    # -- dispatch ---------------------------------------------------------------

    def handle(self, line: str) -> None:
        line = line.strip()
        if not line:
            return
        if not line.startswith("\\"):
            self.run_query(line)
            return
        parts = line[1:].split()
        command, args = parts[0], parts[1:]
        try:
            if command == "quit" or command == "q":
                self.done = True
            elif command == "help":
                self.emit(HELP)
            elif command == "load" and args:
                self.load_document(*args[:2])
            elif command == "blob" and len(args) == 2:
                self.load_blob(args[0], args[1])
            elif command == "docs":
                self.list_docs()
            elif command == "strategy" and args:
                self.set_strategy(args[0])
            elif command == "kernel" and len(args) == 2:
                self.set_kernel(args[1], family=args[0])
            elif command == "kernel" and args:
                self.set_kernel(args[0])
            elif command == "workers" and args:
                self.set_workers(args[0])
            elif command == "executor" and args:
                self.set_executor(args[0])
            elif command == "save-store" and args:
                self.save_store(args[0])
            elif command == "store" and args and args[0] == "stats":
                self.store_stats()
            elif command == "cache" and args:
                self.cache_command(args[0])
            elif command == "timing" and args:
                self.timing = args[0] == "on"
                self.emit(f"timing = {'on' if self.timing else 'off'}")
            else:
                self.emit(f"unknown command \\{command} (try \\help)")
        except (OSError, ReproError) as error:
            self.emit(f"error: {error}")


def run_serve(session: CliSession, *, host: str, port: int,
              timeout: float | None,
              store_path: str | None = None) -> int:
    """Serve the session's database over TCP until interrupted."""
    import asyncio

    from repro.serve import QueryServer, serve

    server = QueryServer(db=session.db,
                         default_timeout=timeout,
                         strategy=session.strategy,
                         kernel=session.kernel,
                         staircase_kernel=session.staircase_kernel,
                         workers=session.workers,
                         shard_min_rows=session.shard_min_rows,
                         executor=session.executor,
                         prefork=session.executor == "process")
    # The session already opened the store; hand the path over so a
    # preforked process pool can warm-map it in every worker.
    server.store_path = store_path

    async def _serve_forever() -> None:
        tcp = await serve(server, host=host, port=port)
        bound = tcp.sockets[0].getsockname()
        print(f"serving on {bound[0]}:{bound[1]}", flush=True)
        try:
            await tcp.serve_forever()
        finally:
            tcp.close()
            await tcp.wait_closed()
            await server.stop()

    try:
        asyncio.run(_serve_forever())
    except KeyboardInterrupt:
        print("shutting down", flush=True)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="StandOff XQuery shell (Alink et al., 2006 repro)")
    parser.add_argument("--load", action="append", default=[],
                        metavar="PATH",
                        help="XML file to load (uri = file name); "
                             "repeatable")
    parser.add_argument("--blob", action="append", default=[],
                        metavar="URI=PATH", help="BLOB to register")
    parser.add_argument("--query", "-e", default=None,
                        help="run one query and exit")
    parser.add_argument("--strategy", default="basic",
                        choices=["udf", "basic", "ll"])
    parser.add_argument("--kernel", default=DEFAULT_KERNEL,
                        choices=list(SUPPORTED_KERNELS),
                        help="StandOff join kernel (vectorized = batched "
                             "NumPy fast path; auto = per-join choice by "
                             "input size and overlap density)")
    parser.add_argument("--staircase-kernel",
                        default=DEFAULT_STAIRCASE_KERNEL,
                        choices=list(SUPPORTED_KERNELS),
                        help="Staircase axis kernel for the tree axes "
                             "under strategy=ll (same choices; default "
                             "auto)")
    parser.add_argument("--workers", default=DEFAULT_WORKERS,
                        metavar="N",
                        help="shard batched joins across N worker "
                             "threads ('serial' = deterministic "
                             "single-shard reference; default from "
                             "REPRO_WORKERS)")
    parser.add_argument("--executor", default=DEFAULT_EXECUTOR,
                        choices=list(SUPPORTED_EXECUTORS),
                        help="where sharded joins run: 'thread' (shared "
                             "pool, default from REPRO_EXECUTOR) or "
                             "'process' (store-backed jobs fan out to "
                             "worker processes mapping the same store "
                             "file)")
    parser.add_argument("--storage", default=DEFAULT_STORAGE_BACKEND,
                        choices=list(SUPPORTED_STORAGE_BACKENDS),
                        help="storage backend for loaded documents: "
                             "'memory' (default from REPRO_STORAGE) or "
                             "'mmap' (spill columns to a mapped store "
                             "file)")
    parser.add_argument("--store", default=None, metavar="PATH",
                        help="open a saved store file (written by "
                             "\\save-store) instead of parsing XML — "
                             "O(1) cold start off the mapped columns")
    parser.add_argument("--shard-min-rows", type=int,
                        default=DEFAULT_SHARD_MIN_ROWS, metavar="ROWS",
                        help="minimum rows per shard before a join "
                             f"fans out (default "
                             f"{DEFAULT_SHARD_MIN_ROWS})")
    parser.add_argument("--plan-cache-size", type=int, default=None,
                        metavar="N",
                        help="compiled-plan LRU capacity (0 disables; "
                             "default from REPRO_PLAN_CACHE)")
    parser.add_argument("--serve", action="store_true",
                        help="serve concurrent queries over TCP "
                             "(JSON lines) instead of the REPL")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address for --serve "
                             "(default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=0, metavar="PORT",
                        help="bind port for --serve (0 = pick a free "
                             "port and print it)")
    parser.add_argument("--serve-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-query timeout for --serve (default "
                             "from REPRO_SERVE_TIMEOUT; 0 disables)")
    args = parser.parse_args(argv)

    try:
        normalize_workers(args.workers)
    except ValueError as error:
        parser.error(str(error))
    if args.shard_min_rows < 1:
        parser.error("--shard-min-rows must be >= 1 "
                     f"(got {args.shard_min_rows}); the planner never "
                     "fans out below one row per shard")

    if args.plan_cache_size is not None and args.plan_cache_size < 0:
        parser.error("--plan-cache-size must be >= 0 "
                     f"(got {args.plan_cache_size})")

    try:
        session = CliSession(plan_cache_size=args.plan_cache_size,
                             storage_backend=args.storage,
                             store_path=args.store)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    session.strategy = args.strategy
    session.kernel = args.kernel
    session.staircase_kernel = args.staircase_kernel
    session.workers = args.workers
    session.shard_min_rows = args.shard_min_rows
    session.executor = args.executor
    try:
        for path in args.load:
            session.load_document(Path(path).name, path)
        for spec in args.blob:
            uri, _sep, path = spec.partition("=")
            if not path:
                parser.error(f"--blob expects URI=PATH, got {spec!r}")
            session.load_blob(uri, path)
    except (OSError, ReproError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    if args.serve:
        return run_serve(session, host=args.host, port=args.port,
                         timeout=args.serve_timeout,
                         store_path=args.store)

    if args.query is not None:
        session.run_query(args.query)
        return 0

    session.emit("StandOff XQuery shell — \\help for commands")
    while not session.done:
        try:
            line = input(PROMPT)
        except EOFError:
            break
        except KeyboardInterrupt:
            session.emit("")
            continue
        session.handle(line)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
