"""Dynamic lock-discipline sanitizer (``REPRO_LOCKCHECK=1``).

The static pass (``repro.lint``, RL004) proves lazy-build stores sit
*lexically* under their build lock; this module checks the *runtime*
discipline the concurrency-era invariants actually rely on:

* **Lock ordering** — every project lock is created through
  :func:`new_lock` / :func:`new_rlock`.  With the sanitizer enabled the
  factories return checked wrappers that record, per thread, the stack
  of held locks and add a ``held -> acquired`` edge to a global graph
  keyed by lock *name* (the lock class, in lockdep terms).  An edge
  that closes a cycle — including a same-name edge from two distinct
  lock instances of one class — raises :class:`LockOrderError` at the
  acquisition that would make deadlock possible.

* **Lazy-build stores** — :func:`audit_lazy_stores` instruments a
  class (``StoredDocument`` and, by inheritance, its mmap-backed
  subclass) so every post-construction assignment to a lazy-build
  attribute verifies the build lock is held by the current thread;
  :func:`assert_locked` guards the dict-valued stores (`
  ``_region_indexes``/``_stored``) that ``__setattr__`` cannot see.
  A store observed outside its lock raises :class:`LockDisciplineError`.

Disabled (the default), the factories return plain ``threading`` locks
and every hook is a no-op — zero overhead on hot paths.  Enabled, the
tier-1 suite runs as a fifth CI mode and must complete with zero
cycles and zero unguarded stores.
"""

from __future__ import annotations

import os
import threading
from typing import Iterator

ENABLED = os.environ.get("REPRO_LOCKCHECK", "") == "1"


class LockDisciplineError(RuntimeError):
    """A lazy-build store ran without its build lock held."""


class LockOrderError(RuntimeError):
    """An acquisition closed a cycle in the lock-order graph."""


class LockGraph:
    """The global ``held-name -> acquired-name`` edge set.

    Edges accumulate for the life of the process (lockdep-style): a
    cycle is reported even when the two conflicting acquisition orders
    never run concurrently — the interleaving that deadlocks is always
    schedulable once both orders exist.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()    # plain: guards the graph itself
        self._edges: dict[str, set[str]] = {}

    def edges(self) -> dict[str, set[str]]:
        with self._mutex:
            return {src: set(dst) for src, dst in self._edges.items()}

    def _path(self, src: str, dst: str) -> list[str] | None:
        """A path src -> ... -> dst in the edge graph, if one exists."""
        stack = [(src, [src])]
        seen = {src}
        while stack:
            node, path = stack.pop()
            if node == dst:
                return path
            for succ in self._edges.get(node, ()):
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, path + [succ]))
        return None

    def add_edge(self, held: str, acquired: str) -> None:
        """Record ``held -> acquired``; raise on a closed cycle."""
        with self._mutex:
            existing = self._edges.get(held)
            if existing is not None and acquired in existing:
                return
            cycle = self._path(acquired, held)
            if cycle is not None:
                order = " -> ".join(cycle + [acquired])
                raise LockOrderError(
                    f"lock-order cycle: acquiring {acquired!r} while "
                    f"holding {held!r}, but the reverse order "
                    f"{order} is already on record")
            self._edges.setdefault(held, set()).add(acquired)


_GRAPH = LockGraph()

_TLS = threading.local()


def _held_stack() -> list:
    stack = getattr(_TLS, "stack", None)
    if stack is None:
        stack = _TLS.stack = []
    return stack


class _CheckedLockBase:
    """Order- and ownership-checked wrapper around a threading lock."""

    _reentrant = False

    def __init__(self, name: str, graph: LockGraph | None = None):
        self.name = name
        self._graph = graph if graph is not None else _GRAPH
        self._lock = (threading.RLock() if self._reentrant
                      else threading.Lock())

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"

    def held_by_current_thread(self) -> bool:
        return any(entry is self for entry in _held_stack())

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        stack = _held_stack()
        reentry = self._reentrant and self.held_by_current_thread()
        if not reentry:
            for held in stack:
                if held is self:
                    # A non-reentrant checked lock re-acquired by its
                    # owner: report the self-deadlock instead of
                    # hanging the suite.
                    raise LockOrderError(
                        f"thread re-acquired non-reentrant lock "
                        f"{self.name!r} it already holds")
                self._graph.add_edge(held.name, self.name)
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            stack.append(self)
        return acquired

    def release(self) -> None:
        stack = _held_stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is self:
                del stack[index]
                break
        self._lock.release()

    def __enter__(self) -> "_CheckedLockBase":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class CheckedLock(_CheckedLockBase):
    _reentrant = False


class CheckedRLock(_CheckedLockBase):
    _reentrant = True


def new_lock(name: str):
    """A project mutex: checked under ``REPRO_LOCKCHECK=1``, plain
    ``threading.Lock`` otherwise.  *name* identifies the lock class in
    the order graph — one name per lock role, shared by instances."""
    return CheckedLock(name) if ENABLED else threading.Lock()


def new_rlock(name: str):
    """Re-entrant variant of :func:`new_lock`."""
    return CheckedRLock(name) if ENABLED else threading.RLock()


def assert_locked(lock, what: str) -> None:
    """Fail if *lock* is a checked lock not held by this thread.

    No-op when the sanitizer is disabled (plain locks carry no
    ownership information).  Call it at lazy-build store sites that
    assignment auditing cannot see (dict-valued caches).
    """
    if isinstance(lock, _CheckedLockBase) and \
            not lock.held_by_current_thread():
        raise LockDisciplineError(
            f"lazy-build store to {what} observed outside "
            f"{lock.name!r} (thread {threading.current_thread().name})")


def audit_lazy_stores(attrs: Iterator[str], lock_attr: str = "_build_lock"):
    """Class decorator: audit post-``__init__`` stores to *attrs*.

    With the sanitizer enabled, the class's ``__init__`` is wrapped to
    arm auditing once construction finishes, and ``__setattr__`` is
    replaced so every armed store to a lazy-build attribute asserts
    *lock_attr* is held.  Subclasses inherit both (their own
    ``__init__`` runs around the armed base one, so base construction
    stays exempt).  Disabled, the class is returned untouched.
    """
    names = frozenset(attrs)

    def decorate(cls):
        if not ENABLED:
            return cls
        original_init = cls.__init__

        def __init__(self, *args, **kwargs):
            original_init(self, *args, **kwargs)
            object.__setattr__(self, "_lockcheck_armed", True)

        def __setattr__(self, name, value):
            if name in names and getattr(self, "_lockcheck_armed", False):
                assert_locked(getattr(self, lock_attr, None),
                              f"{type(self).__name__}.{name}")
            object.__setattr__(self, name, value)

        cls.__init__ = __init__
        cls.__setattr__ = __setattr__
        return cls

    return decorate


def graph_edges() -> dict[str, set[str]]:
    """Snapshot of the recorded lock-order graph (for tests/debugging)."""
    return _GRAPH.edges()
