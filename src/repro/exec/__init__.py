"""Sharded fan-out execution over the unified kernel registry."""

from repro.exec.sharding import (
    Shard,
    ShardPlan,
    concat_shards,
    partition_by_iteration,
    plan_shards,
    run_shards,
)

__all__ = [
    "Shard",
    "ShardPlan",
    "concat_shards",
    "partition_by_iteration",
    "plan_shards",
    "run_shards",
]
