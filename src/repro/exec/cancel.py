"""Cooperative query cancellation across the execution layers.

The serving front-end (:mod:`repro.serve`) admits many queries onto the
shared shard pools; a per-query timeout is only useful if it actually
stops the query's shard work instead of letting an abandoned scan keep
burning pool slots.  The engine's execution layers are synchronous and
thread-hopping, so cancellation is *cooperative*: the caller installs a
:class:`CancelToken` for the current thread (:func:`cancel_scope`
around ``Database.query``), and the fan-out wait loops — the thread
pool (:func:`repro.exec.sharding.run_shards`) and the process pool
(:mod:`repro.exec.procpool`) — poll it between shard completions,
cancel the not-yet-started futures, and unwind with
:class:`QueryCancelled`.

The token travels through a ``threading.local``, not through the call
signatures: the evaluation stack between ``Database.query`` and a
shard wait is deep (bulk evaluator, step layer, kernel dispatch) and
threading an argument through it would touch every layer for a purely
infrastructural concern.  Shard *worker* threads never see the token —
only the coordinating thread polls, which is enough: a running shard
is a bounded batched kernel call, and everything after it is skipped.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import TimeoutError as _FutureTimeout
from contextlib import contextmanager

from repro.errors import ReproError


class QueryCancelled(ReproError):
    """The query's cancel token fired (timeout or explicit cancel)."""


#: How often a shard wait loop re-checks the ambient token while a
#: future is still running.  Coarse on purpose: cancellation latency of
#: ~50 ms is invisible next to query timeouts measured in seconds, and
#: the poll only happens while the caller is blocked anyway.
POLL_INTERVAL = 0.05


class CancelToken:
    """A thread-safe cancellation flag with an optional deadline.

    ``cancel()`` trips it explicitly; a *deadline* (``time.monotonic``
    timestamp) trips it lazily on the next :meth:`cancelled` check —
    no timer thread needed, because the only consumers are poll loops.
    """

    __slots__ = ("_event", "deadline")

    def __init__(self, *, deadline: float | None = None):
        self._event = threading.Event()
        self.deadline = deadline

    @classmethod
    def after(cls, timeout: float | None) -> "CancelToken":
        """A token that trips *timeout* seconds from now (``None``:
        never, cancel() only)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        return cls(deadline=deadline)

    def cancel(self) -> None:
        self._event.set()

    def cancelled(self) -> bool:
        if self._event.is_set():
            return True
        if self.deadline is not None \
                and time.monotonic() >= self.deadline:
            self._event.set()
            return True
        return False

    def raise_if_cancelled(self) -> None:
        if self.cancelled():
            raise QueryCancelled("query cancelled")


_AMBIENT = threading.local()


def current_token() -> CancelToken | None:
    """The cancel token installed for the current thread, if any."""
    return getattr(_AMBIENT, "token", None)


@contextmanager
def cancel_scope(token: CancelToken | None):
    """Install *token* as the current thread's ambient cancel token.

    Scopes nest (the previous token is restored on exit); ``None``
    uninstalls for the duration — used by code that must not inherit
    an enclosing query's token.
    """
    previous = getattr(_AMBIENT, "token", None)
    _AMBIENT.token = token
    try:
        yield token
    finally:
        _AMBIENT.token = previous


def check_cancelled() -> None:
    """Raise :class:`QueryCancelled` if the ambient token has fired.

    Cheap when no token is installed (one thread-local read), so the
    inline shard path can afford to call it per job.
    """
    token = getattr(_AMBIENT, "token", None)
    if token is not None:
        token.raise_if_cancelled()


def wait_cancellable(future, token: CancelToken | None,
                     poll: float = POLL_INTERVAL):
    """``future.result()`` that honours *token* while blocked.

    With no token this is a plain blocking wait (zero overhead on the
    non-serving path).  With one, the wait wakes every *poll* seconds
    to re-check; a fired token raises :class:`QueryCancelled` and the
    caller is responsible for cancelling/draining its other futures.
    """
    if token is None:
        return future.result()
    while True:
        try:
            return future.result(timeout=poll)
        except _FutureTimeout:
            token.raise_if_cancelled()
