"""Process-pool shard execution over memory-mapped stores.

The thread-pool fan-out (:mod:`repro.exec.sharding`) is the right tool
for compute-bound kernels, but the bandwidth-bound axes (``following``
/ ``preceding`` and wide StandOff scans) spend their time streaming
columns through the memory hierarchy — there, threads contend for the
same last-level cache and memory controllers under one address space,
and the GIL handoffs around each NumPy call add up.  This module fans
the *same shard plans* out to worker **processes** instead.

What makes that cheap is the store file (:mod:`repro.storage`): a
worker re-opens the memory-mapped store by path, so the OS shares the
column pages between every participant and the job descriptors shipped
over the pipe are tiny — ``(store path, uri)`` references plus each
shard's slice of the (deduplicated) context columns; never the
candidate arrays themselves.

Unlike the thread path, which shards the *candidate pool* into
pre-order ranges, the process path shards the **iteration dimension**:
the canonical ``(iter, pre)`` context is split at iteration boundaries
and every worker runs the whole pool against its own iterations.  The
loop-lifted iterations are independent, so shard results are disjoint,
ordered CSR blocks — the merge is a plain block concatenation
(:func:`_concat_iteration_blocks`, memcpy-cheap) instead of the k-way
per-iteration interleave pool-range shards force, and no worker ever
recomputes another shard's per-iteration thresholds.  The concatenated
arrays are byte-identical to the serial kernel's by construction.

Workers resolve their inputs from the store, not from pickles:

* the candidate pool is re-derived from a **candidate descriptor**
  (``("name", tag)``, ``("kind", k)``, …) through the same
  :class:`~repro.xmldb.shred.ShreddedDocument` pool routines the
  parent used, so both sides see the same array without shipping it;
* a StandOff job re-derives ``index.candidates(wanted)`` against the
  worker's mapped region index.

Pools use the ``spawn`` start method (fork would duplicate the parent's
arbitrarily large heap and is unsafe with threads) and are cached per
worker count for the life of the process — spawn start-up is paid once,
not per join.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import shared_memory

import numpy as np

from repro.exec import lockcheck
from repro.exec.cancel import current_token, wait_cancellable
from repro.exec.sharding import ShardPlan
from repro.relational.columnar import ColumnarResult, run_starts

#: (store path, document uri) — how jobs reference mapped columns.
StoreRef = tuple[str, str]

#: Below this many result bytes a shard result is pickled through the
#: pool's result pipe as-is; at or above it the worker parks the CSR
#: columns in a POSIX shared-memory segment and ships only its name.
#: The bandwidth-bound axes return orders of magnitude more data than
#: they read — pushing those columns through the pickle pipe (two
#: copies plus 64 KiB-chunked syscalls) costs more than the join
#: itself, while an shm segment is written once by the worker and
#: mapped zero-copy by the parent.
SHM_MIN_BYTES = 1 << 20

_PROC_POOLS: dict[int, ProcessPoolExecutor] = {}
_PROC_POOLS_LOCK = lockcheck.new_lock("procpool._PROC_POOLS_LOCK")


def _proc_pool(workers: int) -> ProcessPoolExecutor:
    with _PROC_POOLS_LOCK:
        pool = _PROC_POOLS.get(workers)
        if pool is None:
            pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=multiprocessing.get_context("spawn"))
            _PROC_POOLS[workers] = pool
        return pool


def _evict_pool(workers: int, pool: ProcessPoolExecutor) -> None:
    """Drop *pool* from the cache (if still cached) and tear it down."""
    with _PROC_POOLS_LOCK:
        if _PROC_POOLS.get(workers) is pool:
            del _PROC_POOLS[workers]
    pool.shutdown(wait=False, cancel_futures=True)


def _run_with_retry(workers: int, attempt):
    """Run *attempt(pool)* on the cached pool, surviving pool death.

    A :class:`BrokenProcessPool` (a worker OOM-killed or segfaulted
    mid-job) permanently poisons a ``ProcessPoolExecutor`` — every
    later submission fails instantly.  Because the pools here are
    cached for the life of the process, one dead worker used to turn
    *every* subsequent ``executor="process"`` query into an error.
    This wrapper evicts the broken pool from the cache, builds a fresh
    one, and retries the whole job exactly once; a second breakage
    propagates (something is systematically killing workers, and
    retry loops would hide it).
    """
    pool = _proc_pool(workers)
    try:
        return attempt(pool)
    except BrokenProcessPool:
        _evict_pool(workers, pool)
        fresh = _proc_pool(workers)
        try:
            return attempt(fresh)
        except BrokenProcessPool:
            _evict_pool(workers, fresh)
            raise


def _shutdown_pools() -> None:
    with _PROC_POOLS_LOCK:
        pools = list(_PROC_POOLS.values())
        _PROC_POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=False, cancel_futures=True)


atexit.register(_shutdown_pools)


def warm_pool(workers: int) -> None:
    """Start the pool's workers and import the engine in each.

    Benchmarks call this outside the timed section so process-pool
    timings measure the joins, not spawn + import cost (which real
    deployments amortize over the pool's lifetime anyway); the serving
    layer calls it at startup for the same reason.
    """

    def attempt(pool: ProcessPoolExecutor) -> None:
        futures = [pool.submit(_import_engine) for _ in range(workers)]
        for future in futures:
            future.result()

    _run_with_retry(workers, attempt)


def warm_store(workers: int, path: str, uris: tuple[str, ...]) -> None:
    """Pre-open a published store in the pool's worker processes.

    The serving pre-fork: every worker maps the store file and builds
    its per-uri facades *before* the first query arrives, so the first
    process-executor query pays a shard job, not an open + validate.
    (Submitting ``workers`` blocking jobs spreads them across the idle
    workers the same way :func:`warm_pool` does.)
    """

    def attempt(pool: ProcessPoolExecutor) -> None:
        futures = [pool.submit(_touch_store, path, uris)
                   for _ in range(workers)]
        for future in futures:
            future.result()

    _run_with_retry(workers, attempt)


def worker_pids(workers: int) -> set[int]:
    """Distinct PIDs answering in the pool (test/diagnostic hook)."""

    def attempt(pool: ProcessPoolExecutor) -> set[int]:
        futures = [pool.submit(os.getpid) for _ in range(workers * 2)]
        return {future.result() for future in futures}

    return _run_with_retry(workers, attempt)


# ----------------------------------------------------------------------
# result transport
# ----------------------------------------------------------------------

def _pack_columnar(result: ColumnarResult) -> tuple:
    """Make a worker-side :class:`ColumnarResult` cheap to return.

    Small results ride the ordinary pickle pipe.  Large ones are
    copied once into a shared-memory segment; the payload then carries
    only the segment name plus per-array ``(dtype, shape, offset)``
    descriptors.  The segment stays linked until the parent consumed
    it (:func:`_unpack_columnar` attaches, the caller unlinks via the
    returned handles) — and if the parent dies first, the
    ``multiprocessing`` resource tracker reaps the segment at exit.
    """
    arrays = [np.ascontiguousarray(result.iters),
              np.ascontiguousarray(result.offsets),
              np.ascontiguousarray(result.values)]
    total = sum(a.nbytes for a in arrays)
    if total < SHM_MIN_BYTES:
        return "col", tuple(arrays)
    segment = shared_memory.SharedMemory(create=True, size=total)
    try:
        metas = []
        offset = 0
        for a in arrays:
            view = np.ndarray(a.shape, a.dtype, buffer=segment.buf,
                              offset=offset)
            view[...] = a
            metas.append((a.dtype.str, a.shape, offset))
            offset += a.nbytes
    except BaseException:
        # An unwind (cancel, timeout, OOM) between create and return
        # would orphan the segment in /dev/shm for the worker's life —
        # the parent never learns its name, so nobody else can unlink.
        segment.close()
        segment.unlink()
        raise
    name = segment.name
    segment.close()
    return "col-shm", name, metas


def _unpack_columnar(payload: tuple, handles: list) -> ColumnarResult:
    """Rehydrate a :func:`_pack_columnar` payload in the parent.

    Shared-memory payloads come back as zero-copy views; the attached
    segment is appended to *handles* and stays valid until
    :func:`_release_segments` — callers release only after the views
    have been merged (or copied) into parent-owned arrays.
    """
    if payload[0] == "col":
        return ColumnarResult(*payload[1])
    _tag, name, metas = payload
    segment = shared_memory.SharedMemory(name=name)
    handles.append(segment)
    return ColumnarResult(*(
        np.ndarray(shape, np.dtype(dtype), buffer=segment.buf,
                   offset=offset)
        for dtype, shape, offset in metas))


def _release_segments(handles: list) -> None:
    for segment in handles:
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already reaped
            pass


def _unlink_payload(payload) -> None:
    """Unlink the segment of a completed-but-never-consumed payload.

    The error-path counterpart of :func:`_unpack_columnar` +
    :func:`_release_segments`: a worker that already parked its result
    in shared memory has handed ownership to the parent, so if the
    parent aborts the merge (another shard failed, or the query was
    cancelled) the parent must still unlink this segment — otherwise
    it stays in ``/dev/shm`` until process exit.
    """
    if not (isinstance(payload, tuple) and payload
            and payload[0] == "col-shm"):
        return
    try:
        segment = shared_memory.SharedMemory(name=payload[1])
    except FileNotFoundError:  # pragma: no cover - already reaped
        return
    segment.close()
    segment.unlink()


def _drain_futures(futures: list) -> None:
    """Error/cancel path: reap every unconsumed future's shm segment.

    Cancels what has not started, then waits for the rest — a running
    shard cannot be interrupted, and letting it finish is the only way
    to learn its segment name and unlink it.  Worker exceptions are
    swallowed here (the caller is already unwinding with the primary
    error).
    """
    for future in futures:
        future.cancel()
    for future in futures:
        try:
            payload = future.result()
        # repro: lint-ok[RL006] drain path: the caller is already
        except BaseException:   # unwinding with the primary error
            continue
        try:
            _unlink_payload(payload)
        except OSError:  # pragma: no cover - segment already gone
            pass


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------

def _import_engine() -> int:
    """Pre-import the join machinery (see :func:`warm_pool`)."""
    import repro.core.steps      # noqa: F401
    import repro.staircase.kernels_vec  # noqa: F401
    import repro.storage         # noqa: F401

    return os.getpid()


def _worker_stored(store_ref: StoreRef):
    """The worker's cached stored-document facade for a store ref.

    ``open_store_reader`` caches the mapped :class:`StoreReader` per
    path and the reader caches the facade per uri, so across all shard
    jobs of a worker process each store file is opened and validated
    exactly once and the shred/region-index rebuilds are reused.
    """
    from repro.storage import open_store_reader

    path, uri = store_ref
    return open_store_reader(path).stored(uri)


def _touch_store(path: str, uris: tuple[str, ...]) -> int:
    """Map a store and build its facades in this worker (pre-fork)."""
    from repro.storage import open_store_reader

    reader = open_store_reader(path)
    for uri in uris:
        reader.stored(uri)
    return os.getpid()


def resolve_staircase_pool(shredded, desc: tuple) -> np.ndarray:
    """Resolve a candidate descriptor against a shredded document.

    The descriptor vocabulary mirrors the bulk evaluator's pool
    selection (:func:`repro.xquery.bulk._staircase_candidates`); both
    sides call the same :class:`ShreddedDocument` routines, so the
    worker's pool is element-for-element the parent's pool and the
    parent's shard plan indexes it directly.
    """
    kind = desc[0]
    if kind == "all":
        return shredded.pre
    if kind == "all-elements":
        return shredded.all_element_pres()
    if kind == "name":
        return shredded.elements_matching(desc[1])
    if kind == "kind":
        return shredded.pres_of_kind(desc[1])
    if kind == "non-attr":
        return shredded.non_attribute_pres()
    raise ValueError(f"unknown candidate descriptor {desc!r}")


def _staircase_shard(store_ref: StoreRef, axis: str,
                     its: np.ndarray, pres: np.ndarray,
                     desc: tuple, or_self: bool):
    """One staircase iteration-range shard, run inside a worker process.

    *its*/*pres* are this shard's slice of the canonical context (whole
    iterations only); the candidate pool is the full pool, re-derived
    from the descriptor against the worker's mapped columns.
    """
    from repro.staircase.kernels_vec import vec_staircase_join

    shredded = _worker_stored(store_ref).shredded
    pool = resolve_staircase_pool(shredded, desc)
    result = vec_staircase_join(axis, shredded, (its, pres), pool,
                                or_self=or_self)
    return _pack_columnar(result)


def _standoff_shard(store_ref: StoreRef, op, chunk, wanted,
                    strategy, active_structure: str, kernel: str):
    """One StandOff fragment/iteration-range job in a worker process."""
    from repro.core.steps import _run_fragment

    index = _worker_stored(store_ref).region_index()
    candidates = index.candidates(wanted)
    result = _run_fragment(op, chunk, index, candidates, strategy,
                           active_structure, kernel)
    if isinstance(result, ColumnarResult):
        return _pack_columnar(result)
    return "raw", result


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------

def _iteration_slices(its: np.ndarray, workers: int
                      ) -> list[tuple[int, int]]:
    """Split canonical context rows into ≤ *workers* contiguous ranges.

    Cut points snap to iteration boundaries (an iteration's rows never
    straddle two shards), targeting even row counts per shard.
    """
    n = len(its)
    if n == 0:
        return []
    bounds = np.append(run_starts(its), n)
    targets = np.linspace(0, n, workers + 1)[1:-1]
    cuts = bounds[np.searchsorted(bounds, targets, side="left")]
    edges = np.unique(np.concatenate(([0], cuts, [n])))
    return [(int(lo), int(hi))
            for lo, hi in zip(edges[:-1], edges[1:]) if hi > lo]


def _concat_iteration_blocks(shards: list[ColumnarResult]
                             ) -> ColumnarResult:
    """Concatenate iteration-disjoint, ordered CSR blocks.

    Because shard contexts partition the iterations in order, the
    global result is the shard results laid end to end — ``iters`` and
    ``values`` concatenate directly and each shard's ``offsets`` tail
    shifts by the values emitted before it.  (``np.concatenate`` always
    copies, so the output owns its memory even when inputs are views
    into shared-memory segments.)
    """
    shards = [s for s in shards if len(s.iters)]
    if not shards:
        return ColumnarResult.empty()
    iters = np.concatenate([s.iters for s in shards])
    values = np.concatenate([s.values for s in shards])
    offsets = np.empty(len(iters) + 1, np.int64)
    offsets[0] = 0
    row = 0
    shift = 0
    for s in shards:
        k = len(s.iters)
        offsets[row + 1:row + 1 + k] = s.offsets[1:] + shift
        row += k
        shift += len(s.values)
    return ColumnarResult(iters, offsets, values)


def run_staircase(axis: str, store_ref: StoreRef,
                  canon: tuple[np.ndarray, np.ndarray],
                  desc: tuple, plan: ShardPlan, *,
                  or_self: bool) -> ColumnarResult:
    """Fan a staircase join out to the process pool by iteration range.

    *canon* is the canonicalized ``(its, pres)`` context; each shard
    ships only its own slice of it (the small side — the pool stays
    behind in the mapped file).  Iteration-disjoint shard results merge
    by block concatenation: byte-identical to the serial kernel.
    """
    its, pres = canon
    slices = _iteration_slices(its, plan.workers)

    def attempt(pool: ProcessPoolExecutor) -> ColumnarResult:
        token = current_token()
        futures = [pool.submit(_staircase_shard, store_ref, axis,
                               its[lo:hi], pres[lo:hi], desc, or_self)
                   for lo, hi in slices]
        handles: list = []
        consumed = 0
        try:
            shards = []
            for future in futures:
                shards.append(_unpack_columnar(
                    wait_cancellable(future, token), handles))
                consumed += 1
            return _concat_iteration_blocks(shards)
        except BaseException:
            # One shard failed (or the query was cancelled): the other
            # workers may still park results in shared memory — reap
            # them, or the segments leak in /dev/shm for the life of
            # the process.
            _drain_futures(futures[consumed:])
            raise
        finally:
            _release_segments(handles)

    return _run_with_retry(plan.workers, attempt)


def run_standoff(jobs: list[tuple], workers: int) -> list:
    """Run StandOff fragment jobs on the process pool, in job order.

    Each job is the :func:`_standoff_shard` argument tuple.  Results
    are rehydrated to what the thread path's ``_run_fragment`` returns
    — a :class:`ColumnarResult` or a reference-path dict — so
    ``ColumnarStepResult.from_fragments`` consumes them unchanged.
    """
    def attempt(pool: ProcessPoolExecutor) -> list:
        token = current_token()
        futures = [pool.submit(_standoff_shard, *job) for job in jobs]
        out = []
        consumed = 0
        try:
            for future in futures:
                payload = wait_cancellable(future, token)
                if payload[0] == "raw":
                    out.append(payload[1])
                    consumed += 1
                    continue
                handles: list = []
                try:
                    result = _unpack_columnar(payload, handles)
                    if handles:
                        # These results outlive this call (the step
                        # layer merges them later) — copy out of the
                        # segment so it can be unlinked now.
                        result = ColumnarResult(result.iters.copy(),
                                                result.offsets.copy(),
                                                result.values.copy())
                    out.append(result)
                finally:
                    _release_segments(handles)
                consumed += 1
            return out
        except BaseException:
            # See run_staircase: completed-but-unconsumed shard
            # results own shm segments that must be unlinked on the
            # way out.
            _drain_futures(futures[consumed:])
            raise

    return _run_with_retry(workers, attempt)
