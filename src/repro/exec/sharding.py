"""Sharded fan-out execution layer over the kernel registry.

The loop-lifted evaluation model is embarrassingly partitionable, along
two different dimensions per join family:

* **StandOff joins** partition by *fragment* (each fragment owns its
  own candidate table — the per-fragment split of §4.4 — so fragments
  are natural shards) and, within one fragment, by *contiguous
  iteration ranges*: every StandOff operator (the select semi-joins
  *and* the reject anti-joins) is decided per iteration, so a shard
  that owns all context rows of its iterations computes exactly the
  per-iteration slices of the unsharded result.
* **Staircase axes** partition the *candidate pool* by contiguous
  pre-order ranges: each batched axis kernel — the sibling kernels
  included, which re-cluster whatever pool slice they receive — filters
  an arbitrary sorted pool subset, and because the ranges are
  contiguous and ascending, every iteration's matches in shard *k*
  precede those in shard *k + 1* — the merged result needs a k-way
  concatenation, never a re-sort.  (Context-bound axes like the
  ancestor climb opt out; see the kernel module.)

:func:`plan_shards` / :func:`partition_by_iteration` build the
:class:`ShardPlan`, :func:`run_shards` dispatches one batched kernel
call per shard on a shared thread pool (the NumPy kernels release the
GIL on their large array operations), and :func:`concat_shards` merges
the per-shard :class:`~repro.relational.columnar.ColumnarResult`\\ s
columnar.  ``workers="serial"`` (the default) plans a single shard and
runs it inline — byte-identical to the unsharded pipeline, and the
deterministic reference the differential suites compare against.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence, TypeVar

import numpy as np

from repro.config import (
    DEFAULT_SHARD_MIN_ROWS,
    normalize_workers,
)
from repro.exec import lockcheck
from repro.exec.cancel import check_cancelled, current_token, \
    wait_cancellable
from repro.relational.columnar import ColumnarResult

T = TypeVar("T")

#: Shard kinds: the dimension a plan partitions.
POOL_RANGE = "pool-range"       # staircase candidate pool, pre order
ITER_RANGE = "iter-range"       # StandOff context, iteration order


@dataclass(frozen=True)
class Shard:
    """One shard: the half-open slice ``[lo, hi)`` of the partitioned
    dimension (pool row indices or distinct-iteration ordinals)."""

    index: int
    lo: int
    hi: int

    @property
    def n_rows(self) -> int:
        return self.hi - self.lo


@dataclass(frozen=True)
class ShardPlan:
    """How one kernel call fans out.

    :param kind: :data:`POOL_RANGE` or :data:`ITER_RANGE`.
    :param n_rows: total rows of the partitioned dimension.
    :param shards: the contiguous, gap-free shard slices.
    :param workers: normalized worker count the plan was built for.
    """

    kind: str
    n_rows: int
    shards: tuple[Shard, ...]
    workers: int

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def is_sharded(self) -> bool:
        """True when the plan actually fans out (more than one shard)."""
        return len(self.shards) > 1

    def slices(self) -> Iterator[tuple[int, int]]:
        for shard in self.shards:
            yield shard.lo, shard.hi


def _single_shard(kind: str, n_rows: int, workers: int) -> ShardPlan:
    return ShardPlan(kind, n_rows, (Shard(0, 0, n_rows),), workers)


def plan_shards(n_rows: int, workers, *,
                shard_min_rows: int = DEFAULT_SHARD_MIN_ROWS,
                kind: str = POOL_RANGE) -> ShardPlan:
    """Partition ``n_rows`` into at most ``workers`` contiguous shards.

    A shard must own at least *shard_min_rows* rows (per-shard dispatch
    costs a thread hop plus one extra round of fixed NumPy overhead),
    so small workloads — and ``workers="serial"`` — plan one shard,
    which callers execute inline on today's unsharded path.
    """
    count = normalize_workers(workers)
    if count <= 1 or shard_min_rows < 1 \
            or n_rows < 2 * shard_min_rows:
        return _single_shard(kind, n_rows, count)
    k = min(count, n_rows // shard_min_rows)
    if k <= 1:
        return _single_shard(kind, n_rows, count)
    bounds = [round(i * n_rows / k) for i in range(k + 1)]
    shards = tuple(Shard(i, lo, hi)
                   for i, (lo, hi) in enumerate(zip(bounds[:-1],
                                                    bounds[1:])))
    return ShardPlan(kind, n_rows, shards, count)


def partition_by_iteration(iter_counts: Sequence[int], workers, *,
                           shard_min_rows: int = DEFAULT_SHARD_MIN_ROWS
                           ) -> ShardPlan:
    """Partition distinct iterations into contiguous ranges.

    ``iter_counts[i]`` is the number of context rows of the *i*-th
    distinct iteration (ascending iteration order).  Shard boundaries
    always fall **between** iterations — an iteration never straddles
    shards, because the reject anti-joins complement per iteration and
    a split iteration would compute partial complements — and each
    shard owns at least *shard_min_rows* context rows.  The returned
    slices index the distinct-iteration ordinals, not the rows.
    """
    count = normalize_workers(workers)
    n_groups = len(iter_counts)
    total = int(sum(iter_counts))
    if count <= 1 or n_groups <= 1 or shard_min_rows < 1 \
            or total < 2 * shard_min_rows:
        return _single_shard(ITER_RANGE, n_groups, count)
    k = min(count, n_groups, total // shard_min_rows)
    if k <= 1:
        return _single_shard(ITER_RANGE, n_groups, count)
    # Cut where the cumulative row count crosses the even row targets;
    # a cut is only accepted when both sides keep >= shard_min_rows
    # rows, so a dominant iteration cannot strand a tiny trailing
    # shard that pays dispatch overhead for a handful of rows.
    cum = np.cumsum(np.asarray(iter_counts, dtype=np.int64)).tolist()
    targets = [round(i * total / k) for i in range(1, k)]
    cuts = np.searchsorted(cum, targets, side="left") + 1
    bounds = [0]
    for cut in cuts.tolist():
        if not bounds[-1] < cut < n_groups:
            continue
        rows_before = cum[cut - 1] - (cum[bounds[-1] - 1]
                                      if bounds[-1] else 0)
        rows_after = total - cum[cut - 1]
        if rows_before >= shard_min_rows \
                and rows_after >= shard_min_rows:
            bounds.append(cut)
    bounds.append(n_groups)
    shards = tuple(Shard(i, lo, hi)
                   for i, (lo, hi) in enumerate(zip(bounds[:-1],
                                                    bounds[1:])))
    return ShardPlan(ITER_RANGE, n_groups, shards, count)


# ----------------------------------------------------------------------
# the worker pool
# ----------------------------------------------------------------------

#: Process-wide pools keyed by worker count — kernel calls are far too
#: frequent to pay thread start-up per join.  Threads, not processes:
#: the batched kernels spend their time in NumPy array operations,
#: which release the GIL.
_POOLS: dict[int, ThreadPoolExecutor] = {}
_POOLS_LOCK = lockcheck.new_lock("sharding._POOLS_LOCK")


def _pool(workers: int) -> ThreadPoolExecutor:
    with _POOLS_LOCK:
        pool = _POOLS.get(workers)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=workers,
                thread_name_prefix=f"repro-shard-{workers}")
            _POOLS[workers] = pool
        return pool


def run_shards(jobs: Sequence[Callable[[], T]], workers) -> list[T]:
    """Run shard thunks, returning results in job order.

    ``workers`` of 1 (or :data:`~repro.config.WORKERS_SERIAL`), or a
    single job, runs inline — no pool, no thread hop.  Exceptions
    propagate to the caller exactly as on the serial path.

    Both paths honour the ambient cancel token
    (:mod:`repro.exec.cancel`): the inline loop checks it between
    jobs, the pooled wait polls it between shard completions and
    cancels the not-yet-started futures on the way out — this is what
    makes a serving-layer timeout actually reach the shard work
    instead of orphaning it on the pool.
    """
    count = normalize_workers(workers)
    if count <= 1 or len(jobs) <= 1:
        results = []
        for job in jobs:
            check_cancelled()
            results.append(job())
        return results
    token = current_token()
    futures = [_pool(count).submit(job) for job in jobs]
    try:
        return [wait_cancellable(future, token) for future in futures]
    except BaseException:
        for future in futures:
            future.cancel()
        raise


# ----------------------------------------------------------------------
# the k-way columnar shard merge
# ----------------------------------------------------------------------

def concat_shards(results: Sequence[ColumnarResult]) -> ColumnarResult:
    """Merge per-shard columnar results with a k-way concat — no sort.

    Precondition (what the shard plans guarantee): within every
    iteration, the value slices of successive shards are disjoint and
    ascending in shard order — pool-range shards slice a sorted pool
    into contiguous ranges, iteration-range shards never share an
    iteration at all.  The merge is therefore pure placement: iteration
    keys union (one ``searchsorted`` per shard), per-iteration counts
    accumulate into the CSR offsets, and each shard's values scatter
    into their slice — document order is preserved, never recomputed.

    Handles the adversarial shapes the planner can produce: empty
    shards, single-iteration shards, iterations present in any subset
    of the shards.
    """
    parts = [r for r in results if len(r.iters)]
    if not parts:
        return ColumnarResult.empty()
    if len(parts) == 1:
        return parts[0]
    iters = np.unique(np.concatenate([p.iters for p in parts]))
    n = len(iters)
    counts = np.zeros(n, np.int64)
    positions: list[np.ndarray] = []
    for p in parts:
        pos = np.searchsorted(iters, p.iters)
        counts[pos] += np.diff(p.offsets)
        positions.append(pos)
    offsets = np.zeros(n + 1, np.int64)
    np.cumsum(counts, out=offsets[1:])
    total = int(offsets[-1])
    if total == 0:
        return ColumnarResult(iters, offsets,
                              np.empty(0, np.int64))
    values = np.empty(total, np.int64)
    cursor = offsets[:-1].copy()    # next write position per iteration
    for p, pos in zip(parts, positions):
        if not len(p.values):
            continue
        cnt = np.diff(p.offsets)
        # Row j of shard p, belonging to its i-th iteration, lands at
        # cursor[pos[i]] + (j - p.offsets[i]).
        target = np.repeat(cursor[pos], cnt) \
            + np.arange(len(p.values), dtype=np.int64) \
            - np.repeat(p.offsets[:-1], cnt)
        values[target] = p.values
        cursor[pos] += cnt
    return ColumnarResult(iters, offsets, values)
