"""Relational shredding of XML documents (MonetDB/Pathfinder style).

A shredded document is a set of columns over pre ranks::

    pre | size | level | kind | name | value

plus a name dictionary and an element-name index (name -> sorted pre
array) which serves as MonetDB/XQuery's "element index" for candidate
pushdown into StandOff steps.  Attributes appear as rows of kind
ATTRIBUTE numbered directly after their owner element, with their owner
recoverable through the ``parent`` column.

All columns are frozen (``writeable=False``) at construction: a shred
may be shared across queries through the content-hash cache, and — via
:mod:`repro.storage` — across *processes* through one memory-mapped
store file, so nothing downstream may mutate a column in place.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

import numpy as np

from repro.exec import lockcheck
from repro.config import (
    DEFAULT_SHRED_CACHE_BYTES,
    DEFAULT_SHRED_CACHE_ENTRIES,
)
from repro.xmldb.dom import (
    Attr,
    Comment,
    Document,
    Element,
    Node,
    ProcessingInstruction,
    Text,
    renumber_fragment,
)


def freeze(*arrays: np.ndarray) -> None:
    """Mark arrays physically immutable.

    Setting ``writeable=False`` is always permitted (unlike setting it
    back to True), including on views and on already-read-only memmaps.
    """
    for arr in arrays:
        arr.flags.writeable = False


class StringHeap:
    """Read-only ``pre -> str`` mapping over three frozen columns.

    The storage representation of :attr:`ShreddedDocument.values`: the
    pre ranks that carry a value (sorted), offsets into a UTF-8 heap,
    and the heap bytes.  Strings decode lazily per lookup, so opening a
    memory-mapped store never touches the heap pages.
    """

    __slots__ = ("pres", "offsets", "heap")

    def __init__(self, pres: np.ndarray, offsets: np.ndarray,
                 heap: np.ndarray):
        self.pres = pres
        self.offsets = offsets
        self.heap = heap

    @classmethod
    def from_dict(cls, values: dict[int, str]) -> "StringHeap":
        pres = np.asarray(sorted(values), dtype="<i8")
        blobs = [values[int(p)].encode("utf-8") for p in pres]
        offsets = np.zeros(len(blobs) + 1, dtype="<i8")
        if blobs:
            np.cumsum([len(b) for b in blobs], out=offsets[1:])
        heap = np.frombuffer(b"".join(blobs), dtype=np.uint8)
        freeze(pres, offsets, heap)
        return cls(pres, offsets, heap)

    def __len__(self) -> int:
        return len(self.pres)

    def get(self, pre: int, default: str | None = None) -> str | None:
        i = int(np.searchsorted(self.pres, pre))
        if i == len(self.pres) or self.pres[i] != pre:
            return default
        lo, hi = int(self.offsets[i]), int(self.offsets[i + 1])
        return bytes(self.heap[lo:hi]).decode("utf-8")

    @property
    def nbytes(self) -> int:
        return int(self.pres.nbytes + self.offsets.nbytes
                   + self.heap.nbytes)


class ShreddedDocument:
    """Column representation of one fragment; pre rank is the row number.

    Built from a stored :class:`Document` (the classical shred), from a
    constructed orphan subtree via :func:`shred_fragment`, or — through
    :meth:`from_columns` — straight from previously materialized columns
    (typically ``np.memmap`` views of a store file, in which case the
    DOM does not exist yet and is parsed only if a caller asks for
    nodes).  ``node_by_pre`` maps result pre ranks back to DOM nodes for
    any origin.
    """

    def __init__(self, document: Document | None, *,
                 nodes: list[Node] | None = None,
                 root: Node | None = None):
        if nodes is None:
            document.renumber()
            nodes = document.all_nodes()
        n = len(nodes)
        self._document = document
        #: The fragment root: the document itself, or the orphan
        #: subtree's top node for constructed fragments.
        self._root = root if root is not None else document
        #: Parses the owning document on demand (store-backed shreds).
        self._doc_factory = None
        #: ``(store path, uri)`` once the columns are store-backed —
        #: the handle worker processes use to re-open the same file.
        self._store_ref: tuple[str, str] | None = None
        # Stored documents already cache their pre -> node list; only
        # orphan fragments need the snapshot kept here.
        self._nodes = None if document is not None else nodes
        self.pre = np.arange(n, dtype=np.int64)
        self.size = np.fromiter((node.size for node in nodes),
                                dtype=np.int64, count=n)
        self.level = np.fromiter((node.level for node in nodes),
                                 dtype=np.int64, count=n)
        self.kind = np.fromiter((node.kind for node in nodes),
                                dtype=np.int8, count=n)
        parent = np.empty(n, dtype=np.int64)
        names: list[str] = []
        name_ids: dict[str, int] = {}
        name_col = np.full(n, -1, dtype=np.int32)
        values: dict[int, str] = {}

        for i, node in enumerate(nodes):
            parent[i] = node.parent.pre if node.parent is not None else -1
            name = None
            if isinstance(node, Element):
                name = node.tag
            elif isinstance(node, Attr):
                name = node.name
                values[i] = node.value
            elif isinstance(node, (Text, Comment)):
                values[i] = node.text
            elif isinstance(node, ProcessingInstruction):
                name = node.target
                values[i] = node.data
            if name is not None:
                nid = name_ids.setdefault(name, len(name_ids))
                if nid == len(names):
                    names.append(name)
                name_col[i] = nid
        self.parent = parent
        self.names = names
        self._name_ids = name_ids
        self.name = name_col
        self.values = values
        freeze(self.pre, self.size, self.level, self.kind, self.parent,
               self.name)

        # element-name index: name id -> sorted pre array
        element_mask = self.kind == Element.kind
        self._kind_pres: dict[int, np.ndarray] = {}
        self._non_attribute: np.ndarray | None = None
        self._element_index: dict[int, np.ndarray] = {}
        if element_mask.any():
            el_pres = self.pre[element_mask]
            el_names = name_col[element_mask]
            order = np.argsort(el_names, kind="stable")
            el_pres, el_names = el_pres[order], el_names[order]
            boundaries = np.flatnonzero(np.diff(el_names)) + 1
            for chunk, nid in zip(
                    np.split(el_pres, boundaries),
                    el_names[np.concatenate(([0], boundaries))]):
                entry = np.sort(chunk)
                freeze(entry)
                self._element_index[int(nid)] = entry

    @classmethod
    def from_columns(cls, *, pre: np.ndarray, size: np.ndarray,
                     level: np.ndarray, kind: np.ndarray,
                     parent: np.ndarray, name: np.ndarray,
                     names: list[str], values,
                     element_index: dict[int, np.ndarray],
                     document: Document | None = None,
                     doc_factory=None,
                     store_ref: tuple[str, str] | None = None
                     ) -> "ShreddedDocument":
        """Rebuild a shred from previously materialized columns.

        The storage layer's constructor: no DOM walk, no index build.
        *values* is a :class:`StringHeap` (or a plain dict); when
        *document* is absent, *doc_factory* supplies it lazily the
        first time node decoding is requested.
        """
        self = object.__new__(cls)
        self._document = document
        self._root = document
        self._doc_factory = doc_factory if document is None else None
        self._store_ref = store_ref
        self._nodes = None
        self.pre = pre
        self.size = size
        self.level = level
        self.kind = kind
        self.parent = parent
        self.name = name
        self.names = list(names)
        self._name_ids = {nm: i for i, nm in enumerate(self.names)}
        self.values = values
        self._kind_pres = {}
        self._non_attribute = None
        self._element_index = dict(element_index)
        freeze(self.pre, self.size, self.level, self.kind, self.parent,
               self.name)
        return self

    @property
    def document(self) -> Document | None:
        """The owning document; parsed on demand for store-backed
        shreds (the columns never need it — only node decoding does)."""
        if self._document is None and self._doc_factory is not None:
            factory, self._doc_factory = self._doc_factory, None
            self._document = factory()
        return self._document

    @property
    def root(self) -> Node | None:
        return self._root if self._root is not None else self.document

    @property
    def store_ref(self) -> tuple[str, str] | None:
        """``(store path, uri)`` when the columns are mmap-backed."""
        return self._store_ref

    def __len__(self) -> int:
        return len(self.pre)

    def node_by_pre(self, pre: int) -> Node:
        """The DOM node with the given pre rank (any fragment origin)."""
        if self._nodes is not None:
            return self._nodes[pre]
        return self.document.node_by_pre(pre)

    def name_of(self, pre: int) -> str | None:
        nid = self.name[pre]
        return self.names[nid] if nid >= 0 else None

    def value_of(self, pre: int) -> str | None:
        return self.values.get(int(pre))

    def elements_named(self, tag: str) -> np.ndarray:
        """Sorted pre ranks of elements with the given tag (element index)."""
        nid = self._name_ids.get(tag)
        if nid is None:
            return np.empty(0, dtype=np.int64)
        return self._element_index.get(nid, np.empty(0, dtype=np.int64))

    def all_element_pres(self) -> np.ndarray:
        """Sorted pre ranks of all element nodes."""
        return self.pre[self.kind == Element.kind]

    def elements_matching(self, name: str) -> np.ndarray:
        """Sorted pre ranks of the elements a *name test* matches.

        A name test accepts an element whenever the local names agree,
        so the pool is the union of the element-index entries sharing
        the test's local name — one entry in the common unprefixed
        case.  The single pool-resolution routine shared by the bulk
        evaluator and the process-pool executor's workers: both sides
        must derive byte-identical pools from the same columns.
        """
        local = name.rpartition(":")[2]
        chunks = [self.elements_named(tag) for tag in self.names
                  if tag.rpartition(":")[2] == local]
        chunks = [c for c in chunks if len(c)]
        if not chunks:
            return self.elements_named(name)
        if len(chunks) == 1:
            return chunks[0]
        return np.sort(np.concatenate(chunks))

    def pres_of_kind(self, kind: int) -> np.ndarray:
        """Sorted pre ranks of the nodes of one kind (cached)."""
        cached = self._kind_pres.get(kind)
        if cached is None:
            cached = self.pre[self.kind == kind]
            freeze(cached)
            self._kind_pres[kind] = cached
        return cached

    def non_attribute_pres(self) -> np.ndarray:
        """Sorted pre ranks of all non-attribute nodes (cached) — the
        ``node()`` candidate pool of the tree axes, where attributes are
        never principal nodes."""
        if self._non_attribute is None:
            pool = self.pre[self.kind != Attr.kind]
            freeze(pool)
            self._non_attribute = pool
        return self._non_attribute

    def post(self) -> np.ndarray:
        """Post-order ranks derived from pre/size (pre + size)."""
        return self.pre + self.size

    @property
    def nbytes(self) -> int:
        """Approximate column footprint (shred-cache budgeting): the
        numeric columns plus the attribute/text value strings."""
        values = self.values
        value_bytes = (values.nbytes if isinstance(values, StringHeap)
                       else sum(len(v) for v in values.values()))
        return int(self.pre.nbytes + self.size.nbytes + self.level.nbytes
                   + self.kind.nbytes + self.parent.nbytes
                   + self.name.nbytes + value_bytes)

    def rebound(self, nodes: list[Node], root: Node
                ) -> "ShreddedDocument":
        """A shallow copy bound to another content-identical fragment.

        Every column (and the content-derived index caches) is shared;
        only the pre -> node snapshot and the root change, so
        :meth:`node_by_pre` yields the *new* fragment's nodes — node
        identity inside one query never leaks across fragments that
        merely hash alike.
        """
        clone = object.__new__(ShreddedDocument)
        clone._document = None
        clone._root = root
        clone._doc_factory = None
        clone._store_ref = None
        clone._nodes = nodes
        clone.pre = self.pre
        clone.size = self.size
        clone.level = self.level
        clone.kind = self.kind
        clone.parent = self.parent
        clone.names = self.names
        clone._name_ids = self._name_ids
        clone.name = self.name
        clone.values = self.values
        clone._kind_pres = self._kind_pres
        clone._non_attribute = self._non_attribute
        clone._element_index = self._element_index
        return clone


def shred(document: Document) -> ShreddedDocument:
    """Shred a document into its column representation."""
    return ShreddedDocument(document)


def fragment_fingerprint(nodes: list[Node]) -> str:
    """Content hash of a fragment's pre-order node list.

    Hashes the per-node ``(kind, level, name, value)`` columns with
    length-prefixed string payloads (``-1`` marks an absent field), an
    injective encoding: the length columns split the concatenated
    payload back into per-node strings uniquely.  Kind + level in pre
    order determine the tree shape — the parent of any node is the
    nearest preceding node one level up — so two fragments with equal
    fingerprints shred to identical columns.  Serialized XML would NOT
    be a safe key: ``<a>xy</a>`` serializes identically for one text
    node ``"xy"`` and adjacent ``"x"``/``"y"`` nodes, which shred
    differently.  The hot loop is four list comprehensions plus C-level
    byte encoding — keeping a cache hit's key cost well under the
    column build it saves.
    """
    element, attr, text, comment, pi = (Element.kind, Attr.kind,
                                        Text.kind, Comment.kind,
                                        ProcessingInstruction.kind)
    kinds = [node.kind for node in nodes]
    names = [node.tag if k == element else node.name if k == attr
             else node.target if k == pi else None
             for node, k in zip(nodes, kinds)]
    values = [node.text if k == text or k == comment
              else node.value if k == attr
              else node.data if k == pi else None
              for node, k in zip(nodes, kinds)]
    digest = hashlib.blake2b(digest_size=16)
    digest.update(np.asarray([len(nodes)] + kinds,
                             dtype=np.int64).tobytes())
    digest.update(np.asarray([node.level for node in nodes],
                             dtype=np.int64).tobytes())
    for column in (names, values):
        digest.update(np.asarray(
            [-1 if s is None else len(s) for s in column],
            dtype=np.int64).tobytes())
        digest.update("".join(
            s for s in column if s is not None).encode("utf-8"))
    return digest.hexdigest()


class ShredCache:
    """Cross-query LRU of constructed-fragment shreds, keyed by content
    hash.

    Each entry pins the column-bearing :class:`ShreddedDocument` of the
    first fragment that produced its fingerprint — a *strong* reference,
    so a garbage-collected fragment can never alias a live entry through
    a recycled address (the entry owns its nodes for as long as it
    lives).  A hit for a *different* fragment of identical content
    rebinds the shared columns to the new fragment's node list
    (:meth:`ShreddedDocument.rebound`): column construction and index
    builds are skipped, node identity stays per-fragment.

    Eviction is LRU past either budget — ``max_entries`` entries or
    ``max_bytes`` summed column footprint; a single shred larger than
    the byte budget is served uncached.  ``max_entries == 0`` (env
    ``REPRO_SHRED_CACHE=0``) disables the cache entirely.
    """

    def __init__(self, max_entries: int = DEFAULT_SHRED_CACHE_ENTRIES,
                 max_bytes: int = DEFAULT_SHRED_CACHE_BYTES):
        self._lock = lockcheck.new_lock("ShredCache._lock")
        self._entries: OrderedDict[str, ShreddedDocument] = OrderedDict()
        self._bytes = 0
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def enabled(self) -> bool:
        return self.max_entries > 0 and self.max_bytes > 0

    def configure(self, *, max_entries: int | None = None,
                  max_bytes: int | None = None) -> None:
        """Adjust budgets (evicting down to them immediately)."""
        with self._lock:
            if max_entries is not None:
                self.max_entries = max_entries
            if max_bytes is not None:
                self.max_bytes = max_bytes
            self._evict()

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def reset_stats(self) -> None:
        with self._lock:
            self.hits = self.misses = self.evictions = 0

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def shred(self, root: Node) -> ShreddedDocument:
        """The cached (or freshly built) shred of an orphan fragment."""
        nodes = renumber_fragment(root)
        key = fragment_fingerprint(nodes)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None and len(cached) == len(nodes):
                self._entries.move_to_end(key)
                self.hits += 1
                if cached.root is root:
                    return cached
                return cached.rebound(nodes, root)
            self.misses += 1
        shredded = ShreddedDocument(None, nodes=nodes, root=root)
        cost = shredded.nbytes
        with self._lock:
            if key not in self._entries and cost <= self.max_bytes:
                self._entries[key] = shredded
                self._bytes += cost
                self._evict()
        return shredded

    def _evict(self) -> None:
        while self._entries and (len(self._entries) > self.max_entries
                                 or self._bytes > self.max_bytes):
            _key, victim = self._entries.popitem(last=False)
            self._bytes -= victim.nbytes
            self.evictions += 1


#: The process-wide shred cache (budgets from ``REPRO_SHRED_CACHE`` /
#: ``REPRO_SHRED_CACHE_BYTES``); per-query identity caching stays in
#: :meth:`repro.xquery.context.DynamicContext.shredded_for` on top.
SHRED_CACHE = ShredCache()


def shred_fragment(root: Node) -> ShreddedDocument:
    """Shred a constructed fragment (an orphan subtree) on demand.

    Document roots go through the classical :func:`shred`; orphan
    subtrees are numbered by the shared
    :func:`~repro.xmldb.dom.renumber_fragment` — idempotent with the
    numbering the evaluator's fragment constructor already assigned —
    and the node list in pre order backs
    :meth:`ShreddedDocument.node_by_pre`.  When the cross-query
    :data:`SHRED_CACHE` is enabled, content-identical fragments reuse
    one column set across queries.
    """
    if isinstance(root, Document):
        return shred(root)
    if SHRED_CACHE.enabled:
        return SHRED_CACHE.shred(root)
    return ShreddedDocument(None, nodes=renumber_fragment(root),
                            root=root)
