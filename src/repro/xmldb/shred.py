"""Relational shredding of XML documents (MonetDB/Pathfinder style).

A shredded document is a set of columns over pre ranks::

    pre | size | level | kind | name | value

plus a name dictionary and an element-name index (name -> sorted pre
array) which serves as MonetDB/XQuery's "element index" for candidate
pushdown into StandOff steps.  Attributes appear as rows of kind
ATTRIBUTE numbered directly after their owner element, with their owner
recoverable through the ``parent`` column.
"""

from __future__ import annotations

import numpy as np

from repro.xmldb.dom import (
    Attr,
    Comment,
    Document,
    Element,
    Node,
    ProcessingInstruction,
    Text,
    renumber_fragment,
)


class ShreddedDocument:
    """Column representation of one fragment; pre rank is the row number.

    Built from a stored :class:`Document` (the classical shred) or — via
    :func:`shred_fragment` — from a constructed orphan subtree, which is
    numbered locally with the same scheme ``Document.renumber`` uses
    (attributes directly after their element, counted in the subtree
    size).  ``node_by_pre`` maps result pre ranks back to DOM nodes for
    either origin.
    """

    def __init__(self, document: Document | None, *,
                 nodes: list[Node] | None = None,
                 root: Node | None = None):
        if nodes is None:
            document.renumber()
            nodes = document.all_nodes()
        n = len(nodes)
        self.document = document
        #: The fragment root: the document itself, or the orphan
        #: subtree's top node for constructed fragments.
        self.root = root if root is not None else document
        # Stored documents already cache their pre -> node list; only
        # orphan fragments need the snapshot kept here.
        self._nodes = None if document is not None else nodes
        self.pre = np.arange(n, dtype=np.int64)
        self.size = np.fromiter((node.size for node in nodes),
                                dtype=np.int64, count=n)
        self.level = np.fromiter((node.level for node in nodes),
                                 dtype=np.int64, count=n)
        self.kind = np.fromiter((node.kind for node in nodes),
                                dtype=np.int8, count=n)
        parent = np.empty(n, dtype=np.int64)
        names: list[str] = []
        name_ids: dict[str, int] = {}
        name_col = np.full(n, -1, dtype=np.int32)
        values: dict[int, str] = {}

        for i, node in enumerate(nodes):
            parent[i] = node.parent.pre if node.parent is not None else -1
            name = None
            if isinstance(node, Element):
                name = node.tag
            elif isinstance(node, Attr):
                name = node.name
                values[i] = node.value
            elif isinstance(node, (Text, Comment)):
                values[i] = node.text
            elif isinstance(node, ProcessingInstruction):
                name = node.target
                values[i] = node.data
            if name is not None:
                nid = name_ids.setdefault(name, len(name_ids))
                if nid == len(names):
                    names.append(name)
                name_col[i] = nid
        self.parent = parent
        self.names = names
        self._name_ids = name_ids
        self.name = name_col
        self.values = values

        # element-name index: name id -> sorted pre array
        element_mask = self.kind == Element.kind
        self._kind_pres: dict[int, np.ndarray] = {}
        self._non_attribute: np.ndarray | None = None
        self._element_index: dict[int, np.ndarray] = {}
        if element_mask.any():
            el_pres = self.pre[element_mask]
            el_names = name_col[element_mask]
            order = np.argsort(el_names, kind="stable")
            el_pres, el_names = el_pres[order], el_names[order]
            boundaries = np.flatnonzero(np.diff(el_names)) + 1
            for chunk, nid in zip(
                    np.split(el_pres, boundaries),
                    el_names[np.concatenate(([0], boundaries))]):
                self._element_index[int(nid)] = np.sort(chunk)

    def __len__(self) -> int:
        return len(self.pre)

    def node_by_pre(self, pre: int) -> Node:
        """The DOM node with the given pre rank (any fragment origin)."""
        if self._nodes is not None:
            return self._nodes[pre]
        return self.document.node_by_pre(pre)

    def name_of(self, pre: int) -> str | None:
        nid = self.name[pre]
        return self.names[nid] if nid >= 0 else None

    def value_of(self, pre: int) -> str | None:
        return self.values.get(int(pre))

    def elements_named(self, tag: str) -> np.ndarray:
        """Sorted pre ranks of elements with the given tag (element index)."""
        nid = self._name_ids.get(tag)
        if nid is None:
            return np.empty(0, dtype=np.int64)
        return self._element_index.get(nid, np.empty(0, dtype=np.int64))

    def all_element_pres(self) -> np.ndarray:
        """Sorted pre ranks of all element nodes."""
        return self.pre[self.kind == Element.kind]

    def pres_of_kind(self, kind: int) -> np.ndarray:
        """Sorted pre ranks of the nodes of one kind (cached)."""
        cached = self._kind_pres.get(kind)
        if cached is None:
            cached = self.pre[self.kind == kind]
            self._kind_pres[kind] = cached
        return cached

    def non_attribute_pres(self) -> np.ndarray:
        """Sorted pre ranks of all non-attribute nodes (cached) — the
        ``node()`` candidate pool of the tree axes, where attributes are
        never principal nodes."""
        if self._non_attribute is None:
            self._non_attribute = self.pre[self.kind != Attr.kind]
        return self._non_attribute

    def post(self) -> np.ndarray:
        """Post-order ranks derived from pre/size (pre + size)."""
        return self.pre + self.size


def shred(document: Document) -> ShreddedDocument:
    """Shred a document into its column representation."""
    return ShreddedDocument(document)


def shred_fragment(root: Node) -> ShreddedDocument:
    """Shred a constructed fragment (an orphan subtree) on demand.

    Document roots go through the classical :func:`shred`; orphan
    subtrees are numbered by the shared
    :func:`~repro.xmldb.dom.renumber_fragment` — idempotent with the
    numbering the evaluator's fragment constructor already assigned —
    and the node list in pre order backs
    :meth:`ShreddedDocument.node_by_pre`.
    """
    if isinstance(root, Document):
        return shred(root)
    return ShreddedDocument(None, nodes=renumber_fragment(root),
                            root=root)
