"""BLOB storage: the annotated objects themselves (paper §2).

The paper calls the object being annotated the BLOB — a video file, a
text corpus, the raw image of a confiscated hard drive.  The XML
database stores only annotations; the BLOB lives separately and regions
index into it.  This module provides the missing half: registering
BLOBs and materialising the content a (possibly non-contiguous) area
refers to.

Positions follow the paper's convention: inclusive ``[start, end]``
offsets.  For text BLOBs, offsets are code points; for binary BLOBs,
byte offsets.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.region import Area, Region
from repro.errors import RegionError, ReproError


class Blob:
    """One registered BLOB (text or bytes)."""

    __slots__ = ("uri", "content")

    def __init__(self, uri: str, content: str | bytes):
        self.uri = uri
        self.content = content

    def __len__(self) -> int:
        return len(self.content)

    @property
    def is_binary(self) -> bool:
        return isinstance(self.content, bytes)

    def slice(self, region: Region) -> str | bytes:
        """The content of one inclusive region.

        :raises RegionError: if the region exceeds the BLOB extent.
        """
        start, end = int(region.start), int(region.end)
        if start < 0 or end >= len(self.content):
            raise RegionError(
                f"region {region} outside BLOB {self.uri!r} "
                f"(length {len(self.content)})")
        return self.content[start:end + 1]

    def extract(self, area: Area, separator: str | bytes | None = None
                ) -> str | bytes:
        """The concatenated content of an area's regions.

        Non-contiguous areas yield their fragments in start order,
        joined by *separator* (default: empty).
        """
        if separator is None:
            separator = b"" if self.is_binary else ""
        parts = [self.slice(region) for region in area.regions]
        return separator.join(parts)

    def covered_fraction(self, areas: Iterator[Area]) -> float:
        """Fraction of BLOB positions covered by at least one area."""
        if len(self.content) == 0:
            return 0.0
        merged: list[Region] = []
        for area in areas:
            merged.extend(area.regions)
        if not merged:
            return 0.0
        coalesced = Area.coalescing(merged)
        covered = sum(r.end - r.start + 1 for r in coalesced.regions)
        return covered / len(self.content)


class BlobStore:
    """All BLOBs known to a database instance, keyed by URI."""

    def __init__(self) -> None:
        self._by_uri: dict[str, Blob] = {}

    def add(self, uri: str, content: str | bytes) -> Blob:
        if uri in self._by_uri:
            raise ReproError(f"BLOB {uri!r} already stored")
        blob = Blob(uri, content)
        self._by_uri[uri] = blob
        return blob

    def get(self, uri: str) -> Blob:
        try:
            return self._by_uri[uri]
        except KeyError:
            raise ReproError(f"BLOB {uri!r} not stored") from None

    def remove(self, uri: str) -> None:
        if uri not in self._by_uri:
            raise ReproError(f"BLOB {uri!r} not stored")
        del self._by_uri[uri]

    def __contains__(self, uri: str) -> bool:
        return uri in self._by_uri

    def __len__(self) -> int:
        return len(self._by_uri)

    def uris(self) -> list[str]:
        return list(self._by_uri)
