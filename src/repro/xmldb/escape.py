"""Character escaping for XML text, attributes and entity expansion."""

from __future__ import annotations

import re

from repro.errors import XMLSyntaxError

_PREDEFINED = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

_ENTITY_RE = re.compile(r"&(#x[0-9A-Fa-f]+|#[0-9]+|[A-Za-z][A-Za-z0-9._-]*);")


def escape_text(text: str) -> str:
    """Escape character data for element content."""
    return (text.replace("&", "&amp;")
                .replace("<", "&lt;")
                .replace(">", "&gt;"))


def escape_attribute(value: str) -> str:
    """Escape an attribute value for serialization in double quotes."""
    return (value.replace("&", "&amp;")
                 .replace("<", "&lt;")
                 .replace('"', "&quot;")
                 .replace("\n", "&#10;")
                 .replace("\t", "&#9;"))


def _expand_one(match: re.Match, line: int, column: int) -> str:
    body = match.group(1)
    if body.startswith("#x") or body.startswith("#X"):
        code = int(body[2:], 16)
    elif body.startswith("#"):
        code = int(body[1:])
    else:
        try:
            return _PREDEFINED[body]
        except KeyError:
            raise XMLSyntaxError(
                f"unknown entity reference &{body};", line, column
            ) from None
    if code < 0 or code > 0x10FFFF:
        raise XMLSyntaxError(f"character reference out of range: &{body};",
                             line, column)
    return chr(code)


def unescape(text: str, line: int = 0, column: int = 0) -> str:
    """Expand entity and character references in parsed text.

    Only the five predefined entities and numeric character references are
    supported (no DTD-defined entities — matching the engine's subset).
    A bare ``&`` not forming a reference is a well-formedness error.
    """
    # Every '&' in the raw text must begin a well-formed reference.
    pos = 0
    while True:
        pos = text.find("&", pos)
        if pos == -1:
            break
        if not _ENTITY_RE.match(text, pos):
            raise XMLSyntaxError("'&' must start an entity reference",
                                 line, column)
        pos += 1
    return _ENTITY_RE.sub(lambda m: _expand_one(m, line, column), text)
