"""XML name handling: NCNames, QNames, prefix splitting.

The engine stores element and attribute names as plain strings (possibly
``prefix:local``).  Namespace *resolution* is out of scope for the subset
(MonetDB/XQuery 0.10 era queries in the paper use no namespaces beyond the
``standoff`` module declaration), but names are still validated and can be
split into prefix/local parts for name tests.
"""

from __future__ import annotations

import re

from repro.errors import XMLSyntaxError

# XML 1.0 NameStartChar / NameChar, restricted to the BMP ranges that
# cover practical documents.
_NAME_START = (
    "A-Za-z_À-ÖØ-öø-˿Ͱ-ͽ"
    "Ϳ-῿‌-‍⁰-↏Ⰰ-⿯、-퟿"
    "豈-﷏ﷰ-�"
)
_NAME_CHAR = _NAME_START + "\\-.0-9·̀-ͯ‿-⁀"

_NCNAME_RE = re.compile(f"^[{_NAME_START}][{_NAME_CHAR}]*$")
_QNAME_RE = re.compile(
    f"^[{_NAME_START}][{_NAME_CHAR}]*(:[{_NAME_START}][{_NAME_CHAR}]*)?$"
)


def is_ncname(name: str) -> bool:
    """True when *name* is a valid NCName (no colon)."""
    return bool(name) and ":" not in name and bool(_NCNAME_RE.match(name))


def is_qname(name: str) -> bool:
    """True when *name* is a valid QName (at most one colon)."""
    return bool(name) and bool(_QNAME_RE.match(name))


def require_qname(name: str, what: str = "name") -> str:
    """Validate and return *name*; raise :class:`XMLSyntaxError` if bad."""
    if not is_qname(name):
        raise XMLSyntaxError(f"invalid XML {what}: {name!r}")
    return name


def split_qname(name: str) -> tuple[str | None, str]:
    """Split ``prefix:local`` into ``(prefix, local)``; prefix may be None."""
    prefix, sep, local = name.partition(":")
    if not sep:
        return None, name
    return prefix, local


def local_name(name: str) -> str:
    """The local part of a possibly prefixed name."""
    return split_qname(name)[1]
