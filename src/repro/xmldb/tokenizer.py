"""A streaming XML tokenizer producing well-formedness-checked events.

The tokenizer walks the document text once and yields event tuples:

====================== ==============================================
``("start", name, attrs, selfclosing)``  start tag (attrs: list of pairs)
``("end", name)``                         end tag
``("text", text)``                        character data (entities expanded)
``("comment", text)``                     comment
``("pi", target, data)``                  processing instruction
====================== ==============================================

XML declarations and DOCTYPE declarations are recognised and skipped
(no external DTD support — the engine's subset).  CDATA sections become
text events.  Tag-nesting balance is the parser's job; the tokenizer only
checks token-local well-formedness.
"""

from __future__ import annotations

import re
from typing import Iterator

from repro.errors import XMLSyntaxError
from repro.xmldb.escape import unescape
from repro.xmldb.names import is_qname

_WS = " \t\r\n"
_NAME_END = _WS + ">/=!?"

Event = tuple


class Tokenizer:
    """Single-pass tokenizer over an XML string."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.n = len(text)

    # -- position helpers -------------------------------------------------

    def _line_col(self, pos: int | None = None) -> tuple[int, int]:
        pos = self.pos if pos is None else pos
        line = self.text.count("\n", 0, pos) + 1
        last_nl = self.text.rfind("\n", 0, pos)
        return line, pos - last_nl

    def _error(self, message: str, pos: int | None = None) -> XMLSyntaxError:
        line, col = self._line_col(pos)
        return XMLSyntaxError(message, line, col)

    def _skip_ws(self) -> None:
        while self.pos < self.n and self.text[self.pos] in _WS:
            self.pos += 1

    def _expect(self, literal: str) -> None:
        if not self.text.startswith(literal, self.pos):
            raise self._error(f"expected {literal!r}")
        self.pos += len(literal)

    def _read_until(self, terminator: str, what: str) -> str:
        idx = self.text.find(terminator, self.pos)
        if idx == -1:
            raise self._error(f"unterminated {what}")
        chunk = self.text[self.pos:idx]
        self.pos = idx + len(terminator)
        return chunk

    def _read_name(self) -> str:
        start = self.pos
        while self.pos < self.n and self.text[self.pos] not in _NAME_END:
            self.pos += 1
        name = self.text[start:self.pos]
        if not is_qname(name):
            raise self._error(f"invalid name {name!r}", start)
        return name

    def _unescape(self, raw: str) -> str:
        """Expand references in *raw*, resolving line/col lazily.

        ``unescape`` is the identity for text without ``&``, so the
        O(prefix) ``_line_col`` scan (``str.count`` over everything
        before ``pos``) is only paid when a reference — or a
        well-formedness error — can actually occur.  Computing it
        unconditionally made parsing quadratic in document size (one
        full-prefix scan per attribute value and text chunk).
        """
        if "&" not in raw:
            return raw
        line, col = self._line_col()
        return unescape(raw, line, col)

    # -- token productions --------------------------------------------------

    def _read_attributes(self) -> tuple[list[tuple[str, str]], bool]:
        attrs: list[tuple[str, str]] = []
        seen: set[str] = set()
        while True:
            self._skip_ws()
            if self.pos >= self.n:
                raise self._error("unterminated start tag")
            ch = self.text[self.pos]
            if ch == ">":
                self.pos += 1
                return attrs, False
            if ch == "/":
                self._expect("/>")
                return attrs, True
            name = self._read_name()
            if name in seen:
                raise self._error(f"duplicate attribute {name!r}")
            seen.add(name)
            self._skip_ws()
            self._expect("=")
            self._skip_ws()
            if self.pos >= self.n or self.text[self.pos] not in "\"'":
                raise self._error("attribute value must be quoted")
            quote = self.text[self.pos]
            self.pos += 1
            raw = self._read_until(quote, "attribute value")
            if "<" in raw:
                raise self._error("'<' not allowed in attribute value")
            attrs.append((name, self._unescape(raw)))

    def tokens(self) -> Iterator[Event]:
        """Yield events for the whole input."""
        while self.pos < self.n:
            lt = self.text.find("<", self.pos)
            if lt == -1:
                chunk = self.text[self.pos:]
                self.pos = self.n
                if chunk:
                    yield ("text", self._unescape(chunk))
                return
            if lt > self.pos:
                chunk = self.text[self.pos:lt]
                text = self._unescape(chunk)
                self.pos = lt
                yield ("text", text)
            # self.pos is at '<'
            nxt = self.text[self.pos + 1] if self.pos + 1 < self.n else ""
            if nxt == "/":
                self.pos += 2
                name = self._read_name()
                self._skip_ws()
                self._expect(">")
                yield ("end", name)
            elif nxt == "?":
                self.pos += 2
                target = self._read_name()
                data = self._read_until("?>", "processing instruction")
                if target.lower() == "xml":
                    continue  # XML declaration: recognised, skipped
                yield ("pi", target, data.strip())
            elif nxt == "!":
                if self.text.startswith("<!--", self.pos):
                    self.pos += 4
                    body = self._read_until("-->", "comment")
                    if "--" in body:
                        raise self._error("'--' not allowed inside comment")
                    yield ("comment", body)
                elif self.text.startswith("<![CDATA[", self.pos):
                    self.pos += 9
                    yield ("text", self._read_until("]]>", "CDATA section"))
                elif self.text.startswith("<!DOCTYPE", self.pos):
                    self._skip_doctype()
                else:
                    raise self._error("unrecognised markup declaration")
            else:
                self.pos += 1
                name = self._read_name()
                attrs, selfclosing = self._read_attributes()
                yield ("start", name, attrs, selfclosing)

    def _skip_doctype(self) -> None:
        """Skip a DOCTYPE declaration, including an internal subset."""
        self.pos += len("<!DOCTYPE")
        depth = 0
        while self.pos < self.n:
            ch = self.text[self.pos]
            if ch == "[":
                depth += 1
            elif ch == "]":
                depth -= 1
            elif ch == ">" and depth <= 0:
                self.pos += 1
                return
            self.pos += 1
        raise self._error("unterminated DOCTYPE declaration")


_COMPACT_WS = re.compile(r"\s+")


def tokenize(text: str) -> Iterator[Event]:
    """Convenience wrapper: tokenize an XML string."""
    return Tokenizer(text).tokens()
