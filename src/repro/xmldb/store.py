"""Document store: named documents, shredded columns, region indexes.

The store owns everything the engine needs per document:

* the DOM (for the tree-walking evaluator and serialization);
* the shredded column representation (for Staircase Join and the
  element-name index);
* the **region index** extracted according to a
  :class:`~repro.config.StandoffConfig` (attribute or element
  representation, configurable names — paper §2).

Because the region representation is a *run-time* setting (a query's
``declare option`` preamble may change it), region indexes are built
lazily per (document, config) pair and cached.
"""

from __future__ import annotations

from typing import Iterator

from repro.exec import lockcheck
from repro.config import (
    DEFAULT_CONFIG,
    STORAGE_MMAP,
    StandoffConfig,
    normalize_storage_backend,
)
from repro.core.region import Area, Region
from repro.core.region_index import RegionIndex
from repro.errors import RegionError, ReproError
from repro.xmldb.dom import Document, Element
from repro.xmldb.parser import parse_document
from repro.xmldb.shred import ShreddedDocument, shred


def extract_regions(document: Document, config: StandoffConfig = DEFAULT_CONFIG
                    ) -> Iterator[tuple[int, int | float, int | float]]:
    """Yield ``(pre, start, end)`` for every area-annotation element.

    Under the attribute representation an element is an area-annotation
    when it carries *both* the start and the end attribute; under the
    element representation when it has at least one ``<region>`` child
    with start/end child elements.  Elements with only one half of a
    region raise :class:`RegionError` — silently ignoring them would turn
    data errors into empty query results.
    """
    document.renumber()
    for node in document.descendants():
        if not isinstance(node, Element):
            continue
        if config.uses_region_elements:
            for region_el in node.elements(config.region_name):
                start_el = region_el.find(config.start_name)
                end_el = region_el.find(config.end_name)
                if start_el is None and end_el is None:
                    continue
                if start_el is None or end_el is None:
                    raise RegionError(
                        f"<{config.region_name}> under <{node.tag}> has "
                        f"only one of <{config.start_name}>/"
                        f"<{config.end_name}>")
                start = config.parse_position(start_el.string_value())
                end = config.parse_position(end_el.string_value())
                _check(start, end, node)
                yield node.pre, start, end
        else:
            raw_start = node.get_attribute(config.start_name)
            raw_end = node.get_attribute(config.end_name)
            if raw_start is None and raw_end is None:
                continue
            if raw_start is None or raw_end is None:
                raise RegionError(
                    f"element <{node.tag}> (pre {node.pre}) has only one "
                    f"of @{config.start_name}/@{config.end_name}")
            start = config.parse_position(raw_start)
            end = config.parse_position(raw_end)
            _check(start, end, node)
            yield node.pre, start, end


def _check(start, end, node: Element) -> None:
    if start > end:
        raise RegionError(
            f"element <{node.tag}> (pre {node.pre}) has start {start!r} "
            f"> end {end!r}")


@lockcheck.audit_lazy_stores(("_shredded", "_document"))
class StoredDocument:
    """A document plus its derived structures, behind a storage seam.

    Under the default ``memory`` backend the shredded columns and region
    indexes are plain in-process arrays built on first use.  Under the
    ``mmap`` backend (``REPRO_STORAGE=mmap``, or ``storage_backend=``
    on the owning :class:`DocumentStore`/``Database``) the columns are
    *spilled* once to a store file (:mod:`repro.storage`) and mapped
    back — byte-identical answers, but the columns become shareable
    read-only pages that worker processes can re-open by path.
    """

    def __init__(self, document: Document | None, *,
                 storage_backend: str | None = None):
        self._document = document
        self._shredded: ShreddedDocument | None = None
        self._region_indexes: dict[StandoffConfig, RegionIndex] = {}
        self.storage_backend = normalize_storage_backend(storage_backend)
        self._spill_path: str | None = None
        # Serializes the lazy builds below.  They are not merely
        # duplicated work when raced: both the shredder and
        # extract_regions() call document.renumber(), which *mutates*
        # the DOM's pre/size/level ranks while the other thread walks
        # them — under concurrent queries (the serving layer) two
        # first-touch threads could each build against a tree the
        # other was renumbering.  Reentrant because region_index()
        # may take it around _ensure_spilled().
        self._build_lock = lockcheck.new_rlock("StoredDocument._build_lock")

    @property
    def document(self) -> Document:
        return self._document

    @property
    def doc_id(self) -> int:
        return self.document.doc_id

    @property
    def uri(self) -> str:
        return self.document.uri

    @property
    def shredded(self) -> ShreddedDocument:
        # Double-checked: the unlocked hit is the hot path (a plain
        # attribute read of an already-built, immutable structure);
        # only first touch pays the lock.
        shredded = self._shredded
        if shredded is not None:
            return shredded
        with self._build_lock:
            if self._shredded is None:
                if self.storage_backend == STORAGE_MMAP:
                    self._ensure_spilled()
                else:
                    self._shredded = shred(self.document)
            return self._shredded

    def region_index(self, config: StandoffConfig = DEFAULT_CONFIG
                     ) -> RegionIndex:
        index = self._region_indexes.get(config)
        if index is not None:
            return index
        with self._build_lock:
            index = self._region_indexes.get(config)
            if index is None:
                if self.storage_backend == STORAGE_MMAP \
                        and config == DEFAULT_CONFIG:
                    self._ensure_spilled()
                    index = self._region_indexes.get(config)
                    if index is not None:
                        return index
                index = RegionIndex.build(
                    extract_regions(self.document, config))
                lockcheck.assert_locked(self._build_lock,
                                        "StoredDocument._region_indexes")
                self._region_indexes[config] = index
            return index

    def _ensure_spilled(self) -> None:
        """Round-trip the derived structures through a spill store.

        The shred and default region table are computed once, written
        to a store file, and re-opened memory-mapped; the in-memory DOM
        is kept for node decoding.  Custom standoff configs still build
        in memory (the store persists the default config's table).
        Callers hold ``_build_lock``; the lock is re-entrant, so the
        method still takes it itself — the derived-structure stores
        below must never run unguarded.
        """
        with self._build_lock:
            if self._spill_path is not None:
                return
            from repro import storage

            path, reader = storage.spill_document(self.document)
            self._spill_path = path
            self._shredded = reader.shredded(self.uri,
                                             document=self.document)
            if reader.has_regions(self.uri):
                self._region_indexes[DEFAULT_CONFIG] = \
                    reader.region_index(self.uri)

    def area_of_node(self, pre: int,
                     config: StandoffConfig = DEFAULT_CONFIG) -> Area | None:
        """The area of the node with the given pre rank, if annotated."""
        return self.region_index(config).area_of(pre)

    def invalidate(self) -> None:
        """Drop derived structures after a structural update.

        The DOM is renumbered; the shredded columns and all region
        indexes are rebuilt lazily on next use.  This is the
        *per-document* maintenance cost the paper's §3.3 design keeps
        local (contrast: the store-level global index rebuilds whole).
        A spilled store file is stale after an update and is dropped
        (the next use spills afresh).
        """
        with self._build_lock:
            self.document.renumber()
            self._shredded = None
            self._region_indexes.clear()
            self._drop_spill()

    def _drop_spill(self) -> None:
        if self._spill_path is not None:
            try:
                import os

                os.unlink(self._spill_path)
            except OSError:
                pass
            self._spill_path = None


class DocumentStore:
    """All documents known to a database instance, keyed by URI."""

    def __init__(self, *, storage_backend: str | None = None) -> None:
        self._by_uri: dict[str, StoredDocument] = {}
        self._by_id: dict[int, StoredDocument] = {}
        self._next_id = 1
        #: bumped on every add/remove; global index caches key on it
        self.version = 0
        self._global_indexes: dict = {}
        self.storage_backend = normalize_storage_backend(storage_backend)

    def add(self, uri: str, xml: str | Document, *,
            keep_whitespace_text: bool = False) -> StoredDocument:
        """Parse (if given text) and register a document under *uri*."""
        if uri in self._by_uri:
            raise ReproError(f"document {uri!r} already stored")
        if isinstance(xml, Document):
            document = xml
            document.uri = uri
            document.doc_id = self._next_id
            document.renumber()
        else:
            document = parse_document(
                xml, uri=uri, doc_id=self._next_id,
                keep_whitespace_text=keep_whitespace_text)
        self._next_id += 1
        stored = StoredDocument(document,
                                storage_backend=self.storage_backend)
        self._by_uri[uri] = stored
        self._by_id[document.doc_id] = stored
        self.version += 1
        return stored

    def register(self, stored: StoredDocument) -> StoredDocument:
        """Register an externally constructed stored document.

        The seam :func:`repro.storage.open_store` uses: a
        ``MappedStoredDocument`` carries its uri/doc id in the store
        header, so registration stays O(1) — no parse, no shred.
        """
        uri = stored.uri
        if uri in self._by_uri:
            raise ReproError(f"document {uri!r} already stored")
        self._by_uri[uri] = stored
        self._by_id[stored.doc_id] = stored
        self._next_id = max(self._next_id, stored.doc_id + 1)
        self.version += 1
        return stored

    def remove(self, uri: str) -> None:
        stored = self._by_uri.pop(uri, None)
        if stored is None:
            raise ReproError(f"document {uri!r} not stored")
        del self._by_id[stored.doc_id]
        self.version += 1

    def get(self, uri: str) -> StoredDocument:
        try:
            return self._by_uri[uri]
        except KeyError:
            raise ReproError(f"document {uri!r} not stored") from None

    def by_id(self, doc_id: int) -> StoredDocument:
        try:
            return self._by_id[doc_id]
        except KeyError:
            raise ReproError(f"no document with id {doc_id}") from None

    def by_document(self, document: Document) -> StoredDocument | None:
        stored = self._by_id.get(document.doc_id)
        if stored is not None and stored.document is document:
            return stored
        return None

    def __contains__(self, uri: str) -> bool:
        return uri in self._by_uri

    def __iter__(self) -> Iterator[StoredDocument]:
        return iter(self._by_uri.values())

    def __len__(self) -> int:
        return len(self._by_uri)

    def uris(self) -> list[str]:
        return list(self._by_uri)

    def touch(self, uri: str) -> StoredDocument:
        """Record a structural update to *uri*: rebuild its derived
        structures lazily and invalidate the collection-global index."""
        stored = self.get(uri)
        stored.invalidate()
        self.version += 1
        return stored

    def region_indexes(self, config: StandoffConfig = DEFAULT_CONFIG
                       ) -> dict[int, "RegionIndex"]:
        """Per-fragment region indexes, keyed by doc id."""
        return {stored.doc_id: stored.region_index(config)
                for stored in self._by_uri.values()}

    def global_region_index(self, config: StandoffConfig = DEFAULT_CONFIG):
        """The collection-wide region index (paper §3.3 (ii)).

        Cached per (store version, config): any document add/remove
        invalidates the *whole* global index — exactly the maintenance
        cost the paper warns about (a per-document index would only
        rebuild locally).
        """
        from repro.core.global_index import GlobalRegionIndex

        key = (self.version, config)
        index = self._global_indexes.get(key)
        if index is None:
            self._global_indexes.clear()     # old versions are garbage
            index = GlobalRegionIndex(self.region_indexes(config))
            self._global_indexes[key] = index
        return index
