"""XML parser: tokenizer events -> DOM documents."""

from __future__ import annotations

from repro.errors import XMLSyntaxError
from repro.xmldb.dom import (
    Comment,
    Document,
    Element,
    ProcessingInstruction,
    Text,
)
from repro.xmldb.tokenizer import Tokenizer


def parse_document(text: str, uri: str = "", doc_id: int = 0,
                   *, keep_whitespace_text: bool = True) -> Document:
    """Parse an XML string into a numbered :class:`Document`.

    :param keep_whitespace_text: when False, whitespace-only text nodes
        outside of mixed content are dropped (the usual DB shredding
        behaviour; MonetDB/XQuery boundary-whitespace stripping).
    :raises XMLSyntaxError: on any well-formedness violation.
    """
    tokenizer = Tokenizer(text)
    doc = Document(uri=uri, doc_id=doc_id)
    stack: list = [doc]
    root_seen = False

    for event in tokenizer.tokens():
        kind = event[0]
        top = stack[-1]
        if kind == "start":
            _name, attrs, selfclosing = event[1], event[2], event[3]
            if top is doc and root_seen:
                raise tokenizer._error("multiple root elements")
            element = Element(_name)
            for attr_name, attr_value in attrs:
                element.set_attribute(attr_name, attr_value)
            top.append(element)
            if top is doc:
                root_seen = True
            if not selfclosing:
                stack.append(element)
        elif kind == "end":
            name = event[1]
            if top is doc:
                raise tokenizer._error(
                    f"closing tag </{name}> without open element")
            if top.tag != name:
                raise tokenizer._error(
                    f"mismatched closing tag </{name}>; "
                    f"open element is <{top.tag}>")
            stack.pop()
        elif kind == "text":
            chunk = event[1]
            if top is doc:
                if chunk.strip():
                    raise tokenizer._error(
                        "character data outside the root element")
                continue
            if not keep_whitespace_text and not chunk.strip():
                continue
            top.append_text(chunk)
        elif kind == "comment":
            top.append(Comment(event[1]))
        else:  # pi
            top.append(ProcessingInstruction(event[1], event[2]))

    if len(stack) > 1:
        open_tags = ", ".join(el.tag for el in stack[1:])
        raise XMLSyntaxError(f"unclosed element(s): {open_tags}")
    if not root_seen:
        raise XMLSyntaxError("document has no root element")
    doc.renumber()
    return doc


def parse_fragment(text: str) -> list:
    """Parse a sequence of top-level nodes (no single-root requirement).

    Used by element constructors in the XQuery engine.  Returns the list
    of parsed top-level nodes, numbered under a throwaway document.
    """
    wrapped = parse_document(f"<fragment-wrapper>{text}</fragment-wrapper>")
    wrapper = wrapped.root_element
    nodes = list(wrapper.children)
    for node in nodes:
        node.parent = None
    return nodes
