"""XML substrate: parser, DOM, serializer, shredder and document store."""

from repro.xmldb.dom import (
    Attr,
    Comment,
    Document,
    Element,
    Node,
    ProcessingInstruction,
    Text,
    document_order,
)
from repro.xmldb.parser import parse_document, parse_fragment
from repro.xmldb.serializer import serialize
from repro.xmldb.shred import ShreddedDocument, shred, shred_fragment
from repro.xmldb.store import DocumentStore, StoredDocument, extract_regions

__all__ = [
    "Attr",
    "Comment",
    "Document",
    "Element",
    "Node",
    "ProcessingInstruction",
    "Text",
    "document_order",
    "parse_document",
    "parse_fragment",
    "serialize",
    "ShreddedDocument",
    "shred",
    "shred_fragment",
    "DocumentStore",
    "StoredDocument",
    "extract_regions",
]
