"""DOM serialization back to XML text."""

from __future__ import annotations

from repro.xmldb.dom import (
    Attr,
    Comment,
    Document,
    Element,
    Node,
    ProcessingInstruction,
    Text,
)
from repro.xmldb.escape import escape_attribute, escape_text


def serialize(node: Node, *, indent: bool = False) -> str:
    """Serialize a node (and its subtree) to XML text.

    :param indent: pretty-print with two-space indentation.  Text nodes
        suppress indentation of their element (mixed content is emitted
        verbatim to keep the string value intact).
    """
    parts: list[str] = []
    _write(node, parts, 0, indent)
    return "".join(parts)


def _has_element_only_content(element: Element) -> bool:
    has_child_element = False
    for child in element.children:
        if isinstance(child, Text) and child.text.strip():
            return False
        if isinstance(child, Element):
            has_child_element = True
    return has_child_element


def _write(node: Node, parts: list[str], depth: int, indent: bool) -> None:
    pad = "  " * depth if indent else ""
    if isinstance(node, Document):
        for child in node.children:
            _write(child, parts, depth, indent)
            if indent:
                parts.append("\n")
        return
    if isinstance(node, Text):
        parts.append(escape_text(node.text))
        return
    if isinstance(node, Comment):
        parts.append(f"{pad}<!--{node.text}-->")
        return
    if isinstance(node, ProcessingInstruction):
        data = f" {node.data}" if node.data else ""
        parts.append(f"{pad}<?{node.target}{data}?>")
        return
    if isinstance(node, Attr):
        parts.append(f'{node.name}="{escape_attribute(node.value)}"')
        return

    element: Element = node  # type: ignore[assignment]
    attr_text = "".join(
        f' {attr.name}="{escape_attribute(attr.value)}"'
        for attr in element.attributes)
    if not element.children:
        parts.append(f"{pad}<{element.tag}{attr_text}/>")
        return
    pretty_children = indent and _has_element_only_content(element)
    parts.append(f"{pad}<{element.tag}{attr_text}>")
    for child in element.children:
        if pretty_children:
            if isinstance(child, Text) and not child.text.strip():
                continue
            parts.append("\n")
            _write(child, parts, depth + 1, indent)
        else:
            _write(child, parts, 0, False)
    if pretty_children:
        parts.append(f"\n{pad}")
    parts.append(f"</{element.tag}>")
