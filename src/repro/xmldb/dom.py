"""A compact DOM with MonetDB-style node numbering.

Nodes carry the pre-order rank (``pre``), subtree ``size`` and tree
``level`` assigned by :meth:`Document.renumber` — the region-encoding used
by Staircase Join and as node identity in the region index.  Document
order between nodes of the same document is the ``pre`` order; across
documents, the store's ``doc_id`` order.

The DOM is mutable while a document is being built or constructed by a
query; ``renumber()`` freezes the numbering (it is re-run after any
structural change).
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import ShredError
from repro.xmldb.escape import escape_attribute, escape_text
from repro.xmldb.names import local_name, require_qname

# Node kinds, matching the shredded table encoding.
KIND_DOCUMENT = 0
KIND_ELEMENT = 1
KIND_TEXT = 2
KIND_COMMENT = 3
KIND_PI = 4
KIND_ATTRIBUTE = 5

_KIND_NAMES = {
    KIND_DOCUMENT: "document",
    KIND_ELEMENT: "element",
    KIND_TEXT: "text",
    KIND_COMMENT: "comment",
    KIND_PI: "processing-instruction",
    KIND_ATTRIBUTE: "attribute",
}


class Node:
    """Base class of all DOM nodes."""

    kind: int = -1
    __slots__ = ("parent", "pre", "size", "level")

    def __init__(self) -> None:
        self.parent: "Element | Document | None" = None
        self.pre = -1
        self.size = 0
        self.level = -1

    # -- tree access -----------------------------------------------------

    @property
    def children(self) -> list["Node"]:
        return []

    @property
    def kind_name(self) -> str:
        return _KIND_NAMES[self.kind]

    @property
    def document(self) -> "Document | None":
        """The owning document (root of the parent chain)."""
        node: Node | None = self
        while node is not None and not isinstance(node, Document):
            node = node.parent
        return node

    @property
    def root(self) -> "Node":
        """The topmost node of this fragment (document or orphan subtree)."""
        node: Node = self
        while node.parent is not None:
            node = node.parent
        return node

    def ancestors(self) -> Iterator["Node"]:
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def descendants(self) -> Iterator["Node"]:
        for child in self.children:
            yield child
            yield from child.descendants()

    def descendants_or_self(self) -> Iterator["Node"]:
        yield self
        yield from self.descendants()

    # -- values ----------------------------------------------------------

    def string_value(self) -> str:
        """The XPath string value (concatenated descendant text)."""
        return "".join(node.text for node in self.descendants_or_self()
                       if isinstance(node, Text))

    def serialize(self, indent: bool = False) -> str:
        from repro.xmldb.serializer import serialize

        return serialize(self, indent=indent)

    # -- document order ---------------------------------------------------

    def sort_key(self) -> tuple[int, int]:
        doc = self.document
        doc_id = doc.doc_id if doc is not None else -1
        return (doc_id, self.pre)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} pre={self.pre}>"


class Text(Node):
    kind = KIND_TEXT
    __slots__ = ("text",)

    def __init__(self, text: str):
        super().__init__()
        self.text = text

    def string_value(self) -> str:
        return self.text


class Comment(Node):
    kind = KIND_COMMENT
    __slots__ = ("text",)

    def __init__(self, text: str):
        super().__init__()
        self.text = text

    def string_value(self) -> str:
        return self.text


class ProcessingInstruction(Node):
    kind = KIND_PI
    __slots__ = ("target", "data")

    def __init__(self, target: str, data: str):
        super().__init__()
        self.target = target
        self.data = data

    def string_value(self) -> str:
        return self.data


class Attr(Node):
    """An attribute node.  Attributes are not children of their element
    (XPath data model); they are numbered after the element they belong
    to, as in the MonetDB attribute table."""

    kind = KIND_ATTRIBUTE
    __slots__ = ("name", "value")

    def __init__(self, name: str, value: str):
        super().__init__()
        self.name = require_qname(name, "attribute name")
        self.value = value

    @property
    def local_name(self) -> str:
        return local_name(self.name)

    def string_value(self) -> str:
        return self.value

    def __repr__(self) -> str:
        return f"<Attr {self.name}={self.value!r}>"


class Element(Node):
    kind = KIND_ELEMENT
    __slots__ = ("tag", "attributes", "_children")

    def __init__(self, tag: str, attrs: dict[str, str] | None = None):
        super().__init__()
        self.tag = require_qname(tag, "element name")
        self.attributes: list[Attr] = []
        self._children: list[Node] = []
        if attrs:
            for name, value in attrs.items():
                self.set_attribute(name, value)

    # -- children ----------------------------------------------------------

    @property
    def children(self) -> list[Node]:
        return self._children

    def append(self, node: Node) -> Node:
        if isinstance(node, (Document, Attr)):
            raise ShredError(
                f"a {node.kind_name} node cannot be an element child")
        node.parent = self
        self._children.append(node)
        return node

    def append_text(self, text: str) -> None:
        """Append text, merging with a trailing text sibling."""
        if self._children and isinstance(self._children[-1], Text):
            self._children[-1].text += text
        elif text:
            self.append(Text(text))

    # -- attributes ---------------------------------------------------------

    def set_attribute(self, name: str, value: str) -> Attr:
        for attr in self.attributes:
            if attr.name == name:
                attr.value = value
                return attr
        attr = Attr(name, value)
        attr.parent = self
        self.attributes.append(attr)
        return attr

    def get_attribute(self, name: str, default: str | None = None
                      ) -> str | None:
        for attr in self.attributes:
            if attr.name == name:
                return attr.value
        return default

    def attribute_node(self, name: str) -> Attr | None:
        for attr in self.attributes:
            if attr.name == name:
                return attr
        return None

    @property
    def local_name(self) -> str:
        return local_name(self.tag)

    def elements(self, tag: str | None = None) -> Iterator["Element"]:
        """Child elements, optionally filtered by tag name."""
        for child in self._children:
            if isinstance(child, Element) and (tag is None
                                               or child.tag == tag):
                yield child

    def find(self, tag: str) -> "Element | None":
        """First child element with the given tag, or None."""
        return next(self.elements(tag), None)

    def __repr__(self) -> str:
        return f"<Element {self.tag} pre={self.pre}>"


class Document(Node):
    """A document node; the root of a stored XML fragment."""

    kind = KIND_DOCUMENT
    __slots__ = ("uri", "doc_id", "_children", "_nodes_by_pre")

    def __init__(self, uri: str = "", doc_id: int = 0):
        super().__init__()
        self.uri = uri
        self.doc_id = doc_id
        self._children: list[Node] = []
        self._nodes_by_pre: list[Node] | None = None

    @property
    def children(self) -> list[Node]:
        return self._children

    def append(self, node: Node) -> Node:
        if isinstance(node, (Document, Attr)):
            raise ShredError(
                f"a {node.kind_name} node cannot be a document child")
        node.parent = self
        self._children.append(node)
        return node

    @property
    def root_element(self) -> Element:
        for child in self._children:
            if isinstance(child, Element):
                return child
        raise ShredError(f"document {self.uri!r} has no root element")

    # -- numbering -----------------------------------------------------------

    def renumber(self) -> None:
        """Assign pre-order ranks, subtree sizes and levels.

        Attributes receive pre ranks immediately after their element (the
        MonetDB attribute encoding), and are counted in the element's
        subtree size, so that ``pre(v) < pre(a) <= pre(v) + size(v)``
        holds for an attribute *a* of any element *v* or its descendants.
        """
        nodes: list[Node] = []

        def walk(node: Node, level: int) -> int:
            node.pre = len(nodes)
            node.level = level
            nodes.append(node)
            count = 0
            if isinstance(node, Element):
                for attr in node.attributes:
                    attr.pre = len(nodes)
                    attr.level = level + 1
                    attr.size = 0
                    nodes.append(attr)
                    count += 1
            for child in node.children:
                count += 1 + walk(child, level + 1)
            node.size = count
            return count

        walk(self, 0)
        self._nodes_by_pre = nodes

    def node_by_pre(self, pre: int) -> Node:
        """The node with the given pre rank (after :meth:`renumber`)."""
        if self._nodes_by_pre is None:
            self.renumber()
        return self._nodes_by_pre[pre]

    @property
    def node_count(self) -> int:
        if self._nodes_by_pre is None:
            self.renumber()
        return len(self._nodes_by_pre)

    def all_nodes(self) -> list[Node]:
        if self._nodes_by_pre is None:
            self.renumber()
        return list(self._nodes_by_pre)

    def __repr__(self) -> str:
        return f"<Document {self.uri!r} doc_id={self.doc_id}>"


def renumber_fragment(root: Node) -> list[Node]:
    """Assign local pre ranks to an orphan fragment; nodes in pre order.

    The single numbering scheme for subtrees outside a document —
    identical to :meth:`Document.renumber` (attributes directly after
    their element, counted in the subtree size), so constructor
    numbering, transient region indexes and on-demand shredding all
    agree.  Re-running it on an already-numbered fragment is a no-op
    reassignment.
    """
    nodes: list[Node] = []

    def walk(node: Node, level: int) -> int:
        node.pre = len(nodes)
        node.level = level
        nodes.append(node)
        count = 0
        if isinstance(node, Element):
            for attr in node.attributes:
                attr.pre = len(nodes)
                attr.level = level + 1
                attr.size = 0
                nodes.append(attr)
                count += 1
        for child in node.children:
            count += 1 + walk(child, level + 1)
        node.size = count
        return count

    walk(root, 0)
    return nodes


def document_order(nodes) -> list[Node]:
    """Sort nodes in document order, removing duplicates (by identity)."""
    seen: set[int] = set()
    unique: list[Node] = []
    for node in nodes:
        if id(node) not in seen:
            seen.add(id(node))
            unique.append(node)
    unique.sort(key=Node.sort_key)
    return unique


__all__ = [
    "Node", "Text", "Comment", "ProcessingInstruction", "Attr", "Element",
    "Document", "document_order", "renumber_fragment",
    "escape_text", "escape_attribute",
    "KIND_DOCUMENT", "KIND_ELEMENT", "KIND_TEXT", "KIND_COMMENT",
    "KIND_PI", "KIND_ATTRIBUTE",
]
