"""repro.lint — the repo-specific invariant-enforcing static-analysis pass.

Every rule here encodes an invariant this codebase has already paid a
bug for (see ``docs/lint.md`` for the catalog and the motivating PRs):
dtype pinning and frozen shared columns (PR 8), identity-verified
``id()`` cache keys (PR 7), double-checked lazy builds and shm-segment
lifecycle (PR 9), cancellation-safe exception handling and poll points
(PR 9).  The pass is AST-based (no imports of the linted code except
for the kernel-axis vocabulary), runs as ``python -m repro.lint
<paths...>`` and gates CI together with the tier-1 suites.

Suppressions are per-line comments and *must* carry a reason::

    risky_line()   # repro: lint-ok[RL005] worker attaches, owner unlinks

A suppression comment may sit on the offending line or on the line
directly above it; a reasonless suppression is itself reported (as
``RL000``).  File-set and per-rule scoping live in ``pyproject.toml``
under ``[tool.repro-lint]`` — see :class:`LintConfig` for the keys and
their defaults (the defaults match this repo, so the linter also works
without a config file).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

__all__ = [
    "Finding", "FileContext", "LintConfig", "RULES", "rule",
    "lint_file", "lint_paths", "load_config",
]


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str           # display path (relative to the lint root)
    line: int
    col: int
    rule: str           # "RL001".."RL008", or "RL000" (framework)
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


#: ``# repro: lint-ok[RL001] reason`` (ids comma-separated, reason required).
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*lint-ok\[(?P<ids>[A-Za-z0-9_,\s*]+)\]\s*(?P<reason>.*)$")


class Suppressions:
    """Per-line ``lint-ok`` suppression comments for one file."""

    def __init__(self, lines: list[str]):
        self.by_line: dict[int, set[str]] = {}
        self.reasonless: list[int] = []
        for lineno, text in enumerate(lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            ids = {part.strip() for part in match.group("ids").split(",")
                   if part.strip()}
            if not match.group("reason").strip():
                self.reasonless.append(lineno)
                continue
            self.by_line[lineno] = ids

    def allows(self, line: int, rule_id: str) -> bool:
        """True if *rule_id* is suppressed at *line* (same or previous
        line; ``*`` suppresses every rule)."""
        for candidate in (line, line - 1):
            ids = self.by_line.get(candidate)
            if ids is not None and (rule_id in ids or "*" in ids):
                return True
        return False


_DEFAULT_DTYPE_SCOPE = (
    "src/repro/core", "src/repro/staircase", "src/repro/relational",
    "src/repro/exec", "src/repro/storage", "src/repro/xmldb",
)

_DEFAULT_COLUMN_NAMES = (
    "pre", "size", "level", "kind", "parent", "name", "starts", "ends",
    "ids", "iters", "offsets", "values", "heap", "pres",
)

_DEFAULT_CANCEL_SAFE_MODULES = (
    "src/repro/xquery/lexer.py", "src/repro/xquery/evaluator.py",
    "src/repro/xquery/bulk.py", "src/repro/bench/harness.py",
    "src/repro/exec/cancel.py", "src/repro/exec/sharding.py",
    "src/repro/exec/procpool.py",
)

_DEFAULT_POLL_MODULES = (
    "src/repro/xquery/evaluator.py", "src/repro/xquery/bulk.py",
    "src/repro/exec/sharding.py", "src/repro/exec/procpool.py",
    "src/repro/exec/cancel.py",
)

_DEFAULT_MUST_POLL = (
    "_eval_flwor", "_filter_by_predicate", "_bulk_standard_axis",
    "run_shards",
)

_DEFAULT_POLL_CALLS = (
    "check_cancelled", "raise_if_cancelled", "wait_cancellable",
)

_DEFAULT_LAZY_MODULES = (
    "src/repro/xmldb/store.py", "src/repro/storage/__init__.py",
)
_DEFAULT_LAZY_ATTRS = ("_shredded", "_document")
_DEFAULT_LAZY_DICTS = ("_region_indexes", "_stored")
_DEFAULT_BUILD_LOCKS = ("_build_lock", "_stored_lock")

#: Canonical staircase axis vocabulary for RL008.  Kept in sync with
#: ``repro.config.STAIRCASE_AXIS_NAMES`` by a tier-1 test rather than an
#: import: the linter must not import (and thereby execute) the code it
#: is checking.
STAIRCASE_AXIS_NAMES = (
    "descendant", "ancestor", "child", "following", "preceding",
    "following-sibling", "preceding-sibling",
)


@dataclass
class LintConfig:
    """Config for the pass (``[tool.repro-lint]`` in ``pyproject.toml``).

    Path entries are ``/``-separated prefixes relative to the lint root
    (the directory holding ``pyproject.toml``).
    """

    exclude: tuple[str, ...] = ("tests/lint_fixtures",)
    dtype_scope: tuple[str, ...] = _DEFAULT_DTYPE_SCOPE
    column_names: tuple[str, ...] = _DEFAULT_COLUMN_NAMES
    cancel_safe_modules: tuple[str, ...] = _DEFAULT_CANCEL_SAFE_MODULES
    poll_modules: tuple[str, ...] = _DEFAULT_POLL_MODULES
    must_poll_functions: tuple[str, ...] = _DEFAULT_MUST_POLL
    poll_calls: tuple[str, ...] = _DEFAULT_POLL_CALLS
    lazy_modules: tuple[str, ...] = _DEFAULT_LAZY_MODULES
    lazy_attrs: tuple[str, ...] = _DEFAULT_LAZY_ATTRS
    lazy_dicts: tuple[str, ...] = _DEFAULT_LAZY_DICTS
    build_locks: tuple[str, ...] = _DEFAULT_BUILD_LOCKS
    axis_names: tuple[str, ...] = STAIRCASE_AXIS_NAMES


def load_config(root: Path) -> LintConfig:
    """Read ``[tool.repro-lint]`` from *root*/pyproject.toml (defaults
    apply for missing keys or a missing file)."""
    config = LintConfig()
    pyproject = root / "pyproject.toml"
    if not pyproject.is_file():
        return config
    import tomllib
    with open(pyproject, "rb") as handle:
        data = tomllib.load(handle)
    table = data.get("tool", {}).get("repro-lint", {})
    for key, value in table.items():
        attr = key.replace("-", "_")
        if hasattr(config, attr):
            setattr(config, attr, tuple(value))
    return config


class FileContext:
    """Everything a rule needs to check one file."""

    def __init__(self, path: Path, rel: str, source: str,
                 config: LintConfig):
        self.path = path
        self.rel = rel
        self.source = source
        self.lines = source.splitlines()
        self.config = config
        self.tree = ast.parse(source, filename=str(path))
        self.suppressions = Suppressions(self.lines)
        # id(child) -> (child, parent): the child is pinned in the entry
        # so the id key can never alias a collected node (the RL003
        # scheme — the linter holds itself to its own rules).
        self._parents: dict[int, tuple[ast.AST, ast.AST]] | None = None

    def in_scope(self, prefixes: Iterable[str]) -> bool:
        return any(self.rel == p or self.rel.startswith(p.rstrip("/") + "/")
                   or self.rel.endswith("/" + p) or self.rel == p
                   for p in prefixes)

    def module_listed(self, modules: Iterable[str]) -> bool:
        """True if this file is one of the configured module paths."""
        return any(self.rel == m or self.rel.endswith("/" + m)
                   for m in modules)

    def parent(self, node: ast.AST) -> ast.AST | None:
        if self._parents is None:
            self._parents = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    self._parents[id(child)] = (child, parent)
        entry = self._parents.get(id(node))
        if entry is None or entry[0] is not node:
            return None
        return entry[1]

    def ancestors(self, node: ast.AST):
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def functions(self):
        """All function/method bodies, outermost first, plus the module
        body itself as a pseudo-function."""
        yield self.tree
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def finding(self, node: ast.AST, rule_id: str, message: str) -> Finding:
        return Finding(self.rel, getattr(node, "lineno", 1),
                       getattr(node, "col_offset", 0), rule_id, message)


RuleFunc = Callable[[FileContext], list[Finding]]

#: rule id -> (checker, one-line description)
RULES: dict[str, tuple[RuleFunc, str]] = {}


def rule(rule_id: str, description: str):
    def decorate(func: RuleFunc) -> RuleFunc:
        RULES[rule_id] = (func, description)
        return func
    return decorate


def lint_file(path: Path, root: Path, config: LintConfig) -> list[Finding]:
    """Run every rule over one file; suppressed findings are dropped,
    reasonless suppressions are reported."""
    try:
        rel = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        rel = path.as_posix()
    source = path.read_text(encoding="utf-8")
    try:
        ctx = FileContext(path, rel, source, config)
    except SyntaxError as error:
        return [Finding(rel, error.lineno or 1, error.offset or 0,
                        "RL000", f"file does not parse: {error.msg}")]
    findings: list[Finding] = []
    for rule_id, (checker, _description) in sorted(RULES.items()):
        for found in checker(ctx):
            if not ctx.suppressions.allows(found.line, found.rule):
                findings.append(found)
    for lineno in ctx.suppressions.reasonless:
        findings.append(Finding(
            rel, lineno, 0, "RL000",
            "suppression comment is missing its reason "
            "(# repro: lint-ok[RLnnn] <why this line is safe>)"))
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule))


def _excluded(rel: str, config: LintConfig) -> bool:
    return any(rel == e or rel.startswith(e.rstrip("/") + "/")
               for e in config.exclude)


def iter_lint_files(paths: list[Path], root: Path,
                    config: LintConfig) -> list[Path]:
    """Expand CLI path arguments to the .py files to lint.  Excludes
    apply only during directory walks: a file named explicitly is always
    linted (that is how the fixture tests lint the fixture corpus)."""
    out: list[Path] = []
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            if path.is_dir():
                try:
                    rel = resolved.relative_to(root.resolve()).as_posix()
                except ValueError:
                    rel = candidate.as_posix()
                if _excluded(rel, config):
                    continue
            seen.add(resolved)
            out.append(candidate)
    return out


def lint_paths(paths: list[Path], root: Path,
               config: LintConfig | None = None) -> list[Finding]:
    config = config if config is not None else load_config(root)
    findings: list[Finding] = []
    for path in iter_lint_files(paths, root, config):
        findings.extend(lint_file(path, root, config))
    return findings


# Register the rules (import for side effect of @rule registration).
from repro.lint import rules as _rules  # noqa: E402,F401
