"""CLI: ``python -m repro.lint [--config DIR] [--list-rules] paths...``

Exit status 0 when every linted file is clean (all suppressions carrying
reasons), 1 when findings remain, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.lint import RULES, lint_paths, load_config


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="repo-specific invariant lint pass (see docs/lint.md)")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to lint")
    parser.add_argument("--config", type=Path, default=None,
                        help="directory holding pyproject.toml "
                             "(default: current directory)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, (_checker, description) in sorted(RULES.items()):
            print(f"{rule_id}  {description}")
        return 0
    if not args.paths:
        parser.error("no paths given (try: python -m repro.lint src tests "
                     "benchmarks)")

    root = (args.config or Path.cwd()).resolve()
    config = load_config(root)
    findings = lint_paths(args.paths, root, config)
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:      # e.g. `--list-rules | head`
        sys.exit(0)
