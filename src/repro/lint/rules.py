"""The rule set: one checker per project invariant (RL001–RL008).

Each checker receives a :class:`repro.lint.FileContext` and returns raw
findings; suppression filtering happens in the framework.  Rules are
deliberately syntactic — they check the *idiom* that makes the invariant
auditable (an ``astype`` chain, a ``freeze()`` call in the same function,
a ``with self._build_lock:`` ancestor), not a whole-program proof.  Where
the idiom legitimately cannot hold, the fix is a reasoned suppression.
"""

from __future__ import annotations

import ast

from repro.lint import FileContext, Finding, rule

# ---------------------------------------------------------------------------
# shared helpers

#: numpy constructors that take a platform-default dtype when none is
#: given, mapped to the positional index of their ``dtype`` parameter.
_NUMPY_CTORS = {
    "array": 1, "asarray": 1, "zeros": 1, "empty": 1, "ones": 1,
    "frombuffer": 1, "fromfile": 1, "fromstring": 1, "memmap": 1,
    "full": 2, "arange": 3, "fromiter": 1,
}

_NUMPY_NAMES = {"np", "numpy"}


def _numpy_ctor(call: ast.Call) -> str | None:
    """The constructor name if *call* is ``np.<ctor>(...)``."""
    func = call.func
    if (isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in _NUMPY_NAMES
            and func.attr in _NUMPY_CTORS):
        return func.attr
    return None


def _dtype_pinned(call: ast.Call, ctor: str) -> bool:
    if any(kw.arg == "dtype" for kw in call.keywords):
        return True
    slot = _NUMPY_CTORS[ctor]
    if ctor == "arange":
        # dtype is only reachable positionally in the 4-arg form
        # ``arange(start, stop, step, dtype)``.
        return len(call.args) >= 4
    if ctor == "fromiter":
        # dtype is the (required) second parameter.
        return len(call.args) >= 2
    return len(call.args) > slot


def _astype_receivers(tree: ast.AST) -> set[int]:
    """ids of Call nodes that are immediately ``.astype(...)``-chained —
    their own dtype is irrelevant, the chain pins it."""
    out: set[int] = set()
    for node in ast.walk(tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype"
                and isinstance(node.func.value, ast.Call)):
            out.add(id(node.func.value))
    return out


def _call_name(call: ast.Call) -> str:
    """Trailing name of the called function (``a.b.c()`` -> ``c``)."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _walk_function(func: ast.AST):
    """Walk a function body without descending into nested defs (the
    module pseudo-function skips all defs: their bodies get their own
    pass)."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
            stack.extend(ast.iter_child_nodes(node))
        elif isinstance(node, ast.ClassDef):
            # class bodies at module level: statements run at import
            # time but methods are separate functions.
            stack.extend(child for child in ast.iter_child_nodes(node)
                         if not isinstance(child, (ast.FunctionDef,
                                                   ast.AsyncFunctionDef)))


# ---------------------------------------------------------------------------
# RL001 — numpy constructors must pin a dtype


@rule("RL001", "numpy array constructors in kernel/storage code must pin "
               "an explicit dtype (no platform-default ints)")
def rl001(ctx: FileContext) -> list[Finding]:
    if not ctx.in_scope(ctx.config.dtype_scope):
        return []
    findings = []
    exempt = _astype_receivers(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        ctor = _numpy_ctor(node)
        if ctor is None or id(node) in exempt:
            continue
        if not _dtype_pinned(node, ctor):
            findings.append(ctx.finding(
                node, "RL001",
                f"np.{ctor}(...) without an explicit dtype — pin one "
                f"(platform-default ints broke the PR 8 storage format)"))
    return findings


# ---------------------------------------------------------------------------
# RL002 — shared columns must be frozen (writeable=False)


def _frozen_exprs(func: ast.AST) -> set[str]:
    """Expressions frozen in *func*: args of ``freeze(...)`` calls and
    targets of ``X.flags.writeable = False`` assignments."""
    frozen: set[str] = set()
    for node in _walk_function(func):
        if isinstance(node, ast.Call) and _call_name(node) == "freeze":
            for arg in node.args:
                if isinstance(arg, ast.Starred):
                    arg = arg.value
                frozen.add(ast.unparse(arg))
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (isinstance(target, ast.Attribute)
                        and target.attr == "writeable"
                        and isinstance(target.value, ast.Attribute)
                        and target.value.attr == "flags"):
                    frozen.add(ast.unparse(target.value.value))
    return frozen


def _readonly_memmap(call: ast.Call) -> bool:
    return (_numpy_ctor(call) == "memmap"
            and any(kw.arg == "mode"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value in ("r", "c")
                    for kw in call.keywords))


@rule("RL002", "arrays assigned to shredded/region/store columns must be "
               "frozen (writeable=False) before sharing")
def rl002(ctx: FileContext) -> list[Finding]:
    if not ctx.in_scope(ctx.config.dtype_scope):
        return []
    columns = set(ctx.config.column_names)
    findings = []
    for func in ctx.functions():
        frozen = _frozen_exprs(func)
        for node in _walk_function(func):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and target.attr in columns):
                continue
            value = node.value
            call = value
            if (isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Attribute)
                    and call.func.attr == "astype"
                    and isinstance(call.func.value, ast.Call)):
                call = call.func.value
            if not (isinstance(call, ast.Call)
                    and _numpy_ctor(call) is not None):
                continue
            if _readonly_memmap(call):
                continue
            if ast.unparse(target) not in frozen:
                findings.append(ctx.finding(
                    node, "RL002",
                    f"column self.{target.attr} is built from a numpy "
                    f"constructor but never frozen in this function — "
                    f"freeze(...) it or set .flags.writeable = False"))
    return findings


# ---------------------------------------------------------------------------
# RL003 — no bare id() cache keys without a paired strong reference


def _id_call_source(node: ast.AST) -> str | None:
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id == "id" and len(node.args) == 1
            and not node.keywords):
        return ast.unparse(node.args[0])
    return None


def _subexpr_sources(value: ast.AST) -> set[str]:
    return {ast.unparse(sub) for sub in ast.walk(value)
            if isinstance(sub, (ast.Name, ast.Attribute, ast.Subscript))}


@rule("RL003", "dict/cache stores keyed on bare id(obj) must pair a strong "
               "reference to obj (recycled addresses alias dead objects)")
def rl003(ctx: FileContext) -> list[Finding]:
    findings = []
    for func in ctx.functions():
        # Pass 1: variables bound to a bare id() call anywhere in the
        # function (the walk order is not source order, so the binding
        # must be known before the stores are examined).
        id_vars: dict[str, str] = {}
        for node in _walk_function(func):
            if isinstance(node, ast.Assign):
                source = _id_call_source(node.value)
                if (source is not None and len(node.targets) == 1
                        and isinstance(node.targets[0], ast.Name)):
                    id_vars[node.targets[0].id] = source
        # Pass 2: id()-keyed stores, and which sources get pinned.
        # (node, source expr, value expr or None)
        stores: list[tuple[ast.AST, str, ast.AST | None]] = []
        paired: set[str] = set()
        for node in _walk_function(func):
            if isinstance(node, ast.Assign) \
                    and _id_call_source(node.value) is not None \
                    and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                continue
            key_expr: ast.AST | None = None
            store_value: ast.AST | None = None
            where: ast.AST | None = None
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        key_expr = target.slice
                        store_value = node.value
                        where = node
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "setdefault" and node.args):
                key_expr = node.args[0]
                store_value = node.args[1] if len(node.args) > 1 else None
                where = node
            if key_expr is None or where is None:
                continue
            source = _id_call_source(key_expr)
            if source is None and isinstance(key_expr, ast.Name):
                source = id_vars.get(key_expr.id)
            if source is None:
                continue
            stores.append((where, source, store_value))
            if store_value is not None and \
                    source in _subexpr_sources(store_value):
                paired.add(source)
        for where, source, _value in stores:
            if source not in paired:
                findings.append(ctx.finding(
                    where, "RL003",
                    f"store keyed on id({source}) with no store pairing a "
                    f"strong reference to {source} in this function — use "
                    f"the (obj, value) entry scheme (PR 7 alias bug)"))
    return findings


# ---------------------------------------------------------------------------
# RL004 — lazy-build attributes only assigned under the build lock


@rule("RL004", "lazy-build attribute stores must happen inside "
               "`with self._build_lock:` (double-checked build pattern)")
def rl004(ctx: FileContext) -> list[Finding]:
    if not ctx.module_listed(ctx.config.lazy_modules):
        return []
    lazy_attrs = set(ctx.config.lazy_attrs)
    lazy_dicts = set(ctx.config.lazy_dicts)
    lock_exprs = {f"self.{name}" for name in ctx.config.build_locks}
    findings = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Assign):
            continue
        what: str | None = None
        for target in node.targets:
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and target.attr in lazy_attrs):
                what = f"self.{target.attr}"
            elif (isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Attribute)
                    and isinstance(target.value.value, ast.Name)
                    and target.value.value.id == "self"
                    and target.value.attr in lazy_dicts):
                what = f"self.{target.value.attr}[...]"
        if what is None:
            continue
        in_init = False
        locked = False
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, ast.With):
                for item in ancestor.items:
                    if ast.unparse(item.context_expr) in lock_exprs:
                        locked = True
            elif isinstance(ancestor, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                in_init = ancestor.name == "__init__"
                break
        if in_init or locked:
            continue
        findings.append(ctx.finding(
            node, "RL004",
            f"lazy-build store to {what} outside `with self._build_lock:` "
            f"— double-checked builds must hold the lock (PR 9 race)"))
    return findings


# ---------------------------------------------------------------------------
# RL005 — SharedMemory(create=True) must unlink on BaseException


def _creates_shm(call: ast.Call) -> bool:
    name = _call_name(call)
    if name != "SharedMemory":
        return False
    return any(kw.arg == "create" and isinstance(kw.value, ast.Constant)
               and kw.value.value is True for kw in call.keywords)


def _handler_unlinks(handler: ast.ExceptHandler) -> bool:
    catches_base = False
    if handler.type is None:
        catches_base = True
    else:
        types = (handler.type.elts if isinstance(handler.type, ast.Tuple)
                 else [handler.type])
        for typ in types:
            if isinstance(typ, ast.Name) and typ.id == "BaseException":
                catches_base = True
    if not catches_base:
        return False
    for node in ast.walk(ast.Module(body=handler.body, type_ignores=[])):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "unlink"):
            return True
        if isinstance(node, ast.Call) and \
                _call_name(node).startswith("_unlink"):
            return True
    return False


def _followed_by_guard(ctx: FileContext, node: ast.AST) -> bool:
    """True if the statement holding *node* is immediately followed (in
    its block) by a try whose handler unlinks on BaseException — the
    create-then-guard shape (creation cannot sit inside its own guard:
    there is nothing to unlink until it returns)."""
    stmt: ast.AST = node
    parent = ctx.parent(stmt)
    while parent is not None and not isinstance(stmt, ast.stmt):
        stmt, parent = parent, ctx.parent(parent)
    if parent is None:
        return False
    for block in ("body", "orelse", "finalbody"):
        stmts = getattr(parent, block, None)
        if not isinstance(stmts, list) or stmt not in stmts:
            continue
        index = stmts.index(stmt)
        if index + 1 < len(stmts):
            nxt = stmts[index + 1]
            if isinstance(nxt, ast.Try) and \
                    any(_handler_unlinks(h) for h in nxt.handlers):
                return True
    return False


@rule("RL005", "SharedMemory(create=True) must be enclosed by a handler "
               "that unlinks the segment on BaseException")
def rl005(ctx: FileContext) -> list[Finding]:
    findings = []
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.Call) and _creates_shm(node)):
            continue
        guarded = _followed_by_guard(ctx, node)
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, ast.Try) and \
                    any(_handler_unlinks(h) for h in ancestor.handlers):
                guarded = True
                break
        if not guarded:
            findings.append(ctx.finding(
                node, "RL005",
                "SharedMemory(create=True) with no enclosing "
                "except-BaseException handler that unlinks the segment — "
                "an async unwind here leaks POSIX shm (PR 9 leak)"))
    return findings


# ---------------------------------------------------------------------------
# RL006 — no broad except in cancellation-visible modules


def _reraises(handler: ast.ExceptHandler) -> bool:
    """True if the handler body contains a bare ``raise``."""
    for node in ast.walk(ast.Module(body=handler.body, type_ignores=[])):
        if isinstance(node, ast.Raise) and node.exc is None:
            return True
    return False


@rule("RL006", "no `except Exception` / bare `except:` in modules that see "
               "BenchmarkTimeout/CancelToken unwinds")
def rl006(ctx: FileContext) -> list[Finding]:
    if not ctx.module_listed(ctx.config.cancel_safe_modules):
        return []
    findings = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        types = ([] if node.type is None else
                 node.type.elts if isinstance(node.type, ast.Tuple)
                 else [node.type])
        names = {t.id for t in types if isinstance(t, ast.Name)}
        # `except Exception` swallows a QueryCancelled unwind no matter
        # what the handler does with it.  A bare except / BaseException
        # catch is how *deliberate* unwind-time cleanup is written, so
        # it passes iff it visibly re-raises.
        broad_swallow = "Exception" in names
        broad_cleanup = (node.type is None or "BaseException" in names) \
            and not _reraises(node)
        if broad_swallow or broad_cleanup:
            findings.append(ctx.finding(
                node, "RL006",
                "broad except in a cancellation-visible module can "
                "misreport a BenchmarkTimeout/cancellation unwind — catch "
                "the concrete error types (or re-raise BaseException)"))
    return findings


# ---------------------------------------------------------------------------
# RL007 — unbounded loops must poll the cancel token


def _is_while_true(node: ast.While) -> bool:
    test = node.test
    return isinstance(test, ast.Constant) and bool(test.value)


def _polls(body_nodes, poll_names: set[str]) -> bool:
    for node in body_nodes:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call) and _call_name(sub) in poll_names:
                return True
    return False


@rule("RL007", "unbounded loops in evaluator/shard-wait paths must poll "
               "the CancelToken")
def rl007(ctx: FileContext) -> list[Finding]:
    if not ctx.module_listed(ctx.config.poll_modules):
        return []
    poll_names = set(ctx.config.poll_calls)
    findings = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.While) and _is_while_true(node):
            if not _polls(node.body, poll_names):
                findings.append(ctx.finding(
                    node, "RL007",
                    "unbounded `while True:` without a cancel poll — a "
                    "cancelled query would spin here forever"))
        elif (isinstance(node, (ast.For, ast.AsyncFor))
              and isinstance(node.iter, ast.Call)
              and _call_name(node.iter) == "as_completed"):
            if not _polls(node.body, poll_names):
                findings.append(ctx.finding(
                    node, "RL007",
                    "shard-wait loop over as_completed(...) without a "
                    "cancel poll — use wait_cancellable or poll the token"))
    must_poll = set(ctx.config.must_poll_functions)
    if must_poll:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node.name in must_poll:
                if not _polls(node.body, poll_names):
                    findings.append(ctx.finding(
                        node, "RL007",
                        f"{node.name} is a configured must-poll function "
                        f"but contains no cancel poll"))
    return findings


# ---------------------------------------------------------------------------
# RL008 — kernel registrations use the canonical axis vocabulary


def _literal_axes(node: ast.AST):
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            yield sub


@rule("RL008", "kernel registrations must declare axes from "
               "config.STAIRCASE_AXIS_NAMES")
def rl008(ctx: FileContext) -> list[Finding]:
    allowed = set(ctx.config.axis_names)
    findings = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        checks: list[ast.AST] = []
        if name == "KernelSpec":
            checks.extend(kw.value for kw in node.keywords
                          if kw.arg == "axes")
        elif name == "validate_axis" and len(node.args) >= 2:
            checks.append(node.args[1])
        for check in checks:
            for literal in _literal_axes(check):
                if literal.value not in allowed:
                    findings.append(ctx.finding(
                        literal, "RL008",
                        f"axis {literal.value!r} is not in "
                        f"STAIRCASE_AXIS_NAMES — kernel axis declarations "
                        f"must use the canonical vocabulary"))
    return findings
