"""repro — reproduction of "Efficient XQuery Support for Stand-Off
Annotation" (Alink, Bhoedjang, de Vries, Boncz; XIME-P / SIGMOD 2006).

The library provides:

* :mod:`repro.core` — regions, areas, the region index and the StandOff
  MergeJoin algorithm family (the paper's contribution);
* :mod:`repro.xmldb` — an XML parser, DOM and relational shredder;
* :mod:`repro.relational` — a small column-store substrate with
  loop-lifted ``iter|pos|item`` sequences;
* :mod:`repro.staircase` — Staircase Join for the standard XPath axes;
* :mod:`repro.xquery` — an XQuery-subset engine with the four StandOff
  axis steps (``select-narrow``, ``select-wide``, ``reject-narrow``,
  ``reject-wide``);
* :mod:`repro.xmark` — the XMark-derived StandOff benchmark workload;
* :mod:`repro.bench` — the experiment harness regenerating the paper's
  figures.

Quickstart::

    from repro import Database

    db = Database()
    db.add_document("annotations.xml", xml_text)
    result = db.query('//music[@artist="U2"]/select-wide::shot')
    for node in result:
        print(node.serialize())
"""

from repro.config import DEFAULT_CONFIG, StandoffConfig
from repro.core import Area, Region, StandoffOp, Strategy
from repro.errors import ReproError

__version__ = "0.1.0"

__all__ = [
    "Area",
    "Region",
    "StandoffOp",
    "Strategy",
    "StandoffConfig",
    "DEFAULT_CONFIG",
    "ReproError",
    "Database",
    "__version__",
]


def __getattr__(name):
    # Imported lazily: repro.xquery pulls in the whole engine, which the
    # core-only consumers (and the benchmarks' cold paths) don't need.
    if name == "Database":
        from repro.xquery.engine import Database

        return Database
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
