"""Static and dynamic context for query evaluation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.config import DEFAULT_KERNEL, DEFAULT_SHARD_MIN_ROWS, \
    DEFAULT_STAIRCASE_KERNEL, DEFAULT_WORKERS, STANDOFF_OPTION_NAMES, \
    StandoffConfig, normalize_executor, normalize_workers
from repro.core.region_index import RegionIndex
from repro.core.steps import Strategy
from repro.errors import XQueryDynamicError, XQueryStaticError
from repro.xmldb.dom import Node
from repro.xmldb.store import DocumentStore, extract_regions
from repro.xquery import ast
from repro.xquery.lexer import Lexer  # noqa: F401  (re-export convenience)

if TYPE_CHECKING:  # pragma: no cover
    pass

#: An item sequence: the uniform runtime value of every expression.
Sequence = list


@dataclass
class StaticContext:
    """Per-query immutable state derived from the prolog."""

    options: dict[str, str] = field(default_factory=dict)
    namespaces: dict[str, str] = field(default_factory=dict)
    functions: dict[tuple[str, int], ast.FunctionDecl] = field(
        default_factory=dict)
    standoff: StandoffConfig = field(default_factory=StandoffConfig)

    @classmethod
    def from_prolog(cls, prolog: ast.Prolog,
                    option_defaults: dict[str, str] | None = None
                    ) -> "StaticContext":
        """Build the static context for a compiled module.

        *option_defaults* are session-level ``declare option`` values
        (a serving session's standoff representation, say) applied
        beneath the query's own prolog — the prolog always wins.
        Because they change what a query text compiles to, they are
        part of the plan-cache key: see
        :meth:`repro.xquery.engine.Database._static_fingerprint`.
        """
        options = dict(option_defaults) if option_defaults else {}
        options.update(prolog.options)
        unknown = [name for name in options
                   if name.startswith("standoff-")
                   and name not in STANDOFF_OPTION_NAMES]
        if unknown:
            raise XQueryStaticError(
                f"unknown standoff option(s): {', '.join(sorted(unknown))}")
        standoff_options = {
            name: value for name, value in options.items()
            if name in STANDOFF_OPTION_NAMES}
        static = cls(
            options=options,
            namespaces=dict(prolog.namespaces),
            standoff=StandoffConfig.from_options(standoff_options),
        )
        for decl in prolog.functions:
            key = (_strip_prefix(decl.name), len(decl.params))
            if key in static.functions:
                raise XQueryStaticError(
                    f"function {decl.name}#{len(decl.params)} "
                    "declared twice", code="err:XQST0034")
            static.functions[key] = decl
        return static


def _strip_prefix(name: str) -> str:
    """Function lookup ignores the namespace prefix (single-namespace
    subset: ``fn:count`` == ``count``, ``standoff:select-narrow`` ==
    ``select-narrow``)."""
    return name.rpartition(":")[2]


class Focus:
    """The XPath focus: context item, position and size."""

    __slots__ = ("item", "position", "size")

    def __init__(self, item, position: int = 1, size: int = 1):
        self.item = item
        self.position = position
        self.size = size


class DynamicContext:
    """Mutable evaluation state threaded through the evaluators."""

    def __init__(self, store: DocumentStore,
                 static: StaticContext | None = None,
                 strategy: Strategy = Strategy.BASIC,
                 active_structure: str = "list",
                 blobs=None,
                 kernel: str = DEFAULT_KERNEL,
                 staircase_kernel: str = DEFAULT_STAIRCASE_KERNEL,
                 workers=DEFAULT_WORKERS,
                 shard_min_rows: int = DEFAULT_SHARD_MIN_ROWS,
                 executor: str | None = None):
        from repro.xmldb.blob import BlobStore

        self.store = store
        self.blobs = blobs if blobs is not None else BlobStore()
        self.static = static or StaticContext()
        self.strategy = strategy
        self.active_structure = active_structure
        #: StandOff join kernel: "ll" | "vectorized" | "auto"
        self.kernel = kernel
        #: Staircase axis kernel (same choices, resolved per step by
        #: the unified registry)
        self.staircase_kernel = staircase_kernel
        #: sharded fan-out: worker count ("serial" normalizes to 1 —
        #: the deterministic single-shard reference) and the minimum
        #: rows per shard before a join call fans out
        self.workers = normalize_workers(workers)
        if shard_min_rows < 1:
            raise ValueError(
                f"shard_min_rows must be >= 1, got {shard_min_rows}")
        self.shard_min_rows = shard_min_rows
        #: shard executor: "thread" (shared pool) or "process"
        #: (store-backed jobs fan out to worker processes that re-open
        #: the memory-mapped store; non-store jobs fall back to threads)
        self.executor = normalize_executor(executor)
        #: name-test pushdown policy: "always" | "never" | "auto"
        self.pushdown = "always"
        self.variables: dict[str, Sequence] = {}
        self.focus: Optional[Focus] = None
        self.globals: dict[str, Sequence] = {}
        # region indexes for fragments that are not stored documents
        # (constructed nodes), keyed by id(root node); every entry is a
        # (root, value) pair — the strong root reference pins the
        # fragment, so a GC'd fragment's recycled address can never
        # alias a live entry, and lookups verify identity
        self._transient_indexes: dict[int, tuple[Node, RegionIndex]] = {}
        # shredded columns for constructed fragments, same keying — the
        # per-query identity layer over the cross-query content-hash
        # cache (repro.xmldb.shred.SHRED_CACHE) that keeps staircase
        # axis steps over constructed content on the kernel path
        self._transient_shreds: dict = {}
        #: observability hook: number of standoff join invocations
        #: (a shared mutable cell so child scopes count into the root)
        self._join_counter = [0]

    # -- scoping -------------------------------------------------------------

    def child_scope(self) -> "DynamicContext":
        ctx = DynamicContext.__new__(DynamicContext)
        ctx.store = self.store
        ctx.blobs = self.blobs
        ctx.static = self.static
        ctx.strategy = self.strategy
        ctx.active_structure = self.active_structure
        ctx.kernel = self.kernel
        ctx.staircase_kernel = self.staircase_kernel
        ctx.workers = self.workers
        ctx.shard_min_rows = self.shard_min_rows
        ctx.executor = self.executor
        ctx.pushdown = self.pushdown
        ctx.variables = dict(self.variables)
        ctx.focus = self.focus
        ctx.globals = self.globals
        ctx._transient_indexes = self._transient_indexes
        ctx._transient_shreds = self._transient_shreds
        ctx._join_counter = self._join_counter
        return ctx

    def function_scope(self, bindings: dict[str, Sequence]
                       ) -> "DynamicContext":
        """A scope seeing only globals + parameters (XQuery functions)."""
        ctx = self.child_scope()
        ctx.variables = dict(self.globals)
        ctx.variables.update(bindings)
        ctx.focus = None
        return ctx

    def lookup(self, name: str) -> Sequence:
        try:
            return self.variables[name]
        except KeyError:
            raise XQueryDynamicError(
                f"undefined variable ${name}", code="err:XPDY0002"
            ) from None

    @property
    def standoff_join_calls(self) -> int:
        """Number of StandOff join invocations in this query so far."""
        return self._join_counter[0]

    def count_standoff_join(self) -> None:
        self._join_counter[0] += 1

    def require_focus(self) -> Focus:
        if self.focus is None:
            raise XQueryDynamicError(
                "the context item is undefined here", code="err:XPDY0002")
        return self.focus

    # -- standoff support -----------------------------------------------------

    @property
    def standoff_config(self) -> StandoffConfig:
        return self.static.standoff

    def region_index_for(self, root: Node) -> RegionIndex:
        """The region index of the fragment rooted at *root*.

        Stored documents use the store's cached index; constructed
        fragments get a transient index built (and cached) on demand.
        """
        from repro.xmldb.dom import Document

        if isinstance(root, Document):
            stored = self.store.by_document(root)
            if stored is not None:
                return stored.region_index(self.standoff_config)
        key = id(root)
        entry = self._transient_indexes.get(key)
        if entry is None or entry[0] is not root:
            root_doc = _TransientFragment(root)
            index = RegionIndex.build(
                extract_regions(root_doc, self.standoff_config))
            self._transient_indexes[key] = (root, index)
            return index
        return entry[1]

    def shredded_for(self, root: Node):
        """The shredded columns of the fragment rooted at *root*.

        Stored documents use the store's cached shred; constructed
        fragments shred on demand — the substrate that lets the bulk
        evaluator run staircase axis steps over constructed content
        through the batched kernels instead of the DOM walk.  Two cache
        layers serve the fragment case: this context's per-query
        identity cache (stable ``id(shredded)`` within one query, with
        a strong root reference per entry), backed by the cross-query
        content-hash cache in :mod:`repro.xmldb.shred`.
        """
        from repro.xmldb.dom import Document
        from repro.xmldb.shred import shred_fragment

        if isinstance(root, Document):
            stored = self.store.by_document(root)
            if stored is not None:
                return stored.shredded
        key = id(root)
        entry = self._transient_shreds.get(key)
        if entry is None or entry[0] is not root:
            shredded = shred_fragment(root)
            self._transient_shreds[key] = (root, shredded)
            return shredded
        return entry[1]


class _TransientFragment:
    """Adapter giving a bare subtree the Document-ish API that
    :func:`~repro.xmldb.store.extract_regions` needs."""

    def __init__(self, root: Node):
        self._root = root

    def renumber(self) -> None:
        from repro.xmldb.dom import Document, renumber_fragment

        if isinstance(self._root, Document):
            self._root.renumber()
            return
        # Orphan subtree: the shared local numbering, so pre ranks are
        # stable and agree with constructor output and shred-on-demand.
        renumber_fragment(self._root)

    def descendants(self):
        return self._root.descendants_or_self()
