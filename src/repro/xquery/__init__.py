"""XQuery-subset engine with the four StandOff axis steps.

Public entry points:

* :class:`~repro.xquery.engine.Database` — documents + queries;
* :func:`~repro.xquery.parser.parse` / ``parse_expr`` — parsing only;
* :mod:`~repro.xquery.evaluator` — iterative reference evaluation;
* :mod:`~repro.xquery.bulk` — loop-lifted evaluation.
"""

from repro.xquery.engine import Database, QueryResult
from repro.xquery.parser import parse, parse_expr

__all__ = ["Database", "QueryResult", "parse", "parse_expr"]
