"""Standard XPath axes over the DOM, plus node tests.

Each axis function yields nodes in *axis order*: document order for
forward axes, reverse document order for reverse axes (``ancestor``,
``ancestor-or-self``, ``parent``, ``preceding``, ``preceding-sibling``)
— the order in which positional predicates count.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.xmldb.dom import (
    Attr,
    Comment,
    Element,
    Node,
    ProcessingInstruction,
    Text,
)
from repro.xquery.ast import NodeTest


def axis_child(node: Node) -> Iterator[Node]:
    return iter(node.children)


def axis_descendant(node: Node) -> Iterator[Node]:
    return node.descendants()


def axis_descendant_or_self(node: Node) -> Iterator[Node]:
    return node.descendants_or_self()


def axis_self(node: Node) -> Iterator[Node]:
    yield node


def axis_parent(node: Node) -> Iterator[Node]:
    if node.parent is not None:
        yield node.parent


def axis_ancestor(node: Node) -> Iterator[Node]:
    return node.ancestors()


def axis_ancestor_or_self(node: Node) -> Iterator[Node]:
    yield node
    yield from node.ancestors()


def _siblings(node: Node) -> list[Node]:
    if node.parent is None or isinstance(node, Attr):
        return []
    return node.parent.children


def axis_following_sibling(node: Node) -> Iterator[Node]:
    siblings = _siblings(node)
    try:
        idx = next(i for i, s in enumerate(siblings) if s is node)
    except StopIteration:
        return
    yield from siblings[idx + 1:]


def axis_preceding_sibling(node: Node) -> Iterator[Node]:
    siblings = _siblings(node)
    try:
        idx = next(i for i, s in enumerate(siblings) if s is node)
    except StopIteration:
        return
    yield from reversed(siblings[:idx])


def axis_following(node: Node) -> Iterator[Node]:
    anchor = node
    while anchor is not None:
        for sibling in axis_following_sibling(anchor):
            yield from sibling.descendants_or_self()
        anchor = anchor.parent


def _reverse_subtree(node: Node) -> Iterator[Node]:
    """Subtree of *node* in reverse document order (pre descending)."""
    for child in reversed(node.children):
        yield from _reverse_subtree(child)
    yield node


def axis_preceding(node: Node) -> Iterator[Node]:
    """Preceding axis, streamed per anchor in reverse document order.

    Walking the anchor chain upward and emitting each preceding
    sibling's subtree back-to-front yields strictly descending pre
    ranks — sibling subtrees sit between the anchor and its parent, and
    every higher anchor's siblings lie wholly before them — so no
    global sort is needed; ancestors are never inside a preceding
    sibling's subtree, so no ancestor filter is needed either.
    """
    anchor: Node | None = node
    while anchor is not None:
        for sibling in axis_preceding_sibling(anchor):
            yield from _reverse_subtree(sibling)
        anchor = anchor.parent


def axis_attribute(node: Node) -> Iterator[Node]:
    if isinstance(node, Element):
        yield from node.attributes


AXIS_FUNCTIONS: dict[str, Callable[[Node], Iterator[Node]]] = {
    "child": axis_child,
    "descendant": axis_descendant,
    "descendant-or-self": axis_descendant_or_self,
    "self": axis_self,
    "parent": axis_parent,
    "ancestor": axis_ancestor,
    "ancestor-or-self": axis_ancestor_or_self,
    "following-sibling": axis_following_sibling,
    "preceding-sibling": axis_preceding_sibling,
    "following": axis_following,
    "preceding": axis_preceding,
    "attribute": axis_attribute,
}

REVERSE_AXES = frozenset({
    "parent", "ancestor", "ancestor-or-self",
    "preceding", "preceding-sibling",
})

#: XPath axes the Staircase Join family evaluates on the shredded
#: pre/size encoding, mapped to ``(staircase axis, or_self)`` — the
#: bulk evaluator routes predicate-free steps over these axes through
#: :func:`repro.staircase.kernels_vec.staircase_join` (kernel resolved
#: by the unified registry) instead of the per-node DOM walk.
STAIRCASE_AXES: dict[str, tuple[str, bool]] = {
    "descendant": ("descendant", False),
    "descendant-or-self": ("descendant", True),
    "ancestor": ("ancestor", False),
    "ancestor-or-self": ("ancestor", True),
    "child": ("child", False),
    "following": ("following", False),
    "preceding": ("preceding", False),
    "following-sibling": ("following-sibling", False),
    "preceding-sibling": ("preceding-sibling", False),
}


def matches_test(node: Node, test: NodeTest, axis: str = "child") -> bool:
    """Apply a node test; the principal node kind depends on the axis
    (elements everywhere except the attribute axis)."""
    if test.kind == "node":
        return True
    if test.kind == "text":
        return isinstance(node, Text)
    if test.kind == "comment":
        return isinstance(node, Comment)
    if test.kind == "processing-instruction":
        return isinstance(node, ProcessingInstruction)
    # name test
    if axis == "attribute":
        if not isinstance(node, Attr):
            return False
        return test.name == "*" or node.name == test.name \
            or node.local_name == _local(test.name)
    if not isinstance(node, Element):
        return False
    if test.name == "*":
        return True
    return node.tag == test.name or node.local_name == _local(test.name)


def _local(name: str) -> str:
    return name.rpartition(":")[2]
