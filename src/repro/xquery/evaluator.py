"""Tree-walking (iterative) evaluator — the reference semantics.

Evaluates the AST directly over DOM nodes.  For-loops iterate in Python,
so a StandOff step nested in a loop is executed once per iteration — the
cost model of the paper's UDF and Basic-MergeJoin implementations
(which join strategy is used per call is the context's
``strategy`` setting).  The loop-lifted execution model lives in
:mod:`repro.xquery.bulk`.
"""

from __future__ import annotations

from repro.errors import (
    UnsupportedFeatureError,
    XQueryDynamicError,
    XQueryStaticError,
    XQueryTypeError,
)
from repro.xmldb.dom import (
    Attr,
    Document,
    Element,
    Node,
    Text,
    document_order,
    renumber_fragment,
)
from repro.exec.cancel import check_cancelled
from repro.xquery import ast
from repro.xquery.axes import AXIS_FUNCTIONS, REVERSE_AXES, matches_test
from repro.xquery.context import DynamicContext, Focus, Sequence
from repro.xquery.functions import lookup_builtin
from repro.xquery.standoff import standoff_axis_step
from repro.xquery.values import (
    arithmetic,
    atomic_to_string,
    atomize,
    atomize_single,
    effective_boolean_value,
    general_compare,
    is_node,
    to_number,
    value_compare,
)


def evaluate(expr: ast.Expr, ctx: DynamicContext) -> Sequence:
    """Evaluate an expression to an item sequence."""
    method = _DISPATCH.get(type(expr))
    if method is None:
        raise UnsupportedFeatureError(
            f"no evaluation rule for {type(expr).__name__}")
    return method(expr, ctx)


def evaluate_module(module: ast.Module, ctx: DynamicContext) -> Sequence:
    """Evaluate prolog variable declarations, then the body."""
    for decl in module.prolog.variables:
        value = evaluate(decl.value, ctx)
        ctx.globals[decl.name] = value
        ctx.variables[decl.name] = value
    return evaluate(module.body, ctx)


# ----------------------------------------------------------------------
# simple expressions
# ----------------------------------------------------------------------

def _eval_literal(expr: ast.Literal, ctx) -> Sequence:
    return [expr.value]


def _eval_empty(expr: ast.EmptySequence, ctx) -> Sequence:
    return []


def _eval_varref(expr: ast.VarRef, ctx: DynamicContext) -> Sequence:
    return list(ctx.lookup(expr.name))


def _eval_context_item(expr: ast.ContextItem, ctx) -> Sequence:
    return [ctx.require_focus().item]


def _eval_sequence(expr: ast.Sequence, ctx) -> Sequence:
    out: Sequence = []
    for item_expr in expr.items:
        out.extend(evaluate(item_expr, ctx))
    return out


def _eval_unary(expr: ast.UnaryOp, ctx) -> Sequence:
    value = atomize_single(evaluate(expr.operand, ctx), "unary operand")
    if value is None:
        return []
    number = to_number(value)
    if isinstance(value, int) and not isinstance(value, bool):
        number = int(value)
    return [-number if expr.op == "-" else +number]


def _eval_range(expr: ast.RangeExpr, ctx) -> Sequence:
    lo = atomize_single(evaluate(expr.lo, ctx), "range start")
    hi = atomize_single(evaluate(expr.hi, ctx), "range end")
    if lo is None or hi is None:
        return []
    return list(range(int(to_number(lo)), int(to_number(hi)) + 1))


def _eval_if(expr: ast.IfExpr, ctx) -> Sequence:
    if effective_boolean_value(evaluate(expr.condition, ctx)):
        return evaluate(expr.then, ctx)
    return evaluate(expr.orelse, ctx)


def _eval_quantified(expr: ast.Quantified, ctx: DynamicContext) -> Sequence:
    binding = evaluate(expr.binding, ctx)
    scope = ctx.child_scope()
    results = []
    for item in binding:
        scope.variables[expr.var] = [item]
        results.append(effective_boolean_value(
            evaluate(expr.satisfies, scope)))
        if expr.quantifier == "some" and results[-1]:
            return [True]
        if expr.quantifier == "every" and not results[-1]:
            return [False]
    return [expr.quantifier == "every"]


# ----------------------------------------------------------------------
# binary operators
# ----------------------------------------------------------------------

_GENERAL_OPS = {"=", "!=", "<", "<=", ">", ">="}
_VALUE_OPS = {"eq", "ne", "lt", "le", "gt", "ge"}
_ARITH_OPS = {"+", "-", "*", "div", "idiv", "mod"}


def _eval_binary(expr: ast.BinaryOp, ctx: DynamicContext) -> Sequence:
    op = expr.op
    if op == "and":
        if not effective_boolean_value(evaluate(expr.left, ctx)):
            return [False]
        return [effective_boolean_value(evaluate(expr.right, ctx))]
    if op == "or":
        if effective_boolean_value(evaluate(expr.left, ctx)):
            return [True]
        return [effective_boolean_value(evaluate(expr.right, ctx))]

    left = evaluate(expr.left, ctx)
    right = evaluate(expr.right, ctx)
    if op in _GENERAL_OPS:
        return [general_compare(left, right, op)]
    if op in _VALUE_OPS:
        return value_compare(left, right, op)
    if op in _ARITH_OPS:
        return arithmetic(left, right, op)
    if op in ("union", "intersect", "except"):
        return _node_set_op(op, left, right)
    if op == "is":
        a = _single_node_or_none(left, "'is'")
        b = _single_node_or_none(right, "'is'")
        if a is None or b is None:
            return []
        return [a is b]
    if op in ("<<", ">>"):
        a = _single_node_or_none(left, op)
        b = _single_node_or_none(right, op)
        if a is None or b is None:
            return []
        before = a.sort_key() < b.sort_key()
        return [before if op == "<<" else not before]
    raise UnsupportedFeatureError(f"operator {op!r} not supported")


def _single_node_or_none(seq: Sequence, what: str) -> Node | None:
    if not seq:
        return None
    if len(seq) != 1 or not is_node(seq[0]):
        raise XQueryTypeError(f"{what} requires single node operands")
    return seq[0]


def _node_set_op(op: str, left: Sequence, right: Sequence) -> Sequence:
    for item in (*left, *right):
        if not is_node(item):
            raise XQueryTypeError(f"'{op}' requires node sequences")
    if op == "union":
        return document_order([*left, *right])
    right_ids = {id(n) for n in right}
    if op == "intersect":
        return document_order([n for n in left if id(n) in right_ids])
    return document_order([n for n in left if id(n) not in right_ids])


# ----------------------------------------------------------------------
# FLWOR
# ----------------------------------------------------------------------

def _eval_flwor(expr: ast.FLWOR, ctx: DynamicContext) -> Sequence:
    tuples: list[DynamicContext] = []

    def generate(clause_idx: int, scope: DynamicContext) -> None:
        if clause_idx == len(expr.clauses):
            tuples.append(scope)
            return
        clause = expr.clauses[clause_idx]
        if isinstance(clause, ast.LetClause):
            inner = scope.child_scope()
            inner.variables[clause.var] = evaluate(clause.value, scope)
            generate(clause_idx + 1, inner)
        else:
            binding = evaluate(clause.binding, scope)
            for position, item in enumerate(binding, start=1):
                inner = scope.child_scope()
                inner.variables[clause.var] = [item]
                if clause.position_var:
                    inner.variables[clause.position_var] = [position]
                generate(clause_idx + 1, inner)

    generate(0, ctx)

    if expr.where is not None:
        tuples = [scope for scope in tuples
                  if effective_boolean_value(evaluate(expr.where, scope))]

    if expr.order_by:
        def order_key(scope: DynamicContext):
            key = []
            for spec in expr.order_by:
                value = atomize_single(evaluate(spec.key, scope),
                                       "order by key")
                # (emptiness sorts first; descending negates via wrapper)
                key.append(_OrderKey(value, spec.descending))
            return key
        tuples = sorted(tuples, key=order_key)

    out: Sequence = []
    for scope in tuples:
        # Cancellation checkpoint: per-tuple return evaluation is the
        # other unbounded interpreter loop (see _filter_by_predicate).
        check_cancelled()
        out.extend(evaluate(expr.return_expr, scope))
    return out


class _OrderKey:
    """Comparable wrapper implementing empty-first and descending order."""

    __slots__ = ("value", "descending")

    def __init__(self, value, descending: bool):
        self.value = value
        self.descending = descending

    def __eq__(self, other: object) -> bool:
        # Needed so multi-key sorts fall through to the next key on ties.
        if not isinstance(other, _OrderKey):
            return NotImplemented
        a, b = self.value, other.value
        if isinstance(a, str) != isinstance(b, str):
            a, b = atomic_to_string(a), atomic_to_string(b)
        return a == b

    def __hash__(self):
        raise TypeError("_OrderKey is unhashable")

    def __lt__(self, other: "_OrderKey") -> bool:
        a, b = self.value, other.value
        if a is None or b is None:
            if a is None and b is None:
                return False
            less = a is None
            return less != self.descending
        if isinstance(a, str) != isinstance(b, str):
            a, b = atomic_to_string(a), atomic_to_string(b)
        if a == b:
            return False
        return (a < b) != self.descending


# ----------------------------------------------------------------------
# functions
# ----------------------------------------------------------------------

def _eval_call(expr: ast.FunctionCall, ctx: DynamicContext) -> Sequence:
    args = [evaluate(arg, ctx) for arg in expr.args]
    local = expr.name.rpartition(":")[2]
    decl = ctx.static.functions.get((local, len(args)))
    if decl is not None:
        scope = ctx.function_scope(dict(zip(decl.params, args)))
        return evaluate(decl.body, scope)
    builtin = lookup_builtin(expr.name, len(args))
    if builtin is not None:
        return builtin(ctx, args)
    raise XQueryStaticError(
        f"unknown function {expr.name}#{len(args)}", code="err:XPST0017")


# ----------------------------------------------------------------------
# paths
# ----------------------------------------------------------------------

def _eval_path(expr: ast.PathExpr, ctx: DynamicContext) -> Sequence:
    if expr.absolute:
        focus = ctx.require_focus()
        if not is_node(focus.item):
            raise XQueryTypeError("'/' requires a node context item")
        current: Sequence = [focus.item.root]
    else:
        current = None  # first step supplies the sequence
    for i, step in enumerate(expr.steps):
        if current is None:
            current = _eval_step(step, ctx, None)
        else:
            current = _eval_step(step, ctx, current)
    if current is None:          # bare '/'
        return [ctx.require_focus().item.root]
    return current


def _eval_step(step, ctx: DynamicContext,
               context_seq: Sequence | None) -> Sequence:
    if isinstance(step, ast.AxisStep):
        if context_seq is None:
            focus = ctx.require_focus()
            context_seq = [focus.item]
        for item in context_seq:
            if not is_node(item):
                raise XQueryTypeError(
                    "path steps require node context items")
        if step.is_standoff:
            result = standoff_axis_step(ctx, step.axis, context_seq,
                                        step.test)
            return _apply_predicates_sequence(result, step.predicates, ctx)
        return _eval_standard_axis(step, ctx, context_seq)
    # FilterExpr: evaluate base for each context item (or once)
    assert isinstance(step, ast.FilterExpr)
    if context_seq is None:
        base = evaluate(step.base, ctx)
        return _apply_predicates_sequence(base, step.predicates, ctx)
    out: Sequence = []
    scope = ctx.child_scope()
    size = len(context_seq)
    all_nodes = True
    for position, item in enumerate(context_seq, start=1):
        scope.focus = Focus(item, position, size)
        value = evaluate(step.base, scope)
        value = _apply_predicates_sequence(value, step.predicates, scope)
        for produced in value:
            if not isinstance(produced, Node):
                all_nodes = False
            out.append(produced)
    if all_nodes and out and any(isinstance(i, Node) for i in out):
        return document_order(out)
    if not all_nodes and any(isinstance(i, Node) for i in out):
        raise XQueryTypeError(
            "path step mixes nodes and atomic values")
    return out


def _eval_standard_axis(step: ast.AxisStep, ctx: DynamicContext,
                        context_seq: Sequence) -> Sequence:
    axis_fn = AXIS_FUNCTIONS[step.axis]
    reverse = step.axis in REVERSE_AXES
    collected: list[Node] = []
    scope = ctx.child_scope()
    for node in context_seq:
        matched = [candidate for candidate in axis_fn(node)
                   if matches_test(candidate, step.test, step.axis)]
        if reverse:
            matched.sort(key=Node.sort_key, reverse=True)
        for predicate in step.predicates:
            matched = _filter_by_predicate(matched, predicate, scope)
        collected.extend(matched)
    return document_order(collected)


def _filter_by_predicate(items: list, predicate: ast.Expr,
                         ctx: DynamicContext) -> list:
    out = []
    size = len(items)
    scope = ctx.child_scope()
    for position, item in enumerate(items, start=1):
        # Cancellation checkpoint: per-item predicate loops are where
        # a non-batched evaluation spends unbounded time between
        # kernel calls, so a served query's timeout must be able to
        # fire here (cheap: one thread-local read per item).
        check_cancelled()
        scope.focus = Focus(item, position, size)
        value = evaluate(predicate, scope)
        if _predicate_truth(value, position):
            out.append(item)
    return out


def _predicate_truth(value: Sequence, position: int) -> bool:
    """Numeric predicates test position; everything else is EBV."""
    if len(value) == 1 and isinstance(value[0], (int, float)) \
            and not isinstance(value[0], bool):
        return value[0] == position
    return effective_boolean_value(value)


def _apply_predicates_sequence(items: Sequence, predicates: list,
                               ctx: DynamicContext) -> Sequence:
    for predicate in predicates:
        items = _filter_by_predicate(list(items), predicate, ctx)
    return items


# ----------------------------------------------------------------------
# constructors
# ----------------------------------------------------------------------

def _eval_element_ctor(expr: ast.ElementConstructor,
                       ctx: DynamicContext) -> Sequence:
    element = Element(expr.name)
    for attr_ctor in expr.attributes:
        element.set_attribute(attr_ctor.name,
                              _eval_ctor_parts(attr_ctor.parts, ctx))
    _fill_content(element, expr.content, ctx)
    _renumber_fragment(element)
    return [element]


def _eval_text_ctor(expr: ast.TextConstructor, ctx) -> Sequence:
    return [Text(_eval_ctor_parts(expr.parts, ctx))]


def _eval_ctor_parts(parts: list, ctx: DynamicContext) -> str:
    chunks: list[str] = []
    for part in parts:
        if isinstance(part, str):
            chunks.append(part)
        else:
            values = atomize(evaluate(part, ctx))
            chunks.append(" ".join(atomic_to_string(v) for v in values))
    return "".join(chunks)


def _fill_content(element: Element, content: list,
                  ctx: DynamicContext) -> None:
    """Build constructor content: literal text, nested constructors and
    enclosed expressions (nodes are deep-copied, atomics become text
    separated by spaces)."""
    for part in content:
        if isinstance(part, str):
            if part.strip():
                element.append_text(part)
            continue
        if isinstance(part, ast.ElementConstructor):
            (child,) = _eval_element_ctor(part, ctx)
            element.append(child)
            continue
        values = evaluate(part, ctx)
        pending_atomic: list[str] = []
        for value in values:
            if isinstance(value, Node):
                if pending_atomic:
                    element.append_text(" ".join(pending_atomic))
                    pending_atomic = []
                element.append(_copy_node(value))
            else:
                pending_atomic.append(atomic_to_string(value))
        if pending_atomic:
            element.append_text(" ".join(pending_atomic))


def _copy_node(node: Node) -> Node:
    """Deep copy a node for insertion into constructed content."""
    if isinstance(node, Document):
        copies = [_copy_node(child) for child in node.children]
        wrapper = Element("documents")  # should not happen in practice
        for child in copies:
            wrapper.append(child)
        return wrapper
    if isinstance(node, Element):
        clone = Element(node.tag)
        for attr in node.attributes:
            clone.set_attribute(attr.name, attr.value)
        for child in node.children:
            clone.append(_copy_node(child))
        return clone
    if isinstance(node, Attr):
        return Text(node.value)
    if isinstance(node, Text):
        return Text(node.text)
    from repro.xmldb.dom import Comment, ProcessingInstruction

    if isinstance(node, Comment):
        return Comment(node.text)
    if isinstance(node, ProcessingInstruction):
        return ProcessingInstruction(node.target, node.data)
    raise XQueryTypeError(f"cannot copy {node.kind_name} node")


def _renumber_fragment(root: Element) -> None:
    """Assign local pre ranks to a constructed fragment (the shared
    orphan-subtree numbering, also used by shred-on-demand)."""
    renumber_fragment(root)


_DISPATCH = {
    ast.Literal: _eval_literal,
    ast.EmptySequence: _eval_empty,
    ast.VarRef: _eval_varref,
    ast.ContextItem: _eval_context_item,
    ast.Sequence: _eval_sequence,
    ast.UnaryOp: _eval_unary,
    ast.RangeExpr: _eval_range,
    ast.IfExpr: _eval_if,
    ast.Quantified: _eval_quantified,
    ast.BinaryOp: _eval_binary,
    ast.FLWOR: _eval_flwor,
    ast.FunctionCall: _eval_call,
    ast.PathExpr: _eval_path,
    ast.AxisStep: None,      # only valid inside PathExpr; see below
    ast.FilterExpr: None,
    ast.ElementConstructor: _eval_element_ctor,
    ast.TextConstructor: _eval_text_ctor,
}

# Standalone steps (a bare name test used as an expression) evaluate as a
# one-step relative path.
_DISPATCH[ast.AxisStep] = lambda expr, ctx: _eval_step(expr, ctx, None)
_DISPATCH[ast.FilterExpr] = lambda expr, ctx: _eval_step(expr, ctx, None)
