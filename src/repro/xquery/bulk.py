"""Loop-lifted (bulk) evaluator — the Pathfinder-style execution model.

Expressions evaluate to :class:`~repro.relational.sequence.IterSeq`
values (the ``iter|pos|item`` representation of §4.1) under a *loop
relation* listing the live iterations.  A ``for`` clause expands the
loop (one inner iteration per binding item), relifts the visible
variables, and unlifts the body's result back — so an axis step in the
body sees the context nodes of **all** iterations at once:

* StandOff steps issue a **single** Loop-Lifted StandOff MergeJoin call
  (:func:`repro.xquery.standoff.standoff_axis_step_lifted`);
* descendant steps without predicates use loop-lifted Staircase Join.

This evaluator covers the full query subset except user-defined
functions (which are the paper's *measured baseline* and therefore stay
on the iterative engine); calling one under the loop-lifted strategy
raises :class:`~repro.errors.UnsupportedFeatureError`.  ``order by``
and quantifiers are loop-lifted like everything else.
"""

from __future__ import annotations

import numpy as np

from repro.exec.cancel import check_cancelled
from repro.errors import (
    UnsupportedFeatureError,
    XQueryDynamicError,
    XQueryStaticError,
    XQueryTypeError,
)
from repro.relational.columnar import (
    ColumnarResult,
    segment_lengths,
    segment_positions,
)
from repro.relational.sequence import (
    IterSeq,
    LazyIterData,
    Loop,
    expand_loop,
    unlift,
)
from repro.xmldb.dom import (
    Attr,
    Comment,
    Element,
    Node,
    ProcessingInstruction,
    Text,
    document_order,
)
from repro.xquery import ast
from repro.xquery.axes import (
    AXIS_FUNCTIONS,
    REVERSE_AXES,
    STAIRCASE_AXES,
    matches_test,
)
from repro.xquery.context import DynamicContext, Focus
from repro.xquery.evaluator import (
    _copy_node,
    _filter_by_predicate,
    _renumber_fragment,
)
from repro.xquery.functions import lookup_builtin
from repro.xquery.standoff import standoff_axis_step_lifted
from repro.xquery.values import (
    arithmetic,
    atomic_to_string,
    atomize,
    atomize_single,
    effective_boolean_value,
    general_compare,
    is_node,
    to_number,
    value_compare,
)


class BulkEnv:
    """Evaluation environment: dynamic context + loop + lifted variables."""

    __slots__ = ("ctx", "loop", "variables", "focus_seq")

    def __init__(self, ctx: DynamicContext, loop: Loop,
                 variables: dict[str, IterSeq],
                 focus_seq: IterSeq | None = None):
        self.ctx = ctx
        self.loop = loop
        self.variables = variables
        self.focus_seq = focus_seq

    def child(self, *, loop: Loop | None = None,
              variables: dict[str, IterSeq] | None = None,
              focus_seq: IterSeq | None = None) -> "BulkEnv":
        return BulkEnv(self.ctx,
                       self.loop if loop is None else loop,
                       self.variables if variables is None else variables,
                       self.focus_seq if focus_seq is None else focus_seq)


def evaluate_module_bulk(module: ast.Module, ctx: DynamicContext) -> list:
    """Evaluate a module loop-lifted; returns the top-level item list."""
    loop: Loop = [0]
    variables = {name: IterSeq.lifted(list(value), loop)
                 for name, value in ctx.variables.items()}
    focus_seq = None
    if ctx.focus is not None:
        focus_seq = IterSeq.lifted([ctx.focus.item], loop)
    env = BulkEnv(ctx, loop, variables, focus_seq)
    for decl in module.prolog.variables:
        value = eval_bulk(decl.value, env)
        env.variables[decl.name] = value
    if module.prolog.functions:
        # User-defined functions force the iterative evaluator (the
        # paper's UDF alternative *is* the baseline being measured).
        raise UnsupportedFeatureError(
            "user-defined functions are not supported by the loop-lifted "
            "evaluator; use strategy='udf' or 'basic'")
    result = eval_bulk(module.body, env)
    return result.items_for(0)


def eval_bulk(expr: ast.Expr, env: BulkEnv) -> IterSeq:
    method = _DISPATCH.get(type(expr))
    if method is None:
        raise UnsupportedFeatureError(
            f"{type(expr).__name__} is not supported by the loop-lifted "
            "evaluator")
    return method(expr, env)


# ----------------------------------------------------------------------
# leaves
# ----------------------------------------------------------------------

def _bulk_literal(expr: ast.Literal, env: BulkEnv) -> IterSeq:
    return IterSeq.lifted([expr.value], env.loop)


def _bulk_empty(expr, env: BulkEnv) -> IterSeq:
    return IterSeq({})


def _bulk_varref(expr: ast.VarRef, env: BulkEnv) -> IterSeq:
    try:
        return env.variables[expr.name]
    except KeyError:
        from repro.errors import XQueryDynamicError

        raise XQueryDynamicError(f"undefined variable ${expr.name}",
                                 code="err:XPDY0002") from None


def _bulk_context_item(expr, env: BulkEnv) -> IterSeq:
    if env.focus_seq is None:
        from repro.errors import XQueryDynamicError

        raise XQueryDynamicError("the context item is undefined here",
                                 code="err:XPDY0002")
    return env.focus_seq


def _bulk_sequence(expr: ast.Sequence, env: BulkEnv) -> IterSeq:
    out = IterSeq({})
    for item in expr.items:
        out = out.concat(eval_bulk(item, env))
    return out


# ----------------------------------------------------------------------
# per-iteration scalar application
# ----------------------------------------------------------------------

def _per_iter(env: BulkEnv, arg_seqs: list[IterSeq], fn) -> IterSeq:
    """Apply ``fn(items...) -> list`` independently per live iteration."""
    out: dict[int, list] = {}
    for it in env.loop:
        result = fn(*[seq.items_for(it) for seq in arg_seqs])
        if result:
            out[it] = result
    return IterSeq(out)


def _bulk_unary(expr: ast.UnaryOp, env: BulkEnv) -> IterSeq:
    operand = eval_bulk(expr.operand, env)

    def apply(items):
        value = atomize_single(items, "unary operand")
        if value is None:
            return []
        number = to_number(value)
        if isinstance(value, int) and not isinstance(value, bool):
            number = int(value)
        return [-number if expr.op == "-" else +number]

    return _per_iter(env, [operand], apply)


def _bulk_range(expr: ast.RangeExpr, env: BulkEnv) -> IterSeq:
    lo = eval_bulk(expr.lo, env)
    hi = eval_bulk(expr.hi, env)

    def apply(lo_items, hi_items):
        a = atomize_single(lo_items, "range start")
        b = atomize_single(hi_items, "range end")
        if a is None or b is None:
            return []
        return list(range(int(to_number(a)), int(to_number(b)) + 1))

    return _per_iter(env, [lo, hi], apply)


def _bulk_if(expr: ast.IfExpr, env: BulkEnv) -> IterSeq:
    condition = eval_bulk(expr.condition, env)
    true_loop = [it for it in env.loop
                 if effective_boolean_value(condition.items_for(it))]
    false_loop = [it for it in env.loop if it not in set(true_loop)]
    out: dict[int, list] = {}
    if true_loop:
        then_val = eval_bulk(expr.then, env.child(loop=true_loop))
        for it in true_loop:
            items = then_val.items_for(it)
            if items:
                out[it] = items
    if false_loop:
        else_val = eval_bulk(expr.orelse, env.child(loop=false_loop))
        for it in false_loop:
            items = else_val.items_for(it)
            if items:
                out[it] = items
    return IterSeq(out)


_GENERAL_OPS = {"=", "!=", "<", "<=", ">", ">="}
_VALUE_OPS = {"eq", "ne", "lt", "le", "gt", "ge"}
_ARITH_OPS = {"+", "-", "*", "div", "idiv", "mod"}


def _bulk_binary(expr: ast.BinaryOp, env: BulkEnv) -> IterSeq:
    op = expr.op
    left = eval_bulk(expr.left, env)
    right = eval_bulk(expr.right, env)
    if op in _GENERAL_OPS:
        return _per_iter(env, [left, right],
                         lambda a, b: [general_compare(a, b, op)])
    if op in _VALUE_OPS:
        return _per_iter(env, [left, right],
                         lambda a, b: value_compare(a, b, op))
    if op in _ARITH_OPS:
        return _per_iter(env, [left, right],
                         lambda a, b: arithmetic(a, b, op))
    if op == "and":
        return _per_iter(env, [left, right], lambda a, b: [
            effective_boolean_value(a) and effective_boolean_value(b)])
    if op == "or":
        return _per_iter(env, [left, right], lambda a, b: [
            effective_boolean_value(a) or effective_boolean_value(b)])
    if op == "union":
        def union(a, b):
            for item in (*a, *b):
                if not is_node(item):
                    raise XQueryTypeError("'union' requires nodes")
            return document_order([*a, *b])
        return _per_iter(env, [left, right], union)
    if op in ("intersect", "except"):
        def setop(a, b):
            ids = {id(n) for n in b}
            if op == "intersect":
                return document_order([n for n in a if id(n) in ids])
            return document_order([n for n in a if id(n) not in ids])
        return _per_iter(env, [left, right], setop)
    raise UnsupportedFeatureError(
        f"operator {op!r} is not supported loop-lifted")


# ----------------------------------------------------------------------
# FLWOR — the loop-lifting core
# ----------------------------------------------------------------------

def _bulk_flwor(expr: ast.FLWOR, env: BulkEnv) -> IterSeq:
    inner_env = env
    maps: list[list[int]] = []
    for clause in expr.clauses:
        if isinstance(clause, ast.LetClause):
            value = eval_bulk(clause.value, inner_env)
            variables = dict(inner_env.variables)
            variables[clause.var] = value
            inner_env = inner_env.child(variables=variables)
        else:
            binding = eval_bulk(clause.binding, inner_env)
            inner_loop, outer_of_inner, var_seq, pos_seq = expand_loop(
                binding, inner_env.loop)
            variables = {name: seq.relift(outer_of_inner)
                         for name, seq in inner_env.variables.items()}
            variables[clause.var] = var_seq
            if clause.position_var:
                variables[clause.position_var] = pos_seq
            focus_seq = (inner_env.focus_seq.relift(outer_of_inner)
                         if inner_env.focus_seq is not None else None)
            inner_env = BulkEnv(env.ctx, inner_loop, variables, focus_seq)
            maps.append(outer_of_inner)

    if expr.where is not None:
        condition = eval_bulk(expr.where, inner_env)
        live = [it for it in inner_env.loop
                if effective_boolean_value(condition.items_for(it))]
        inner_env = inner_env.child(loop=live)

    result = eval_bulk(expr.return_expr, inner_env)
    result = result.restrict(inner_env.loop)

    if expr.order_by and maps:
        # Loop-lifted 'order by': the FLWOR's tuple stream is the
        # innermost loop; sort its iterations by their bulk-evaluated
        # keys within each *outermost* group (= one iteration of the
        # FLWOR's own enclosing scope), then collapse directly to that
        # level — XQuery orders the whole tuple stream, so the
        # intermediate nesting order is deliberately discarded.
        ordered, group_of = _bulk_order_by(expr.order_by, inner_env, maps)
        out: dict[int, list] = {}
        for q in ordered:
            items = result.data.get(q)
            if items:
                out.setdefault(group_of[q], []).extend(items)
        return IterSeq(out)

    for outer_of_inner in reversed(maps):
        result = unlift(result, outer_of_inner)
    return result


def _bulk_order_by(specs: list[ast.OrderSpec], inner_env: BulkEnv,
                   maps: list[list[int]]
                   ) -> tuple[list[int], dict[int, int]]:
    """Sort the innermost iterations; returns ``(ordered, group_of)``
    where ``group_of[q]`` is the outermost-scope iteration that inner
    iteration *q* descends from."""
    from repro.xquery.evaluator import _OrderKey

    keys: list[IterSeq] = [eval_bulk(spec.key, inner_env)
                           for spec in specs]
    cursor = list(range(len(maps[-1])))
    for outer_map in reversed(maps):
        cursor = [outer_map[q] for q in cursor]
    group_of = dict(enumerate(cursor))

    def sort_key(q: int):
        parts: list = [group_of[q]]
        for spec, key_seq in zip(specs, keys):
            value = atomize_single(key_seq.items_for(q), "order by key")
            parts.append(_OrderKey(value, spec.descending))
        return parts

    return sorted(inner_env.loop, key=sort_key), group_of


def _bulk_quantified(expr: ast.Quantified, env: BulkEnv) -> IterSeq:
    """Loop-lifted ``some``/``every``: expand the binding into an inner
    loop, evaluate the satisfies clause for all bindings at once, and
    aggregate per outer iteration (existential / universal)."""
    binding = eval_bulk(expr.binding, env)
    inner_loop, outer_of_inner, var_seq, _pos = expand_loop(binding,
                                                            env.loop)
    variables = {name: seq.relift(outer_of_inner)
                 for name, seq in env.variables.items()}
    variables[expr.var] = var_seq
    focus_seq = (env.focus_seq.relift(outer_of_inner)
                 if env.focus_seq is not None else None)
    inner_env = BulkEnv(env.ctx, inner_loop, variables, focus_seq)
    satisfied = eval_bulk(expr.satisfies, inner_env)

    is_some = expr.quantifier == "some"
    verdict = {it: not is_some for it in env.loop}
    for q in inner_loop:
        outcome = effective_boolean_value(satisfied.items_for(q))
        outer = outer_of_inner[q]
        if is_some:
            verdict[outer] = verdict[outer] or outcome
        else:
            verdict[outer] = verdict[outer] and outcome
    return IterSeq({it: [value] for it, value in verdict.items()})


# ----------------------------------------------------------------------
# function calls
# ----------------------------------------------------------------------

def _bulk_call(expr: ast.FunctionCall, env: BulkEnv) -> IterSeq:
    local = expr.name.rpartition(":")[2]
    if (local, len(expr.args)) in env.ctx.static.functions:
        raise UnsupportedFeatureError(
            f"user-defined function {expr.name} cannot be called "
            "loop-lifted")
    builtin = lookup_builtin(expr.name, len(expr.args))
    if builtin is None:
        raise XQueryStaticError(
            f"unknown function {expr.name}#{len(expr.args)}",
            code="err:XPST0017")
    arg_seqs = [eval_bulk(arg, env) for arg in expr.args]
    return _per_iter(env, arg_seqs,
                     lambda *args: builtin(env.ctx, list(args)))


# ----------------------------------------------------------------------
# paths
# ----------------------------------------------------------------------

def _bulk_path(expr: ast.PathExpr, env: BulkEnv) -> IterSeq:
    if expr.absolute:
        if env.focus_seq is None:
            from repro.errors import XQueryDynamicError

            raise XQueryDynamicError("'/' requires a context item",
                                     code="err:XPDY0002")
        current = env.focus_seq.map_items(lambda n: n.root)
    else:
        current = None
    for step in expr.steps:
        current = _bulk_step(step, env, current)
    if current is None:
        return env.focus_seq.map_items(lambda n: n.root)
    return current


def _bulk_step(step, env: BulkEnv, context: IterSeq | None) -> IterSeq:
    if isinstance(step, ast.FilterExpr):
        if context is None:
            base = eval_bulk(step.base, env)
            return _bulk_predicates_whole(base, step.predicates, env)
        raise UnsupportedFeatureError(
            "primary expressions as non-initial path steps are not "
            "supported loop-lifted")
    assert isinstance(step, ast.AxisStep)
    if context is None:
        context = _bulk_context_item(None, env)
    if step.is_standoff:
        per_iter = {}
        for it in env.loop:
            items = context.items_for(it)
            if items:
                per_iter[it] = items
        result_map = standoff_axis_step_lifted(env.ctx, step.axis,
                                               per_iter, step.test)
        if isinstance(result_map, LazyIterData):
            # Columnar fast path: keep the join output lazy — per-
            # iteration node lists decode on access, so iterations a
            # later clause discards are never materialized.
            result = IterSeq(result_map)
        else:
            result = IterSeq({it: nodes for it, nodes in result_map.items()
                              if nodes})
        return _bulk_predicates_whole(result, step.predicates, env)
    return _bulk_standard_axis(step, env, context)


def _bulk_standard_axis(step: ast.AxisStep, env: BulkEnv,
                        context: IterSeq) -> IterSeq:
    if step.axis in STAIRCASE_AXES:
        axis, or_self = STAIRCASE_AXES[step.axis]
        if not step.predicates:
            lifted = _staircase_axis_step(step, env, context, axis,
                                          or_self)
            if lifted is not None:
                return lifted
        elif POSITIONAL_KERNELS:
            maskers = compile_positional_predicates(step.predicates)
            if maskers is not None:
                lifted = _staircase_positional_step(
                    step, env, context, axis, or_self, maskers)
                if lifted is not None:
                    return lifted

    axis_fn = AXIS_FUNCTIONS[step.axis]
    reverse = step.axis in REVERSE_AXES
    scope = env.ctx.child_scope()
    out: dict[int, list] = {}
    for it in env.loop:
        # Cancellation checkpoint: the per-iteration DOM-walk fallback is
        # the bulk path's unbounded interpreter loop.
        check_cancelled()
        nodes = context.items_for(it)
        if not nodes:
            continue
        collected: list[Node] = []
        for node in nodes:
            if not isinstance(node, Node):
                raise XQueryTypeError("path steps require node items")
            matched = [cand for cand in axis_fn(node)
                       if matches_test(cand, step.test, step.axis)]
            if reverse:
                matched.sort(key=Node.sort_key, reverse=True)
            for predicate in step.predicates:
                matched = _filter_by_predicate(matched, predicate, scope)
            collected.extend(matched)
        ordered = document_order(collected)
        if ordered:
            out[it] = ordered
    return IterSeq(out)


#: Sentinel: the node test has no candidate pool on the shredded
#: encoding (fall back to the DOM walk).
_UNSUPPORTED_TEST = object()


def _elements_matching_name(shredded, name: str):
    """Pres of the elements a name test matches, via the element index.

    :func:`~repro.xquery.axes.matches_test` accepts an element whenever
    the local names agree (``tag == name`` implies that), so the pool
    is the union of the element-index entries sharing the test's local
    name — one entry in the common unprefixed case.  Delegates to
    :meth:`~repro.xmldb.shred.ShreddedDocument.elements_matching` so
    process-pool workers resolving a ``("name", ...)`` candidate
    descriptor run the identical pool computation.
    """
    return shredded.elements_matching(name)


def _staircase_candidates(shredded, test: ast.NodeTest):
    """The candidate pre pool of a node test, or ``_UNSUPPORTED_TEST``.

    The tree axes never yield attribute nodes (attributes are not
    children, and only the attribute axis has them as principal nodes),
    so the ``node()`` pool is the non-attribute rows — keeping the fast
    path in exact agreement with the DOM walk.
    """
    if test.kind == "name":
        if test.name == "*":
            return shredded.all_element_pres()
        return _elements_matching_name(shredded, test.name)
    if test.kind == "node":
        return shredded.non_attribute_pres()
    if test.kind == "text":
        return shredded.pres_of_kind(Text.kind)
    if test.kind == "comment":
        return shredded.pres_of_kind(Comment.kind)
    if test.kind == "processing-instruction":
        return shredded.pres_of_kind(ProcessingInstruction.kind)
    return _UNSUPPORTED_TEST


def _staircase_candidate_desc(test: ast.NodeTest) -> tuple | None:
    """The picklable descriptor of :func:`_staircase_candidates`'s pool.

    Mirrors its dispatch case for case; process-pool workers resolve
    the descriptor against their mapped shred
    (:func:`repro.exec.procpool.resolve_staircase_pool`) through the
    same :class:`ShreddedDocument` routines, so parent and worker see
    element-for-element identical pools without shipping the array.
    ``None`` (unsupported test) keeps the join on the thread path.
    """
    if test.kind == "name":
        if test.name == "*":
            return ("all-elements",)
        return ("name", test.name)
    if test.kind == "node":
        return ("non-attr",)
    if test.kind == "text":
        return ("kind", Text.kind)
    if test.kind == "comment":
        return ("kind", Comment.kind)
    if test.kind == "processing-instruction":
        return ("kind", ProcessingInstruction.kind)
    return None


def _tie_prone(env: BulkEnv, context: IterSeq,
               transient: set[int]) -> bool:
    """True when some iteration's context touches two or more transient
    fragments — only then can document_order keys tie."""
    for it in env.loop:
        seen: set[int] = set()
        for node in context.items_for(it):
            key = id(env.ctx.shredded_for(node.root))
            if key in transient:
                seen.add(key)
                if len(seen) > 1:
                    return True
    return False


def _staircase_axis_step(step: ast.AxisStep, env: BulkEnv,
                         context: IterSeq, axis: str,
                         or_self: bool) -> IterSeq | None:
    """Loop-lifted Staircase Join path for the tree axes.

    Applies whenever the test is a name or kind test: context nodes are
    grouped per fragment — stored documents use the store's shred,
    constructed fragments shred on demand through the context's
    transient cache — and each group runs one batched axis join; the
    kernel (reference dict path vs batched columnar) is resolved per
    call through the unified registry from ``ctx.staircase_kernel``.
    The common single-fragment case feeds the columnar result into the
    lazy node view directly — no ``dict[int, list]`` round-trip; mixed
    stored + constructed contexts merge per iteration in document
    order, exactly like the DOM walk would (iterations touching two or
    more transient fragments collect per context row so cross-tree
    order ties break identically).  Returns None only for tests the
    shredded encoding has no candidate pool for.
    """
    from repro.staircase.kernels_vec import staircase_join

    groups: dict[int, list[tuple[int, int]]] = {}
    shreds: dict[int, object] = {}
    attr_self: dict[int, list[Node]] = {}
    for it in env.loop:
        for node in context.items_for(it):
            if not isinstance(node, Node):
                return None
            shredded = env.ctx.shredded_for(node.root)
            key = id(shredded)
            shreds[key] = shredded
            if or_self and isinstance(node, Attr) \
                    and matches_test(node, step.test, step.axis):
                # Or-self inclusion is pool membership inside the
                # kernel; attribute context nodes are outside every
                # tree-axis pool, so their self-match rides along
                # DOM-side.
                attr_self.setdefault(it, []).append(node)
            # Read the pre *after* shredding: a constructed fragment's
            # numbering is assigned (idempotently) by the shred.
            groups.setdefault(key, []).append((it, node.pre))
    if not shreds:
        return IterSeq({})
    cand_by_key: dict[int, object] = {}
    for key, shredded in shreds.items():
        candidates = _staircase_candidates(shredded, step.test)
        if candidates is _UNSUPPORTED_TEST:
            return None
        cand_by_key[key] = candidates

    desc = _staircase_candidate_desc(step.test)

    def join(shredded, rows, candidates):
        return staircase_join(
            axis, shredded, rows, candidates, or_self=or_self,
            kernel=env.ctx.staircase_kernel,
            workers=env.ctx.workers,
            shard_min_rows=env.ctx.shard_min_rows,
            executor=env.ctx.executor,
            candidate_desc=desc)

    # document_order sorts by (doc id, pre), stable on ties — and two
    # *transient* fragments (orphan subtrees or unstored documents) can
    # tie, because neither owns a store-unique doc id.  The DOM walk
    # breaks such ties by per-iteration collection order, so any
    # iteration touching two or more transient fragments collects per
    # context row in context order (one single-row kernel join each) —
    # tied nodes always come from different rows, never the same one,
    # so row-ordered collection reproduces the oracle exactly.  The
    # check runs only in the already-rare multi-fragment case.
    if len(shreds) > 1:
        transient = {
            key for key, sh in shreds.items()
            if sh.document is None
            or env.ctx.store.by_document(sh.document) is None}
        if len(transient) > 1 and _tie_prone(env, context, transient):
            out: dict[int, list] = {}
            for it in env.loop:
                collected: list[Node] = []
                for node in context.items_for(it):
                    shredded = env.ctx.shredded_for(node.root)
                    result = join(shredded, [(0, node.pre)],
                                  cand_by_key[id(shredded)])
                    if 0 in result:
                        collected.extend(shredded.node_by_pre(p)
                                         for p in result[0])
                    if or_self and isinstance(node, Attr) \
                            and matches_test(node, step.test, step.axis):
                        collected.append(node)
                ordered = document_order(collected)
                if ordered:
                    out[it] = ordered
            return IterSeq(out)

    results = [(shreds[key], join(shreds[key], rows, cand_by_key[key]))
               for key, rows in groups.items()]
    if len(results) == 1 and not attr_self:
        shredded, result = results[0]
        if isinstance(result, ColumnarResult):
            def decode(iteration: int, _result=result,
                       _sh=shredded) -> list:
                return [_sh.node_by_pre(pre)
                        for pre in _result.values_for(iteration).tolist()]

            return IterSeq(LazyIterData(result.iterations(), decode))
    out = {}
    for shredded, result in results:
        for it in result:   # Mapping protocol covers both result shapes
            nodes = [shredded.node_by_pre(pre) for pre in result[it]]
            if nodes:
                out.setdefault(it, []).extend(nodes)
    for it, extra in attr_self.items():
        out.setdefault(it, []).extend(extra)
    if len(results) > 1 or attr_self:
        # No iteration mixes two transient fragments here, so keys are
        # tie-free and the sort alone fixes the order.
        out = {it: document_order(nodes) for it, nodes in out.items()}
    return IterSeq(out)


# ----------------------------------------------------------------------
# vectorized positional predicates
# ----------------------------------------------------------------------

#: Escape hatch (benchmarks, debugging): when False, axis steps with
#: positional predicates take the per-node DOM walk even when the
#: predicate chain compiles — the behaviour before the columnar filter.
POSITIONAL_KERNELS = True

#: Magnitude bound on compiled positional arithmetic.  The pipeline
#: evaluates in float64; below this bound every intermediate (including
#: the products inside the ``mod`` identity) is an exactly-representable
#: integer, so the compiled chain agrees bit-for-bit with the
#: interpreted integer semantics of
#: :func:`repro.xquery.values.arithmetic`.  Larger literals refuse to
#: compile and larger runtime intermediates bail to the DOM walk.
_POSITIONAL_EXACT_BOUND = float(2 ** 50)

_POSITIONAL_CMP = {
    "=": np.equal, "!=": np.not_equal,
    "<": np.less, "<=": np.less_equal,
    ">": np.greater, ">=": np.greater_equal,
    "eq": np.equal, "ne": np.not_equal,
    "lt": np.less, "le": np.less_equal,
    "gt": np.greater, "ge": np.greater_equal,
}


class _PositionalOverflow(Exception):
    """A runtime intermediate left the exact-integer float64 range."""


def _positional_guard(out):
    if np.any(np.abs(out) > _POSITIONAL_EXACT_BOUND):
        raise _PositionalOverflow
    return out


def _positional_arith(x, y, op: str, integral: bool):
    """Elementwise arithmetic mirroring :func:`values.arithmetic`.

    ``integral`` selects the integer branch: its ``idiv`` truncates the
    *rounded* float quotient exactly like ``_int_div`` (which divides in
    float too), and its ``mod`` uses the same ``x - idiv(x, y) * y``
    identity; the float branch uses ``fmod``, matching ``math.fmod``.
    """
    if op in ("div", "idiv", "mod") and np.any(np.equal(y, 0)):
        raise XQueryDynamicError(f"{op}: division by zero",
                                 code="err:FOAR0001")
    if op == "+":
        return _positional_guard(x + y)
    if op == "-":
        return _positional_guard(x - y)
    if op == "*":
        return _positional_guard(x * y)
    if op == "div":
        return _positional_guard(x / y)
    if op == "idiv":
        return _positional_guard(np.trunc(x / y))
    if integral:
        return _positional_guard(x - np.trunc(x / y) * y)
    return _positional_guard(np.fmod(x, y))


def _positional_ebv(fn, kind: str):
    """Effective boolean value of a compiled numeric/boolean operand."""
    if kind == "bool":
        return fn
    return lambda pos, last: np.not_equal(fn(pos, last), 0)


def _nonzero_literal(expr) -> bool:
    """True for a (possibly sign-wrapped) non-zero numeric literal —
    a divisor that provably cannot raise ``err:FOAR0001``."""
    while isinstance(expr, ast.UnaryOp):
        expr = expr.operand
    return (isinstance(expr, ast.Literal)
            and isinstance(expr.value, (int, float))
            and not isinstance(expr.value, bool)
            and expr.value != 0)


def _compile_positional_expr(expr):
    """Compile one predicate into ``(fn, kind, may_raise)`` — or
    ``None``.

    ``fn(pos, last) -> ndarray`` evaluates the expression elementwise
    over the float64 position/size columns of a CSR batch; ``kind`` is
    ``"int"``/``"float"`` (numeric value) or ``"bool"``; ``may_raise``
    marks a division whose divisor is not provably non-zero.  The
    interpreted evaluator short-circuits ``and``/``or`` per item while
    the compiled pipeline evaluates both sides for all rows, so a
    may-raise operand under ``and``/``or`` refuses to compile — the
    eager evaluation could surface a dynamic error the oracle never
    reaches.  ``None`` means the expression is outside the positional
    subset (literals, ``position()``/``last()``, arithmetic,
    comparisons, ``and``/``or``, ``not()``/``true()``/``false()``) and
    the step falls back to the per-node DOM walk.
    """
    if isinstance(expr, ast.Literal):
        value = expr.value
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return None
        if abs(value) > _POSITIONAL_EXACT_BOUND:
            return None
        kind = "int" if isinstance(value, int) else "float"
        return (lambda pos, last: np.float64(value)), kind, False
    if isinstance(expr, ast.FunctionCall):
        local = expr.name.rpartition(":")[2]
        if local == "position" and not expr.args:
            return (lambda pos, last: pos), "int", False
        if local == "last" and not expr.args:
            return (lambda pos, last: last), "int", False
        if local == "true" and not expr.args:
            return (lambda pos, last: np.True_), "bool", False
        if local == "false" and not expr.args:
            return (lambda pos, last: np.False_), "bool", False
        if local == "not" and len(expr.args) == 1:
            arg = _compile_positional_expr(expr.args[0])
            if arg is None:
                return None
            fn, kind, may_raise = arg
            ebv = _positional_ebv(fn, kind)
            return (lambda pos, last: np.logical_not(ebv(pos, last))), \
                "bool", may_raise
        return None
    if isinstance(expr, ast.UnaryOp):
        operand = _compile_positional_expr(expr.operand)
        if operand is None or operand[1] == "bool":
            return None
        fn, kind, may_raise = operand
        if expr.op == "-":
            return (lambda pos, last: -fn(pos, last)), kind, may_raise
        return fn, kind, may_raise
    if isinstance(expr, ast.BinaryOp):
        op = expr.op
        if op == "and" or op == "or" or op in _ARITH_OPS \
                or op in _POSITIONAL_CMP:
            left = _compile_positional_expr(expr.left)
            right = _compile_positional_expr(expr.right)
            if left is None or right is None:
                return None
            (lhs, lkind, lraise), (rhs, rkind, rraise) = left, right
        else:
            return None
        if op in ("and", "or"):
            if lraise or rraise:
                return None
            lhs, rhs = _positional_ebv(lhs, lkind), \
                _positional_ebv(rhs, rkind)
            combine = np.logical_and if op == "and" else np.logical_or
            return (lambda pos, last: combine(lhs(pos, last),
                                              rhs(pos, last))), \
                "bool", False
        if lkind == "bool" or rkind == "bool":
            return None
        may_raise = lraise or rraise
        if op in _POSITIONAL_CMP:
            cmp = _POSITIONAL_CMP[op]
            return (lambda pos, last: cmp(lhs(pos, last),
                                          rhs(pos, last))), \
                "bool", may_raise
        if op in ("div", "idiv", "mod") \
                and not _nonzero_literal(expr.right):
            may_raise = True
        integral = lkind == "int" and rkind == "int"
        if op == "idiv" or (integral and op != "div"):
            kind = "int"
        else:
            kind = "float"
        return (lambda pos, last: _positional_arith(
            lhs(pos, last), rhs(pos, last), op, integral)), \
            kind, may_raise
    return None


def compile_positional_predicates(predicates: list):
    """Compile a predicate chain into per-stage mask functions.

    Each masker maps the ``(position, last)`` columns of one CSR batch
    to a keep mask, applying :func:`_predicate_truth` semantics
    vectorized: a numeric predicate keeps the rows whose position equals
    its value, a boolean one keeps its own truth rows.  Returns ``None``
    when any predicate is outside the positional subset.
    """
    maskers = []
    for predicate in predicates:
        compiled = _compile_positional_expr(predicate)
        if compiled is None:
            return None
        fn, kind, _may_raise = compiled
        if kind == "bool":
            def masker(pos, last, _fn=fn):
                return np.broadcast_to(
                    np.asarray(_fn(pos, last), dtype=bool), pos.shape)
        else:
            def masker(pos, last, _fn=fn):
                return np.asarray(_fn(pos, last)) == pos
        maskers.append(masker)
    return maskers


def _apply_positional_chain(offsets: np.ndarray, values: np.ndarray,
                            maskers: list, reverse: bool
                            ) -> tuple[np.ndarray, np.ndarray]:
    """Filter a per-anchor CSR result through a compiled predicate
    chain.  Positions renumber within the surviving rows after every
    stage, exactly as XPath applies ``[p1][p2]`` left to right."""
    offsets = np.asarray(offsets, dtype=np.int64)
    for masker in maskers:
        if not len(values):
            break
        pos = segment_positions(offsets, reverse=reverse) \
            .astype(np.float64)
        last = segment_lengths(offsets).astype(np.float64)
        keep = masker(pos, last)
        kept = np.concatenate(([0], np.cumsum(keep, dtype=np.int64)))
        offsets = kept[offsets]
        values = values[keep]
    return offsets, values


def _dom_positional_anchor(node: Node, step: ast.AxisStep,
                           scope: DynamicContext) -> list[Node]:
    """One anchor's axis-plus-predicates result via the DOM walk (the
    rare corners the columnar filter leaves to the oracle path)."""
    axis_fn = AXIS_FUNCTIONS[step.axis]
    matched = [cand for cand in axis_fn(node)
               if matches_test(cand, step.test, step.axis)]
    if step.axis in REVERSE_AXES:
        matched.sort(key=Node.sort_key, reverse=True)
    for predicate in step.predicates:
        matched = _filter_by_predicate(matched, predicate, scope)
    return matched


def _staircase_positional_step(step: ast.AxisStep, env: BulkEnv,
                               context: IterSeq, axis: str,
                               or_self: bool, maskers: list
                               ) -> IterSeq | None:
    """Staircase axis step with a compiled positional predicate chain.

    Positions count per *context node*, not per iteration, so every
    (iteration, context node) row becomes its own kernel anchor: the
    join runs with one context row per anchor, making each CSR segment
    exactly one context node's axis result in document order — forward
    positions are the segment ordinals, reverse-axis positions the
    flipped ordinals (:func:`segment_positions`).  Attribute anchors
    whose or-self match would ride along DOM-side shift their whole
    sequence, so those anchors evaluate through the walk; everything
    else stays columnar.  Per-row collection in context order keeps
    cross-fragment document_order ties identical to the oracle.
    Returns None to fall back (unsupported test pool, non-node context,
    or arithmetic past the exact-float range).
    """
    from repro.staircase.kernels_vec import staircase_join

    reverse = step.axis in REVERSE_AXES
    groups: dict[int, list[tuple[int, int]]] = {}
    shreds: dict[int, object] = {}
    anchor_iters: list[int] = []
    dom_anchors: dict[int, Node] = {}
    for it in env.loop:
        for node in context.items_for(it):
            if not isinstance(node, Node):
                return None
            shredded = env.ctx.shredded_for(node.root)
            key = id(shredded)
            shreds[key] = shredded
            anchor = len(anchor_iters)
            anchor_iters.append(it)
            if or_self and isinstance(node, Attr) \
                    and matches_test(node, step.test, step.axis):
                dom_anchors[anchor] = node
            else:
                groups.setdefault(key, []).append((anchor, node.pre))
    if not anchor_iters:
        return IterSeq({})
    cand_by_key: dict[int, object] = {}
    for key, shredded in shreds.items():
        candidates = _staircase_candidates(shredded, step.test)
        if candidates is _UNSUPPORTED_TEST:
            return None
        cand_by_key[key] = candidates

    desc = _staircase_candidate_desc(step.test)

    def filtered_join(key, rows):
        result = staircase_join(
            axis, shreds[key], rows, cand_by_key[key], or_self=or_self,
            kernel=env.ctx.staircase_kernel,
            workers=env.ctx.workers,
            shard_min_rows=env.ctx.shard_min_rows,
            executor=env.ctx.executor,
            candidate_desc=desc)
        if not isinstance(result, ColumnarResult):
            result = ColumnarResult.from_dict(result)
        offsets, values = _apply_positional_chain(
            result.offsets, result.values, maskers, reverse)
        return result.iters, offsets, values

    anchor_map = np.asarray(anchor_iters, dtype=np.int64)
    try:
        if len(groups) == 1 and not dom_anchors:
            # Single-fragment fast path: survivors map straight back to
            # iterations columnar; from_pairs re-sorts and dedups, which
            # is document order within one fragment.
            ((key, rows),) = groups.items()
            anchors, offsets, values = filtered_join(key, rows)
            lifted = ColumnarResult.from_pairs(
                np.repeat(anchor_map[anchors], np.diff(offsets)), values)
            shredded = shreds[key]

            def decode(iteration: int, _result=lifted,
                       _sh=shredded) -> list:
                return [_sh.node_by_pre(pre)
                        for pre in _result.values_for(iteration).tolist()]

            return IterSeq(LazyIterData(lifted.iterations(), decode))

        survivors: dict[int, list] = {}
        for key, rows in groups.items():
            anchors, offsets, values = filtered_join(key, rows)
            bounds = offsets.tolist()
            vals = values.tolist()
            shredded = shreds[key]
            for i, anchor in enumerate(anchors.tolist()):
                a, b = bounds[i], bounds[i + 1]
                if b > a:
                    survivors[anchor] = [shredded.node_by_pre(pre)
                                         for pre in vals[a:b]]
    except _PositionalOverflow:
        return None

    if dom_anchors:
        scope = env.ctx.child_scope()
        for anchor, node in dom_anchors.items():
            nodes = _dom_positional_anchor(node, step, scope)
            if nodes:
                survivors[anchor] = nodes

    collected: dict[int, list] = {}
    for anchor in sorted(survivors):
        nodes = survivors[anchor]
        collected.setdefault(int(anchor_map[anchor]), []).extend(nodes)
    return IterSeq({it: document_order(nodes)
                    for it, nodes in collected.items()})


def _bulk_predicates_whole(seq: IterSeq, predicates: list,
                           env: BulkEnv) -> IterSeq:
    """Apply predicates per iteration over the whole result sequence."""
    if not predicates:
        return seq
    scope = env.ctx.child_scope()
    out: dict[int, list] = {}
    for it in env.loop:
        items = seq.items_for(it)
        for predicate in predicates:
            if not items:
                break
            items = _filter_by_predicate(items, predicate, scope)
        if items:
            out[it] = items
    return IterSeq(out)


# ----------------------------------------------------------------------
# constructors
# ----------------------------------------------------------------------

def _bulk_element_ctor(expr: ast.ElementConstructor,
                       env: BulkEnv) -> IterSeq:
    """Element construction stays loop-lifted: every embedded expression
    evaluates in bulk first; elements are then assembled per iteration.

    This is what keeps XMark Q2-style queries (StandOff steps inside the
    returned constructor) on the single-scan path.
    """
    attr_parts: list[tuple[str, list]] = []
    for attr in expr.attributes:
        parts = [(part if isinstance(part, str)
                  else eval_bulk(part, env)) for part in attr.parts]
        attr_parts.append((attr.name, parts))
    content_parts: list = []
    for part in expr.content:
        if isinstance(part, str):
            content_parts.append(part)
        elif isinstance(part, ast.ElementConstructor):
            content_parts.append(_bulk_element_ctor(part, env))
        else:
            content_parts.append(eval_bulk(part, env))

    out: dict[int, list] = {}
    for it in env.loop:
        element = Element(expr.name)
        for name, parts in attr_parts:
            chunks = []
            for part in parts:
                if isinstance(part, str):
                    chunks.append(part)
                else:
                    values = atomize(part.items_for(it))
                    chunks.append(" ".join(atomic_to_string(v)
                                           for v in values))
            element.set_attribute(name, "".join(chunks))
        for part in content_parts:
            if isinstance(part, str):
                if part.strip():
                    element.append_text(part)
                continue
            pending: list[str] = []
            for value in part.items_for(it):
                if isinstance(value, Node):
                    if pending:
                        element.append_text(" ".join(pending))
                        pending = []
                    element.append(_copy_node(value))
                else:
                    pending.append(atomic_to_string(value))
            if pending:
                element.append_text(" ".join(pending))
        _renumber_fragment(element)
        out[it] = [element]
    return IterSeq(out)


def _bulk_text_ctor(expr: ast.TextConstructor, env: BulkEnv) -> IterSeq:
    part_seqs = [(part if isinstance(part, str) else eval_bulk(part, env))
                 for part in expr.parts]
    out: dict[int, list] = {}
    for it in env.loop:
        chunks = []
        for part in part_seqs:
            if isinstance(part, str):
                chunks.append(part)
            else:
                values = atomize(part.items_for(it))
                chunks.append(" ".join(atomic_to_string(v)
                                       for v in values))
        out[it] = [Text("".join(chunks))]
    return IterSeq(out)


_DISPATCH = {
    ast.Literal: _bulk_literal,
    ast.EmptySequence: _bulk_empty,
    ast.VarRef: _bulk_varref,
    ast.ContextItem: _bulk_context_item,
    ast.Sequence: _bulk_sequence,
    ast.UnaryOp: _bulk_unary,
    ast.RangeExpr: _bulk_range,
    ast.IfExpr: _bulk_if,
    ast.Quantified: _bulk_quantified,
    ast.BinaryOp: _bulk_binary,
    ast.FLWOR: _bulk_flwor,
    ast.FunctionCall: _bulk_call,
    ast.PathExpr: _bulk_path,
    ast.ElementConstructor: _bulk_element_ctor,
    ast.TextConstructor: _bulk_text_ctor,
    ast.AxisStep: lambda expr, env: _bulk_step(expr, env, None),
    ast.FilterExpr: lambda expr, env: _bulk_step(expr, env, None),
}
