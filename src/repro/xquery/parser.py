"""Recursive-descent parser for the XQuery subset.

The supported grammar covers the language the paper exercises: the query
prolog (``declare option`` — including the four standoff options of §2 —
``declare namespace``, ``declare variable``, ``declare function``,
``declare module``), FLWOR with multiple for/let clauses and positional
variables, quantified and conditional expressions, the full operator
hierarchy, path expressions with all twelve standard axes plus the four
StandOff axes, predicates, and direct element constructors with embedded
``{...}`` expressions.

Unsupported XQuery features raise
:class:`~repro.errors.XQuerySyntaxError` (or
:class:`~repro.errors.UnsupportedFeatureError` when recognised but out of
subset) — never silently mis-parse.
"""

from __future__ import annotations

from repro.errors import UnsupportedFeatureError, XQuerySyntaxError
from repro.xquery import ast
from repro.xquery.lexer import Lexer, Token

_COMPARISON_OPS = {
    "=", "!=", "<", "<=", ">", ">=",            # general
    "eq", "ne", "lt", "le", "gt", "ge",          # value
    "is", "<<", ">>",                            # node
}

_KIND_TESTS = {"node", "text", "comment", "processing-instruction"}

#: Names that cannot start a function call (kind tests + reserved).
_RESERVED_FUNCTION_NAMES = _KIND_TESTS | {
    "if", "typeswitch", "item", "element", "attribute",
    "document-node", "empty-sequence",
}


def parse(text: str) -> ast.Module:
    """Parse a complete query (prolog + body) into a Module."""
    return _Parser(text).parse_module()


def parse_expr(text: str) -> ast.Expr:
    """Parse a standalone expression (no prolog)."""
    parser = _Parser(text)
    expr = parser.parse_expr()
    parser.expect_eof()
    return expr


class _Parser:
    def __init__(self, text: str):
        self.lexer = Lexer(text)

    # -- token helpers -----------------------------------------------------

    def peek(self, k: int = 0) -> Token:
        return self.lexer.peek(k)

    def next(self) -> Token:
        return self.lexer.next()

    def accept_symbol(self, *symbols: str) -> Token | None:
        if self.peek().is_symbol(*symbols):
            return self.next()
        return None

    def accept_name(self, *names: str) -> Token | None:
        if self.peek().is_name(*names):
            return self.next()
        return None

    def expect_symbol(self, symbol: str) -> Token:
        token = self.next()
        if not token.is_symbol(symbol):
            raise self.error(f"expected {symbol!r}, found {token.value!r}",
                             token)
        return token

    def expect_name(self, name: str | None = None) -> Token:
        token = self.next()
        if token.type != "name" or (name is not None
                                    and token.value != name):
            what = name or "a name"
            raise self.error(f"expected {what!r}, found {token.value!r}",
                             token)
        return token

    def expect_eof(self) -> None:
        token = self.peek()
        if token.type != "eof":
            raise self.error(f"unexpected trailing {token.value!r}", token)

    def error(self, message: str, token: Token | None = None
              ) -> XQuerySyntaxError:
        pos = token.pos if token is not None else self.lexer.pos
        line, col = self.lexer.line_col(pos)
        return XQuerySyntaxError(message, line, col)

    # -- prolog ------------------------------------------------------------

    def parse_module(self) -> ast.Module:
        prolog = self.parse_prolog()
        body = self.parse_expr()
        self.expect_eof()
        return ast.Module(prolog, body)

    def parse_prolog(self) -> ast.Prolog:
        prolog = ast.Prolog()
        while True:
            token = self.peek()
            if token.is_name("declare"):
                kind = self.peek(1)
                if kind.is_name("option"):
                    self._parse_option_decl(prolog)
                elif kind.is_name("namespace"):
                    self._parse_namespace_decl(prolog)
                elif kind.is_name("function"):
                    self._parse_function_decl(prolog)
                elif kind.is_name("variable"):
                    self._parse_variable_decl(prolog)
                elif kind.is_name("module"):
                    self._parse_module_decl(prolog)
                elif kind.is_name("boundary-space", "default", "base-uri",
                                  "construction", "ordering", "copy-namespaces"):
                    raise UnsupportedFeatureError(
                        f"'declare {kind.value}' is outside the subset")
                else:
                    break
            elif token.is_name("import"):
                raise UnsupportedFeatureError(
                    "module imports are outside the subset")
            else:
                break
            self.accept_symbol(";")      # separator optional (paper style)
        return prolog

    def _parse_option_decl(self, prolog: ast.Prolog) -> None:
        self.expect_name("declare")
        self.expect_name("option")
        name = self.expect_name().value
        value = self.next()
        if value.type != "string":
            raise self.error("option value must be a string literal", value)
        prolog.options[name] = value.value

    def _parse_namespace_decl(self, prolog: ast.Prolog) -> None:
        self.expect_name("declare")
        self.expect_name("namespace")
        prefix = self.expect_name().value
        self.expect_symbol("=")
        uri = self.next()
        if uri.type != "string":
            raise self.error("namespace URI must be a string literal", uri)
        prolog.namespaces[prefix] = uri.value

    def _parse_module_decl(self, prolog: ast.Prolog) -> None:
        # Figure 2 uses the nonstandard 'declare module standoff = "uri"';
        # we accept it as a namespace declaration.
        self.expect_name("declare")
        self.expect_name("module")
        prefix = self.expect_name().value
        self.expect_symbol("=")
        uri = self.next()
        if uri.type != "string":
            raise self.error("module URI must be a string literal", uri)
        prolog.namespaces[prefix] = uri.value

    def _parse_variable_decl(self, prolog: ast.Prolog) -> None:
        start = self.expect_name("declare")
        self.expect_name("variable")
        self.expect_symbol("$")
        name = self.expect_name().value
        if self.accept_name("as"):
            self._parse_sequence_type()
        self.expect_symbol(":=")
        value = self.parse_expr_single()
        prolog.variables.append(
            ast.VariableDecl(name, value, pos=start.pos))

    def _parse_function_decl(self, prolog: ast.Prolog) -> None:
        start = self.expect_name("declare")
        self.expect_name("function")
        name = self.expect_name().value
        self.expect_symbol("(")
        params: list[str] = []
        types: list[str | None] = []
        if not self.peek().is_symbol(")"):
            while True:
                self.expect_symbol("$")
                params.append(self.expect_name().value)
                if self.accept_name("as"):
                    types.append(self._parse_sequence_type())
                else:
                    types.append(None)
                if not self.accept_symbol(","):
                    break
        self.expect_symbol(")")
        return_type = None
        if self.accept_name("as"):
            return_type = self._parse_sequence_type()
        self.expect_symbol("{")
        body = self.parse_expr()
        self.expect_symbol("}")
        prolog.functions.append(ast.FunctionDecl(
            name, params, types, return_type, body, pos=start.pos))

    def _parse_sequence_type(self) -> str:
        """Parse a sequence type loosely; returned as display text only."""
        if self.peek().is_symbol("("):
            raise self.error("expected a type name")
        base = self.expect_name().value
        text = base
        if self.accept_symbol("("):
            depth = 1
            while depth:
                token = self.next()
                if token.type == "eof":
                    raise self.error("unterminated type parentheses", token)
                if token.is_symbol("("):
                    depth += 1
                elif token.is_symbol(")"):
                    depth -= 1
            text += "()"
        token = self.peek()
        if token.is_symbol("*", "+", "?"):
            self.next()
            text += token.value
        return text

    # -- expressions --------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        first = self.parse_expr_single()
        if not self.peek().is_symbol(","):
            return first
        items = [first]
        while self.accept_symbol(","):
            items.append(self.parse_expr_single())
        return ast.Sequence(items, pos=first.pos)

    def parse_expr_single(self) -> ast.Expr:
        token = self.peek()
        if token.is_name("for", "let"):
            nxt = self.peek(1)
            if nxt.is_symbol("$"):
                return self._parse_flwor()
        if token.is_name("some", "every") and self.peek(1).is_symbol("$"):
            return self._parse_quantified()
        if token.is_name("if") and self.peek(1).is_symbol("("):
            return self._parse_if()
        return self._parse_or()

    def _parse_flwor(self) -> ast.FLWOR:
        start = self.peek()
        clauses: list = []
        while True:
            token = self.peek()
            if token.is_name("for") and self.peek(1).is_symbol("$"):
                self.next()
                while True:
                    clauses.append(self._parse_for_binding())
                    if not self.accept_symbol(","):
                        break
            elif token.is_name("let") and self.peek(1).is_symbol("$"):
                self.next()
                while True:
                    clauses.append(self._parse_let_binding())
                    if not self.accept_symbol(","):
                        break
            else:
                break
        if not clauses:
            raise self.error("FLWOR without for/let clause", start)
        where = None
        if self.accept_name("where"):
            where = self.parse_expr_single()
        order_by = []
        if self.peek().is_name("order"):
            self.next()
            self.expect_name("by")
            while True:
                key = self.parse_expr_single()
                descending = False
                if self.accept_name("descending"):
                    descending = True
                else:
                    self.accept_name("ascending")
                order_by.append(ast.OrderSpec(key, descending))
                if not self.accept_symbol(","):
                    break
        if self.accept_name("stable"):
            raise UnsupportedFeatureError("'stable order by' not supported")
        ret = self.expect_name("return")
        return_expr = self.parse_expr_single()
        return ast.FLWOR(clauses, where, order_by, return_expr,
                         pos=start.pos)

    def _parse_for_binding(self) -> ast.ForClause:
        start = self.expect_symbol("$")
        var = self.expect_name().value
        position_var = None
        if self.accept_name("at"):
            self.expect_symbol("$")
            position_var = self.expect_name().value
        if self.accept_name("as"):
            self._parse_sequence_type()
        self.expect_name("in")
        binding = self.parse_expr_single()
        return ast.ForClause(var, binding, position_var, pos=start.pos)

    def _parse_let_binding(self) -> ast.LetClause:
        start = self.expect_symbol("$")
        var = self.expect_name().value
        if self.accept_name("as"):
            self._parse_sequence_type()
        self.expect_symbol(":=")
        value = self.parse_expr_single()
        return ast.LetClause(var, value, pos=start.pos)

    def _parse_quantified(self) -> ast.Quantified:
        token = self.next()
        quantifier = token.value
        self.expect_symbol("$")
        var = self.expect_name().value
        self.expect_name("in")
        binding = self.parse_expr_single()
        self.expect_name("satisfies")
        satisfies = self.parse_expr_single()
        return ast.Quantified(quantifier, var, binding, satisfies,
                              pos=token.pos)

    def _parse_if(self) -> ast.IfExpr:
        token = self.expect_name("if")
        self.expect_symbol("(")
        condition = self.parse_expr()
        self.expect_symbol(")")
        self.expect_name("then")
        then = self.parse_expr_single()
        self.expect_name("else")
        orelse = self.parse_expr_single()
        return ast.IfExpr(condition, then, orelse, pos=token.pos)

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self.peek().is_name("or"):
            token = self.next()
            right = self._parse_and()
            left = ast.BinaryOp("or", left, right, pos=token.pos)
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_comparison()
        while self.peek().is_name("and"):
            token = self.next()
            right = self._parse_comparison()
            left = ast.BinaryOp("and", left, right, pos=token.pos)
        return left

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_range()
        token = self.peek()
        op = None
        if token.type == "symbol" and token.value in _COMPARISON_OPS:
            op = token.value
        elif token.type == "name" and token.value in _COMPARISON_OPS:
            # value comparisons are keywords; only treat as operator when
            # something follows that can start an operand
            op = token.value
        if op is None:
            return left
        self.next()
        right = self._parse_range()
        return ast.BinaryOp(op, left, right, pos=token.pos)

    def _parse_range(self) -> ast.Expr:
        left = self._parse_additive()
        if self.peek().is_name("to"):
            token = self.next()
            right = self._parse_additive()
            return ast.RangeExpr(left, right, pos=token.pos)
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while self.peek().is_symbol("+", "-"):
            token = self.next()
            right = self._parse_multiplicative()
            left = ast.BinaryOp(token.value, left, right, pos=token.pos)
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_union()
        while (self.peek().is_symbol("*")
               or self.peek().is_name("div", "idiv", "mod")):
            token = self.next()
            right = self._parse_union()
            left = ast.BinaryOp(token.value, left, right, pos=token.pos)
        return left

    def _parse_union(self) -> ast.Expr:
        left = self._parse_intersect()
        while self.peek().is_symbol("|") or self.peek().is_name("union"):
            token = self.next()
            right = self._parse_intersect()
            left = ast.BinaryOp("union", left, right, pos=token.pos)
        return left

    def _parse_intersect(self) -> ast.Expr:
        left = self._parse_unary()
        while self.peek().is_name("intersect", "except"):
            token = self.next()
            right = self._parse_unary()
            left = ast.BinaryOp(token.value, left, right, pos=token.pos)
        return left

    def _parse_unary(self) -> ast.Expr:
        if self.peek().is_symbol("-", "+"):
            token = self.next()
            operand = self._parse_unary()
            return ast.UnaryOp(token.value, operand, pos=token.pos)
        return self._parse_path()

    # -- paths ------------------------------------------------------------

    def _parse_path(self) -> ast.Expr:
        token = self.peek()
        if token.is_symbol("/"):
            self.next()
            nxt = self.peek()
            if self._starts_step(nxt):
                steps = self._parse_relative_steps()
            else:
                steps = []
            return ast.PathExpr(steps, absolute=True, pos=token.pos)
        if token.is_symbol("//"):
            self.next()
            dos = ast.AxisStep("descendant-or-self",
                               ast.NodeTest("node"), pos=token.pos)
            steps = [dos, *self._parse_relative_steps(after_slash=True)]
            return ast.PathExpr(steps, absolute=True, pos=token.pos)
        steps = self._parse_relative_steps()
        if len(steps) == 1:
            step = steps[0]
            if isinstance(step, ast.FilterExpr) and not step.predicates:
                return step.base
            return step       # single AxisStep / FilterExpr evaluates alone
        return ast.PathExpr(steps, absolute=False, pos=token.pos)

    def _parse_relative_steps(self, after_slash: bool = False) -> list:
        steps = [self._parse_step(after_slash=after_slash)]
        while True:
            if self.accept_symbol("//"):
                steps.append(ast.AxisStep("descendant-or-self",
                                          ast.NodeTest("node")))
                steps.append(self._parse_step(after_slash=True))
            elif self.accept_symbol("/"):
                steps.append(self._parse_step(after_slash=True))
            else:
                return steps

    def _starts_step(self, token: Token) -> bool:
        if token.type in ("name", "string", "integer", "decimal", "double"):
            return True
        return token.is_symbol("$", "@", "(", ".", "..", "*", "<", "-", "+")

    def _parse_step(self, after_slash: bool = False) -> ast.Expr:
        token = self.peek()
        # abbreviated steps
        if token.is_symbol(".."):
            self.next()
            return ast.AxisStep("parent", ast.NodeTest("node"),
                                self._parse_predicates(), pos=token.pos)
        if token.is_symbol("@"):
            self.next()
            test = self._parse_node_test()
            return ast.AxisStep("attribute", test,
                                self._parse_predicates(), pos=token.pos)
        # explicit axis
        if token.type == "name" and self.peek(1).is_symbol("::"):
            axis = token.value
            if axis not in ast.ALL_AXES:
                raise self.error(f"unknown axis {axis!r}", token)
            self.next()
            self.next()
            test = self._parse_node_test()
            return ast.AxisStep(axis, test, self._parse_predicates(),
                                pos=token.pos)
        # name test / kind test as child step
        if token.is_symbol("*"):
            self.next()
            return ast.AxisStep("child", ast.NodeTest("name", "*"),
                                self._parse_predicates(), pos=token.pos)
        if token.type == "name" and not self._is_function_call(token):
            if token.value in ("element", "attribute", "document",
                               "text", "comment") \
                    and self.peek(1).is_symbol("{"):
                raise UnsupportedFeatureError(
                    "computed constructors are outside the subset")
            if token.value in _KIND_TESTS and self.peek(1).is_symbol("("):
                test = self._parse_node_test()
                return ast.AxisStep("child", test,
                                    self._parse_predicates(), pos=token.pos)
            # After a '/', any name is a step ('//div' is legal); at
            # operand start, expression keywords end the operand instead.
            if after_slash or not self._is_expression_keyword():
                self.next()
                test = ast.NodeTest("name", token.value)
                return ast.AxisStep("child", test,
                                    self._parse_predicates(), pos=token.pos)
        # otherwise a primary expression with optional predicates
        base = self._parse_primary()
        predicates = self._parse_predicates()
        return ast.FilterExpr(base, predicates, pos=token.pos)

    def _is_function_call(self, token: Token) -> bool:
        return (self.peek(1).is_symbol("(")
                and token.value not in _RESERVED_FUNCTION_NAMES)

    def _is_expression_keyword(self) -> bool:
        """Names that end an operand (else 'return'/'where' become steps)."""
        token = self.peek()
        return token.is_name(
            "return", "where", "order", "stable", "for", "let", "in",
            "satisfies", "then", "else", "and", "or", "to", "div", "idiv",
            "mod", "union", "intersect", "except", "eq", "ne", "lt", "le",
            "gt", "ge", "is", "at", "ascending", "descending", "by",
        )

    def _parse_node_test(self) -> ast.NodeTest:
        token = self.peek()
        if token.is_symbol("*"):
            self.next()
            return ast.NodeTest("name", "*", pos=token.pos)
        name = self.expect_name().value
        if name in _KIND_TESTS and self.peek().is_symbol("("):
            self.next()
            if name == "processing-instruction" \
                    and self.peek().type == "string":
                self.next()     # PI target ignored in the subset
            self.expect_symbol(")")
            return ast.NodeTest(name, pos=token.pos)
        return ast.NodeTest("name", name, pos=token.pos)

    def _parse_predicates(self) -> list[ast.Expr]:
        predicates = []
        while self.accept_symbol("["):
            predicates.append(self.parse_expr())
            self.expect_symbol("]")
        return predicates

    # -- primaries -----------------------------------------------------------

    def _parse_primary(self) -> ast.Expr:
        token = self.peek()
        if token.type == "string":
            self.next()
            return ast.Literal(token.value, pos=token.pos)
        if token.type == "integer":
            self.next()
            return ast.Literal(int(token.value), pos=token.pos)
        if token.type in ("decimal", "double"):
            self.next()
            return ast.Literal(float(token.value), pos=token.pos)
        if token.is_symbol("$"):
            self.next()
            name = self.expect_name().value
            return ast.VarRef(name, pos=token.pos)
        if token.is_symbol("("):
            self.next()
            if self.accept_symbol(")"):
                return ast.EmptySequence(pos=token.pos)
            expr = self.parse_expr()
            self.expect_symbol(")")
            return expr
        if token.is_symbol("."):
            self.next()
            return ast.ContextItem(pos=token.pos)
        if token.is_symbol("<"):
            return self._parse_direct_constructor()
        if token.type == "name":
            if token.value in ("element", "attribute", "document",
                               "text") and self.peek(1).is_symbol("{"):
                raise UnsupportedFeatureError(
                    "computed constructors are outside the subset")
            if self._is_function_call(token):
                return self._parse_function_call()
        raise self.error(f"unexpected token {token.value!r}", token)

    def _parse_function_call(self) -> ast.FunctionCall:
        token = self.expect_name()
        self.expect_symbol("(")
        args: list[ast.Expr] = []
        if not self.peek().is_symbol(")"):
            while True:
                args.append(self.parse_expr_single())
                if not self.accept_symbol(","):
                    break
        self.expect_symbol(")")
        return ast.FunctionCall(token.value, args, pos=token.pos)

    # -- direct constructors ---------------------------------------------------
    #
    # Direct element constructors switch the scanner to raw mode: XML
    # syntax with embedded {expr} enclosures.

    def _parse_direct_constructor(self) -> ast.ElementConstructor:
        pos = self.lexer.sync_pos()
        text = self.lexer.text
        if not text.startswith("<", pos):
            raise self.error("expected '<'")
        ctor, end = self._parse_ctor_element(text, pos)
        self.lexer.seek(end)
        return ctor

    def _raw_error(self, message: str, pos: int) -> XQuerySyntaxError:
        line, col = self.lexer.line_col(pos)
        return XQuerySyntaxError(message, line, col)

    def _parse_ctor_element(self, text: str, pos: int
                            ) -> tuple[ast.ElementConstructor, int]:
        assert text[pos] == "<"
        i = pos + 1
        i, name = self._read_ctor_name(text, i)
        attributes: list[ast.AttributeConstructor] = []
        while True:
            i = self._skip_raw_ws(text, i)
            if i >= len(text):
                raise self._raw_error("unterminated start tag", pos)
            if text.startswith("/>", i):
                return ast.ElementConstructor(name, attributes, [],
                                              pos=pos), i + 2
            if text[i] == ">":
                i += 1
                break
            i, attr = self._parse_ctor_attribute(text, i)
            attributes.append(attr)
        content, i = self._parse_ctor_content(text, i, name)
        return ast.ElementConstructor(name, attributes, content,
                                      pos=pos), i

    def _read_ctor_name(self, text: str, i: int) -> tuple[int, str]:
        start = i
        while i < len(text) and (text[i].isalnum() or text[i] in "_-.:"):
            i += 1
        name = text[start:i]
        if not name:
            raise self._raw_error("expected a name in constructor", start)
        return i, name

    def _skip_raw_ws(self, text: str, i: int) -> int:
        while i < len(text) and text[i] in " \t\r\n":
            i += 1
        return i

    def _parse_ctor_attribute(self, text: str, i: int
                              ) -> tuple[int, ast.AttributeConstructor]:
        start = i
        i, name = self._read_ctor_name(text, i)
        i = self._skip_raw_ws(text, i)
        if i >= len(text) or text[i] != "=":
            raise self._raw_error(f"expected '=' after attribute {name!r}",
                                  i)
        i = self._skip_raw_ws(text, i + 1)
        if i >= len(text) or text[i] not in "\"'":
            raise self._raw_error("attribute value must be quoted", i)
        quote = text[i]
        i += 1
        parts: list = []
        buf: list[str] = []
        while True:
            if i >= len(text):
                raise self._raw_error("unterminated attribute value", start)
            ch = text[i]
            if ch == quote:
                if text.startswith(quote * 2, i):
                    buf.append(quote)
                    i += 2
                    continue
                i += 1
                break
            if ch == "{":
                if text.startswith("{{", i):
                    buf.append("{")
                    i += 2
                    continue
                if buf:
                    parts.append("".join(buf))
                    buf = []
                expr, i = self._parse_enclosed(text, i)
                parts.append(expr)
                continue
            if ch == "}":
                if text.startswith("}}", i):
                    buf.append("}")
                    i += 2
                    continue
                raise self._raw_error("'}' must be doubled in constructor",
                                      i)
            buf.append(ch)
            i += 1
        if buf:
            parts.append("".join(buf))
        return i, ast.AttributeConstructor(name, parts, pos=start)

    def _parse_ctor_content(self, text: str, i: int, name: str
                            ) -> tuple[list, int]:
        content: list = []
        buf: list[str] = []

        def flush():
            if buf:
                content.append("".join(buf))
                buf.clear()

        while True:
            if i >= len(text):
                raise self._raw_error(f"unterminated <{name}> constructor",
                                      i)
            ch = text[i]
            if ch == "<":
                if text.startswith("</", i):
                    flush()
                    i += 2
                    i, close = self._read_ctor_name(text, i)
                    i = self._skip_raw_ws(text, i)
                    if i >= len(text) or text[i] != ">":
                        raise self._raw_error("malformed closing tag", i)
                    if close != name:
                        raise self._raw_error(
                            f"mismatched </{close}>; expected </{name}>", i)
                    return content, i + 1
                if text.startswith("<!--", i):
                    end = text.find("-->", i)
                    if end == -1:
                        raise self._raw_error("unterminated comment", i)
                    i = end + 3
                    continue
                flush()
                child, i = self._parse_ctor_element(text, i)
                content.append(child)
                continue
            if ch == "{":
                if text.startswith("{{", i):
                    buf.append("{")
                    i += 2
                    continue
                flush()
                expr, i = self._parse_enclosed(text, i)
                content.append(expr)
                continue
            if ch == "}":
                if text.startswith("}}", i):
                    buf.append("}")
                    i += 2
                    continue
                raise self._raw_error("'}' must be doubled in constructor",
                                      i)
            buf.append(ch)
            i += 1

    def _parse_enclosed(self, text: str, i: int) -> tuple[ast.Expr, int]:
        """Parse an embedded ``{ Expr }``; returns (expr, pos after '}')."""
        assert text[i] == "{"
        self.lexer.seek(i + 1)
        expr = self.parse_expr()
        end = self.lexer.sync_pos()
        end = self._skip_raw_ws(text, end)
        if end >= len(text) or text[end] != "}":
            raise self._raw_error("expected '}' closing enclosed "
                                  "expression", end)
        return expr, end + 1
