"""The user-facing engine: a tiny XML database with StandOff XQuery.

:class:`Database` owns a document store and runs queries under one of the
paper's three evaluation strategies (§4.6):

``udf``          StandOff steps are evaluated by the quadratic
                 nested-loop join — the cost model of the XQuery
                 user-defined functions of Figures 2/3.
``basic``        StandOff steps use the Basic StandOff MergeJoin; inside
                 a for-loop the join runs once per iteration.
``ll``           loop-lifted execution: the whole query is evaluated in
                 the ``iter|pos|item`` model and a StandOff step nested
                 in a for-loop becomes a *single* Loop-Lifted StandOff
                 MergeJoin call.

Example::

    db = Database()
    db.add_document("video.xml", xml_text)
    shots = db.query('doc("video.xml")//music[@artist="U2"]'
                     '/select-wide::shot')
"""

from __future__ import annotations

from collections import OrderedDict

from repro.config import (
    DEFAULT_KERNEL,
    DEFAULT_PLAN_CACHE_SIZE,
    DEFAULT_SHARD_MIN_ROWS,
    DEFAULT_STAIRCASE_KERNEL,
    DEFAULT_WORKERS,
    FAMILY_STAIRCASE,
    FAMILY_STANDOFF,
    KERNELS,
)
from repro.exec import lockcheck
from repro.core.steps import Strategy
from repro.errors import XQueryTypeError
from repro.xmldb.dom import Node
from repro.xmldb.store import DocumentStore, StoredDocument
from repro.xquery.context import DynamicContext, Focus, StaticContext
from repro.xquery.parser import parse
from repro.xquery.values import atomic_to_string

_STRATEGIES = {
    "udf": Strategy.UDF,
    "basic": Strategy.BASIC,
    "ll": Strategy.LOOP_LIFTED,
    "looplifted": Strategy.LOOP_LIFTED,
}


class QueryResult(list):
    """An item sequence with serialization helpers."""

    def serialize(self, indent: bool = False, sep: str = "\n") -> str:
        """Serialize the sequence: nodes as XML, atomics as strings."""
        parts = []
        for item in self:
            if isinstance(item, Node):
                parts.append(item.serialize(indent=indent))
            else:
                parts.append(atomic_to_string(item))
        return sep.join(parts)

    def atomized(self) -> list:
        from repro.xquery.values import atomize

        return atomize(self)


class PlanCache:
    """Cross-query LRU of compiled plans: parsed module + static
    context, keyed on (query text, static-context fingerprint).

    The parser is pure and the evaluators never mutate the AST or the
    static context, so a compiled plan is reusable verbatim — parse
    once, evaluate many.  ``max_entries == 0`` (env
    ``REPRO_PLAN_CACHE=0``) disables caching; only failed compilations
    are never cached (static errors re-raise on re-parse).
    """

    def __init__(self, max_entries: int = DEFAULT_PLAN_CACHE_SIZE):
        self._lock = lockcheck.new_lock("PlanCache._lock")
        self._entries: OrderedDict = OrderedDict()
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def enabled(self) -> bool:
        return self.max_entries > 0

    def get(self, text: str, fingerprint=()):
        if not self.enabled:
            return None
        key = (text, fingerprint)
        with self._lock:
            plan = self._entries.get(key)
            if plan is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return plan

    def put(self, text: str, plan, fingerprint=()) -> None:
        if not self.enabled:
            return
        key = (text, fingerprint)
        with self._lock:
            self._entries[key] = plan
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


class Database:
    """An in-memory XML database with the StandOff XQuery extensions."""

    def __init__(self, *, plan_cache_size: int | None = None,
                 storage_backend: str | None = None,
                 session_options: dict[str, str] | None = None) -> None:
        from repro.xmldb.blob import BlobStore

        self.store = DocumentStore(storage_backend=storage_backend)
        self.blobs = BlobStore()
        #: Engine-level ``declare option`` defaults applied beneath
        #: every query's prolog (the prolog wins).  The serving layer
        #: uses the per-call variant (``query(session_options=...)``)
        #: so one shared engine can host sessions with different
        #: static configurations.
        self.session_options = dict(session_options or {})
        #: Compiled-plan LRU (``plan_cache_size=0`` disables; default
        #: from ``REPRO_PLAN_CACHE``).
        self.plan_cache = PlanCache(
            DEFAULT_PLAN_CACHE_SIZE if plan_cache_size is None
            else plan_cache_size)

    def _static_fingerprint(self,
                            session_options: dict[str, str] | None = None
                            ) -> tuple:
        """The plan-cache key component beyond the query text.

        Static analysis is mostly derived from the query text itself;
        the one engine-level input is the session ``declare option``
        defaults (engine-wide :attr:`session_options`, overlaid by the
        per-call *session_options* a serving session supplies), which
        change what a given text compiles to — so they are folded into
        the fingerprint and two sessions with different static
        contexts can never collide in the shared plan cache.  Any
        future static configuration (default collations, module
        resolution) must be folded in here before it can influence
        compilation.
        """
        merged = self._merged_options(session_options)
        if not merged:
            return ("static-v2",)
        return ("static-v2", tuple(sorted(merged.items())))

    def _merged_options(self, session_options: dict[str, str] | None
                        ) -> dict[str, str]:
        if not session_options:
            return self.session_options
        merged = dict(self.session_options)
        merged.update(session_options)
        return merged

    def compile(self, text: str, *,
                session_options: dict[str, str] | None = None):
        """Parse *text* (or fetch it from the plan cache).

        Returns the ``(module, static_context)`` plan without
        evaluating it — the admission-control estimator in
        :mod:`repro.serve` uses this to inspect a query's shape before
        running it, and the work is never wasted: the compiled plan is
        cached, so the subsequent :meth:`query` call hits.
        """
        fingerprint = self._static_fingerprint(session_options)
        plan = self.plan_cache.get(text, fingerprint)
        if plan is None:
            module = parse(text)
            static = StaticContext.from_prolog(
                module.prolog,
                option_defaults=self._merged_options(session_options))
            plan = (module, static)
            self.plan_cache.put(text, plan, fingerprint)
        return plan

    # -- document management ---------------------------------------------

    def add_document(self, uri: str, xml: str, *,
                     keep_whitespace_text: bool = False) -> StoredDocument:
        """Parse and register a document under *uri*."""
        return self.store.add(uri, xml,
                              keep_whitespace_text=keep_whitespace_text)

    def remove_document(self, uri: str) -> None:
        self.store.remove(uri)

    def add_blob(self, uri: str, content) -> None:
        """Register a BLOB (str or bytes) for blob-content/-substring."""
        self.blobs.add(uri, content)

    def add_document_standoff(self, uri: str, xml: str, *,
                              blob_uri: str | None = None,
                              permute: bool = False) -> StoredDocument:
        """Convert an *inline* XML document to stand-off form and store it.

        The text content moves to a BLOB (registered under *blob_uri*,
        default ``uri + ".blob"``); every element receives a
        ``start``/``end`` region into it (see
        :func:`repro.xmark.standoffize.standoffize`).  With
        ``permute=False`` (default) the element structure is preserved,
        so ``select-narrow`` coincides with ``descendant`` — the
        conversion is purely representational.
        """
        from repro.xmark.standoffize import standoffize
        from repro.xmldb.parser import parse_document

        source = parse_document(xml, uri=uri)
        bundle = standoffize(source, permute=permute)
        stored = self.store.add(uri, bundle.document)
        self.blobs.add(blob_uri or uri + ".blob", bundle.blob)
        return stored

    def document(self, uri: str) -> StoredDocument:
        return self.store.get(uri)

    def __contains__(self, uri: str) -> bool:
        return uri in self.store

    # -- querying -----------------------------------------------------------

    def query(self, text: str, *, strategy: str = "basic",
              active_structure: str = "list",
              pushdown: str = "always",
              kernel: str = DEFAULT_KERNEL,
              staircase_kernel: str = DEFAULT_STAIRCASE_KERNEL,
              workers=DEFAULT_WORKERS,
              shard_min_rows: int = DEFAULT_SHARD_MIN_ROWS,
              executor: str | None = None,
              context_uri: str | None = None,
              variables: dict | None = None,
              session_options: dict[str, str] | None = None
              ) -> QueryResult:
        """Parse and evaluate a query.

        :param text: the XQuery text (prolog + body).
        :param strategy: ``udf`` | ``basic`` | ``ll`` (see module docs).
        :param active_structure: merge-join active-items structure
            (``list`` or ``heap``, §5 ablation).
        :param pushdown: name-test pushdown policy for StandOff steps —
            ``always`` (the builtin-function behaviour), ``never``
            (post-filter) or ``auto`` (skip pushdown for non-selective
            tests; the §3.3 (iii) optimizer choice).
        :param kernel: StandOff join kernel — ``ll`` (row-at-a-time
            reference merge), ``vectorized`` (batched NumPy kernels
            building columnar results) or ``auto`` (per-join choice:
            ``ll`` below the input-size threshold where NumPy call
            overhead dominates, and for overlap densities that would
            exhaust the vectorized pair budget).
        :param staircase_kernel: Staircase axis kernel for the tree
            axes under the loop-lifted strategy — same choices,
            resolved per step through the unified kernel registry
            (default ``auto``).
        :param workers: sharded fan-out — ``"serial"`` (deterministic
            single-shard reference, the default) or a worker count:
            batched kernel calls are partitioned (StandOff candidate
            tables by fragment and iteration range, staircase pools by
            contiguous pre-order ranges) and dispatched one shard per
            thread, merged columnar without re-sorting.  Default
            overridable process-wide via ``REPRO_WORKERS``.
        :param shard_min_rows: minimum rows per shard before a join
            call fans out (see :mod:`repro.exec.sharding`).
        :param context_uri: optional document whose root becomes the
            initial context item (so relative paths like ``//a`` work
            without ``doc(...)``).
        :param variables: optional external variable bindings
            (name -> item or sequence).
        :param session_options: per-session ``declare option``
            defaults overlaid on the engine-level
            :attr:`session_options` (the query prolog overrides both);
            part of the plan-cache key, so sessions with different
            static contexts share the cache without collisions.
        """
        try:
            strat = _STRATEGIES[strategy]
        except KeyError:
            raise ValueError(
                f"unknown strategy {strategy!r}; expected one of "
                f"{sorted(_STRATEGIES)}") from None
        module, static = self.compile(text,
                                      session_options=session_options)
        if pushdown not in ("always", "never", "auto"):
            raise ValueError(
                f"unknown pushdown policy {pushdown!r}; expected "
                "'always', 'never' or 'auto'")
        KERNELS.validate(FAMILY_STANDOFF, kernel)
        KERNELS.validate(FAMILY_STAIRCASE, staircase_kernel)
        ctx = DynamicContext(self.store, static, strat, active_structure,
                             blobs=self.blobs, kernel=kernel,
                             staircase_kernel=staircase_kernel,
                             workers=workers,
                             shard_min_rows=shard_min_rows,
                             executor=executor)
        ctx.pushdown = pushdown
        if variables:
            for name, value in variables.items():
                ctx.variables[name] = (list(value)
                                       if isinstance(value, (list, tuple))
                                       else [value])
                ctx.globals[name] = ctx.variables[name]
        if context_uri is not None:
            root = self.store.get(context_uri).document
            ctx.focus = Focus(root, 1, 1)

        if strat is Strategy.LOOP_LIFTED:
            from repro.xquery.bulk import evaluate_module_bulk

            return QueryResult(evaluate_module_bulk(module, ctx))
        from repro.xquery.evaluator import evaluate_module

        return QueryResult(evaluate_module(module, ctx))

    # -- updates ------------------------------------------------------------

    def insert_nodes(self, uri: str, parent_query: str,
                     xml_fragment: str) -> int:
        """Insert parsed *xml_fragment* under every node selected by
        *parent_query* (which must select elements of document *uri*).

        Returns the number of insertion points.  All derived structures
        of the document (shredded columns, region indexes) and the
        collection-global index are invalidated — the per-document vs
        global maintenance trade-off of §3.3 (ii).
        """
        from repro.errors import XQueryTypeError
        from repro.xmldb.dom import Element
        from repro.xmldb.parser import parse_fragment

        stored = self.store.get(uri)
        parents = self.query(parent_query)
        for parent in parents:
            if not isinstance(parent, Element) \
                    or parent.document is not stored.document:
                raise XQueryTypeError(
                    "insert_nodes: parent query must select elements "
                    f"of {uri!r}")
        for parent in parents:
            for node in parse_fragment(xml_fragment):
                parent.append(node)
        if parents:
            self.store.touch(uri)
        return len(parents)

    def delete_nodes(self, uri: str, query: str) -> int:
        """Delete every node selected by *query* from document *uri*.

        Returns the number of deleted nodes; derived structures are
        invalidated as for :meth:`insert_nodes`.
        """
        from repro.errors import XQueryTypeError
        from repro.xmldb.dom import Attr, Document, Node

        stored = self.store.get(uri)
        victims = self.query(query)
        for node in victims:
            if not isinstance(node, Node) or isinstance(node, Document) \
                    or node.document is not stored.document:
                raise XQueryTypeError(
                    "delete_nodes: query must select non-document nodes "
                    f"of {uri!r}")
        deleted = 0
        for node in victims:
            parent = node.parent
            if parent is None:
                continue
            if isinstance(node, Attr):
                parent.attributes.remove(node)
            else:
                parent.children.remove(node)
            node.parent = None
            deleted += 1
        if deleted:
            self.store.touch(uri)
        return deleted

    def explain(self, text: str) -> str:
        """Parse a query and render its AST (debugging aid)."""
        module = parse(text)
        import pprint

        return pprint.pformat(module, width=100)
