"""Lexer for the XQuery subset.

The lexer is an on-demand scanner: the parser pulls tokens lazily and can
drop back to *raw* character scanning (needed for direct element
constructors, which embed XML syntax that must not be tokenized as
XQuery).  ``sync_pos()`` hands the parser the raw position of the next
unconsumed token; ``seek()`` moves the scanner after raw consumption.

Tokens are ``(type, value, pos)`` with types:

``name``     QName or NCName (XQuery names may contain ``-`` and ``.``;
             per the standard, ``a-b`` is one name — subtraction needs
             whitespace)
``string``   string literal (quotes stripped, XML entities expanded,
             doubled quotes unescaped)
``integer`` / ``decimal`` / ``double``  numeric literals
``symbol``   operators and punctuation
``eof``      end of input
"""

from __future__ import annotations

from repro.errors import XMLSyntaxError, XQuerySyntaxError
from repro.xmldb.escape import unescape

_SYMBOLS_3 = ()
_SYMBOLS_2 = ("//", "::", "..", ":=", "<=", ">=", "!=", "<<", ">>")
_SYMBOLS_1 = tuple("()[]{},;$@/:.*+-=<>|?")

_WS = " \t\r\n"

_NAME_START_EXTRA = "_"
_NAME_EXTRA = "_-."


class Token:
    __slots__ = ("type", "value", "pos")

    def __init__(self, type_: str, value: str, pos: int):
        self.type = type_
        self.value = value
        self.pos = pos

    def is_symbol(self, *values: str) -> bool:
        return self.type == "symbol" and self.value in values

    def is_name(self, *values: str) -> bool:
        return self.type == "name" and (not values or self.value in values)

    def __repr__(self) -> str:
        return f"Token({self.type}, {self.value!r})"


class Lexer:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.n = len(text)
        self._buffer: list[Token] = []

    # -- diagnostics ---------------------------------------------------------

    def line_col(self, pos: int) -> tuple[int, int]:
        line = self.text.count("\n", 0, pos) + 1
        last_nl = self.text.rfind("\n", 0, pos)
        return line, pos - last_nl

    def error(self, message: str, pos: int | None = None) -> XQuerySyntaxError:
        pos = self.pos if pos is None else pos
        line, col = self.line_col(pos)
        return XQuerySyntaxError(message, line, col)

    # -- raw-mode support ------------------------------------------------------

    def sync_pos(self) -> int:
        """Raw position of the next unconsumed token (buffer discarded)."""
        if self._buffer:
            pos = self._buffer[0].pos
            self._buffer.clear()
            self.pos = pos
        return self.pos

    def seek(self, pos: int) -> None:
        """Resume token scanning at raw position *pos*."""
        self._buffer.clear()
        self.pos = pos

    # -- token access ------------------------------------------------------------

    def peek(self, k: int = 0) -> Token:
        while len(self._buffer) <= k:
            self._buffer.append(self._scan())
        return self._buffer[k]

    def next(self) -> Token:
        if self._buffer:
            return self._buffer.pop(0)
        return self._scan()

    # -- scanning -----------------------------------------------------------------

    def _skip_ws_and_comments(self) -> None:
        while self.pos < self.n:
            ch = self.text[self.pos]
            if ch in _WS:
                self.pos += 1
            elif self.text.startswith("(:", self.pos):
                self._skip_comment()
            else:
                return

    def _skip_comment(self) -> None:
        start = self.pos
        depth = 0
        while self.pos < self.n:
            if self.text.startswith("(:", self.pos):
                depth += 1
                self.pos += 2
            elif self.text.startswith(":)", self.pos):
                depth -= 1
                self.pos += 2
                if depth == 0:
                    return
            else:
                self.pos += 1
        raise self.error("unterminated comment", start)

    def _scan(self) -> Token:
        self._skip_ws_and_comments()
        if self.pos >= self.n:
            return Token("eof", "", self.pos)
        start = self.pos
        ch = self.text[start]

        if ch in "\"'":
            return self._scan_string(ch)
        if ch.isdigit() or (ch == "." and start + 1 < self.n
                            and self.text[start + 1].isdigit()):
            return self._scan_number()
        if ch.isalpha() or ch in _NAME_START_EXTRA:
            return self._scan_name()
        for sym in _SYMBOLS_2:
            if self.text.startswith(sym, start):
                # '..' must not eat the start of '..' inside a number --
                # numbers were handled above, safe here.
                self.pos += 2
                return Token("symbol", sym, start)
        if ch in _SYMBOLS_1:
            self.pos += 1
            return Token("symbol", ch, start)
        raise self.error(f"unexpected character {ch!r}")

    def _scan_string(self, quote: str) -> Token:
        start = self.pos
        self.pos += 1
        parts: list[str] = []
        while True:
            idx = self.text.find(quote, self.pos)
            if idx == -1:
                raise self.error("unterminated string literal", start)
            parts.append(self.text[self.pos:idx])
            self.pos = idx + 1
            if self.pos < self.n and self.text[self.pos] == quote:
                parts.append(quote)     # doubled quote escape
                self.pos += 1
            else:
                break
        line, col = self.line_col(start)
        try:
            value = unescape("".join(parts), line, col)
        except (XMLSyntaxError, ValueError):
            # Only the scanner's own failure modes may be reworded as a
            # syntax error: XMLSyntaxError from bad entities/charrefs,
            # ValueError from the int() digit limit on huge charrefs.
            # Anything else — above all a BenchmarkTimeout or
            # cancellation unwinding through this frame — propagates.
            raise self.error("bad entity reference in string literal",
                             start) from None
        return Token("string", value, start)

    def _scan_number(self) -> Token:
        start = self.pos
        while self.pos < self.n and self.text[self.pos].isdigit():
            self.pos += 1
        kind = "integer"
        if self.pos < self.n and self.text[self.pos] == "." and not \
                self.text.startswith("..", self.pos):
            kind = "decimal"
            self.pos += 1
            while self.pos < self.n and self.text[self.pos].isdigit():
                self.pos += 1
        if self.pos < self.n and self.text[self.pos] in "eE":
            probe = self.pos + 1
            if probe < self.n and self.text[probe] in "+-":
                probe += 1
            if probe < self.n and self.text[probe].isdigit():
                kind = "double"
                self.pos = probe
                while self.pos < self.n and self.text[self.pos].isdigit():
                    self.pos += 1
        return Token(kind, self.text[start:self.pos], start)

    def _scan_name(self) -> Token:
        start = self.pos
        text, n = self.text, self.n
        while self.pos < n:
            ch = text[self.pos]
            if ch.isalnum() or ch in _NAME_EXTRA:
                self.pos += 1
            else:
                break
        name = text[start:self.pos]
        # QName: allow one prefix colon when directly followed by a name
        # start character -- but not '::' (axis) or ':=' (let).
        if (self.pos < n and text[self.pos] == ":"
                and self.pos + 1 < n
                and (text[self.pos + 1].isalpha()
                     or text[self.pos + 1] in _NAME_START_EXTRA)
                and not text.startswith("::", self.pos)):
            self.pos += 1
            local_start = self.pos
            while self.pos < n:
                ch = text[self.pos]
                if ch.isalnum() or ch in _NAME_EXTRA:
                    self.pos += 1
                else:
                    break
            name = f"{name}:{text[local_start:self.pos]}"
        return Token("name", name, start)
