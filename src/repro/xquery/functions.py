"""Builtin function library (the ``fn:`` subset the paper's queries use).

Each builtin is a callable ``fn(ctx, args)`` where ``args`` is a list of
already-evaluated item sequences; it returns an item sequence.  Functions
are looked up by local name (prefixes stripped) and arity.

The four StandOff operators are also registered as *builtin functions*
with one and two arguments — the paper's Alternative 3 — delegating to
the same join machinery as the axis steps.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.errors import XQueryDynamicError, XQueryStaticError, XQueryTypeError
from repro.xmldb.dom import Attr, Document, Element, Node, document_order
from repro.xquery.context import DynamicContext, Sequence
from repro.xquery.values import (
    atomic_to_string,
    atomize,
    atomize_single,
    effective_boolean_value,
    is_node,
    string_value,
    to_number,
)

_REGISTRY: dict[tuple[str, int], Callable] = {}
_VARARG: dict[str, Callable] = {}


def builtin(name: str, *arities: int):
    def register(fn):
        for arity in arities:
            _REGISTRY[(name, arity)] = fn
        return fn
    return register


def vararg_builtin(name: str):
    def register(fn):
        _VARARG[name] = fn
        return fn
    return register


def lookup_builtin(name: str, arity: int) -> Callable | None:
    local = name.rpartition(":")[2]
    fn = _REGISTRY.get((local, arity))
    if fn is None:
        fn = _VARARG.get(local)
    return fn


def known_builtin_names() -> set[str]:
    return {name for name, _ in _REGISTRY} | set(_VARARG)


# ----------------------------------------------------------------------
# documents and nodes
# ----------------------------------------------------------------------

@builtin("doc", 1)
def fn_doc(ctx: DynamicContext, args) -> Sequence:
    uri = string_value(args[0])
    return [ctx.store.get(uri).document]


@builtin("root", 0)
def fn_root_0(ctx: DynamicContext, args) -> Sequence:
    item = ctx.require_focus().item
    if not is_node(item):
        raise XQueryTypeError("fn:root requires a node context item")
    return [item.root]


@builtin("root", 1)
def fn_root_1(ctx: DynamicContext, args) -> Sequence:
    if not args[0]:
        return []
    (node,) = _require_nodes(args[0], "fn:root", exactly=1)
    return [node.root]


@builtin("name", 0, 1)
def fn_name(ctx: DynamicContext, args) -> Sequence:
    node = _focus_or_arg(ctx, args, "fn:name")
    if node is None:
        return [""]
    if isinstance(node, Element):
        return [node.tag]
    if isinstance(node, Attr):
        return [node.name]
    return [""]


@builtin("local-name", 0, 1)
def fn_local_name(ctx: DynamicContext, args) -> Sequence:
    node = _focus_or_arg(ctx, args, "fn:local-name")
    if node is None:
        return [""]
    if isinstance(node, (Element, Attr)):
        return [node.local_name]
    return [""]


def _focus_or_arg(ctx, args, what) -> Node | None:
    if args:
        if not args[0]:
            return None
        (node,) = _require_nodes(args[0], what, exactly=1)
        return node
    item = ctx.require_focus().item
    if not is_node(item):
        raise XQueryTypeError(f"{what} requires a node")
    return item


def _require_nodes(seq: Sequence, what: str, exactly: int | None = None
                   ) -> list[Node]:
    if exactly is not None and len(seq) != exactly:
        raise XQueryTypeError(f"{what} requires exactly {exactly} node(s)")
    for item in seq:
        if not is_node(item):
            raise XQueryTypeError(f"{what} requires nodes, got "
                                  f"{type(item).__name__}")
    return list(seq)


# ----------------------------------------------------------------------
# sequences
# ----------------------------------------------------------------------

@builtin("count", 1)
def fn_count(ctx, args) -> Sequence:
    return [len(args[0])]


@builtin("empty", 1)
def fn_empty(ctx, args) -> Sequence:
    return [not args[0]]


@builtin("exists", 1)
def fn_exists(ctx, args) -> Sequence:
    return [bool(args[0])]


@builtin("distinct-values", 1)
def fn_distinct_values(ctx, args) -> Sequence:
    seen = set()
    out = []
    for value in atomize(args[0]):
        key = (type(value).__name__, value)
        if key not in seen:
            seen.add(key)
            out.append(value)
    return out


@builtin("reverse", 1)
def fn_reverse(ctx, args) -> Sequence:
    return list(reversed(args[0]))


@builtin("subsequence", 2, 3)
def fn_subsequence(ctx, args) -> Sequence:
    seq = args[0]
    start = round(to_number(atomize_single(args[1], "subsequence start")))
    if len(args) == 3:
        length = round(to_number(atomize_single(args[2],
                                                "subsequence length")))
        stop = start + length
    else:
        stop = len(seq) + 1
    return [item for i, item in enumerate(seq, start=1)
            if start <= i < stop]


@builtin("index-of", 2)
def fn_index_of(ctx, args) -> Sequence:
    target = atomize_single(args[1], "fn:index-of search value")
    return [i for i, value in enumerate(atomize(args[0]), start=1)
            if value == target]


@builtin("insert-before", 3)
def fn_insert_before(ctx, args) -> Sequence:
    seq, pos_seq, ins = args
    pos = int(to_number(atomize_single(pos_seq, "fn:insert-before")))
    pos = max(1, min(pos, len(seq) + 1))
    return [*seq[:pos - 1], *ins, *seq[pos - 1:]]


@builtin("remove", 2)
def fn_remove(ctx, args) -> Sequence:
    pos = int(to_number(atomize_single(args[1], "fn:remove")))
    return [item for i, item in enumerate(args[0], start=1) if i != pos]


@builtin("zero-or-one", 1)
def fn_zero_or_one(ctx, args) -> Sequence:
    if len(args[0]) > 1:
        raise XQueryDynamicError("fn:zero-or-one: more than one item",
                                 code="err:FORG0003")
    return args[0]


@builtin("exactly-one", 1)
def fn_exactly_one(ctx, args) -> Sequence:
    if len(args[0]) != 1:
        raise XQueryDynamicError("fn:exactly-one: not exactly one item",
                                 code="err:FORG0005")
    return args[0]


# ----------------------------------------------------------------------
# booleans
# ----------------------------------------------------------------------

@builtin("boolean", 1)
def fn_boolean(ctx, args) -> Sequence:
    return [effective_boolean_value(args[0])]


@builtin("not", 1)
def fn_not(ctx, args) -> Sequence:
    return [not effective_boolean_value(args[0])]


@builtin("true", 0)
def fn_true(ctx, args) -> Sequence:
    return [True]


@builtin("false", 0)
def fn_false(ctx, args) -> Sequence:
    return [False]


# ----------------------------------------------------------------------
# numbers and aggregation
# ----------------------------------------------------------------------

@builtin("number", 0, 1)
def fn_number(ctx, args) -> Sequence:
    if args:
        value = atomize_single(args[0], "fn:number")
    else:
        value = atomize_single([ctx.require_focus().item], "fn:number")
    if value is None:
        return [float("nan")]
    try:
        return [to_number(value)]
    except XQueryDynamicError:
        return [float("nan")]


@builtin("sum", 1, 2)
def fn_sum(ctx, args) -> Sequence:
    values = [to_number(v) for v in atomize(args[0])]
    if not values:
        if len(args) == 2:
            return args[1]
        return [0]
    total = sum(values)
    return [int(total) if total == int(total) else total]


@builtin("avg", 1)
def fn_avg(ctx, args) -> Sequence:
    values = [to_number(v) for v in atomize(args[0])]
    if not values:
        return []
    return [sum(values) / len(values)]


@builtin("min", 1)
def fn_min(ctx, args) -> Sequence:
    values = atomize(args[0])
    if not values:
        return []
    return [min(to_number(v) for v in values)]


@builtin("max", 1)
def fn_max(ctx, args) -> Sequence:
    values = atomize(args[0])
    if not values:
        return []
    return [max(to_number(v) for v in values)]


@builtin("abs", 1)
def fn_abs(ctx, args) -> Sequence:
    value = atomize_single(args[0], "fn:abs")
    if value is None:
        return []
    return [abs(to_number(value))]


@builtin("floor", 1)
def fn_floor(ctx, args) -> Sequence:
    value = atomize_single(args[0], "fn:floor")
    if value is None:
        return []
    return [math.floor(to_number(value))]


@builtin("ceiling", 1)
def fn_ceiling(ctx, args) -> Sequence:
    value = atomize_single(args[0], "fn:ceiling")
    if value is None:
        return []
    return [math.ceil(to_number(value))]


@builtin("round", 1)
def fn_round(ctx, args) -> Sequence:
    value = atomize_single(args[0], "fn:round")
    if value is None:
        return []
    return [math.floor(to_number(value) + 0.5)]


# ----------------------------------------------------------------------
# strings
# ----------------------------------------------------------------------

@builtin("string", 0, 1)
def fn_string(ctx, args) -> Sequence:
    if args:
        return [string_value(args[0])]
    return [string_value([ctx.require_focus().item])]


@builtin("data", 1)
def fn_data(ctx, args) -> Sequence:
    return atomize(args[0])


@builtin("string-length", 0, 1)
def fn_string_length(ctx, args) -> Sequence:
    if args:
        return [len(string_value(args[0]))]
    return [len(string_value([ctx.require_focus().item]))]


@builtin("normalize-space", 0, 1)
def fn_normalize_space(ctx, args) -> Sequence:
    if args:
        text = string_value(args[0])
    else:
        text = string_value([ctx.require_focus().item])
    return [" ".join(text.split())]


@vararg_builtin("concat")
def fn_concat(ctx, args) -> Sequence:
    if len(args) < 2:
        raise XQueryStaticError("fn:concat requires at least two arguments",
                                code="err:XPST0017")
    return ["".join(string_value(arg) for arg in args)]


@builtin("string-join", 1, 2)
def fn_string_join(ctx, args) -> Sequence:
    sep = string_value(args[1]) if len(args) == 2 else ""
    return [sep.join(atomic_to_string(v) for v in atomize(args[0]))]


@builtin("contains", 2)
def fn_contains(ctx, args) -> Sequence:
    return [string_value(args[1]) in string_value(args[0])]


@builtin("starts-with", 2)
def fn_starts_with(ctx, args) -> Sequence:
    return [string_value(args[0]).startswith(string_value(args[1]))]


@builtin("ends-with", 2)
def fn_ends_with(ctx, args) -> Sequence:
    return [string_value(args[0]).endswith(string_value(args[1]))]


@builtin("substring", 2, 3)
def fn_substring(ctx, args) -> Sequence:
    text = string_value(args[0])
    start = round(to_number(atomize_single(args[1], "substring start")))
    if len(args) == 3:
        length = round(to_number(atomize_single(args[2],
                                                "substring length")))
        stop = start + length
    else:
        stop = len(text) + 1
    return ["".join(ch for i, ch in enumerate(text, start=1)
                    if start <= i < stop)]


@builtin("substring-before", 2)
def fn_substring_before(ctx, args) -> Sequence:
    text, sep = string_value(args[0]), string_value(args[1])
    before, found, _after = text.partition(sep)
    return [before if found else ""]


@builtin("substring-after", 2)
def fn_substring_after(ctx, args) -> Sequence:
    text, sep = string_value(args[0]), string_value(args[1])
    _before, found, after = text.partition(sep)
    return [after if found else ""]


@builtin("upper-case", 1)
def fn_upper_case(ctx, args) -> Sequence:
    return [string_value(args[0]).upper()]


@builtin("lower-case", 1)
def fn_lower_case(ctx, args) -> Sequence:
    return [string_value(args[0]).lower()]


@builtin("translate", 3)
def fn_translate(ctx, args) -> Sequence:
    text = string_value(args[0])
    src = string_value(args[1])
    dst = string_value(args[2])
    table = {}
    for i, ch in enumerate(src):
        table[ch] = dst[i] if i < len(dst) else None
    return ["".join(table.get(ch, ch) for ch in text
                    if table.get(ch, ch) is not None)]


# ----------------------------------------------------------------------
# focus
# ----------------------------------------------------------------------

@builtin("position", 0)
def fn_position(ctx, args) -> Sequence:
    return [ctx.require_focus().position]


@builtin("last", 0)
def fn_last(ctx, args) -> Sequence:
    return [ctx.require_focus().size]


# ----------------------------------------------------------------------
# StandOff builtins (Alternative 3 of §3.2)
# ----------------------------------------------------------------------

def _standoff_builtin(op_name: str):
    from repro.xquery.standoff import standoff_function

    def fn(ctx: DynamicContext, args) -> Sequence:
        context_nodes = _require_nodes(args[0], op_name)
        candidates = (_require_nodes(args[1], op_name)
                      if len(args) == 2 else None)
        return standoff_function(ctx, op_name, context_nodes, candidates)

    return fn


for _op in ("select-narrow", "select-wide", "reject-narrow", "reject-wide"):
    _REGISTRY[(_op, 1)] = _standoff_builtin(_op)
    _REGISTRY[(_op, 2)] = _standoff_builtin(_op)


# Extension builtins (BLOB access, region predicates) register on import.
from repro.xquery import standoff_functions  # noqa: E402,F401  (registration)


@builtin("deep-equal", 2)
def fn_deep_equal(ctx, args) -> Sequence:
    """Pairwise deep comparison of two sequences (fn:deep-equal subset:
    atomic values compare by value with untyped coercion; nodes compare
    by name, attributes and recursively by children)."""
    from repro.xquery.values import compare_atomic

    def item_equal(a, b) -> bool:
        if is_node(a) != is_node(b):
            return False
        if not is_node(a):
            try:
                return compare_atomic(a, b, "=")
            except XQueryTypeError:
                return False
        return node_equal(a, b)

    def node_equal(a, b) -> bool:
        if a.kind != b.kind:
            return False
        if isinstance(a, Element):
            if a.tag != b.tag:
                return False
            mine = {attr.name: attr.value for attr in a.attributes}
            theirs = {attr.name: attr.value for attr in b.attributes}
            if mine != theirs:
                return False
            a_kids = [c for c in a.children]
            b_kids = [c for c in b.children]
            if len(a_kids) != len(b_kids):
                return False
            return all(node_equal(x, y) for x, y in zip(a_kids, b_kids))
        if isinstance(a, Attr):
            return a.name == b.name and a.value == b.value
        if isinstance(a, Document):
            a_kids, b_kids = a.children, b.children
            if len(a_kids) != len(b_kids):
                return False
            return all(node_equal(x, y) for x, y in zip(a_kids, b_kids))
        return a.string_value() == b.string_value()

    left, right = args
    if len(left) != len(right):
        return [False]
    return [all(item_equal(a, b) for a, b in zip(left, right))]


@builtin("serialize", 1)
def fn_serialize(ctx, args) -> Sequence:
    """Serialize a sequence to its XML text (nodes) / lexical form."""
    parts = []
    for item in args[0]:
        if is_node(item):
            parts.append(item.serialize())
        else:
            parts.append(atomic_to_string(item))
    return ["".join(parts)]
