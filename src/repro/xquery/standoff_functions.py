"""Extension builtins: BLOB access and region predicates.

These go beyond the paper's four operators but stay inside its model:

``blob-content($blob-uri, $node)``
    The BLOB content an area-annotation refers to — the concatenated
    (start-ordered) fragments of the node's regions.  This is the
    "retrieve the annotated object" half of stand-off annotation that
    the XIRAF forensic system needed in practice.

``blob-substring($blob-uri, $start, $end)``
    Raw inclusive-range access to a registered BLOB.

``region-relation($node1, $node2)``
    The Allen relation (one of the 13 of §3) between the *envelopes* of
    two annotations, as a string such as ``"overlaps"`` or ``"during"``.

``standoff-contains($node1, $node2)`` / ``standoff-overlaps(...)``
    The §3.1 predicates between two area-annotations (∀/∃-quantified
    over their region sets), as booleans — the predicate form of
    select-narrow / select-wide for use inside ``where`` clauses.

``regions($node)``
    The node's region boundaries as a flat sequence
    ``(start1, end1, start2, end2, ...)``.
"""

from __future__ import annotations

from repro.core.region import Area
from repro.core.relations import classify
from repro.errors import XQueryDynamicError, XQueryTypeError
from repro.xmldb.dom import Node
from repro.xquery.context import DynamicContext, Sequence
from repro.xquery.functions import builtin
from repro.xquery.values import atomize_single, string_value, to_number


def _area_of(ctx: DynamicContext, node: Node, what: str) -> Area:
    index = ctx.region_index_for(node.root)
    area = index.area_of(node.pre)
    if area is None:
        name = getattr(node, "tag", node.kind_name)
        raise XQueryDynamicError(
            f"{what}: node <{name}> is not an area-annotation "
            "(no region information under the active standoff options)")
    return area


def _one_node(seq: Sequence, what: str) -> Node:
    if len(seq) != 1 or not isinstance(seq[0], Node):
        raise XQueryTypeError(f"{what} requires exactly one node")
    return seq[0]


@builtin("blob-content", 2)
def fn_blob_content(ctx: DynamicContext, args) -> Sequence:
    uri = string_value(args[0])
    node = _one_node(args[1], "blob-content")
    area = _area_of(ctx, node, "blob-content")
    blob = ctx.blobs.get(uri)
    content = blob.extract(area)
    if isinstance(content, bytes):
        content = content.decode("latin-1")
    return [content]


@builtin("blob-substring", 3)
def fn_blob_substring(ctx: DynamicContext, args) -> Sequence:
    uri = string_value(args[0])
    start = int(to_number(atomize_single(args[1], "blob-substring start")))
    end = int(to_number(atomize_single(args[2], "blob-substring end")))
    blob = ctx.blobs.get(uri)
    from repro.core.region import Region

    content = blob.slice(Region(start, end))
    if isinstance(content, bytes):
        content = content.decode("latin-1")
    return [content]


@builtin("blob-length", 1)
def fn_blob_length(ctx: DynamicContext, args) -> Sequence:
    return [len(ctx.blobs.get(string_value(args[0])))]


@builtin("region-relation", 2)
def fn_region_relation(ctx: DynamicContext, args) -> Sequence:
    a = _area_of(ctx, _one_node(args[0], "region-relation"),
                 "region-relation")
    b = _area_of(ctx, _one_node(args[1], "region-relation"),
                 "region-relation")
    return [classify(a.envelope, b.envelope).value]


@builtin("standoff-contains", 2)
def fn_standoff_contains(ctx: DynamicContext, args) -> Sequence:
    a = _area_of(ctx, _one_node(args[0], "standoff-contains"),
                 "standoff-contains")
    b = _area_of(ctx, _one_node(args[1], "standoff-contains"),
                 "standoff-contains")
    return [a.contains(b)]


@builtin("standoff-overlaps", 2)
def fn_standoff_overlaps(ctx: DynamicContext, args) -> Sequence:
    a = _area_of(ctx, _one_node(args[0], "standoff-overlaps"),
                 "standoff-overlaps")
    b = _area_of(ctx, _one_node(args[1], "standoff-overlaps"),
                 "standoff-overlaps")
    return [a.overlaps(b)]


@builtin("regions", 1)
def fn_regions(ctx: DynamicContext, args) -> Sequence:
    node = _one_node(args[0], "regions")
    area = _area_of(ctx, node, "regions")
    out: Sequence = []
    for region in area.regions:
        out.append(region.start)
        out.append(region.end)
    return out


# ----------------------------------------------------------------------
# cross-fragment querying (paper §3.3 (ii))
# ----------------------------------------------------------------------

@builtin("collection", 0)
def fn_collection(ctx: DynamicContext, args) -> Sequence:
    """All stored document nodes, in storage (doc id) order."""
    return [stored.document for stored in
            sorted(ctx.store, key=lambda s: s.doc_id)]


def _global_standoff(op_name: str):
    """Builtin factory for the cross-fragment StandOff functions.

    ``select-narrow-global($context)`` matches candidates from *every*
    stored document — the multiple-annotation-layers-over-one-BLOB use
    case the paper discusses (and decides against for axis steps, since
    it needs a collection-global region index).
    """
    from repro.core.global_index import global_standoff_join
    from repro.core.naive import StandoffOp

    def fn(ctx: DynamicContext, args) -> Sequence:
        from repro.xmldb.dom import Document

        op = StandoffOp.from_name(op_name)
        context_rows = []
        for node in args[0]:
            if not isinstance(node, Node):
                raise XQueryTypeError(
                    f"{op_name}-global requires node arguments")
            root = node.root
            if not isinstance(root, Document):
                raise XQueryDynamicError(
                    f"{op_name}-global only covers stored documents; "
                    "the context node is a constructed fragment")
            stored = ctx.store.by_document(root)
            if stored is None:
                raise XQueryDynamicError(
                    f"{op_name}-global only covers stored documents")
            context_rows.append((0, stored.doc_id, node.pre))
        if not context_rows:
            return []
        config = ctx.standoff_config
        index = ctx.store.global_region_index(config)
        per_fragment = ctx.store.region_indexes(config)
        result = global_standoff_join(op, context_rows, index,
                                      per_fragment)
        out: Sequence = []
        for doc_id, pre in result.get(0, []):
            document = ctx.store.by_id(doc_id).document
            out.append(document.node_by_pre(pre))
        return out

    return fn


for _op in ("select-narrow", "select-wide", "reject-narrow",
            "reject-wide"):
    from repro.xquery.functions import _REGISTRY as _R

    _R[(f"{_op}-global", 1)] = _global_standoff(_op)
