"""Abstract syntax tree for the XQuery subset.

Nodes are plain dataclasses; the evaluators dispatch on type.  Every node
records its source position for error messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

# ----------------------------------------------------------------------
# prolog
# ----------------------------------------------------------------------

@dataclass
class Prolog:
    options: dict[str, str] = field(default_factory=dict)
    namespaces: dict[str, str] = field(default_factory=dict)
    functions: list["FunctionDecl"] = field(default_factory=list)
    variables: list["VariableDecl"] = field(default_factory=list)


@dataclass
class FunctionDecl:
    name: str
    params: list[str]              # parameter variable names
    param_types: list[Optional[str]]
    return_type: Optional[str]
    body: "Expr"
    pos: int = 0


@dataclass
class VariableDecl:
    name: str
    value: "Expr"
    pos: int = 0


@dataclass
class Module:
    prolog: Prolog
    body: "Expr"


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------

class Expr:
    """Base marker class for expression nodes."""

    pos: int = 0


@dataclass
class Literal(Expr):
    value: object                  # str | int | float | bool
    pos: int = 0


@dataclass
class EmptySequence(Expr):
    pos: int = 0


@dataclass
class VarRef(Expr):
    name: str
    pos: int = 0


@dataclass
class ContextItem(Expr):
    pos: int = 0


@dataclass
class Sequence(Expr):
    """Comma operator: concatenation of item sequences."""

    items: list[Expr] = field(default_factory=list)
    pos: int = 0


@dataclass
class FunctionCall(Expr):
    name: str
    args: list[Expr] = field(default_factory=list)
    pos: int = 0


@dataclass
class UnaryOp(Expr):
    op: str                        # '-' or '+'
    operand: Expr = None
    pos: int = 0


@dataclass
class BinaryOp(Expr):
    """Arithmetic / comparison / logic / set operators."""

    op: str
    left: Expr = None
    right: Expr = None
    pos: int = 0


@dataclass
class RangeExpr(Expr):
    lo: Expr = None
    hi: Expr = None
    pos: int = 0


@dataclass
class IfExpr(Expr):
    condition: Expr = None
    then: Expr = None
    orelse: Expr = None
    pos: int = 0


@dataclass
class ForClause:
    var: str
    binding: Expr
    position_var: Optional[str] = None
    pos: int = 0


@dataclass
class LetClause:
    var: str
    value: Expr = None
    pos: int = 0


@dataclass
class OrderSpec:
    key: Expr
    descending: bool = False
    pos: int = 0


@dataclass
class FLWOR(Expr):
    clauses: list = field(default_factory=list)   # For/Let in order
    where: Optional[Expr] = None
    order_by: list[OrderSpec] = field(default_factory=list)
    return_expr: Expr = None
    pos: int = 0


@dataclass
class Quantified(Expr):
    quantifier: str                # 'some' | 'every'
    var: str = ""
    binding: Expr = None
    satisfies: Expr = None
    pos: int = 0


# ----------------------------------------------------------------------
# paths
# ----------------------------------------------------------------------

#: The twelve standard axes plus the four StandOff axes of the paper.
STANDARD_AXES = frozenset({
    "child", "descendant", "self", "parent", "ancestor",
    "descendant-or-self", "ancestor-or-self", "following",
    "preceding", "following-sibling", "preceding-sibling", "attribute",
})

STANDOFF_AXES = frozenset({
    "select-narrow", "select-wide", "reject-narrow", "reject-wide",
})

ALL_AXES = STANDARD_AXES | STANDOFF_AXES


@dataclass
class NodeTest:
    """Name test (``name`` / ``*`` / ``prefix:*``) or kind test.

    ``kind`` is one of ``name``, ``node``, ``text``, ``comment``,
    ``processing-instruction``; for ``kind == 'name'``, ``name`` holds
    the QName or ``*``.
    """

    kind: str = "name"
    name: Optional[str] = None
    pos: int = 0

    def __str__(self) -> str:
        if self.kind == "name":
            return self.name or "*"
        return f"{self.kind}()"


@dataclass
class AxisStep(Expr):
    axis: str = "child"
    test: NodeTest = None
    predicates: list[Expr] = field(default_factory=list)
    pos: int = 0

    @property
    def is_standoff(self) -> bool:
        return self.axis in STANDOFF_AXES


@dataclass
class FilterExpr(Expr):
    """A primary expression followed by predicates."""

    base: Expr = None
    predicates: list[Expr] = field(default_factory=list)
    pos: int = 0


@dataclass
class PathExpr(Expr):
    """``/``-separated steps; ``absolute`` anchors at the context root."""

    steps: list[Expr] = field(default_factory=list)  # AxisStep | FilterExpr
    absolute: bool = False
    pos: int = 0


# ----------------------------------------------------------------------
# constructors
# ----------------------------------------------------------------------

@dataclass
class AttributeConstructor:
    name: str
    parts: list = field(default_factory=list)   # str | Expr
    pos: int = 0


@dataclass
class ElementConstructor(Expr):
    name: str = ""
    attributes: list[AttributeConstructor] = field(default_factory=list)
    content: list = field(default_factory=list)  # str | Expr | nested ctor
    pos: int = 0


@dataclass
class TextConstructor(Expr):
    parts: list = field(default_factory=list)    # str | Expr
    pos: int = 0
