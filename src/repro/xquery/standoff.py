"""Bridge between the XQuery evaluators and the StandOff join machinery.

Takes DOM context nodes, partitions them per XML fragment (§4.4), derives
the candidate sequence from the step's name test via the element index
(selection pushdown, §4.3), runs the configured join strategy, and maps
the resulting node ids back to DOM nodes in document order.

The step layer hands back a columnar result
(:class:`~repro.relational.columnar.ColumnarStepResult`, already in
document order because the fragment ranking is pushed *into* the join);
this module wraps it in a :class:`~repro.relational.sequence.LazyIterData`
that decodes node ids to DOM nodes per accessed iteration — the bulk
evaluator never sees an eagerly-exploded ``dict[int, list[Node]]``.
"""

from __future__ import annotations

import numpy as np

from repro.config import (
    DEFAULT_KERNEL,
    DEFAULT_SHARD_MIN_ROWS,
    DEFAULT_WORKERS,
    KERNEL_LL,
)
from repro.core.naive import StandoffOp
from repro.core.steps import Strategy, standoff_step
from repro.errors import XQueryTypeError
from repro.relational.sequence import LazyIterData
from repro.xmldb.dom import Document, Element, Node
from repro.xquery.ast import NodeTest
from repro.xquery.context import DynamicContext


def _fragment_root(node: Node) -> Node:
    return node.root


class _FragmentInfo:
    """Resolves pre ranks <-> DOM nodes for one fragment root."""

    def __init__(self, root: Node, ctx: DynamicContext):
        self.root = root
        self.ctx = ctx
        self._by_pre: dict[int, Node] | None = None

    def node_by_pre(self, pre: int) -> Node:
        if isinstance(self.root, Document):
            return self.root.node_by_pre(pre)
        if self._by_pre is None:
            mapping: dict[int, Node] = {}
            for node in self.root.descendants_or_self():
                mapping[node.pre] = node
                if isinstance(node, Element):
                    for attr in node.attributes:
                        mapping[attr.pre] = attr
            self._by_pre = mapping
        return self._by_pre[pre]

    def elements_named(self, name: str) -> np.ndarray:
        if isinstance(self.root, Document):
            stored = self.ctx.store.by_document(self.root)
            if stored is not None:
                return stored.shredded.elements_named(name)
        pres = [node.pre for node in self.root.descendants_or_self()
                if isinstance(node, Element) and node.tag == name]
        return np.asarray(pres, dtype=np.int64)

    def sort_rank(self):
        if isinstance(self.root, Document):
            return (0, self.root.doc_id)
        return (1, id(self.root))


#: Fraction of the region index above which the ``auto`` pushdown policy
#: prefers post-filtering (§3.3 (iii): "the usual handling of builtin
#: functions enforces selection pushdown, which for non-selective
#: predicates may lead to counter-productive evaluation").
AUTO_PUSHDOWN_THRESHOLD = 0.5


def _candidate_ids_for_test(ctx: DynamicContext, info: _FragmentInfo,
                            test: NodeTest | None) -> np.ndarray | None:
    """Pushed-down candidate ids, or None for 'whole region index'.

    A name test uses the element index; ``*`` and ``node()`` place no
    restriction.  Non-element kind tests cannot match area-annotations
    (only elements carry regions), so they yield an empty candidate set.

    The context's ``pushdown`` policy decides whether a name test is
    pushed into the join (index intersection) or applied afterwards to
    the join result — the optimizer choice the paper argues XPath-step
    semantics enables (§3.3 (iii)).
    """
    if test is None or test.kind == "node":
        return None
    if test.kind == "name":
        if test.name == "*":
            return None
        policy = getattr(ctx, "pushdown", "always")
        if policy == "never":
            return None
        named = info.elements_named(test.name)
        if policy == "auto":
            index_size = len(ctx.region_index_for(info.root))
            if index_size and len(named) > AUTO_PUSHDOWN_THRESHOLD \
                    * index_size:
                return None
        return named
    return np.empty(0, dtype=np.int64)


def _run(ctx: DynamicContext, op: StandoffOp,
         context_by_fragment: dict[int, tuple[_FragmentInfo, list[int]]],
         candidates_by_fragment: dict[int, np.ndarray | None],
         iter_rows: list[tuple[int, int, int]],
         post=None) -> LazyIterData:
    """Execute one StandOff step.

    Returns a lazy ``iter -> [DOM node, ...]`` mapping over the columnar
    step result; *post* (e.g. a node-test filter) is applied inside the
    per-iteration decode, so skipped iterations never pay for it.
    """
    indexes = {}
    for key, (info, _pres) in context_by_fragment.items():
        indexes[key] = ctx.region_index_for(info.root)
    candidate_map = None
    if any(cand is not None for cand in candidates_by_fragment.values()):
        candidate_map = {
            key: (cand if cand is not None
                  else indexes[key].annotated_ids())
            for key, cand in candidates_by_fragment.items()}
    strategy = ctx.strategy
    kernel = getattr(ctx, "kernel", DEFAULT_KERNEL)
    if strategy is Strategy.LOOP_LIFTED and kernel == KERNEL_LL and \
            len({it for it, _f, _n in iter_rows}) <= 1:
        # A single iteration: basic and loop-lifted coincide; use the
        # basic code path (the tree-walking evaluator's situation).
        # The vectorized kernel keeps the loop-lifted path so single
        # iterations also hit the batched join.
        strategy = Strategy.BASIC
    ctx.count_standoff_join()
    # Document order (stored documents before orphan fragments) is pushed
    # into the join as the fragment ranking, so the columnar result comes
    # back ordered and no per-pair re-sort is ever needed.
    ordered_fragments = sorted(
        context_by_fragment,
        key=lambda key: context_by_fragment[key][0].sort_rank())
    fragment_rank = {key: rank
                     for rank, key in enumerate(ordered_fragments)}
    raw = standoff_step(op, iter_rows, indexes,
                        candidate_map,
                        strategy=strategy,
                        active_structure=ctx.active_structure,
                        kernel=kernel,
                        fragment_rank=fragment_rank,
                        workers=getattr(ctx, "workers", DEFAULT_WORKERS),
                        shard_min_rows=getattr(ctx, "shard_min_rows",
                                               DEFAULT_SHARD_MIN_ROWS),
                        executor=getattr(ctx, "executor", None))
    infos = {key: info
             for key, (info, _pres) in context_by_fragment.items()}

    def decode(iteration: int) -> list[Node]:
        frags, pres = raw.segment(iteration)
        nodes = [infos[frag].node_by_pre(pre)
                 for frag, pre in zip(frags.tolist(), pres.tolist())]
        return nodes if post is None else post(nodes)

    return LazyIterData(raw.iterations(), decode)


def _prepare(ctx: DynamicContext,
             context_nodes_per_iter: dict[int, list[Node]],
             test: NodeTest | None,
             explicit_candidates: list[Node] | None):
    """Build fragment partitions and iter rows for :func:`_run`.

    Partition keys are ``id(root)`` ints (they travel through the
    kernel's fragment-id column, so they must stay ints) — sound only
    under the PR 7 strong-ref scheme: every entry pins its root
    (``(root, info)``), so a keyed address can never be recycled while
    the partition is alive, and every lookup verifies ``entry[0] is
    root`` so a stale entry at a reused address is never returned.
    """
    infos: dict[int, tuple[Node, _FragmentInfo]] = {}
    context_by_fragment: dict[int, tuple[_FragmentInfo, list[int]]] = {}
    iter_rows: list[tuple[int, int, int]] = []
    for iteration, nodes in context_nodes_per_iter.items():
        for node in nodes:
            if not isinstance(node, Node):
                raise XQueryTypeError(
                    "StandOff steps require node context items")
            root = _fragment_root(node)
            key = id(root)
            entry = infos.get(key)
            if entry is None or entry[0] is not root:
                info = _FragmentInfo(root, ctx)
                if not isinstance(root, Document):
                    # Number orphan fragments so pre ranks exist.
                    ctx.region_index_for(root)
                infos[key] = (root, info)
                context_by_fragment[key] = (info, [])
            context_by_fragment[key][1].append(node.pre)
            iter_rows.append((iteration, key, node.pre))

    candidates_by_fragment: dict[int, np.ndarray | None] = {}
    if explicit_candidates is not None:
        grouped: dict[int, list[int]] = {key: [] for key in infos}
        for node in explicit_candidates:
            root = _fragment_root(node)
            key = id(root)
            entry = infos.get(key)
            if entry is not None and entry[0] is root:
                grouped[key].append(node.pre)
        candidates_by_fragment = {
            key: np.asarray(sorted(set(pres)), dtype=np.int64)
            for key, pres in grouped.items()}
    else:
        for key, (_root, info) in infos.items():
            candidates_by_fragment[key] = _candidate_ids_for_test(
                ctx, info, test)
    return context_by_fragment, candidates_by_fragment, iter_rows


def standoff_axis_step(ctx: DynamicContext, axis: str,
                       context_nodes: list[Node],
                       test: NodeTest) -> list[Node]:
    """Evaluate a StandOff axis step for one context sequence (§3.3).

    The join is computed between the whole context sequence (S1) and the
    candidate sequence derived from the node test (S2) — StandOff steps
    are sequence-level joins, not per-node mappings (this matters for the
    reject anti-joins).
    """
    if not context_nodes:
        return []
    op = StandoffOp.from_name(axis)
    parts = _prepare(ctx, {0: context_nodes}, test, None)
    result = _run(ctx, op, parts[0], parts[1], parts[2])
    return _apply_test(result.get(0, []), test)


def standoff_axis_step_lifted(ctx: DynamicContext, axis: str,
                              context_nodes_per_iter: dict[int, list[Node]],
                              test: NodeTest) -> LazyIterData | dict:
    """Loop-lifted StandOff axis step: all iterations in one join call.

    Returns a lazy per-iteration node mapping (the node-test post-filter
    runs inside the decode); the bulk evaluator wraps it in an
    :class:`~repro.relational.sequence.IterSeq` unchanged.
    """
    if not context_nodes_per_iter:
        return {}
    op = StandoffOp.from_name(axis)
    parts = _prepare(ctx, context_nodes_per_iter, test, None)
    return _run(ctx, op, parts[0], parts[1], parts[2],
                post=lambda nodes: _apply_test(nodes, test))


def _apply_test(nodes: list[Node], test: NodeTest | None) -> list[Node]:
    """Post-filter by the step's node test.

    Redundant when the test was pushed down into the candidate sequence
    (every survivor already matches); required when the pushdown policy
    chose to run the join over the whole region index.
    """
    if test is None or test.kind == "node" \
            or (test.kind == "name" and test.name == "*"):
        return nodes
    from repro.xquery.axes import matches_test

    return [node for node in nodes if matches_test(node, test)]


def standoff_function(ctx: DynamicContext, op_name: str,
                      context_nodes: list[Node],
                      candidates: list[Node] | None) -> list[Node]:
    """The builtin-function form (Alternative 3 of §3.2)."""
    if not context_nodes:
        return []
    op = StandoffOp.from_name(op_name)
    parts = _prepare(ctx, {0: context_nodes}, None, candidates)
    result = _run(ctx, op, parts[0], parts[1], parts[2])
    return result.get(0, [])
