"""Value model: atomization, effective boolean value, comparisons, casts.

Items are DOM nodes or Python atomics (``str``, ``bool``, ``int``,
``float``).  Strings obtained by atomizing nodes behave as
``xs:untypedAtomic``: they cast to numbers when compared or combined with
numeric operands, per the XQuery general-comparison rules.  The subset
does not track a separate untyped type for literal strings; every string
participates in untyped coercion (documented deviation).
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.errors import XQueryDynamicError, XQueryTypeError
from repro.xmldb.dom import Node

Item = object
Sequence = list


def is_node(item: Item) -> bool:
    return isinstance(item, Node)


def atomize_item(item: Item):
    """The typed value of one item (string value for nodes)."""
    if isinstance(item, Node):
        return item.string_value()
    return item


def atomize(seq: Iterable[Item]) -> list:
    return [atomize_item(item) for item in seq]


def atomize_single(seq: Sequence, what: str = "operand"):
    """Atomize a sequence required to be a singleton (or empty -> None)."""
    values = atomize(seq)
    if not values:
        return None
    if len(values) > 1:
        raise XQueryTypeError(
            f"{what} must be a single item, got {len(values)}")
    return values[0]


def effective_boolean_value(seq: Sequence) -> bool:
    """The XPath effective boolean value (fn:boolean rules)."""
    if not seq:
        return False
    first = seq[0]
    if isinstance(first, Node):
        return True
    if len(seq) > 1:
        raise XQueryTypeError(
            "effective boolean value of a multi-item atomic sequence")
    if isinstance(first, bool):
        return first
    if isinstance(first, str):
        return len(first) > 0
    if isinstance(first, (int, float)):
        return first != 0 and not (isinstance(first, float)
                                   and math.isnan(first))
    raise XQueryTypeError(
        f"no effective boolean value for {type(first).__name__}")


def to_number(value) -> float:
    """Cast an atomic value to xs:double (fn:number semantics, strict)."""
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value.strip())
        except ValueError:
            raise XQueryDynamicError(
                f"cannot cast {value!r} to a number",
                code="err:FORG0001") from None
    raise XQueryTypeError(f"cannot cast {type(value).__name__} to a number")


def string_value(seq: Sequence) -> str:
    """fn:string of a zero-or-one sequence."""
    if not seq:
        return ""
    if len(seq) > 1:
        raise XQueryTypeError("fn:string requires zero or one item")
    item = seq[0]
    if isinstance(item, Node):
        return item.string_value()
    return atomic_to_string(item)


def atomic_to_string(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15 \
                and not math.isinf(value):
            return str(int(value))
        return repr(value)
    return str(value)


_NUMERIC = (int, float)


def _coerce_pair(a, b):
    """Untyped coercion for general comparisons: str vs number -> number."""
    if isinstance(a, bool) or isinstance(b, bool):
        return a, b
    if isinstance(a, _NUMERIC) and isinstance(b, str):
        return a, to_number(b)
    if isinstance(a, str) and isinstance(b, _NUMERIC):
        return to_number(a), b
    return a, b


_OP_TABLE = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_VALUE_OPS = {"eq": "=", "ne": "!=", "lt": "<", "le": "<=",
              "gt": ">", "ge": ">="}


def compare_atomic(a, b, op: str) -> bool:
    a, b = _coerce_pair(a, b)
    if isinstance(a, bool) != isinstance(b, bool):
        raise XQueryTypeError(
            f"cannot compare {type(a).__name__} with {type(b).__name__}")
    if isinstance(a, str) != isinstance(b, str):
        raise XQueryTypeError(
            f"cannot compare {type(a).__name__} with {type(b).__name__}")
    return _OP_TABLE[op](a, b)


def general_compare(left: Sequence, right: Sequence, op: str) -> bool:
    """Existentially quantified comparison over atomized operands."""
    lhs = atomize(left)
    rhs = atomize(right)
    return any(compare_atomic(a, b, op) for a in lhs for b in rhs)


def value_compare(left: Sequence, right: Sequence, op: str) -> Sequence:
    """Singleton comparison; empty operand propagates emptiness."""
    a = atomize_single(left, f"left operand of '{op}'")
    b = atomize_single(right, f"right operand of '{op}'")
    if a is None or b is None:
        return []
    return [compare_atomic(a, b, _VALUE_OPS[op])]


def arithmetic(left: Sequence, right: Sequence, op: str) -> Sequence:
    """Binary arithmetic with untyped coercion; empty propagates."""
    a = atomize_single(left, f"left operand of '{op}'")
    b = atomize_single(right, f"right operand of '{op}'")
    if a is None or b is None:
        return []
    x, y = to_number(a), to_number(b)
    if isinstance(a, int) and isinstance(b, int) \
            and not isinstance(a, bool) and not isinstance(b, bool):
        xi, yi = int(a), int(b)
        if op == "+":
            return [xi + yi]
        if op == "-":
            return [xi - yi]
        if op == "*":
            return [xi * yi]
        if op == "idiv":
            _check_zero(yi, op)
            return [_int_div(xi, yi)]
        if op == "mod":
            _check_zero(yi, op)
            return [xi - _int_div(xi, yi) * yi]
        # 'div' on integers yields a decimal (float here)
        _check_zero(yi, op)
        return [xi / yi]
    if op == "+":
        return [x + y]
    if op == "-":
        return [x - y]
    if op == "*":
        return [x * y]
    if op == "div":
        _check_zero(y, op)
        return [x / y]
    if op == "idiv":
        _check_zero(y, op)
        return [_int_div(x, y)]
    if op == "mod":
        _check_zero(y, op)
        return [math.fmod(x, y)]
    raise XQueryTypeError(f"unknown arithmetic operator {op!r}")


def _int_div(x, y) -> int:
    """xs:integer division truncating toward zero (not floor)."""
    q = x / y
    return int(q) if q >= 0 else -int(-q)


def _check_zero(y, op: str) -> None:
    if y == 0:
        raise XQueryDynamicError(f"{op}: division by zero",
                                 code="err:FOAR0001")
