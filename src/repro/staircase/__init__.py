"""Staircase Join: tree-aware axis joins on the pre/size encoding."""

from repro.staircase.encoding import (
    is_ancestor,
    is_descendant,
    prune_context,
    window,
)
from repro.staircase.loop_lifted import (
    iterated_descendant_join,
    ll_descendant_join,
)
from repro.staircase.staircase import (
    ancestor_join,
    child_join,
    descendant_join,
    parent_join,
)

__all__ = [
    "window",
    "is_descendant",
    "is_ancestor",
    "prune_context",
    "descendant_join",
    "ancestor_join",
    "child_join",
    "parent_join",
    "ll_descendant_join",
    "iterated_descendant_join",
]
