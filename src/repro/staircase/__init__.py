"""Staircase Join: tree-aware axis joins on the pre/size encoding."""

from repro.staircase.encoding import (
    is_ancestor,
    is_descendant,
    prune_context,
    window,
)
from repro.staircase.kernels_vec import (
    staircase_join,
    vec_ancestor,
    vec_child,
    vec_descendant,
    vec_following,
    vec_following_sibling,
    vec_preceding,
    vec_preceding_sibling,
    vec_staircase_join,
)
from repro.staircase.loop_lifted import (
    iterated_descendant_join,
    ll_axis_join,
    ll_descendant_join,
)
from repro.staircase.staircase import (
    ancestor_join,
    anchor_pres,
    child_join,
    descendant_join,
    following_join,
    following_sibling_join,
    parent_join,
    preceding_join,
    preceding_sibling_join,
)

__all__ = [
    "window",
    "is_descendant",
    "is_ancestor",
    "prune_context",
    "descendant_join",
    "ancestor_join",
    "anchor_pres",
    "child_join",
    "parent_join",
    "following_join",
    "preceding_join",
    "following_sibling_join",
    "preceding_sibling_join",
    "ll_descendant_join",
    "ll_axis_join",
    "iterated_descendant_join",
    "staircase_join",
    "vec_staircase_join",
    "vec_descendant",
    "vec_ancestor",
    "vec_child",
    "vec_following",
    "vec_preceding",
    "vec_following_sibling",
    "vec_preceding_sibling",
]
