"""Loop-lifted Staircase Join (Boncz et al., SIGMOD 2006; paper §4.1).

Computes the descendant step for *many* context sequences (one per loop
iteration) in a single sequential pass over the candidate pre ranks —
the technique whose order-of-magnitude win over iterated Staircase Join
motivated loop-lifting the StandOff MergeJoin the same way.

The implementation mirrors Listing 1 structurally, but the active-items
handling is simpler because pre/size windows never partially overlap:
within one iteration a new context window is either nested in the active
one (skipped by pruning) or starts after it ends (plain replacement);
no mid-list deletions are ever needed.
"""

from __future__ import annotations

from bisect import bisect_left, insort

import numpy as np

from repro.xmldb.shred import ShreddedDocument


def ll_descendant_join(doc: ShreddedDocument,
                       context: list[tuple[int, int]],
                       candidates: np.ndarray | None = None
                       ) -> dict[int, list[int]]:
    """Loop-lifted descendant step.

    :param context: ``(iter, pre)`` pairs, any order.
    :param candidates: optional sorted candidate pre ranks (selection
        pushdown); ``None`` scans all pre ranks.
    :returns: ``iter -> sorted result pre ranks``.
    """
    if not context:
        return {}
    size = doc.size
    rows = sorted({(int(pre), int(it)) for it, pre in context})
    # An unrestricted candidate sequence is the implicit pre range; a
    # Python range scans it positionally without materializing the
    # full ``arange(len(doc))`` (the merge only ever indexes forward).
    cand_list = (range(len(doc)) if candidates is None
                 else np.asarray(candidates, dtype=np.int64).tolist())
    n_cand = len(cand_list)

    # Active windows: (window_end, iter), ascending; one window per iter.
    entries: list[tuple[int, int]] = []
    by_iter: dict[int, tuple[int, int]] = {}
    result: dict[int, list[int]] = {}

    j = 0
    n_ctx = len(rows)
    # Candidates before the first window's start are descendants of
    # nothing (windows only begin at or after rows[0].pre + 1).
    first_lo = rows[0][0] + 1
    while j < n_cand and cand_list[j] < first_lo:
        j += 1

    for idx, (pre, it) in enumerate(rows):
        hi = pre + int(size[pre])
        cur = by_iter.get(it)
        if cur is not None and hi <= cur[0]:
            pass                        # nested in this iter's window
        else:
            if cur is not None:
                pos = bisect_left(entries, cur)
                del entries[pos]
            entry = (hi, it)
            insort(entries, entry)
            by_iter[it] = entry

        # The candidate batch runs for every context row — including
        # nested-skipped ones — so each batch's candidates start at or
        # after every active window's start.
        next_start = rows[idx + 1][0] + 1 if idx + 1 < n_ctx else None
        while j < n_cand and (next_start is None
                              or cand_list[j] < next_start):
            c = cand_list[j]
            cut = bisect_left(entries, (c,))
            for dropped in entries[:cut]:
                if by_iter.get(dropped[1]) is dropped:
                    del by_iter[dropped[1]]
            del entries[:cut]
            for _end, live_it in entries:
                result.setdefault(live_it, []).append(c)
            j += 1
        if j == n_cand:
            break
    return result


def iterated_descendant_join(doc: ShreddedDocument,
                             context: list[tuple[int, int]],
                             candidates: np.ndarray | None = None
                             ) -> dict[int, list[int]]:
    """The naive strategy: call Staircase Join once per iteration.

    Kept as the baseline the loop-lifted variant is benchmarked against
    (the [5] comparison the paper builds on).
    """
    from repro.staircase.staircase import descendant_join

    per_iter: dict[int, list[int]] = {}
    for it, pre in context:
        per_iter.setdefault(it, []).append(pre)
    out: dict[int, list[int]] = {}
    for it, pres in per_iter.items():
        res = descendant_join(doc, np.asarray(pres, dtype=np.int64),
                              candidates)
        if len(res):
            out[it] = res.tolist()
    return out


def _self_pres(pres: list[int],
               candidates: np.ndarray | None) -> list[int]:
    """Context pres surviving the or-self pool membership test."""
    if candidates is None:
        return sorted(set(pres))
    pool = set(np.asarray(candidates, dtype=np.int64).tolist())
    return sorted({pre for pre in pres if pre in pool})


def ll_axis_join(doc: ShreddedDocument, axis: str,
                 context: list[tuple[int, int]],
                 candidates: np.ndarray | None = None, *,
                 or_self: bool = False) -> dict[int, list[int]]:
    """Reference loop-lifted staircase axis step (dict results).

    The ``ll`` kernel of the staircase family: the descendant axis runs
    the single-pass :func:`ll_descendant_join`, the other axes — the
    sibling axes included — call the per-set joins of
    :mod:`repro.staircase.staircase` once per iteration; axis names are
    validated against the registry's staircase axis listing.
    ``or_self`` includes a context pre when it is in the candidate
    pool.  Semantically identical to
    :func:`repro.staircase.kernels_vec.vec_staircase_join`.
    """
    from repro.staircase import staircase as sj

    per_iter: dict[int, list[int]] = {}
    for it, pre in context:
        per_iter.setdefault(int(it), []).append(int(pre))

    if axis == "descendant":
        out = ll_descendant_join(doc, context, candidates)
    else:
        from repro.config import FAMILY_STAIRCASE, KERNELS

        KERNELS.validate_axis(FAMILY_STAIRCASE, axis)
        fn = {"ancestor": sj.ancestor_join,
              "child": sj.child_join,
              "following": sj.following_join,
              "preceding": sj.preceding_join,
              "following-sibling": sj.following_sibling_join,
              "preceding-sibling": sj.preceding_sibling_join}[axis]
        out = {}
        for it, pres in per_iter.items():
            res = fn(doc, np.asarray(pres, dtype=np.int64), candidates)
            if len(res):
                out[it] = res.tolist()
    if or_self:
        if axis not in ("descendant", "ancestor"):
            raise ValueError(f"the {axis} axis has no or-self variant")
        for it, pres in per_iter.items():
            extra = _self_pres(pres, candidates)
            if extra:
                out[it] = sorted(set(out.get(it, [])) | set(extra))
    return out
