"""Pre/size/level region encoding predicates (Grust et al., VLDB 2003).

In the pre/size encoding, the descendants of a node *v* are exactly the
nodes with ``pre(v) < pre <= pre(v) + size(v)`` — a contiguous pre-rank
window.  Unlike stand-off regions, these windows never partially overlap
(tree property): two windows are either disjoint or nested.  Staircase
Join exploits exactly this property, which is why it cannot be used as-is
on overlapping annotation regions (paper §4.4) and the StandOff
MergeJoin family exists.
"""

from __future__ import annotations

import numpy as np


def window(pre: int, size: int) -> tuple[int, int]:
    """The descendant pre-rank window of a node (empty when size == 0)."""
    return pre + 1, pre + size


def is_descendant(anc_pre: int, anc_size: int, pre: int) -> bool:
    """Is the node at *pre* a proper descendant of ``(anc_pre, anc_size)``?"""
    return anc_pre < pre <= anc_pre + anc_size


def is_ancestor(pre: int, anc_pre: int, anc_size: int) -> bool:
    """Inverse reading of :func:`is_descendant`."""
    return is_descendant(anc_pre, anc_size, pre)


def prune_context(pres: np.ndarray, sizes: np.ndarray) -> np.ndarray:
    """Drop context nodes covered by another context node's window.

    This is Staircase Join's *pruning* step for the descendant axis: a
    context node inside another context node's subtree contributes no new
    descendants.  Input pre ranks must be sorted ascending; returns the
    sorted indexes of the surviving (outermost) nodes.
    """
    keep: list[int] = []
    horizon = -1
    for i, (pre, size) in enumerate(zip(pres.tolist(), sizes.tolist())):
        if pre > horizon:
            keep.append(i)
            horizon = pre + size
    return np.asarray(keep, dtype=np.int64)
