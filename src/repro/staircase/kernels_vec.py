"""Batched loop-lifted Staircase Join family (columnar results).

The paper's §4.1/§4.6 point is that loop-lifted Staircase Join and
loop-lifted StandOff MergeJoin are the *same* trick applied to two join
families.  :mod:`repro.core.kernels_vec` is the batched NumPy StandOff
side; this module is the Staircase side: every tree axis the shredded
pre/size encoding supports, computed for **all** iterations of a
for-loop in one batch of column operations, producing a
:class:`~repro.relational.columnar.ColumnarResult` natively.

The context is ``(iter, pre)`` pairs; per axis:

* **descendant** — the genuine Staircase Join: rows are segmented per
  iteration, nested context windows are pruned with a segmented prefix
  max over window ends, and each surviving window takes a
  ``searchsorted`` slice of the sorted candidate pool (or emits the
  implicit pre range directly — no ``arange(len(doc))`` materialization
  when the pool is unrestricted).  ``or_self`` widens the window to
  include the context pre itself;
* **ancestor** — a level-synchronous parent-column climb: all context
  rows step to their parent per round, so the Python-level loop runs
  ``O(tree depth)`` times regardless of context size;
* **child** — a sorted-merge join of ``parent[pool]`` against the
  distinct context pres, expanded per iteration group;
* **following** / **preceding** — one threshold per iteration (the
  tree property collapses the union over context nodes to a min/max):
  ``following`` is the pool suffix past the smallest context subtree
  end, ``preceding`` the pool prefix (ordered by subtree end) before
  the largest context pre.  Attribute context nodes anchor at their
  owner element — deduplicated at the anchor boundary — as in the DOM
  walk;
* **following-sibling** / **preceding-sibling** — the candidate pool is
  re-clustered by owner (stable argsort of ``parent[pool]``), then each
  context row takes a ``searchsorted`` window of its owner's contiguous
  child run, split at the anchor pre.  Attribute context nodes have no
  siblings, attribute pool rows are never siblings; both drop out up
  front.

Within one iteration, surviving descendant windows are disjoint and
ascending, so the matched pairs leave the expansion already in
``(iter, pre)``-lexicographic order and duplicate-free — canonicalizing
into CSR form costs one boundary cut, no sort.

Kernel selection goes through the unified registry
(:data:`repro.config.KERNELS`, family
:data:`~repro.config.FAMILY_STAIRCASE`): :func:`staircase_join`
dispatches between these batched kernels and the dict-shaped reference
path (:func:`repro.staircase.loop_lifted.ll_axis_join`) exactly like
:func:`repro.core.kernels_vec.kernel_join` does for StandOff joins.
The differential suite (``tests/test_staircase_vec.py``) asserts
``vectorized == ll == iterated`` on all axes.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.config import (
    DEFAULT_SHARD_MIN_ROWS,
    DEFAULT_STAIRCASE_KERNEL,
    DEFAULT_WORKERS,
    EXECUTOR_PROCESS,
    FAMILY_STAIRCASE,
    KERNEL_VECTORIZED,
    KERNELS,
    normalize_executor,
)
from repro.relational.columnar import ColumnarResult, run_starts
from repro.staircase.staircase import anchor_pres
from repro.xmldb.shred import ShreddedDocument

#: Composite-key headroom: the segmented prefix-max offset trick stays
#: inside int64 (pre ranks are bounded by the document size, so this
#: only trips on absurd segment counts — the loop fallback covers it).
_INT64_BUDGET = 2 ** 62

#: A loop-lifted staircase context: ``(iter, pre)`` pairs, any order.
ContextPairs = Iterable[tuple[int, int]]

#: Axes whose cost lives on the context side — the ancestor kernel's
#: parent climb is ``O(context rows x tree depth)`` and independent of
#: the pool — so pool-range sharding would repeat that work in every
#: shard and merely filter by a different pool slice.  They always run
#: as the single serial call.
_CONTEXT_BOUND_AXES = frozenset({"ancestor"})


# ----------------------------------------------------------------------
# segmented primitives
# ----------------------------------------------------------------------

def _context_arrays(context: ContextPairs
                    ) -> tuple[np.ndarray, np.ndarray]:
    """Unique ``(iter, pre)`` pairs as columns sorted by (iter, pre).

    A ``(its, pres)`` tuple of arrays is taken as already canonical —
    the sharded fan-out canonicalizes once and shares the result
    across shard jobs instead of re-sorting the context per shard.
    """
    if isinstance(context, tuple):
        return context
    if isinstance(context, np.ndarray):
        rows = context
    else:
        rows = np.asarray(list(context), dtype=np.int64)
    if rows.size == 0:
        return np.empty(0, np.int64), np.empty(0, np.int64)
    its, pres = rows[:, 0], rows[:, 1]
    order = np.lexsort((pres, its))
    its, pres = its[order], pres[order]
    keep = np.empty(len(its), bool)
    keep[0] = True
    np.logical_or(its[1:] != its[:-1], pres[1:] != pres[:-1],
                  out=keep[1:])
    return its[keep], pres[keep]


def _segmented_cummax(values: np.ndarray,
                      seg_off: np.ndarray) -> np.ndarray:
    """Per-segment inclusive prefix maximum (segments start at seg_off)."""
    if len(seg_off) <= 1:
        return np.maximum.accumulate(values)
    vmin = int(values.min())
    span = int(values.max()) - vmin + 1
    if len(seg_off) * span < _INT64_BUDGET:
        base = np.zeros(len(values), np.int64)
        base[seg_off[1:]] = 1
        np.cumsum(base, out=base)
        base *= span
        comp = values - vmin + base
        np.maximum.accumulate(comp, out=comp)
        comp -= base
        comp += vmin
        return comp
    out = np.empty_like(values)
    bounds = np.append(seg_off, len(values)).tolist()
    for a, b in zip(bounds[:-1], bounds[1:]):
        np.maximum.accumulate(values[a:b], out=out[a:b])
    return out


def _emit_ranges(seg_iters: np.ndarray, j0: np.ndarray, j1: np.ndarray,
                 lookup: np.ndarray | None = None
                 ) -> tuple[np.ndarray, np.ndarray]:
    """Expand per-segment index ranges ``[j0, j1)`` into flat
    ``(iter, value)`` pair columns; values are the indices themselves
    (the implicit-range scan) or ``lookup[index]``."""
    counts = j1 - j0
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, np.int64), np.empty(0, np.int64)
    offs = np.concatenate(([0], np.cumsum(counts)))
    idx = np.arange(total, dtype=np.int64) \
        - np.repeat(offs[:-1] - j0, counts)
    iters = np.repeat(seg_iters, counts)
    return iters, idx if lookup is None else lookup[idx]


def _pool(doc: ShreddedDocument,
          candidates: np.ndarray | None) -> np.ndarray:
    """The sorted candidate pre pool (all rows when unrestricted)."""
    if candidates is None:
        return doc.pre
    return np.asarray(candidates, dtype=np.int64)


def _no_or_self(axis: str, or_self: bool) -> None:
    if or_self:
        raise ValueError(f"the {axis} axis has no or-self variant")


def _anchored_segments(doc: ShreddedDocument, its: np.ndarray,
                       pres: np.ndarray
                       ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Anchor a canonical context and dedupe at the anchor boundary.

    Attribute pres map to their owner element, which can collapse
    distinct context rows of one iteration onto the same anchor (two
    attributes of one element); the duplicates are removed so the
    following/preceding kernels never see — and can never re-emit for —
    a repeated anchor.  Anchoring preserves the (iter, pre) sort order
    (an attribute's owner precedes it, and no other node sits between
    an element and its attributes), so the dedupe is one adjacent
    comparison.  Returns ``(iters, anchors, segment offsets)``.
    """
    anchors = anchor_pres(doc, pres)
    if len(its) > 1:
        keep = np.empty(len(its), bool)
        keep[0] = True
        np.logical_or(its[1:] != its[:-1], anchors[1:] != anchors[:-1],
                      out=keep[1:])
        if not keep.all():
            its, anchors = its[keep], anchors[keep]
    return its, anchors, run_starts(its)


def _climb(parent: np.ndarray, iters: np.ndarray, start: np.ndarray
           ) -> tuple[np.ndarray, np.ndarray]:
    """Level-synchronous parent-column climb from *start*.

    All rows step to their parent per round (the Python-level loop runs
    ``O(tree depth)`` times regardless of row count); returns the
    emitted ``(iter, ancestor)`` pair columns, possibly empty.
    """
    pair_iters: list[np.ndarray] = []
    pair_vals: list[np.ndarray] = []
    cur_i, cur_v = iters, parent[start]
    while True:
        live = cur_v >= 0
        if not live.any():
            break
        cur_i, cur_v = cur_i[live], cur_v[live]
        pair_iters.append(cur_i)
        pair_vals.append(cur_v)
        cur_v = parent[cur_v]
    if not pair_iters:
        return np.empty(0, np.int64), np.empty(0, np.int64)
    return np.concatenate(pair_iters), np.concatenate(pair_vals)


def _locate_sorted(pool: np.ndarray, values: np.ndarray
                   ) -> tuple[np.ndarray, np.ndarray]:
    """``(insertion index, found mask)`` of *values* in the sorted
    unique *pool* — the shared searchsorted-membership idiom."""
    if len(pool) == 0:
        return (np.zeros(len(values), np.int64),
                np.zeros(len(values), bool))
    idx = np.searchsorted(pool, values)
    ok = idx < len(pool)
    ok &= pool[np.minimum(idx, len(pool) - 1)] == values
    return idx, ok


def in_sorted(pool: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Membership mask of *values* in the sorted unique *pool*."""
    return _locate_sorted(pool, values)[1]


# ----------------------------------------------------------------------
# axis kernels
# ----------------------------------------------------------------------

def vec_descendant(doc: ShreddedDocument, context: ContextPairs,
                   candidates: np.ndarray | None = None, *,
                   or_self: bool = False) -> ColumnarResult:
    """Batched loop-lifted descendant step (Staircase Join proper).

    :param context: ``(iter, pre)`` pairs, any order.
    :param candidates: optional sorted candidate pre ranks (selection
        pushdown); ``None`` scans the implicit ``[0, len(doc))`` range.
    :param or_self: include the context pre itself when it is in the
        candidate pool (the descendant-or-self window ``[pre, end]``).
    """
    its, pres = _context_arrays(context)
    if len(its) == 0:
        return ColumnarResult.empty()
    seg_off = run_starts(its)
    ends = pres + doc.size[pres]
    # Segmented pruning: within an iteration (rows ascending on pre), a
    # context window nested in an earlier window of the same iteration
    # contributes nothing new — drop rows whose pre is covered by the
    # exclusive prefix max of the window ends.
    horizon = np.empty_like(ends)
    horizon[1:] = _segmented_cummax(ends, seg_off)[:-1]
    horizon[seg_off] = -1
    keep = pres > horizon
    its_k, pres_k, ends_k = its[keep], pres[keep], ends[keep]
    lo = pres_k if or_self else pres_k + 1
    if candidates is None:
        iters, values = _emit_ranges(its_k, lo, ends_k + 1)
    else:
        cand = np.asarray(candidates, dtype=np.int64)
        j0 = np.searchsorted(cand, lo, side="left")
        j1 = np.searchsorted(cand, ends_k, side="right")
        iters, values = _emit_ranges(its_k, j0, np.maximum(j0, j1),
                                     lookup=cand)
    # Surviving windows are disjoint + ascending per iteration, so the
    # pairs are already (iter, value)-sorted and duplicate-free.
    return ColumnarResult.from_pairs(iters, values, presorted=True,
                                     unique=True)


def vec_ancestor(doc: ShreddedDocument, context: ContextPairs,
                 candidates: np.ndarray | None = None, *,
                 or_self: bool = False) -> ColumnarResult:
    """Batched ancestor step: level-synchronous parent-column climb."""
    its, pres = _context_arrays(context)
    if len(its) == 0:
        return ColumnarResult.empty()
    iters, values = _climb(doc.parent, its, pres)
    if or_self:
        iters = np.concatenate((its, iters))
        values = np.concatenate((pres, values))
    if candidates is not None:
        ok = in_sorted(np.asarray(candidates, np.int64), values)
        iters, values = iters[ok], values[ok]
    return ColumnarResult.from_pairs(iters, values)


def vec_child(doc: ShreddedDocument, context: ContextPairs,
              candidates: np.ndarray | None = None, *,
              or_self: bool = False) -> ColumnarResult:
    """Batched child step: ``parent[pool]`` merged with the context."""
    _no_or_self("child", or_self)
    its, pres = _context_arrays(context)
    if len(its) == 0:
        return ColumnarResult.empty()
    pool = _pool(doc, candidates)
    if len(pool) == 0:
        return ColumnarResult.empty()
    par = doc.parent[pool]
    # Group the context by pre: a pool entry whose parent matches a
    # distinct context pre joins with every iteration in that group.
    order = np.lexsort((its, pres))
    pres_g, its_g = pres[order], its[order]
    g_off = run_starts(pres_g)
    uniq = pres_g[g_off]
    g_sizes = np.diff(np.append(g_off, len(pres_g)))
    idx, ok = _locate_sorted(uniq, par)
    matched = pool[ok]
    groups = idx[ok]
    counts = g_sizes[groups]
    total = int(counts.sum())
    if total == 0:
        return ColumnarResult.empty()
    offs = np.concatenate(([0], np.cumsum(counts)))
    pos = np.arange(total, dtype=np.int64) \
        - np.repeat(offs[:-1] - g_off[groups], counts)
    # A child has one parent, and (pre, iter) groups are deduplicated,
    # so no (iter, child) pair repeats.
    return ColumnarResult.from_pairs(its_g[pos],
                                     np.repeat(matched, counts),
                                     unique=True)


def vec_following(doc: ShreddedDocument, context: ContextPairs,
                  candidates: np.ndarray | None = None, *,
                  or_self: bool = False) -> ColumnarResult:
    """Batched following step: pool suffix past the smallest subtree end
    of each iteration (attributes anchor at their owner element)."""
    _no_or_self("following", or_self)
    its, pres = _context_arrays(context)
    if len(its) == 0:
        return ColumnarResult.empty()
    its, anchors, seg_off = _anchored_segments(doc, its, pres)
    sub_end = anchors + doc.size[anchors]
    thresholds = np.minimum.reduceat(sub_end, seg_off)
    pool = _pool(doc, candidates)
    j0 = np.searchsorted(pool, thresholds, side="right")
    j1 = np.full(len(j0), len(pool), np.int64)
    iters, values = _emit_ranges(its[seg_off], j0, j1, lookup=pool)
    return ColumnarResult.from_pairs(iters, values, presorted=True,
                                     unique=True)


def vec_preceding(doc: ShreddedDocument, context: ContextPairs,
                  candidates: np.ndarray | None = None, *,
                  or_self: bool = False) -> ColumnarResult:
    """Batched preceding step.

    ``{q : pre(q) + size(q) < t}`` (*t* the largest context pre of the
    iteration, attributes anchored at their owner) equals the pre-rank
    prefix ``[0, t)`` minus the ancestors of the node at *t* — the only
    windows starting before *t* that end at or after it.  Emitting the
    contiguous prefix keeps the pairs presorted (no output-sized
    lexsort); the ancestor chains — at most tree-depth entries per
    iteration — are then deleted by binary search.
    """
    _no_or_self("preceding", or_self)
    its, pres = _context_arrays(context)
    if len(its) == 0:
        return ColumnarResult.empty()
    its, anchors, seg_off = _anchored_segments(doc, its, pres)
    thresholds = np.maximum.reduceat(anchors, seg_off)
    uniq_its = its[seg_off]
    pool = _pool(doc, candidates)
    j1 = np.searchsorted(pool, thresholds, side="left")
    iters, values = _emit_ranges(uniq_its, np.zeros(len(j1), np.int64),
                                 j1, lookup=pool)
    if len(values):
        span = len(doc) + 1
        keys = iters * span + values
        chain_i, chain_v = _climb(doc.parent, uniq_its, thresholds)
        if len(chain_v):
            pos, ok = _locate_sorted(keys, chain_i * span + chain_v)
            if ok.any():
                keep = np.ones(len(keys), bool)
                keep[pos[ok]] = False
                iters, values = iters[keep], values[keep]
    return ColumnarResult.from_pairs(iters, values, presorted=True,
                                     unique=True)


def _vec_siblings(doc: ShreddedDocument, context: ContextPairs,
                  candidates: np.ndarray | None, *,
                  following: bool) -> ColumnarResult:
    """Shared batched sibling step: per-iteration parent-column lookup
    plus ``searchsorted`` window slicing within the owner's child span.

    The siblings of *p* are exactly the nodes in
    ``(parent_pre, parent_pre + size(parent)]`` with
    ``parent == parent_pre``, split at the anchor.  The candidate pool
    is re-clustered by owner (a stable argsort of ``parent[pool]``
    keeps pres ascending within each owner group), so each context row
    takes one composite-key ``searchsorted`` slice of its owner's
    contiguous child run — before or after the anchor pre.  Attribute
    context nodes have no siblings (they are not children of their
    owner), and attribute pool rows are never siblings of anything;
    both drop out up front, exactly as in the DOM walk.
    """
    from repro.xmldb.dom import Attr

    its, pres = _context_arrays(context)
    if len(its) == 0:
        return ColumnarResult.empty()
    live = (doc.kind[pres] != Attr.kind) & (doc.parent[pres] >= 0)
    its, pres = its[live], pres[live]
    if len(its) == 0:
        return ColumnarResult.empty()
    owners = doc.parent[pres]
    pool = _pool(doc, candidates)
    pool_par = doc.parent[pool]
    ok = (pool_par >= 0) & (doc.kind[pool] != Attr.kind)
    sib, sib_par = pool[ok], pool_par[ok]
    if len(sib) == 0:
        return ColumnarResult.empty()
    # Cluster the sibling pool by owner; the stable sort keeps pres
    # ascending inside each owner's run, so the composite keys are
    # globally sorted and one searchsorted per bound suffices.
    order = np.argsort(sib_par, kind="stable")
    sib, sib_par = sib[order], sib_par[order]
    span = np.int64(len(doc) + 1)
    keys = sib_par * span + sib
    if following:
        j0 = np.searchsorted(keys, owners * span + pres, side="right")
        j1 = np.searchsorted(keys, (owners + 1) * span, side="left")
    else:
        j0 = np.searchsorted(keys, owners * span, side="left")
        j1 = np.searchsorted(keys, owners * span + pres, side="left")
    iters, values = _emit_ranges(its, j0, j1, lookup=sib)
    # Context rows sharing an owner within one iteration emit
    # overlapping windows — canonicalization sorts and dedupes.
    return ColumnarResult.from_pairs(iters, values)


def vec_following_sibling(doc: ShreddedDocument, context: ContextPairs,
                          candidates: np.ndarray | None = None, *,
                          or_self: bool = False) -> ColumnarResult:
    """Batched following-sibling step: the suffix of the owner's child
    span past the anchor's subtree."""
    _no_or_self("following-sibling", or_self)
    return _vec_siblings(doc, context, candidates, following=True)


def vec_preceding_sibling(doc: ShreddedDocument, context: ContextPairs,
                          candidates: np.ndarray | None = None, *,
                          or_self: bool = False) -> ColumnarResult:
    """Batched preceding-sibling step: the owner's child span before
    the anchor."""
    _no_or_self("preceding-sibling", or_self)
    return _vec_siblings(doc, context, candidates, following=False)


# ----------------------------------------------------------------------
# dispatch
# ----------------------------------------------------------------------

VEC_STAIRCASE_AXES = {
    "descendant": vec_descendant,
    "ancestor": vec_ancestor,
    "child": vec_child,
    "following": vec_following,
    "preceding": vec_preceding,
    "following-sibling": vec_following_sibling,
    "preceding-sibling": vec_preceding_sibling,
}


def vec_staircase_join(axis: str, doc: ShreddedDocument,
                       context: ContextPairs,
                       candidates: np.ndarray | None = None, *,
                       or_self: bool = False) -> ColumnarResult:
    """Dispatch a batched staircase axis step by axis name (validated
    against the registry's staircase axis listing)."""
    KERNELS.validate_axis(FAMILY_STAIRCASE, axis)
    return VEC_STAIRCASE_AXES[axis](doc, context, candidates,
                                    or_self=or_self)


def staircase_join(axis: str, doc: ShreddedDocument,
                   context: ContextPairs,
                   candidates: np.ndarray | None = None, *,
                   or_self: bool = False,
                   kernel: str = DEFAULT_STAIRCASE_KERNEL,
                   workers=DEFAULT_WORKERS,
                   shard_min_rows: int = DEFAULT_SHARD_MIN_ROWS,
                   executor: str | None = None,
                   candidate_desc: tuple | None = None
                   ) -> ColumnarResult | dict[int, list[int]]:
    """Run a loop-lifted staircase axis step under the selected kernel.

    The staircase counterpart of
    :func:`repro.core.kernels_vec.kernel_join`: ``kernel`` is resolved
    through the unified registry (family
    :data:`~repro.config.FAMILY_STAIRCASE`) — ``"ll"`` runs the
    dict-shaped reference path
    (:func:`repro.staircase.loop_lifted.ll_axis_join`), ``"vectorized"``
    the batched columnar kernels, ``"auto"`` picks per call by input
    size.

    ``workers`` fans the batched kernel out over contiguous pre-order
    ranges of the candidate pool (one kernel call per shard on the
    shared thread pool, merged by the k-way columnar concat — see
    :mod:`repro.exec.sharding`); pool slices are views, so sharding
    copies no candidate data.  ``"serial"`` (the default) and
    workloads under *shard_min_rows* rows per shard keep the single
    unsharded call — byte-identical to the pre-sharding pipeline.  The
    ``ll`` reference path never shards (it exists to be the
    deterministic oracle).

    ``executor="process"`` routes the same shard plan to worker
    *processes* (:mod:`repro.exec.procpool`) when the document's
    columns live in a mapped store (``doc.store_ref``) and the caller
    supplied a picklable ``candidate_desc`` describing *candidates* —
    workers re-open the store by path (OS page sharing), re-derive the
    pool from the descriptor, and shard results merge through the
    identical k-way concat.  Jobs without a store behind them fall
    back to the thread pool, so the executor knob never changes
    answers, only where the shards run.
    """
    from repro.exec.sharding import concat_shards, plan_shards, run_shards
    from repro.staircase.loop_lifted import ll_axis_join

    context = list(context)
    n_cand = len(candidates) if candidates is not None else len(doc)
    effective = KERNELS.select(FAMILY_STAIRCASE, kernel,
                               context_rows=len(context),
                               candidate_rows=n_cand)
    if effective != KERNEL_VECTORIZED:
        return ll_axis_join(doc, axis, context, candidates,
                            or_self=or_self)
    plan = plan_shards(n_cand, workers, shard_min_rows=shard_min_rows)
    if not plan.is_sharded or axis in _CONTEXT_BOUND_AXES:
        return vec_staircase_join(axis, doc, context, candidates,
                                  or_self=or_self)
    pool = doc.pre if candidates is None \
        else np.asarray(candidates, dtype=np.int64)
    # Canonicalize the context (sort + dedup) once; shard jobs share
    # the (its, pres) columns instead of re-sorting per shard.
    canon = _context_arrays(np.asarray(context, dtype=np.int64))

    if normalize_executor(executor) == EXECUTOR_PROCESS \
            and doc.store_ref is not None and candidate_desc is not None:
        from repro.exec.procpool import run_staircase

        return run_staircase(axis, doc.store_ref, canon, candidate_desc,
                             plan, or_self=or_self)

    def shard_job(lo: int, hi: int):
        return lambda: vec_staircase_join(axis, doc, canon,
                                          pool[lo:hi], or_self=or_self)

    jobs = [shard_job(lo, hi) for lo, hi in plan.slices()]
    return concat_shards(run_shards(jobs, plan.workers))
