"""Staircase Join: XPath axis evaluation on the shredded encoding.

These functions compute axis steps for a *set* of context nodes against
one shredded document, returning duplicate-free pre ranks in document
order.  The descendant axis is the genuine Staircase Join (prune +
single merge scan over the candidate pre ranks); the other axes use the
parent column, which the shredded encoding keeps anyway.
"""

from __future__ import annotations

import numpy as np

from repro.staircase.encoding import prune_context
from repro.xmldb.dom import Attr
from repro.xmldb.shred import ShreddedDocument


def anchor_pres(doc: ShreddedDocument, pres: np.ndarray) -> np.ndarray:
    """Map attribute pre ranks to their owner element's pre.

    The following/preceding axes of an attribute are those of its owner
    element (the DOM walk restarts at the parent when the anchor has no
    siblings); all other node kinds anchor at themselves.
    """
    kinds = doc.kind[pres]
    if not np.any(kinds == Attr.kind):
        return pres
    return np.where(kinds == Attr.kind, doc.parent[pres], pres)


def descendant_join(doc: ShreddedDocument, context_pres: np.ndarray,
                    candidates: np.ndarray | None = None) -> np.ndarray:
    """Descendant axis via Staircase Join.

    :param context_pres: pre ranks of the context nodes (any order).
    :param candidates: optional sorted pre ranks the result is restricted
        to (selection pushdown, e.g. from the element-name index);
        ``None`` means all nodes.
    :returns: sorted pre ranks of the result.
    """
    if len(context_pres) == 0:
        return np.empty(0, dtype=np.int64)
    pres = np.unique(np.asarray(context_pres, dtype=np.int64))
    sizes = doc.size[pres]
    keep = prune_context(pres, sizes)
    pres, sizes = pres[keep], sizes[keep]

    if candidates is None:
        # Emit each pruned window directly; windows are disjoint after
        # pruning, so concatenation is already sorted and duplicate-free.
        chunks = [np.arange(p + 1, p + s + 1, dtype=np.int64)
                  for p, s in zip(pres.tolist(), sizes.tolist())
                  if s > 0]
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(chunks)

    cand = np.asarray(candidates, dtype=np.int64)
    # Merge scan: for each disjoint window, take the candidate slice.
    lo = np.searchsorted(cand, pres + 1, side="left")
    hi = np.searchsorted(cand, pres + sizes, side="right")
    chunks = [cand[a:b] for a, b in zip(lo.tolist(), hi.tolist()) if a < b]
    if not chunks:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(chunks)


def ancestor_join(doc: ShreddedDocument, context_pres: np.ndarray,
                  candidates: np.ndarray | None = None) -> np.ndarray:
    """Ancestor axis by climbing the parent column (memoised)."""
    if len(context_pres) == 0:
        return np.empty(0, dtype=np.int64)
    parent = doc.parent
    out: set[int] = set()
    for pre in np.unique(np.asarray(context_pres, dtype=np.int64)).tolist():
        p = parent[pre]
        while p >= 0 and p not in out:
            out.add(int(p))
            p = parent[p]
    result = np.asarray(sorted(out), dtype=np.int64)
    if candidates is not None:
        result = result[np.isin(result, candidates)]
    return result


def child_join(doc: ShreddedDocument, context_pres: np.ndarray,
               candidates: np.ndarray | None = None) -> np.ndarray:
    """Child axis via the parent column."""
    if len(context_pres) == 0:
        return np.empty(0, dtype=np.int64)
    wanted = np.unique(np.asarray(context_pres, dtype=np.int64))
    pool = doc.pre if candidates is None \
        else np.asarray(candidates, dtype=np.int64)
    mask = np.isin(doc.parent[pool], wanted)
    return np.sort(pool[mask])


def parent_join(doc: ShreddedDocument, context_pres: np.ndarray
                ) -> np.ndarray:
    """Parent axis via the parent column."""
    if len(context_pres) == 0:
        return np.empty(0, dtype=np.int64)
    parents = doc.parent[np.asarray(context_pres, dtype=np.int64)]
    parents = parents[parents >= 0]
    return np.unique(parents)


def _anchored_unique(doc: ShreddedDocument,
                     context_pres: np.ndarray) -> np.ndarray:
    """Unique anchor pres of a context set — the anchor boundary.

    Mapping attributes to their owner element can collapse distinct
    context pres onto one anchor (two attributes of one element), so
    anchors are deduplicated *after* anchoring; downstream joins may
    then treat them as a set without re-emitting per duplicate.
    """
    pres = np.unique(np.asarray(context_pres, dtype=np.int64))
    return np.unique(anchor_pres(doc, pres))


def following_join(doc: ShreddedDocument, context_pres: np.ndarray,
                   candidates: np.ndarray | None = None) -> np.ndarray:
    """Following axis: nodes past every context subtree.

    In the pre/size encoding the following set of a node *v* is exactly
    ``{q : pre(q) > pre(v) + size(v)}``, so the union over a context set
    is one threshold — the smallest subtree end.  Attributes anchor at
    their owner element (:func:`anchor_pres`, deduplicated).
    """
    if len(context_pres) == 0:
        return np.empty(0, dtype=np.int64)
    anchors = _anchored_unique(doc, context_pres)
    threshold = int((anchors + doc.size[anchors]).min())
    pool = doc.pre if candidates is None \
        else np.asarray(candidates, dtype=np.int64)
    return pool[np.searchsorted(pool, threshold, side="right"):]


def preceding_join(doc: ShreddedDocument, context_pres: np.ndarray,
                   candidates: np.ndarray | None = None) -> np.ndarray:
    """Preceding axis: nodes whose subtree ends before every context.

    ``{q : pre(q) + size(q) < pre(v)}`` for some context *v* collapses
    to one threshold — the largest context pre; ancestors end at or
    after every context pre, so they are excluded without an explicit
    check.
    """
    if len(context_pres) == 0:
        return np.empty(0, dtype=np.int64)
    threshold = int(_anchored_unique(doc, context_pres).max())
    pool = doc.pre if candidates is None \
        else np.asarray(candidates, dtype=np.int64)
    return np.sort(pool[pool + doc.size[pool] < threshold])


def _sibling_anchors(doc: ShreddedDocument,
                     context_pres: np.ndarray) -> np.ndarray:
    """Context pres that have siblings at all: attribute nodes are not
    children of their owner (the DOM walk yields nothing for them) and
    fragment roots have no parent."""
    pres = np.unique(np.asarray(context_pres, dtype=np.int64))
    keep = (doc.kind[pres] != Attr.kind) & (doc.parent[pres] >= 0)
    return pres[keep]


def _sibling_window(doc: ShreddedDocument, pool: np.ndarray,
                    lo: int, hi: int, parent_pre: int) -> np.ndarray:
    """Pool entries in ``(lo, hi]`` that are genuine children of
    *parent_pre* — attribute rows share the parent column but are not
    siblings."""
    a = np.searchsorted(pool, lo, side="right")
    b = np.searchsorted(pool, hi, side="right")
    window = pool[a:b]
    keep = doc.parent[window] == parent_pre
    keep &= doc.kind[window] != Attr.kind
    return window[keep]


def following_sibling_join(doc: ShreddedDocument,
                           context_pres: np.ndarray,
                           candidates: np.ndarray | None = None
                           ) -> np.ndarray:
    """Following-sibling axis on the shredded encoding.

    The siblings of *v* after it are exactly the nodes in
    ``(pre(v) + size(v), parent_pre + size(parent))`` with
    ``parent == parent_pre`` — the suffix of the owner's child span
    past *v*'s subtree.
    """
    if len(context_pres) == 0:
        return np.empty(0, dtype=np.int64)
    pres = _sibling_anchors(doc, context_pres)
    pool = doc.pre if candidates is None \
        else np.asarray(candidates, dtype=np.int64)
    chunks = []
    for p in pres.tolist():
        parent_pre = int(doc.parent[p])
        chunks.append(_sibling_window(
            doc, pool, p + int(doc.size[p]),
            parent_pre + int(doc.size[parent_pre]), parent_pre))
    if not chunks:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(chunks))


def preceding_sibling_join(doc: ShreddedDocument,
                           context_pres: np.ndarray,
                           candidates: np.ndarray | None = None
                           ) -> np.ndarray:
    """Preceding-sibling axis: the owner's child span before *v*."""
    if len(context_pres) == 0:
        return np.empty(0, dtype=np.int64)
    pres = _sibling_anchors(doc, context_pres)
    pool = doc.pre if candidates is None \
        else np.asarray(candidates, dtype=np.int64)
    chunks = []
    for p in pres.tolist():
        parent_pre = int(doc.parent[p])
        chunks.append(_sibling_window(doc, pool, parent_pre, p - 1,
                                      parent_pre))
    if not chunks:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(chunks))
