"""Loop-lifted StandOff MergeJoin (paper §4.4–4.5, Listing 1, Figure 4).

The input context is an ``iter|id|start|end`` table sorted on ``start``
(the ``iter`` column separates the context sequences of the different
iterations of the enclosing XQuery for-loop); the candidate sequence is a
start-clustered :class:`~repro.core.region_index.RegionTable` (usually the
region index itself, or an id-intersection of it).  One sequential pass
over both inputs computes the StandOff join for *all* iterations.

Algorithms implemented here:

* :func:`ll_select_narrow` — containment semi-join (paper Listing 1);
* :func:`ll_select_wide`   — overlap semi-join (symmetric two-sided merge);
* :func:`ll_reject_narrow`, :func:`ll_reject_wide` — anti-joins, computed
  as per-iteration complements of the corresponding semi-joins;
* :func:`ll_join` — dispatch by :class:`~repro.core.naive.StandoffOp`.

The *active context items* structure is configurable (``"list"`` — a
sorted list with mid-deletion, the paper's implementation — or ``"heap"``
— the lazy-deletion heap suggested in §5 for distributions that make the
list grow long).

**Erratum note.** Listing 1's printed skip condition (line 14,
``tmp.end <= context[i].end``) would in general skip context items that
are *not* contained in their own iteration's active item and thus lose
results (the Figure 4 trace does not exercise the difference).  We
implement the semantics the surrounding text describes: a context item is
skipped only when it is completely contained in the active item *of the
same iteration*; otherwise it replaces that item (safe, because a
same-iteration item that is not contained necessarily has a larger end,
and all candidates it could newly match start at or after its own start).
See ``tests/test_listing1_trace.py``.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.naive import StandoffOp
from repro.core.region_index import RegionTable, _position_column
from repro.errors import RegionError
from repro.relational.columnar import complement

#: A trace event: (kind, *payload).  Used by the Figure 4 trace test.
TraceEvent = tuple
TraceSink = Callable[[TraceEvent], None]

#: Join result: iteration -> unique candidate node ids in ascending
#: (= document) order.
JoinResult = dict[int, list[int]]


@dataclass(frozen=True)
class IterContext:
    """The loop-lifted context input: ``iter|id|start|end`` sorted on start.

    ``iters`` are logical iteration numbers; ``ids`` are node ids; one row
    per region (multi-region context areas contribute several rows with
    the same ``(iter, id)``).
    """

    iters: np.ndarray
    ids: np.ndarray
    starts: np.ndarray
    ends: np.ndarray

    @classmethod
    def from_rows(cls, rows) -> "IterContext":
        """Build from ``(iter, id, start, end)`` tuples; sorts on start.

        Exact duplicate rows are dropped: a repeated (iter, node, region)
        is semantically idempotent but would double-count in the
        ∀-quantified multi-region containment pass.  Sort, validation
        and dedup are all columnar (``np.lexsort`` + adjacency masks).
        """
        rows = list(rows)
        if not rows:
            empty = np.empty(0, np.int64)
            return cls(empty, empty.copy(), empty.copy(), empty.copy())
        it, ids, st, en = zip(*rows)
        it = np.asarray(it, np.int64)
        ids = np.asarray(ids, np.int64)
        st = _position_column(st)
        en = _position_column(en)
        if np.any(st > en):
            raise RegionError("context contains a region with start > end")
        order = np.lexsort((ids, it, en, st))
        it, ids, st, en = it[order], ids[order], st[order], en[order]
        if len(rows) > 1:
            keep = np.empty(len(rows), bool)
            keep[0] = True
            np.logical_or.reduce(
                [it[1:] != it[:-1], ids[1:] != ids[:-1],
                 st[1:] != st[:-1], en[1:] != en[:-1]], out=keep[1:])
            if not keep.all():
                it, ids, st, en = it[keep], ids[keep], st[keep], en[keep]
        return cls(it, ids, st, en)

    @classmethod
    def single(cls, table: RegionTable, iteration: int = 0) -> "IterContext":
        """Wrap a plain region table as the context of one iteration."""
        n = len(table)
        return cls(np.full(n, iteration, np.int64), table.ids,
                   table.starts, table.ends)

    def __len__(self) -> int:
        return len(self.iters)

    def iterations(self) -> list[int]:
        """Distinct iteration numbers present, ascending."""
        return [int(i) for i in np.unique(self.iters)]


class _ActiveList:
    """Active context items, one per iteration, sorted ascending on end.

    This is the paper's structure: a list from which elements may be
    deleted in the middle (on same-iteration replacement).  Entries are
    ``(end, iter, ctx_id)`` tuples; ``by_iter`` maps an iteration to its
    single live entry.
    """

    __slots__ = ("entries", "by_iter")

    def __init__(self) -> None:
        self.entries: list[tuple] = []      # ascending by end
        self.by_iter: dict[int, tuple] = {}

    def __len__(self) -> int:
        return len(self.by_iter)

    def get(self, iteration: int):
        return self.by_iter.get(iteration)

    def add(self, end, iteration: int, ctx_id: int) -> None:
        entry = (end, iteration, ctx_id)
        insort(self.entries, entry)
        self.by_iter[iteration] = entry

    def replace(self, iteration: int, end, ctx_id: int) -> None:
        old = self.by_iter[iteration]
        idx = bisect_left(self.entries, old)
        del self.entries[idx]
        self.add(end, iteration, ctx_id)

    def trim(self, threshold) -> list[tuple]:
        """Drop entries with ``end < threshold``; return them (for traces)."""
        cut = bisect_left(self.entries, (threshold,))
        if cut == 0:
            return []
        dropped = self.entries[:cut]
        del self.entries[:cut]
        for entry in dropped:
            if self.by_iter.get(entry[1]) is entry:
                del self.by_iter[entry[1]]
        return dropped

    def iters_with_end_at_least(self, threshold) -> list[tuple]:
        """Entries whose end >= threshold (the containment emitters)."""
        idx = bisect_left(self.entries, (threshold,))
        return self.entries[idx:]

    def all_entries(self) -> list[tuple]:
        return list(self.entries)


class _ActiveHeap:
    """Heap-based active set (paper §5 suggestion), lazy deletion.

    A min-heap on ``end`` drives expiry; ``by_iter`` is authoritative for
    liveness.  Containment emission scans all live entries (no order), so
    this trades emission cost for O(log n) maintenance — the ablation
    benchmark compares the two under long active lists.
    """

    __slots__ = ("heap", "by_iter")

    def __init__(self) -> None:
        self.heap: list[tuple] = []
        self.by_iter: dict[int, tuple] = {}

    def __len__(self) -> int:
        return len(self.by_iter)

    def get(self, iteration: int):
        return self.by_iter.get(iteration)

    def add(self, end, iteration: int, ctx_id: int) -> None:
        entry = (end, iteration, ctx_id)
        heapq.heappush(self.heap, entry)
        self.by_iter[iteration] = entry

    def replace(self, iteration: int, end, ctx_id: int) -> None:
        # Old entry stays in the heap; it becomes stale and is skipped on pop.
        self.add(end, iteration, ctx_id)

    def trim(self, threshold) -> list[tuple]:
        dropped = []
        while self.heap and self.heap[0][0] < threshold:
            entry = heapq.heappop(self.heap)
            if self.by_iter.get(entry[1]) is entry:
                del self.by_iter[entry[1]]
                dropped.append(entry)
        return dropped

    def iters_with_end_at_least(self, threshold) -> list[tuple]:
        return [e for e in self.by_iter.values() if e[0] >= threshold]

    def all_entries(self) -> list[tuple]:
        return list(self.by_iter.values())


_ACTIVE_STRUCTURES = {"list": _ActiveList, "heap": _ActiveHeap}


def _make_active(active_structure: str):
    try:
        return _ACTIVE_STRUCTURES[active_structure]()
    except KeyError:
        raise ValueError(
            f"unknown active structure {active_structure!r}; "
            f"expected one of {sorted(_ACTIVE_STRUCTURES)}"
        ) from None


def _sorted_unique_per_iter(pairs) -> JoinResult:
    """Group raw ``(iter, node_id)`` emissions into the canonical result."""
    grouped: dict[int, set[int]] = {}
    for it, node_id in pairs:
        grouped.setdefault(it, set()).add(node_id)
    return {it: sorted(ids) for it, ids in grouped.items()}


# ----------------------------------------------------------------------
# select-narrow (containment semi-join) — paper Listing 1
# ----------------------------------------------------------------------

def ll_select_narrow(context: IterContext, candidates: RegionTable, *,
                     active_structure: str = "list",
                     trace: TraceSink | None = None) -> JoinResult:
    """Loop-lifted containment semi-join.

    For every iteration, returns the candidate node ids whose *every*
    region is contained in a region of some context area of that
    iteration.  Single-region candidates take the fast path equivalent to
    the paper's Listing 1 (one active item per iteration, containment
    skip / replacement); multi-region candidates use the area-aware
    general pass (active items keyed per context area) followed by the
    ∀-quantifier post-processing the paper alludes to in §4.5.
    """
    if len(context) == 0 or len(candidates) == 0:
        return {}
    n_unique = len(np.unique(candidates.ids))
    if n_unique == len(candidates):
        if active_structure == "list" and trace is None:
            return _narrow_single_region_fast(context, candidates)
        pairs = _narrow_single_region(context, candidates,
                                      active_structure, trace)
        return _sorted_unique_per_iter(pairs)
    return _narrow_multi_region(context, candidates,
                                candidates.multiplicity(),
                                active_structure)


def _narrow_single_region_fast(context: IterContext,
                               candidates: RegionTable) -> JoinResult:
    """Listing 1 with the list-based active structure inlined.

    Semantically identical to :func:`_narrow_single_region` with
    ``active_structure="list"``; the sorted active list and its per-iter
    map live in local variables so the per-candidate trim/emit steps are
    free of method-call overhead (this is the loop whose cost §4.6
    compares against loop-lifted Staircase Join).
    """
    c_iters = context.iters.tolist()
    c_ids = context.ids.tolist()
    c_starts = context.starts.tolist()
    c_ends = context.ends.tolist()
    k_starts = candidates.starts.tolist()
    k_ends = candidates.ends.tolist()
    k_ids = candidates.ids.tolist()

    entries: list[tuple] = []        # (end, iter, ctx_id), ascending
    by_iter: dict[int, tuple] = {}
    result: dict[int, list[int]] = {}
    n_ctx, n_cand = len(c_iters), len(k_starts)
    i = j = 0

    first_start = c_starts[0]
    while j < n_cand and k_starts[j] < first_start:
        j += 1

    while i < n_ctx:
        it, cid, ce = c_iters[i], c_ids[i], c_ends[i]
        cur = by_iter.get(it)
        if cur is None:
            entry = (ce, it, cid)
            insort(entries, entry)
            by_iter[it] = entry
        elif ce > cur[0]:
            del entries[bisect_left(entries, cur)]
            entry = (ce, it, cid)
            insort(entries, entry)
            by_iter[it] = entry
        i += 1
        next_start = c_starts[i] if i < n_ctx else None

        while j < n_cand and (next_start is None
                              or k_starts[j] < next_start):
            ks = k_starts[j]
            cut = bisect_left(entries, (ks,))
            if cut:
                for entry in entries[:cut]:
                    del by_iter[entry[1]]
                del entries[:cut]
            ke = k_ends[j]
            pos = bisect_left(entries, (ke,))
            if pos < len(entries):
                kid = k_ids[j]
                for entry in entries[pos:]:
                    bucket = result.get(entry[1])
                    if bucket is None:
                        result[entry[1]] = [kid]
                    else:
                        bucket.append(kid)
            j += 1
        if j == n_cand:
            break
    # Pairs are unique (one active entry per iteration, unique candidate
    # ids); only the per-iteration id sort remains.
    for bucket in result.values():
        bucket.sort()
    return result


def _narrow_single_region(context: IterContext, candidates: RegionTable,
                          active_structure: str,
                          trace: TraceSink | None) -> list[tuple[int, int]]:
    """Listing 1: single-region candidates, one active item per iteration."""
    c_iters = context.iters.tolist()
    c_ids = context.ids.tolist()
    c_starts = context.starts.tolist()
    c_ends = context.ends.tolist()
    k_starts = candidates.starts.tolist()
    k_ends = candidates.ends.tolist()
    k_ids = candidates.ids.tolist()

    emit = trace if trace is not None else None
    active = _make_active(active_structure)
    result: list[tuple[int, int]] = []
    n_ctx, n_cand = len(c_iters), len(k_starts)
    i = j = 0

    # Lines 21-24: candidates that start before the first context item can
    # be contained in nothing (context starts only grow from here).
    first_start = c_starts[0]
    while j < n_cand and k_starts[j] < first_start:
        if emit:
            emit(("skip-candidate", k_ids[j]))
        j += 1

    while i < n_ctx:
        # --- add / replace / skip the next context item (lines 8, 11-18, 41)
        it, cid = c_iters[i], c_ids[i]
        cur = active.get(it)
        if cur is not None and c_ends[i] <= cur[0]:
            # Contained in the same iteration's active item: no new results.
            if emit:
                emit(("skip-context", cid))
        elif cur is not None:
            active.replace(it, c_ends[i], cid)
            if emit:
                emit(("replace-active", cur[2], cid))
        else:
            active.add(c_ends[i], it, cid)
            if emit:
                emit(("add-active", cid))
        i += 1
        next_start = c_starts[i] if i < n_ctx else None

        # --- analyse candidates up to the next context item (lines 26-36)
        while j < n_cand and (next_start is None
                              or k_starts[j] < next_start):
            ks, ke, kid = k_starts[j], k_ends[j], k_ids[j]
            for entry in active.trim(ks):                    # lines 29-31
                if emit:
                    emit(("trim", entry[2]))
            hits = active.iters_with_end_at_least(ke)        # lines 32-34
            if hits:
                for entry in hits:
                    result.append((entry[1], kid))
                    if emit:
                        emit(("emit", entry[1], kid))
            elif emit:
                emit(("skip-candidate", kid))
            j += 1
        if j == n_cand:                                      # lines 37-38
            break
    if emit:
        emit(("exit",))
    return result


def _narrow_multi_region(context: IterContext, candidates: RegionTable,
                         multiplicity: dict[int, int],
                         active_structure: str) -> JoinResult:
    """Area-aware pass for multi-region candidate areas.

    Emits region-level matches attributed to the *context area* and keeps
    per ``(iter, ctx_id, cand_id)`` counts; a candidate area matches an
    iteration iff some single context area contains *all* of its regions
    (§3.1 ``contains``: ∀ r2 ∈ a2 ∃ r1 ∈ a1).
    """
    c_iters = context.iters.tolist()
    c_ids = context.ids.tolist()
    c_starts = context.starts.tolist()
    c_ends = context.ends.tolist()
    k_starts = candidates.starts.tolist()
    k_ends = candidates.ends.tolist()
    k_ids = candidates.ids.tolist()

    # Active entries keyed (iter, ctx_id); several areas per iteration may
    # be live at once and area identity matters, so no skip/replacement.
    entries: list[tuple] = []          # (end, iter, ctx_id) ascending by end
    live: dict[tuple[int, int], tuple] = {}
    counts: dict[tuple[int, int, int], int] = {}

    n_ctx, n_cand = len(c_iters), len(k_starts)
    i = j = 0
    while i < n_ctx or j < n_cand:
        take_ctx = i < n_ctx and (j >= n_cand
                                  or c_starts[i] <= k_starts[j])
        if take_ctx:
            entry = (c_ends[i], c_iters[i], c_ids[i])
            insort(entries, entry)
            live[(c_iters[i], c_ids[i])] = entry
            i += 1
            continue
        ks, ke, kid = k_starts[j], k_ends[j], k_ids[j]
        cut = bisect_left(entries, (ks,))
        for entry in entries[:cut]:
            key = (entry[1], entry[2])
            if live.get(key) is entry:
                del live[key]
        del entries[:cut]
        idx = bisect_left(entries, (ke,))
        for end, it, ctx_id in entries[idx:]:
            key = (it, ctx_id, kid)
            counts[key] = counts.get(key, 0) + 1
        j += 1

    pairs = [(it, kid) for (it, _ctx, kid), n in counts.items()
             if n == multiplicity[kid]]
    return _sorted_unique_per_iter(pairs)


# ----------------------------------------------------------------------
# select-wide (overlap semi-join)
# ----------------------------------------------------------------------

def ll_select_wide(context: IterContext, candidates: RegionTable, *,
                   active_structure: str = "list",
                   trace: TraceSink | None = None) -> JoinResult:
    """Loop-lifted overlap semi-join.

    Overlap is ∃∃-quantified over regions (§3.1), so region-level matches
    deduplicated per ``(iter, candidate)`` are exact for any multiplicity.
    The merge is two-sided: a candidate matches context items active at
    its start, *and* context items arriving during its extent; context
    items are processed first on start ties so each pair is found once
    (then set-deduplicated).
    """
    if len(context) == 0 or len(candidates) == 0:
        return {}
    c_iters = context.iters.tolist()
    c_ids = context.ids.tolist()
    c_starts = context.starts.tolist()
    c_ends = context.ends.tolist()
    k_starts = candidates.starts.tolist()
    k_ends = candidates.ends.tolist()
    k_ids = candidates.ids.tolist()

    active = _make_active(active_structure)
    # Active candidates: (end, cand_id) ascending by end.
    cand_active: list[tuple] = []
    seen: set[tuple[int, int]] = set()

    n_ctx, n_cand = len(c_iters), len(k_starts)
    i = j = 0
    while i < n_ctx or j < n_cand:
        take_ctx = i < n_ctx and (j >= n_cand
                                  or c_starts[i] <= k_starts[j])
        if take_ctx:
            it, cid, cs, ce = c_iters[i], c_ids[i], c_starts[i], c_ends[i]
            cur = active.get(it)
            if cur is not None and ce <= cur[0]:
                i += 1                      # contained in same-iter item
                continue
            if cur is not None:
                active.replace(it, ce, cid)
            else:
                active.add(ce, it, cid)
            # Candidates still alive at cs all overlap this context item.
            cut = bisect_left(cand_active, (cs,))
            del cand_active[:cut]
            for _end, kid in cand_active:
                seen.add((it, kid))
            i += 1
        else:
            ks, ke, kid = k_starts[j], k_ends[j], k_ids[j]
            active.trim(ks)
            # Every live context item has start <= ks <= end: overlap.
            for entry in active.all_entries():
                seen.add((entry[1], kid))
            insort(cand_active, (ke, kid))
            j += 1
    return _sorted_unique_per_iter(seen)


# ----------------------------------------------------------------------
# rejects (anti-joins)
# ----------------------------------------------------------------------

def _complement(select_result: JoinResult, iterations: list[int],
                universe: np.ndarray) -> JoinResult:
    """Per-iteration complement of a semi-join result over *universe*.

    Delegates to the shared columnar helper
    (:func:`repro.relational.columnar.complement`) and decodes back to
    the reference path's dict representation.
    """
    return complement(select_result, iterations, universe).to_dict()


def ll_reject_narrow(context: IterContext, candidates: RegionTable, *,
                     active_structure: str = "list",
                     trace: TraceSink | None = None) -> JoinResult:
    """Containment anti-join: candidates contained in *no* context area.

    Computed as the per-iteration complement of :func:`ll_select_narrow`
    over the candidate universe.  Iterations with a non-empty context
    sequence but no containment matches return the full universe;
    iterations absent from the context return nothing (a step needs
    context nodes to produce output — see DESIGN.md §5).
    """
    if len(context) == 0:
        return {}
    universe = candidates.unique_ids()
    selected = ll_select_narrow(context, candidates,
                                active_structure=active_structure,
                                trace=trace)
    return _complement(selected, context.iterations(), universe)


def ll_reject_wide(context: IterContext, candidates: RegionTable, *,
                   active_structure: str = "list",
                   trace: TraceSink | None = None) -> JoinResult:
    """Overlap anti-join: candidates overlapping *no* context area."""
    if len(context) == 0:
        return {}
    universe = candidates.unique_ids()
    selected = ll_select_wide(context, candidates,
                              active_structure=active_structure,
                              trace=trace)
    return _complement(selected, context.iterations(), universe)


_DISPATCH = {
    StandoffOp.SELECT_NARROW: ll_select_narrow,
    StandoffOp.SELECT_WIDE: ll_select_wide,
    StandoffOp.REJECT_NARROW: ll_reject_narrow,
    StandoffOp.REJECT_WIDE: ll_reject_wide,
}


def ll_join(op: StandoffOp, context: IterContext,
            candidates: RegionTable, *,
            active_structure: str = "list",
            trace: TraceSink | None = None) -> JoinResult:
    """Dispatch a loop-lifted StandOff join by operator."""
    return _DISPATCH[op](context, candidates,
                         active_structure=active_structure, trace=trace)
