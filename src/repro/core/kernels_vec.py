"""Vectorized StandOff join kernels (batched NumPy implementation).

The loop-lifted merge joins in :mod:`repro.core.mergejoin_ll` execute the
paper's Listing 1 as an interpreted row-at-a-time merge; this module
implements the same four joins as *batched* column operations so the hot
path runs at the speed the columnar ``start|end|id`` layout already
supports:

* the context is segmented per iteration (the ``iter`` column is the
  loop-lifting dimension); the segmentation and the per-segment running
  ``max(end)`` — exactly the quantity the active-items structure of
  Listing 1 maintains — are computed once per context and cached on it;
* per iteration, only a ``searchsorted`` **window** of the
  start-clustered candidate table is probed (candidates starting outside
  ``[first context start, max context end]`` can never match), so total
  work tracks the number of plausible (iteration, candidate) pairs
  instead of ``iterations x candidates``;
* containment/overlap are boolean-mask tests of candidate endpoints
  against segmented prefix maxima;
* results are built **columnar**: the matched pairs are canonicalized
  straight into a :class:`~repro.relational.columnar.ColumnarResult`
  (iters + CSR offsets|values) — no per-iteration ``dict[int, list]``
  materialization anywhere on the fast path.

Semantics are identical to :func:`repro.core.mergejoin_ll.ll_join` — the
differential suite (``tests/test_kernels_differential.py``) asserts
``columnar == vectorized == list == heap == naive`` on randomized
workloads (the columnar result's lazy dict view makes the comparison
direct).  The reference path is kept both as the oracle and as the
fallback: trace sinks (which observe Listing 1's add/replace/trim/emit
events) and pathological inputs whose candidate windows would
materialize too many pairs are delegated to ``ll_join``.
"""

from __future__ import annotations

import numpy as np

from repro.config import (
    AUTO_KERNEL_MIN_ROWS,
    FAMILY_STANDOFF,
    KERNEL_AUTO,
    KERNEL_VECTORIZED,
    KERNELS,
)
from repro.core.mergejoin_ll import (
    IterContext,
    JoinResult,
    TraceSink,
    ll_join,
)
from repro.core.naive import StandoffOp
from repro.core.region_index import RegionTable
from repro.relational.columnar import ColumnarResult, complement, run_starts

#: Upper bound on materialized (iteration, candidate) probe pairs; above
#: this the kernel delegates to the row-at-a-time reference join rather
#: than risk a multi-gigabyte intermediate (quadratic overlap blowup).
PAIR_BUDGET = 32_000_000

#: Composite-key headroom: offset tricks stay inside int64.
_INT64_BUDGET = 2 ** 62


class _PairBudgetExceeded(Exception):
    """Raised internally when window expansion would exceed PAIR_BUDGET."""


# ----------------------------------------------------------------------
# segmented primitives
# ----------------------------------------------------------------------

#: Start offsets of the runs of equal values in a sorted array (shared
#: with the columnar result layer, which uses it to cut CSR offsets).
_boundaries = run_starts


def _segment_ids(n: int, seg_off: np.ndarray) -> np.ndarray:
    """Segment ordinal per position, given segment start offsets."""
    ids = np.zeros(n, np.int64)
    ids[seg_off[1:]] = 1
    np.cumsum(ids, out=ids)
    return ids


def _segmented_cummax(values: np.ndarray, seg_off: np.ndarray,
                      seg_end: np.ndarray) -> np.ndarray:
    """Per-segment running maximum (prefix max restarting at seg_off)."""
    if len(seg_off) == 1:
        return np.maximum.accumulate(values)
    if len(seg_off) == len(values):          # all segments of length one
        return values
    if values.dtype.kind in "iu":
        vmin = int(values.min())
        span = int(values.max()) - vmin + 1
        if len(seg_off) * span < _INT64_BUDGET:
            base = _segment_ids(len(values), seg_off) * span
            comp = values.astype(np.int64, copy=True)
            comp -= vmin
            comp += base
            np.maximum.accumulate(comp, out=comp)
            comp -= base
            comp += vmin
            return comp
    out = np.empty_like(values)
    for a, b in zip(seg_off.tolist(), seg_end.tolist()):
        np.maximum.accumulate(values[a:b], out=out[a:b])
    return out


class _Segments:
    """Per-iteration segmentation of a context (see _context_segments)."""

    __slots__ = ("uniq_iters", "seg_off", "seg_end", "starts", "ends",
                 "cummax", "first_order", "first_sorted", "maxend_order",
                 "maxend_sorted")

    def __init__(self, context: IterContext):
        order = np.argsort(context.iters, kind="stable")
        its = context.iters[order]
        self.starts = cs = context.starts[order]
        self.ends = ce = context.ends[order]
        self.seg_off = _boundaries(its)
        self.seg_end = np.append(self.seg_off[1:], len(its))
        self.uniq_iters = its[self.seg_off]
        self.cummax = _segmented_cummax(ce, self.seg_off, self.seg_end)
        # The candidate windows are found by searchsorted probes with the
        # per-segment first start / max end; binary search degrades ~3x
        # on unsorted probes, so pre-sort them once (results are
        # scattered back through the inverse permutation per join call).
        first = cs[self.seg_off]
        maxend = self.cummax[self.seg_end - 1]
        self.first_order = np.argsort(first, kind="stable")
        self.first_sorted = first[self.first_order]
        self.maxend_order = np.argsort(maxend, kind="stable")
        self.maxend_sorted = maxend[self.maxend_order]


def _context_segments(context: IterContext) -> _Segments:
    """Segment a context per iteration, cached on the context.

    Rows are sorted by ``(iter, start)``; ``cummax`` is the segmented
    prefix maximum of ``end`` — exactly the quantity Listing 1's
    active-items structure tracks.  The cache is sound because
    :class:`IterContext` is frozen; it plays the role the
    start-clustered index plays for the candidate side.
    """
    cached = context.__dict__.get("_vec_segments")
    if cached is None:
        cached = _Segments(context)
        object.__setattr__(context, "_vec_segments", cached)
    return cached


def _segmented_searchsorted(values: np.ndarray, seg_off: np.ndarray,
                            seg_end: np.ndarray, probes: np.ndarray,
                            seg_of_probe: np.ndarray,
                            probe_bounds: np.ndarray) -> np.ndarray:
    """Per-segment ``searchsorted(..., side="right")`` in global indices.

    ``values`` is sorted within each segment; ``probes`` are grouped by
    segment (``probe_bounds`` delimits each segment's probe slice, which
    lets the generic path slice instead of mask).  Integer inputs take a
    single global ``searchsorted`` over composite ``segment * span +
    value`` keys.
    """
    nseg = len(seg_off)
    if nseg == 1:
        return np.searchsorted(values, probes, side="right")
    if values.dtype.kind in "iu" and probes.dtype.kind in "iu":
        vmin = int(min(values.min(), probes.min()))
        span = int(max(values.max(), probes.max())) - vmin + 2
        if nseg * span < _INT64_BUDGET:
            comp_v = values.astype(np.int64, copy=True)
            comp_v -= vmin
            comp_v += _segment_ids(len(values), seg_off) * span
            comp_p = probes.astype(np.int64, copy=True)
            comp_p -= vmin
            comp_p += seg_of_probe * span
            return np.searchsorted(comp_v, comp_p, side="right")
    out = np.empty(len(probes), np.int64)
    pb = probe_bounds.tolist()
    for s, (a, b) in enumerate(zip(seg_off.tolist(), seg_end.tolist())):
        pa, pz = pb[s], pb[s + 1]
        if pa < pz:
            out[pa:pz] = a + np.searchsorted(values[a:b], probes[pa:pz],
                                             side="right")
    return out


def _expand_windows(j0: np.ndarray, j1: np.ndarray
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Materialize per-segment candidate windows ``[j0, j1)`` as flat
    (segment-of-pair, candidate-row-of-pair) arrays plus pair bounds."""
    counts = j1 - j0
    total = int(counts.sum())
    if total > PAIR_BUDGET:
        raise _PairBudgetExceeded
    offs = np.concatenate(([0], np.cumsum(counts)))
    seg_of_pair = np.repeat(np.arange(len(j0), dtype=np.int64), counts)
    pair_j = np.arange(total, dtype=np.int64) \
        - np.repeat(offs[:-1] - j0, counts)
    return seg_of_pair, pair_j, offs


#: Canonicalize matched ``(iter, candidate id)`` pairs — unique ids per
#: iteration, ascending (= document) order — directly into CSR form;
#: this used to build a ``dict[int, list[int]]`` and was the dominant
#: cost of the kernel at large iteration counts.
_pairs_to_result = ColumnarResult.from_pairs


def _candidate_windows(seg: _Segments, candidates: RegionTable, *,
                       wide: bool) -> tuple[np.ndarray, np.ndarray]:
    """Per-iteration candidate windows ``[j0, j1)`` on the
    start-clustered candidate table.

    Only candidates starting in (roughly) [first context start, max
    context end] can satisfy the predicate against an iteration.
    Probes go through the cached sort order (sorted probes keep the
    binary search cache-friendly) and scatter back.
    """
    nseg = len(seg.uniq_iters)
    ks = candidates.starts
    lo_probes = seg.first_sorted
    if wide:
        lo_probes = lo_probes - candidates.max_length()
    j0 = np.empty(nseg, np.int64)
    j0[seg.first_order] = np.searchsorted(ks, lo_probes, side="left")
    j1 = np.empty(nseg, np.int64)
    j1[seg.maxend_order] = np.searchsorted(ks, seg.maxend_sorted,
                                           side="right")
    return j0, np.maximum(j0, j1)


def estimate_probe_pairs(context: IterContext, candidates: RegionTable,
                         *, wide: bool = False) -> int:
    """The (iteration, candidate) probe pairs the batched semi-join
    would materialize — the overlap-density signal ``kernel="auto"``
    feeds into :meth:`repro.config.KernelRegistry.select`.

    Two ``searchsorted`` probes per iteration over structures that are
    cached anyway (the context segmentation, the start-clustered
    candidate table), so the estimate costs a negligible fraction of
    either kernel.  The window sum saturates instead of wrapping: on
    pathological region counts an int64 overflow would turn the
    estimate negative and silently defeat the
    :data:`~repro.config.AUTO_KERNEL_MAX_PAIRS` guard.
    """
    if len(context) == 0 or len(candidates) == 0:
        return 0
    seg = _context_segments(context)
    j0, j1 = _candidate_windows(seg, candidates, wide=wide)
    return saturating_pair_count(j1 - j0)


def saturating_pair_count(counts: np.ndarray, *,
                          cap: int = _INT64_BUDGET) -> int:
    """Sum non-negative int64 window counts, saturating at *cap*.

    A wrapped int64 sum would compare *below* any pair budget; the
    float64 pre-check is monotone and overflow-free, and every consumer
    only compares the result against budgets orders of magnitude below
    the cap, so precision above it is irrelevant.  Sums that pass the
    pre-check fit int64 exactly (partial sums of non-negative terms
    never exceed the total).
    """
    if len(counts) == 0:
        return 0
    if float(np.sum(counts, dtype=np.float64)) >= cap:
        return cap
    return int(counts.sum())


# ----------------------------------------------------------------------
# semi-joins
# ----------------------------------------------------------------------

def _select_pairs(context: IterContext, candidates: RegionTable, *,
                  wide: bool) -> tuple[np.ndarray, np.ndarray]:
    """Matched ``(iter value, candidate id)`` pairs for a semi-join.

    ``wide=False`` (containment): candidate ``[ks, ke]`` matches an
    iteration iff some context region of that iteration has
    ``start <= ks and end >= ke`` — i.e. the segmented prefix max of
    ``end`` over context rows with ``start <= ks`` reaches ``ke``.
    ``wide=True`` (overlap, inclusive bounds): the prefix runs over
    context rows with ``start <= ke`` and must reach ``ks``.
    """
    seg = _context_segments(context)
    nseg = len(seg.uniq_iters)
    cs, ce = seg.starts, seg.ends

    ke, kid = candidates.ends, candidates.ids
    ks = candidates.starts
    j0, j1 = _candidate_windows(seg, candidates, wide=wide)
    seg_of_pair, pair_j, offs = _expand_windows(j0, j1)
    if len(pair_j) == 0:
        return (np.empty(0, seg.uniq_iters.dtype), np.empty(0, kid.dtype))
    if wide:
        probe, lower = ke[pair_j], ks[pair_j]
    else:
        probe, lower = ks[pair_j], ke[pair_j]
    if nseg == len(cs):
        # One context row per iteration (the common `for $x in ...`
        # shape): the prefix max *is* the row, no position search needed.
        match = cs[seg_of_pair] <= probe
        match &= ce[seg_of_pair] >= lower
    else:
        pos = _segmented_searchsorted(cs, seg.seg_off, seg.seg_end,
                                      probe, seg_of_pair, offs)
        match = pos > seg.seg_off[seg_of_pair]
        match &= seg.cummax[np.maximum(pos - 1, 0)] >= lower
    return seg.uniq_iters[seg_of_pair[match]], kid[pair_j[match]]


def _narrow_multi_region(context: IterContext,
                         candidates: RegionTable) -> ColumnarResult:
    """∀-quantified containment for multi-region candidate areas.

    Mirrors :func:`repro.core.mergejoin_ll._narrow_multi_region`:
    region-level containment events are counted per
    ``(iteration, context area, candidate id)`` and a candidate matches
    when some single context area accounts for *all* of its regions.
    """
    cs, ce = context.starts, context.ends
    # Pair expansion is context-row-centric here: a context region
    # [cs, ce] can only contain candidate regions starting inside it.
    j0 = np.searchsorted(candidates.starts, cs, side="left")
    j1 = np.searchsorted(candidates.starts, ce, side="right")
    j1 = np.maximum(j0, j1)
    ctx_of_pair, pair_j, _offs = _expand_windows(j0, j1)
    if len(pair_j):
        contained = candidates.ends[pair_j] <= ce[ctx_of_pair]
        ctx_of_pair = ctx_of_pair[contained]
        pair_j = pair_j[contained]
    if len(pair_j) == 0:
        return ColumnarResult.empty()
    # Ordinal per context *area* (iter, ctx id) — several regions of one
    # area share an ordinal; lexsort-based so arbitrary id ranges work.
    order = np.lexsort((context.ids, context.iters))
    its_s = context.iters[order]
    cid_s = context.ids[order]
    new_area = np.empty(len(order), bool)
    new_area[0] = True
    np.logical_or(its_s[1:] != its_s[:-1], cid_s[1:] != cid_s[:-1],
                  out=new_area[1:])
    area_ord = np.empty(len(order), np.int64)
    area_ord[order] = np.cumsum(new_area) - 1
    area_iter = its_s[new_area]

    uniq_ids, inv_ids, id_counts = np.unique(
        candidates.ids, return_inverse=True, return_counts=True)
    n_ids = len(uniq_ids)
    # Count containment events per (area, candidate id) and keep the
    # (iteration, candidate) pairs whose count reaches the candidate's
    # region multiplicity.
    events = area_ord[ctx_of_pair] * n_ids + inv_ids[pair_j]
    uniq_ev, ev_counts = np.unique(events, return_counts=True)
    ev_area, ev_id = np.divmod(uniq_ev, n_ids)
    full = ev_counts == id_counts[ev_id]
    return _pairs_to_result(area_iter[ev_area[full]], uniq_ids[ev_id[full]])


def vec_select_narrow(context: IterContext, candidates: RegionTable,
                      ) -> ColumnarResult:
    """Vectorized containment semi-join (batched Listing 1)."""
    if len(context) == 0 or len(candidates) == 0:
        return ColumnarResult.empty()
    try:
        if not candidates.has_multi_region_areas():
            # Each (iteration, candidate) pair is probed exactly once and
            # candidate ids are unique, so no dedup pass is needed.
            return _pairs_to_result(
                *_select_pairs(context, candidates, wide=False),
                unique=True)
        return _narrow_multi_region(context, candidates)
    except _PairBudgetExceeded:
        return ColumnarResult.from_dict(
            ll_join(StandoffOp.SELECT_NARROW, context, candidates))


def vec_select_wide(context: IterContext, candidates: RegionTable,
                    ) -> ColumnarResult:
    """Vectorized overlap semi-join (∃∃ over regions, any multiplicity)."""
    if len(context) == 0 or len(candidates) == 0:
        return ColumnarResult.empty()
    try:
        return _pairs_to_result(
            *_select_pairs(context, candidates, wide=True))
    except _PairBudgetExceeded:
        return ColumnarResult.from_dict(
            ll_join(StandoffOp.SELECT_WIDE, context, candidates))


# ----------------------------------------------------------------------
# anti-joins — per-iteration complements via the shared columnar helper
# ----------------------------------------------------------------------

def vec_reject_narrow(context: IterContext, candidates: RegionTable,
                      ) -> ColumnarResult:
    """Vectorized containment anti-join."""
    if len(context) == 0:
        return ColumnarResult.empty()
    return complement(vec_select_narrow(context, candidates),
                      context.iterations(), candidates.unique_ids())


def vec_reject_wide(context: IterContext, candidates: RegionTable,
                    ) -> ColumnarResult:
    """Vectorized overlap anti-join."""
    if len(context) == 0:
        return ColumnarResult.empty()
    return complement(vec_select_wide(context, candidates),
                      context.iterations(), candidates.unique_ids())


# ----------------------------------------------------------------------
# dispatch
# ----------------------------------------------------------------------

_VEC_DISPATCH = {
    StandoffOp.SELECT_NARROW: vec_select_narrow,
    StandoffOp.SELECT_WIDE: vec_select_wide,
    StandoffOp.REJECT_NARROW: vec_reject_narrow,
    StandoffOp.REJECT_WIDE: vec_reject_wide,
}


def vec_join(op: StandoffOp, context: IterContext,
             candidates: RegionTable, *,
             active_structure: str = "list",
             trace: TraceSink | None = None
             ) -> ColumnarResult | JoinResult:
    """Dispatch a vectorized StandOff join by operator.

    Signature-compatible with :func:`~repro.core.mergejoin_ll.ll_join`;
    returns a :class:`~repro.relational.columnar.ColumnarResult` (whose
    lazy dict view is interchangeable with the classical ``JoinResult``).
    A trace sink forces the reference path (the batched kernel has no
    per-row events to report), which returns the plain dict.
    """
    if trace is not None:
        return ll_join(op, context, candidates,
                       active_structure=active_structure, trace=trace)
    return _VEC_DISPATCH[op](context, candidates)


def kernel_join(op: StandoffOp, context: IterContext,
                candidates: RegionTable, *,
                kernel: str = "ll",
                active_structure: str = "list",
                trace: TraceSink | None = None
                ) -> ColumnarResult | JoinResult:
    """Run a loop-lifted StandOff join under the selected kernel.

    ``kernel`` is ``"ll"`` (reference merge), ``"vectorized"``, or
    ``"auto"`` (pick ``ll`` below the input-size threshold where NumPy
    call overhead dominates, or when the probe-pair density estimate
    says the batched kernel would exhaust its pair budget and delegate
    back anyway); tracing auto-falls back to ``ll``.  Selection goes
    through the unified registry —
    :meth:`repro.config.KernelRegistry.select`.
    """
    probe_pairs = None
    if kernel == KERNEL_AUTO and trace is None \
            and len(context) + len(candidates) >= AUTO_KERNEL_MIN_ROWS:
        wide = op in (StandoffOp.SELECT_WIDE, StandoffOp.REJECT_WIDE)
        probe_pairs = estimate_probe_pairs(context, candidates, wide=wide)
    kernel = KERNELS.select(FAMILY_STANDOFF, kernel,
                            context_rows=len(context),
                            candidate_rows=len(candidates),
                            probe_pairs=probe_pairs,
                            tracing=trace is not None)
    if kernel == KERNEL_VECTORIZED:
        return vec_join(op, context, candidates)
    return ll_join(op, context, candidates,
                   active_structure=active_structure, trace=trace)
