"""Allen's thirteen interval relations (Allen, CACM 1983).

Section 3 of the paper observes that two regions can stand in 13 different
relationships, "ranging at one end of the semantic spectrum from r1
disjunctively preceding r2, to r1 disjunctively succeeding r2 at the other
end, with r1 = r2 right in the middle", and that the StandOff joins
collapse these down to *containment* and *overlap*.

We implement the full taxonomy anyway: it documents exactly which Allen
relations each StandOff predicate covers, and the property tests use it to
verify that `contains`/`overlaps` partition the relation space the way the
paper claims.

Note on inclusivity: the paper's regions are *inclusive* ``[start, end]``
ranges.  Allen's relations are classically defined on open-ended intervals;
we use the inclusive reading throughout, so ``meets`` requires
``r1.end + 1 == r2.start`` in the integral domain would be "touches" — here
``meets`` uses the classical boundary-sharing definition
(``r1.end == r2.start``), which in inclusive semantics implies a one-point
overlap.  The mapping table below accounts for this.
"""

from __future__ import annotations

from enum import Enum

from repro.core.region import Region


class AllenRelation(Enum):
    """The 13 basic interval relations, in spectrum order."""

    BEFORE = "before"                  # r1 entirely precedes r2 (gap)
    MEETS = "meets"                    # r1.end == r2.start
    OVERLAPS = "overlaps"              # proper left-overlap
    STARTS = "starts"                  # same start, r1 shorter
    DURING = "during"                  # r1 strictly inside r2
    FINISHES = "finishes"              # same end, r1 shorter
    EQUAL = "equal"                    # identical
    FINISHED_BY = "finished-by"        # inverse of FINISHES
    CONTAINS = "contains"              # inverse of DURING
    STARTED_BY = "started-by"          # inverse of STARTS
    OVERLAPPED_BY = "overlapped-by"    # inverse of OVERLAPS
    MET_BY = "met-by"                  # inverse of MEETS
    AFTER = "after"                    # r1 entirely follows r2 (gap)

    @property
    def inverse(self) -> "AllenRelation":
        """The relation with the roles of r1 and r2 swapped."""
        return _INVERSES[self]


_INVERSES = {
    AllenRelation.BEFORE: AllenRelation.AFTER,
    AllenRelation.MEETS: AllenRelation.MET_BY,
    AllenRelation.OVERLAPS: AllenRelation.OVERLAPPED_BY,
    AllenRelation.STARTS: AllenRelation.STARTED_BY,
    AllenRelation.DURING: AllenRelation.CONTAINS,
    AllenRelation.FINISHES: AllenRelation.FINISHED_BY,
    AllenRelation.EQUAL: AllenRelation.EQUAL,
    AllenRelation.FINISHED_BY: AllenRelation.FINISHES,
    AllenRelation.CONTAINS: AllenRelation.DURING,
    AllenRelation.STARTED_BY: AllenRelation.STARTS,
    AllenRelation.OVERLAPPED_BY: AllenRelation.OVERLAPS,
    AllenRelation.MET_BY: AllenRelation.MEETS,
    AllenRelation.AFTER: AllenRelation.BEFORE,
}

#: Relations under which ``contains(r1, r2)`` holds (r1 contains r2,
#: inclusive bounds).
CONTAINMENT_RELATIONS = frozenset({
    AllenRelation.EQUAL,
    AllenRelation.CONTAINS,
    AllenRelation.STARTED_BY,
    AllenRelation.FINISHED_BY,
})

#: Relations under which ``overlaps(r1, r2)`` holds with inclusive bounds.
#: Everything except the two disjunctive extremes; MEETS/MET_BY share a
#: boundary point, which inclusive regions count as overlap.
OVERLAP_RELATIONS = frozenset(AllenRelation) - {
    AllenRelation.BEFORE,
    AllenRelation.AFTER,
}


def classify(r1: Region, r2: Region) -> AllenRelation:
    """Return the unique Allen relation holding between *r1* and *r2*."""
    if r1.start == r2.start and r1.end == r2.end:
        return AllenRelation.EQUAL
    if r1.end < r2.start:
        return AllenRelation.BEFORE
    if r2.end < r1.start:
        return AllenRelation.AFTER
    # Equal-start / equal-end cases come before the boundary-sharing
    # (MEETS) cases so that point intervals classify as STARTS/FINISHES
    # rather than as a degenerate MEETS.
    if r1.start == r2.start:
        return AllenRelation.STARTS if r1.end < r2.end else AllenRelation.STARTED_BY
    if r1.end == r2.end:
        return AllenRelation.FINISHES if r1.start > r2.start else AllenRelation.FINISHED_BY
    if r1.end == r2.start:
        return AllenRelation.MEETS
    if r2.end == r1.start:
        return AllenRelation.MET_BY
    if r2.start < r1.start and r1.end < r2.end:
        return AllenRelation.DURING
    if r1.start < r2.start and r2.end < r1.end:
        return AllenRelation.CONTAINS
    if r1.start < r2.start:
        return AllenRelation.OVERLAPS
    return AllenRelation.OVERLAPPED_BY


def region_contains(r1: Region, r2: Region) -> bool:
    """The paper's single-region containment check (r1 contains r2)."""
    return r1.start <= r2.start and r2.end <= r1.end


def region_overlaps(r1: Region, r2: Region) -> bool:
    """The paper's single-region overlap check."""
    return r1.start <= r2.end and r1.end >= r2.start
