"""Regions and areas — the primitive objects of stand-off annotation.

Section 2 of the paper: a *region* is an inclusive ``[start, end]`` range
over a totally ordered position domain (``start <= end``).  An
*area-annotation* attaches one or more regions to an XML element; the
regions of one area must not overlap nor touch each other, so an area is a
canonical sorted tuple of disjoint, non-adjacent regions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import RegionError


@dataclass(frozen=True, order=True)
class Region:
    """An inclusive ``[start, end]`` interval; ``start <= end``.

    Regions order lexicographically by ``(start, end)``, which matches the
    clustering order of the region index.
    """

    start: int | float
    end: int | float

    def __post_init__(self) -> None:
        if self.start > self.end:
            raise RegionError(
                f"region start {self.start!r} exceeds end {self.end!r}"
            )

    @property
    def length(self) -> int | float:
        """Extent of the region; inclusive bounds, so a point has length 0."""
        return self.end - self.start

    def contains(self, other: "Region") -> bool:
        """True when *other* lies fully inside this region (inclusive)."""
        return self.start <= other.start and other.end <= self.end

    def contains_point(self, position: int | float) -> bool:
        """True when *position* falls inside this region (inclusive)."""
        return self.start <= position <= self.end

    def overlaps(self, other: "Region") -> bool:
        """True when the two regions share at least one position.

        This is the paper's overlap predicate:
        ``r1.start <= r2.end and r1.end >= r2.start``.
        """
        return self.start <= other.end and self.end >= other.start

    def touches(self, other: "Region") -> bool:
        """True when the regions are adjacent but do not overlap.

        Only meaningful for integral positions, where ``[1,2]`` and
        ``[3,4]`` touch.
        """
        return other.start - self.end == 1 or self.start - other.end == 1

    def intersection(self, other: "Region") -> "Region | None":
        """The overlapping sub-region, or ``None`` if disjoint."""
        if not self.overlaps(other):
            return None
        return Region(max(self.start, other.start), min(self.end, other.end))

    def shifted(self, offset: int | float) -> "Region":
        """A copy translated by *offset*."""
        return Region(self.start + offset, self.end + offset)

    def __str__(self) -> str:
        return f"[{self.start},{self.end}]"


class Area:
    """A set of one or more disjoint, non-touching regions (paper §3.1).

    The constructor *canonicalises*: regions are sorted on start, and any
    overlapping or touching input regions are rejected — the paper requires
    that an area's regions "do not overlap nor touch each other".  Use
    :meth:`coalescing` to build an area from arbitrary region soup instead.
    """

    __slots__ = ("_regions",)

    def __init__(self, regions: Iterable[Region]):
        regs = sorted(regions)
        if not regs:
            raise RegionError("an area must contain at least one region")
        for prev, cur in zip(regs, regs[1:]):
            if prev.overlaps(cur):
                raise RegionError(
                    f"area regions {prev} and {cur} overlap; "
                    "use Area.coalescing() to merge them"
                )
            if prev.touches(cur):
                raise RegionError(
                    f"area regions {prev} and {cur} touch; "
                    "use Area.coalescing() to merge them"
                )
        self._regions = tuple(regs)

    @classmethod
    def of(cls, start, end) -> "Area":
        """Convenience: a single-region area."""
        return cls((Region(start, end),))

    @classmethod
    def coalescing(cls, regions: Iterable[Region]) -> "Area":
        """Build an area from arbitrary regions, merging overlap/adjacency."""
        regs = sorted(regions)
        if not regs:
            raise RegionError("an area must contain at least one region")
        merged: list[Region] = [regs[0]]
        for cur in regs[1:]:
            last = merged[-1]
            if last.overlaps(cur) or last.touches(cur):
                merged[-1] = Region(last.start, max(last.end, cur.end))
            else:
                merged.append(cur)
        return cls(merged)

    @property
    def regions(self) -> tuple[Region, ...]:
        """The canonical (start-sorted, disjoint) region tuple."""
        return self._regions

    @property
    def start(self) -> int | float:
        """Smallest start over all regions (the area's left envelope)."""
        return self._regions[0].start

    @property
    def end(self) -> int | float:
        """Largest end over all regions (the area's right envelope)."""
        return max(r.end for r in self._regions)

    @property
    def envelope(self) -> Region:
        """The tightest single region covering the whole area."""
        return Region(self.start, self.end)

    def __len__(self) -> int:
        return len(self._regions)

    def __iter__(self) -> Iterator[Region]:
        return iter(self._regions)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Area):
            return NotImplemented
        return self._regions == other._regions

    def __hash__(self) -> int:
        return hash(self._regions)

    def __repr__(self) -> str:
        inner = ", ".join(str(r) for r in self._regions)
        return f"Area({inner})"

    # ------------------------------------------------------------------
    # The paper's two predicates (§3.1), quantified over region sets.
    # ------------------------------------------------------------------

    def contains(self, other: "Area") -> bool:
        """Paper §3.1 ``contains(a1, a2)`` with ``self`` as a1.

        ∀ r2 ∈ a2 ∃ r1 ∈ a1 : r1.start <= r2.start <= r2.end <= r1.end.
        Every region of *other* must lie inside some region of *self*.
        """
        return all(
            any(r1.contains(r2) for r1 in self._regions)
            for r2 in other._regions
        )

    def overlaps(self, other: "Area") -> bool:
        """Paper §3.1 ``overlaps(a1, a2)``.

        ∃ r2 ∈ a2, r1 ∈ a1 : r1.start <= r2.end and r1.end >= r2.start.
        Some region of *self* shares a position with some region of *other*.
        """
        # Both region lists are sorted and internally disjoint, so a merge
        # scan decides overlap in O(|a1| + |a2|).
        i = j = 0
        mine, theirs = self._regions, other._regions
        while i < len(mine) and j < len(theirs):
            if mine[i].overlaps(theirs[j]):
                return True
            if mine[i].end < theirs[j].end:
                i += 1
            else:
                j += 1
        return False
