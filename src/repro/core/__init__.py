"""Core stand-off annotation model and the StandOff join algorithms.

This package is the paper's primary contribution in library form:

* :class:`~repro.core.region.Region` / :class:`~repro.core.region.Area` —
  the annotation primitives (§2, §3.1);
* :mod:`~repro.core.relations` — Allen's 13 interval relations and the
  paper's containment/overlap reduction (§3);
* :class:`~repro.core.region_index.RegionIndex` — the ``start|end|id``
  region index clustered on start (§4.3);
* :mod:`~repro.core.naive` — quadratic reference joins (Figures 2/3);
* :mod:`~repro.core.mergejoin_basic` / :mod:`~repro.core.mergejoin_ll` —
  the Basic and Loop-Lifted StandOff MergeJoin families (§4.4, §4.5);
* :mod:`~repro.core.kernels_vec` — the batched NumPy kernels for the
  loop-lifted joins (``kernel="vectorized"``), building
  :class:`~repro.relational.columnar.ColumnarResult` values natively,
  with :func:`~repro.core.kernels_vec.kernel_join` as the kernel
  dispatcher (``kernel="auto"`` picks per join by input size);
* :func:`~repro.core.steps.standoff_step` — step-level execution with
  fragment partitioning, selection pushdown and strategy choice (§3.3).
"""

from repro.core.mergejoin_basic import (
    basic_join,
    reject_narrow,
    reject_wide,
    select_narrow,
    select_wide,
)
from repro.core.kernels_vec import (
    kernel_join,
    vec_join,
    vec_reject_narrow,
    vec_reject_wide,
    vec_select_narrow,
    vec_select_wide,
)
from repro.core.mergejoin_ll import (
    IterContext,
    JoinResult,
    ll_join,
    ll_reject_narrow,
    ll_reject_wide,
    ll_select_narrow,
    ll_select_wide,
)
from repro.core.naive import StandoffOp, naive_join, naive_join_loop
from repro.core.region import Area, Region
from repro.core.region_index import RegionIndex, RegionTable
from repro.relational.columnar import ColumnarResult, ColumnarStepResult
from repro.core.relations import (
    AllenRelation,
    CONTAINMENT_RELATIONS,
    OVERLAP_RELATIONS,
    classify,
    region_contains,
    region_overlaps,
)
from repro.core.steps import Strategy, standoff_step

__all__ = [
    "Area",
    "Region",
    "AllenRelation",
    "CONTAINMENT_RELATIONS",
    "OVERLAP_RELATIONS",
    "classify",
    "region_contains",
    "region_overlaps",
    "RegionIndex",
    "RegionTable",
    "StandoffOp",
    "naive_join",
    "naive_join_loop",
    "basic_join",
    "select_narrow",
    "select_wide",
    "reject_narrow",
    "reject_wide",
    "ColumnarResult",
    "ColumnarStepResult",
    "IterContext",
    "JoinResult",
    "ll_join",
    "ll_select_narrow",
    "ll_select_wide",
    "ll_reject_narrow",
    "ll_reject_wide",
    "kernel_join",
    "vec_join",
    "vec_select_narrow",
    "vec_select_wide",
    "vec_reject_narrow",
    "vec_reject_wide",
    "Strategy",
    "standoff_step",
]
