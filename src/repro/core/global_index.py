"""A global region index over a document collection (paper §3.3 (ii)).

The paper weighs two designs for StandOff matching:

* **XPath-step semantics** (chosen): a step matches only nodes from the
  context node's own fragment, so each document keeps its own region
  index — small, local, and updates touch one document's index;
* **cross-fragment function semantics**: ``select-narrow($ctx)`` could
  return matches from *any* stored document — natural when several
  annotation layers over the same BLOB live in separate documents — but
  it "implies a global index over the entire document collection must be
  maintained", which may contain "many data items that are not needed if
  a small set of documents is queried" and causes "needless transaction
  conflicts among documents in case of updates".

This module implements that second design so the trade-off can be
measured (``benchmarks/bench_ablation_global_index.py``).  The global
index is a start-clustered region table whose node ids are *composite*:
row ids mapping to ``(fragment, node)`` pairs, so all existing merge
joins run on it unchanged.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.mergejoin_ll import IterContext, ll_join
from repro.core.naive import StandoffOp
from repro.core.region_index import RegionIndex, RegionTable


class GlobalRegionIndex:
    """One start-clustered index over every fragment of a collection."""

    def __init__(self, per_fragment: Mapping[int, RegionIndex]):
        rows: list[tuple] = []           # (start, end, composite_id)
        pairs: list[tuple[int, int]] = []  # composite id -> (frag, node)
        composite_of: dict[tuple[int, int], int] = {}
        for fragment in sorted(per_fragment):
            table = per_fragment[fragment].table
            for start, end, node_id in zip(table.starts.tolist(),
                                           table.ends.tolist(),
                                           table.ids.tolist()):
                key = (fragment, node_id)
                composite = composite_of.get(key)
                if composite is None:
                    composite = len(pairs)
                    composite_of[key] = composite
                    pairs.append(key)
                rows.append((start, end, composite))
        self._pairs = pairs
        self._composite_of = composite_of
        self._table = RegionTable.from_rows(rows)

    def __len__(self) -> int:
        return len(self._table)

    @property
    def table(self) -> RegionTable:
        return self._table

    def fragment_count(self) -> int:
        return len({frag for frag, _node in self._pairs})

    def composite_id(self, fragment: int, node_id: int) -> int | None:
        return self._composite_of.get((fragment, node_id))

    def pair_of(self, composite: int) -> tuple[int, int]:
        return self._pairs[composite]

    def restrict(self, wanted: Iterable[tuple[int, int]]) -> RegionTable:
        """Candidate pushdown by (fragment, node) pairs."""
        ids = [self._composite_of[key] for key in wanted
               if key in self._composite_of]
        return self._table.restrict_to_ids(
            np.asarray(sorted(ids), dtype=np.int64))


def global_standoff_join(op: StandoffOp,
                         context: Sequence[tuple[int, int, int]],
                         index: GlobalRegionIndex,
                         per_fragment: Mapping[int, RegionIndex],
                         candidates: RegionTable | None = None,
                         *, active_structure: str = "list",
                         ) -> dict[int, list[tuple[int, int]]]:
    """Cross-fragment StandOff join (the §3.3 function semantics).

    Context regions are fetched from their own fragments' indexes;
    candidates come from the whole collection (or an explicit
    restriction).  Positions are compared across fragments — the
    multiple-annotation-layers-over-one-BLOB use case.

    :param context: ``(iter, fragment, node_id)`` triples.
    :returns: ``iter -> [(fragment, node_id), ...]`` in collection order
        (fragment, then node id).
    """
    rows = []
    for iteration, fragment, node_id in context:
        frag_index = per_fragment.get(fragment)
        if frag_index is None:
            continue
        area = frag_index.area_of(node_id)
        if area is None:
            continue
        for region in area.regions:
            rows.append((iteration, _context_key(fragment, node_id),
                         region.start, region.end))
    iter_context = IterContext.from_rows(rows)
    table = candidates if candidates is not None else index.table
    raw = ll_join(op, iter_context, table,
                  active_structure=active_structure)
    out: dict[int, list[tuple[int, int]]] = {}
    for iteration, composites in raw.items():
        pairs = sorted(index.pair_of(c) for c in composites)
        out[iteration] = pairs
    return out


def _context_key(fragment: int, node_id: int) -> int:
    """A collision-free synthetic id for context rows (context ids never
    meet candidate ids inside the join, they only separate areas)."""
    return fragment * 1_000_000_007 + node_id
