"""The region index (paper §4.3).

The index is a relational ``start|end|id`` table kept **clustered on
start** (ties broken on end, then id, so scans are deterministic).
Non-contiguous areas that consist of multiple regions are represented by
repeating the same node id in several entries.  Node ids are pre-order
ranks in MonetDB/XQuery; here they are whatever integer identifier the
document store assigns (we also use pre-order ranks).

The index supports the two access paths of §4.3:

* **full scan** — when a StandOff step has no selection, the entire index
  is the candidate sequence;
* **index intersection** — when a candidate node-id sequence is passed in
  (e.g. produced by an element-name index), an intersection on node-id is
  performed *preserving the start ordering* of the region index.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.region import Area, Region
from repro.errors import RegionError


def _position_column(values) -> np.ndarray:
    """Coerce a start/end column to an explicit little-endian dtype.

    ``np.asarray`` alone would infer a *platform* dtype (e.g. big-endian
    int64 on s390x, int32 on some Windows builds), which would leak into
    the on-disk store format.  Integral positions become ``<i8``;
    floating positions (``xs:double`` standoff configs) become ``<f8``.
    On little-endian hosts these are the native dtypes, so the
    ``astype(copy=False)`` is free.
    """
    # repro: lint-ok[RL001] dtype dispatch point: the inferred kind
    arr = np.asarray(values)   # picks <i8 vs <f8 on the next line
    target = "<f8" if arr.dtype.kind in "fc" else "<i8"
    return arr.astype(target, copy=False)


class RegionTable:
    """An immutable, start-clustered ``start|end|id`` column triple.

    This is the unit the merge-join algorithms consume: both the candidate
    sequence and the (fetched, re-sorted) context sequence are
    ``RegionTable`` instances.
    """

    __slots__ = ("starts", "ends", "ids", "_meta")

    def __init__(self, starts: np.ndarray, ends: np.ndarray,
                 ids: np.ndarray, *, presorted: bool = False):
        starts = _position_column(starts)
        ends = _position_column(ends)
        ids = np.asarray(ids).astype("<i8", copy=False)
        if not (len(starts) == len(ends) == len(ids)):
            raise RegionError(
                "start/end/id columns must have equal length "
                f"({len(starts)}/{len(ends)}/{len(ids)})"
            )
        if len(starts) and np.any(starts > ends):
            bad = int(np.argmax(starts > ends))
            raise RegionError(
                f"row {bad}: start {starts[bad]!r} exceeds end {ends[bad]!r}"
            )
        if not presorted and len(starts):
            order = np.lexsort((ids, ends, starts))
            starts, ends, ids = starts[order], ends[order], ids[order]
        # The table is shared across queries (and, memory-mapped,
        # across processes): physically immutable columns only.
        starts.flags.writeable = False
        ends.flags.writeable = False
        ids.flags.writeable = False
        self.starts = starts
        self.ends = ends
        self.ids = ids
        #: lazily computed column metadata (the table is immutable, so
        #: derived values are cached: unique ids, max region length)
        self._meta: dict = {}

    def __len__(self) -> int:
        return len(self.starts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RegionTable):
            return NotImplemented
        return (np.array_equal(self.starts, other.starts)
                and np.array_equal(self.ends, other.ends)
                and np.array_equal(self.ids, other.ids))

    def __repr__(self) -> str:
        return f"RegionTable(n={len(self)})"

    def row(self, i: int) -> tuple:
        """The ``(start, end, id)`` triple at position *i*."""
        return (self.starts[i].item(), self.ends[i].item(),
                int(self.ids[i]))

    def iter_rows(self) -> Iterable[tuple]:
        """Yield ``(start, end, id)`` triples in clustering order.

        Columns are converted to Python scalars in one batch (per-row
        ``.item()`` calls are an order of magnitude slower).
        """
        return zip(self.starts.tolist(), self.ends.tolist(),
                   self.ids.tolist())

    @classmethod
    def from_rows(cls, rows: Iterable[tuple]) -> "RegionTable":
        """Build from an iterable of ``(start, end, id)`` triples."""
        rows = list(rows)
        if not rows:
            return cls(np.empty(0, np.int64), np.empty(0, np.int64),
                       np.empty(0, np.int64), presorted=True)
        starts, ends, ids = zip(*rows)
        # __init__ routes starts/ends through _position_column, which
        # pins the explicit little-endian dtype.
        return cls(starts, ends, np.asarray(ids, dtype=np.int64))

    @classmethod
    def from_areas(cls, pairs: Iterable[tuple[int, Area]]) -> "RegionTable":
        """Build from ``(node_id, Area)`` pairs, one row per region."""
        rows = [(r.start, r.end, node_id)
                for node_id, area in pairs for r in area.regions]
        return cls.from_rows(rows)

    def restrict_to_ids(self, candidate_ids: Sequence[int] | np.ndarray
                        ) -> "RegionTable":
        """Index intersection on node-id, preserving start order (§4.3)."""
        wanted = np.asarray(candidate_ids, dtype=np.int64)
        if len(self) == 0 or len(wanted) == 0:
            return RegionTable.from_rows([])
        mask = np.isin(self.ids, wanted)
        return RegionTable(self.starts[mask], self.ends[mask],
                           self.ids[mask], presorted=True)

    def multiplicity(self) -> dict[int, int]:
        """Map node id -> number of regions (for ∀-quantified containment)."""
        uniq, counts = np.unique(self.ids, return_counts=True)
        return {int(i): int(c) for i, c in zip(uniq, counts)}

    def unique_ids(self) -> np.ndarray:
        """Sorted unique node ids; cached (the table is immutable)."""
        cached = self._meta.get("unique_ids")
        if cached is None:
            cached = np.unique(self.ids)
            self._meta["unique_ids"] = cached
        return cached

    def has_multi_region_areas(self) -> bool:
        """True when some node id occurs in more than one row."""
        return len(self.unique_ids()) < len(self)

    def max_length(self):
        """The largest ``end - start`` over all rows; cached.

        Bounds the candidate windows of the vectorized overlap kernel: a
        region can only overlap candidates starting at most this far
        before it.
        """
        cached = self._meta.get("max_length")
        if cached is None:
            cached = (self.ends - self.starts).max() if len(self) else 0
            self._meta["max_length"] = cached
        return cached


class RegionIndex:
    """A per-document region index with incremental build and lookups.

    Mirrors the paper's design: one index per XML document (fragment),
    clustered on ``start``.  Built once after shredding; immutable
    afterwards (rebuild to update — MonetDB/XQuery semantics for 0.10).
    """

    #: ``(store path, uri)`` when the table columns are mmap views of a
    #: store file — the handle worker processes use to re-open it.
    store_ref: tuple[str, str] | None = None

    def __init__(self, table: RegionTable):
        self._table = table
        self._multiplicity: dict[int, int] | None = None

    @classmethod
    def build(cls, entries: Iterable[tuple[int, int | float, int | float]]
              ) -> "RegionIndex":
        """Build from ``(node_id, start, end)`` entries (any order)."""
        rows = [(start, end, node_id) for node_id, start, end in entries]
        return cls(RegionTable.from_rows(rows))

    @property
    def table(self) -> RegionTable:
        """The full start-clustered table (the no-selection access path)."""
        return self._table

    def __len__(self) -> int:
        return len(self._table)

    def candidates(self, candidate_ids: Sequence[int] | None = None
                   ) -> RegionTable:
        """The candidate sequence for a StandOff step.

        Without *candidate_ids* the entire index is returned; otherwise an
        id-intersection is performed, preserving start order.
        """
        if candidate_ids is None:
            return self._table
        return self._table.restrict_to_ids(candidate_ids)

    def fetch(self, node_ids: Sequence[int]) -> RegionTable:
        """Fetch the regions of the given nodes, re-clustered on start.

        This is the "fetch the [start,end] values for all context node-ids
        and sort the context sequence on start" step of §4.4.  Node ids
        without region information are silently absent from the result
        (they are not area-annotations and cannot participate in joins).
        """
        return self._table.restrict_to_ids(node_ids)

    def region_count(self, node_id: int) -> int:
        """Number of regions attached to *node_id* (0 if none)."""
        if self._multiplicity is None:
            self._multiplicity = self._table.multiplicity()
        return self._multiplicity.get(node_id, 0)

    def area_of(self, node_id: int) -> Area | None:
        """Materialise the :class:`Area` of a node, or None."""
        mask = self._table.ids == node_id
        if not mask.any():
            return None
        regions = [Region(s, e)
                   for s, e in zip(self._table.starts[mask].tolist(),
                                   self._table.ends[mask].tolist())]
        return Area(regions)

    def annotated_ids(self) -> np.ndarray:
        """Sorted unique node ids that carry at least one region."""
        return self._table.unique_ids()

    def has_multi_region_areas(self) -> bool:
        """True when any node id occurs more than once in the index."""
        if len(self._table) == 0:
            return False
        return self._table.has_multi_region_areas()
