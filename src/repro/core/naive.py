"""Naive quadratic StandOff joins — the paper's baselines and our oracle.

These functions implement the four StandOff joins (§3.1) literally from
their definitions, comparing every context area with every candidate area.
They correspond to the paper's Alternatives 1 and 2 (XQuery user-defined
functions, Figures 2 and 3): evaluation cost is ``O(|S1| * |S2|)`` per
iteration.

Because they are a direct transcription of the definitions, they double as
the *reference semantics* against which the merge-join algorithms are
property-tested.
"""

from __future__ import annotations

from enum import Enum
from typing import Mapping, Sequence

from repro.core.region import Area


class StandoffOp(Enum):
    """The four StandOff joins of §3.1, in the paper's order."""

    SELECT_NARROW = "select-narrow"   # containment semi-join
    SELECT_WIDE = "select-wide"       # overlap semi-join
    REJECT_NARROW = "reject-narrow"   # containment anti-join
    REJECT_WIDE = "reject-wide"       # overlap anti-join

    @property
    def is_reject(self) -> bool:
        return self in (StandoffOp.REJECT_NARROW, StandoffOp.REJECT_WIDE)

    @property
    def is_narrow(self) -> bool:
        return self in (StandoffOp.SELECT_NARROW, StandoffOp.REJECT_NARROW)

    @classmethod
    def from_name(cls, name: str) -> "StandoffOp":
        """Look up by the surface syntax name (e.g. ``select-narrow``)."""
        for op in cls:
            if op.value == name:
                return op
        raise ValueError(f"unknown StandOff operator {name!r}")


def _matches(op: StandoffOp, context_area: Area, candidate_area: Area) -> bool:
    """Does *candidate_area* satisfy the (positive) predicate of *op*?"""
    if op.is_narrow:
        return context_area.contains(candidate_area)
    return context_area.overlaps(candidate_area)


def naive_join(op: StandoffOp,
               context: Sequence[tuple[int, Area]],
               candidates: Sequence[tuple[int, Area]]) -> list[int]:
    """Single-sequence naive StandOff join.

    :param context: ``(node_id, Area)`` pairs — the S1 sequence.
    :param candidates: ``(node_id, Area)`` pairs — the S2 sequence.
    :returns: matching candidate node ids, unique, in ascending id order
        (node ids are pre-order ranks, so ascending id = document order).

    Reject semantics: a candidate is returned when it matches *no* context
    area.  With an empty context sequence the result is empty — a StandOff
    step without context nodes yields nothing (XPath step semantics; see
    DESIGN.md §5 on this corner case).
    """
    if not context:
        return []
    out: list[int] = []
    seen: set[int] = set()
    for cand_id, cand_area in candidates:
        if cand_id in seen:
            continue
        hit = any(_matches(op, ctx_area, cand_area)
                  for _ctx_id, ctx_area in context)
        if hit != op.is_reject:
            seen.add(cand_id)
            out.append(cand_id)
    out.sort()
    return out


def naive_join_loop(op: StandoffOp,
                    context: Sequence[tuple[int, int, Area]],
                    candidates: Sequence[tuple[int, Area]]
                    ) -> dict[int, list[int]]:
    """Loop-lifted naive StandOff join (the oracle for the merge joins).

    :param context: ``(iter, node_id, Area)`` triples; the context
        sequence of loop iteration ``iter`` is the set of its triples.
    :param candidates: ``(node_id, Area)`` pairs shared by all iterations.
    :returns: mapping ``iter -> matching candidate ids`` (unique,
        ascending).  Only iterations present in *context* appear.
    """
    per_iter: dict[int, list[tuple[int, Area]]] = {}
    for it, node_id, area in context:
        per_iter.setdefault(it, []).append((node_id, area))
    return {it: naive_join(op, ctx, candidates)
            for it, ctx in per_iter.items()}


def naive_join_map(op: StandoffOp,
                   context: Mapping[int, Area],
                   candidates: Mapping[int, Area]) -> list[int]:
    """Convenience wrapper taking ``{node_id: Area}`` mappings."""
    return naive_join(op, list(context.items()), list(candidates.items()))
