"""Basic (non-loop-lifted) StandOff MergeJoin (paper §4.4).

These functions compute a StandOff join for a *single* context node
sequence, using the same merge-scan machinery as the loop-lifted variants
but without an ``iter`` column.  When a query nests a StandOff step in a
for-loop, the engine's "basic" strategy calls one of these once per
iteration — so every call restarts its scan of the candidate sequence at
the beginning.  That repeated scanning is exactly what makes the basic
variant blow up on XMark Q2 in the paper's Figure 6 (DNF), while the
loop-lifted variant covers all iterations in a single pass.
"""

from __future__ import annotations

from repro.core.mergejoin_ll import (
    IterContext,
    ll_reject_narrow,
    ll_reject_wide,
    ll_select_narrow,
    ll_select_wide,
)
from repro.core.naive import StandoffOp
from repro.core.region_index import RegionTable


def _single(result: dict[int, list[int]]) -> list[int]:
    """Unwrap the iteration-0 result of a single-sequence join."""
    return result.get(0, [])


def select_narrow(context: RegionTable, candidates: RegionTable, *,
                  active_structure: str = "list") -> list[int]:
    """Containment semi-join for one context sequence.

    :param context: regions of the context nodes, start-clustered
        (``RegionIndex.fetch`` output).
    :param candidates: the candidate sequence (region index or an
        id-intersection of it).
    :returns: matching candidate node ids, unique and ascending.
    """
    return _single(ll_select_narrow(IterContext.single(context), candidates,
                                    active_structure=active_structure))


def select_wide(context: RegionTable, candidates: RegionTable, *,
                active_structure: str = "list") -> list[int]:
    """Overlap semi-join for one context sequence."""
    return _single(ll_select_wide(IterContext.single(context), candidates,
                                  active_structure=active_structure))


def reject_narrow(context: RegionTable, candidates: RegionTable, *,
                  active_structure: str = "list") -> list[int]:
    """Containment anti-join for one context sequence."""
    return _single(ll_reject_narrow(IterContext.single(context), candidates,
                                    active_structure=active_structure))


def reject_wide(context: RegionTable, candidates: RegionTable, *,
                active_structure: str = "list") -> list[int]:
    """Overlap anti-join for one context sequence."""
    return _single(ll_reject_wide(IterContext.single(context), candidates,
                                  active_structure=active_structure))


_DISPATCH = {
    StandoffOp.SELECT_NARROW: select_narrow,
    StandoffOp.SELECT_WIDE: select_wide,
    StandoffOp.REJECT_NARROW: reject_narrow,
    StandoffOp.REJECT_WIDE: reject_wide,
}


def basic_join(op: StandoffOp, context: RegionTable,
               candidates: RegionTable, *,
               active_structure: str = "list") -> list[int]:
    """Dispatch a single-sequence StandOff merge join by operator."""
    return _DISPATCH[op](context, candidates,
                         active_structure=active_structure)
