"""High-level StandOff step execution: fragments, strategies, dispatch.

This module glues the join algorithms to *step* semantics (§3.3):

* the context sequence is first **partitioned per XML fragment**; the main
  algorithm runs once per distinct fragment and the results are
  concatenated (§4.4) — a step only matches nodes from the same fragment;
* the ``[start, end]`` values of the context node ids are **fetched from
  the region index** and the context is re-sorted on start;
* the **candidate sequence** is the whole region index, or an
  id-intersection with a candidate id set when a selection (usually an
  element name test) was pushed down;
* results are unique node ids in document order per iteration.

Three evaluation strategies reproduce the paper's three implementations:

========== =============================================================
``udf``     quadratic nested-loop join, the semantics of the XQuery
            user-defined functions of Figures 2/3
``basic``   Basic StandOff MergeJoin, invoked once per loop iteration
``ll``      Loop-Lifted StandOff MergeJoin, one pass for all iterations
========== =============================================================
"""

from __future__ import annotations

from bisect import bisect_right
from collections import Counter
from enum import Enum
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.config import (
    DEFAULT_KERNEL,
    DEFAULT_SHARD_MIN_ROWS,
    DEFAULT_WORKERS,
    EXECUTOR_PROCESS,
    FAMILY_STANDOFF,
    KERNEL_LL,
    KERNELS,
    normalize_executor,
    normalize_workers,
)
from repro.exec.sharding import partition_by_iteration, run_shards
from repro.core.kernels_vec import kernel_join
from repro.core.mergejoin_basic import basic_join
from repro.core.mergejoin_ll import IterContext, JoinResult
from repro.core.naive import StandoffOp, naive_join_loop
from repro.core.region_index import RegionIndex
from repro.relational.columnar import ColumnarStepResult


class Strategy(Enum):
    """How a StandOff step is evaluated (paper §4.6's three variants)."""

    UDF = "udf"
    BASIC = "basic"
    LOOP_LIFTED = "ll"

    @classmethod
    def from_name(cls, name: str) -> "Strategy":
        for strat in cls:
            if strat.value == name or strat.name.lower() == name.lower():
                return strat
        raise ValueError(f"unknown standoff strategy {name!r}; "
                         f"expected one of {[s.value for s in cls]}")


#: A context node reference: (iteration, fragment id, node id).
ContextRef = tuple[int, int, int]


def standoff_step(op: StandoffOp,
                  context: Iterable[ContextRef],
                  indexes: Mapping[int, RegionIndex],
                  candidate_ids: Mapping[int, Sequence[int]] | None = None,
                  *,
                  strategy: Strategy = Strategy.LOOP_LIFTED,
                  active_structure: str = "list",
                  kernel: str = DEFAULT_KERNEL,
                  fragment_rank: Mapping[int, int] | None = None,
                  workers=DEFAULT_WORKERS,
                  shard_min_rows: int = DEFAULT_SHARD_MIN_ROWS,
                  executor: str | None = None,
                  ) -> ColumnarStepResult:
    """Execute one StandOff step.

    :param op: which of the four joins to perform.
    :param context: ``(iter, fragment, node_id)`` triples.  Context nodes
        without region information are not area-annotations and are
        ignored (they cannot participate in a StandOff join).
    :param indexes: region index per fragment id.
    :param candidate_ids: optional pushed-down selection — per fragment,
        the node ids the result may contain.  ``None`` disables pushdown
        (the entire index is the candidate sequence).  A fragment missing
        from the mapping gets no candidates.
    :param strategy: evaluation strategy (see module docstring).
    :param active_structure: ``"list"`` or ``"heap"`` active-items
        structure for the merge joins.
    :param kernel: join kernel for the merge strategies — ``"ll"``
        (row-at-a-time reference merge), ``"vectorized"`` (batched
        NumPy kernels, :mod:`repro.core.kernels_vec`) or ``"auto"``
        (per-join choice by input size and probe-pair density, resolved
        through the unified registry).  A non-``ll`` kernel routes the
        ``basic`` strategy through one batched invocation with a
        synthesized iter column (basic results are the per-iteration
        slices of the loop-lifted join).  The ``udf`` strategy ignores
        the kernel (it *is* the quadratic baseline).
    :param fragment_rank: optional explicit fragment ordering (fragment
        id -> rank); fragments are joined and concatenated in ascending
        rank so callers whose document order differs from fragment-id
        order (e.g. transient fragments keyed by object identity) get
        final order straight from the columnar concatenation.  Default:
        ascending fragment id.
    :param workers: fan-out setting (``"serial"`` or a worker count).
        Fragments are natural shards — each owns its own candidate
        table — and a fragment whose context is large is further split
        into contiguous *iteration ranges* (every StandOff operator,
        anti-joins included, is decided per iteration, so a shard
        owning all rows of its iterations reproduces the unsharded
        per-iteration slices exactly).  One join call per shard runs
        on the shared thread pool; ``"serial"`` plans one shard per
        fragment and runs inline — byte-identical to the pre-sharding
        path.
    :param shard_min_rows: minimum context rows per iteration-range
        shard (see :func:`repro.exec.sharding.partition_by_iteration`).
    :param executor: where a sharded fan-out runs — ``"thread"`` (the
        shared thread pool, the default) or ``"process"``.  The process
        path (:mod:`repro.exec.procpool`) only engages when *every*
        participating region index is backed by a mapped store file
        (``index.store_ref``): workers re-open the store by path and
        re-derive ``index.candidates(wanted)`` locally, so job
        descriptors stay tiny.  Any in-memory fragment in the mix
        falls the whole step back to threads — same answers either
        way, enforced by the differential suite.
    :returns: a :class:`~repro.relational.columnar.ColumnarStepResult` —
        ``iter -> [(fragment, node_id), ...]`` under its lazy dict view,
        unique, in document order (fragment rank, then node id ascending
        = pre-order).  The columnar arrays stay available for consumers
        that avoid decoding.
    """
    KERNELS.validate(FAMILY_STANDOFF, kernel)
    per_fragment: dict[int, list[tuple[int, int]]] = {}
    for iteration, fragment, node_id in context:
        per_fragment.setdefault(fragment, []).append((iteration, node_id))

    if fragment_rank is None:
        ordered = sorted(per_fragment)
    else:
        ordered = sorted(per_fragment,
                         key=lambda frag: fragment_rank[frag])
    frag_infos = []          # (fragment, index, wanted ids, chunks)
    for fragment in ordered:
        index = indexes.get(fragment)
        if index is None:
            continue
        if candidate_ids is None:
            wanted = None
        else:
            wanted = candidate_ids.get(fragment)
            if wanted is None:
                continue
        chunks = _iteration_chunks(per_fragment[fragment], workers,
                                   shard_min_rows)
        frag_infos.append((fragment, index, wanted, chunks))

    n_jobs = sum(len(chunks) for _f, _i, _w, chunks in frag_infos)
    use_processes = (
        normalize_executor(executor) == EXECUTOR_PROCESS
        and normalize_workers(workers) > 1 and n_jobs > 1
        and all(getattr(index, "store_ref", None) is not None
                for _f, index, _w, _c in frag_infos))

    job_fragments: list[int] = []
    if use_processes:
        from repro.exec.procpool import run_standoff

        pjobs = []
        for fragment, index, wanted, chunks in frag_infos:
            for chunk in chunks:
                job_fragments.append(fragment)
                pjobs.append((index.store_ref, op, chunk, wanted,
                              strategy, active_structure, kernel))
        results = run_standoff(pjobs, normalize_workers(workers))
    else:
        jobs = []
        for fragment, index, wanted, chunks in frag_infos:
            candidates = index.candidates(wanted)
            for chunk in chunks:
                job_fragments.append(fragment)
                jobs.append(lambda chunk=chunk, index=index,
                            candidates=candidates: _run_fragment(
                                op, chunk, index, candidates, strategy,
                                active_structure, kernel))
        results = run_shards(jobs, workers)
    parts = list(zip(job_fragments, results))
    # Per-fragment results are id-ascending per iteration and fragments
    # are concatenated in rank order, so the stable columnar merge
    # yields document order directly; no per-pair re-sort needed.
    # Iteration-range chunks of one fragment never share an iteration,
    # so feeding them as separate parts (in range order) is exact.
    return ColumnarStepResult.from_fragments(parts)


def _iteration_chunks(pairs: list[tuple[int, int]], workers,
                      shard_min_rows: int) -> list[list[tuple[int, int]]]:
    """Split one fragment's ``(iteration, node_id)`` rows into
    contiguous iteration-range chunks (see
    :func:`repro.exec.sharding.partition_by_iteration`); a single-chunk
    plan returns *pairs* unchanged — the byte-identical serial path.
    Row order within a chunk is preserved."""
    # Serial mode and small fragments skip the per-iteration counting
    # pass entirely — the planner could only return a single shard.
    if normalize_workers(workers) <= 1 or shard_min_rows < 1 \
            or len(pairs) < 2 * shard_min_rows:
        return [pairs]
    counts = Counter(iteration for iteration, _node in pairs)
    uniq_iters = sorted(counts)
    plan = partition_by_iteration([counts[it] for it in uniq_iters],
                                  workers, shard_min_rows=shard_min_rows)
    if not plan.is_sharded:
        return [pairs]
    firsts = [uniq_iters[shard.lo] for shard in plan.shards]
    chunks: list[list[tuple[int, int]]] = [[] for _ in plan.shards]
    for pair in pairs:
        chunks[bisect_right(firsts, pair[0]) - 1].append(pair)
    return chunks


def _run_fragment(op: StandoffOp, pairs: list[tuple[int, int]],
                  index: RegionIndex, candidates,
                  strategy: Strategy, active_structure: str,
                  kernel: str):
    """Run one fragment's join under the chosen strategy.

    Returns a ``JoinResult`` dict (reference paths) or a
    :class:`~repro.relational.columnar.ColumnarResult` (vectorized
    kernel); :meth:`ColumnarStepResult.from_fragments` consumes either.
    """
    if strategy is Strategy.UDF:
        context_rows = []
        for iteration, node_id in pairs:
            area = index.area_of(node_id)
            if area is not None:
                context_rows.append((iteration, node_id, area))
        cand_rows = [(int(nid), index.area_of(int(nid)))
                     for nid in _unique_ids(candidates)]
        return naive_join_loop(op, context_rows, cand_rows)

    if strategy is Strategy.BASIC and \
            KERNELS.resolve(FAMILY_STANDOFF, kernel) == KERNEL_LL:
        # The reference basic path: the merge restarts once per
        # iteration — the §4.6 cost model being measured.
        by_iter: dict[int, list[int]] = {}
        for iteration, node_id in pairs:
            by_iter.setdefault(iteration, []).append(node_id)
        out: JoinResult = {}
        for iteration, ids in by_iter.items():
            fetched = index.fetch(ids)
            if len(fetched) == 0:
                continue
            out[iteration] = basic_join(
                op, fetched, candidates,
                active_structure=active_structure)
        return out

    # The loop-lifted build — also the basic strategy's batched route:
    # basic results are the per-iteration slices of the loop-lifted
    # join, so a vectorized/auto kernel synthesizes the iter column
    # once and amortizes the whole per-iteration dispatch overhead in
    # a single kernel invocation.
    distinct = sorted({node_id for _iteration, node_id in pairs})
    fetched = index.fetch(distinct)
    regions_by_id: dict[int, list[tuple]] = {}
    for start, end, nid in zip(fetched.starts.tolist(),
                               fetched.ends.tolist(),
                               fetched.ids.tolist()):
        regions_by_id.setdefault(nid, []).append((start, end))
    rows = []
    for iteration, node_id in pairs:
        for start, end in regions_by_id.get(node_id, ()):
            rows.append((iteration, node_id, start, end))
    context = IterContext.from_rows(rows)
    return kernel_join(op, context, candidates, kernel=kernel,
                       active_structure=active_structure)


def _unique_ids(candidates) -> list[int]:
    """Candidate ids, first-occurrence (= start-cluster) order preserved."""
    _uniq, first = np.unique(candidates.ids, return_index=True)
    return candidates.ids[np.sort(first)].tolist()
