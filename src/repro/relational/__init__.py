"""Relational substrate: columns, tables, loop-lifted sequences and the
columnar (offsets + values) join-result backbone."""

from repro.relational.column import Column
from repro.relational.columnar import (
    ColumnarResult,
    ColumnarStepResult,
    complement,
)
from repro.relational.operators import (
    antijoin,
    cross,
    distinct,
    equi_join,
    group_count,
    project,
    row_number,
    select,
    select_eq,
    semijoin,
    sort,
)
from repro.relational.sequence import (
    IterSeq,
    LazyIterData,
    Loop,
    expand_loop,
    unlift,
)
from repro.relational.table import Table

__all__ = [
    "Column",
    "ColumnarResult",
    "ColumnarStepResult",
    "complement",
    "Table",
    "IterSeq",
    "LazyIterData",
    "Loop",
    "expand_loop",
    "unlift",
    "select",
    "select_eq",
    "project",
    "sort",
    "equi_join",
    "semijoin",
    "antijoin",
    "cross",
    "group_count",
    "row_number",
    "distinct",
]
