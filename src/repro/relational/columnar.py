"""Columnar join results: the CSR-style ``offsets + values`` backbone.

The loop-lifted execution model of the source system is column-at-a-time
end to end: the result of a StandOff join over all iterations of a
for-loop is one ``iter|pos|item`` table, not a dictionary of Python
lists.  :class:`ColumnarResult` is that table in CSR form —

* ``iters``   — the distinct iteration numbers, strictly ascending;
* ``offsets`` — ``len(iters) + 1`` positions into ``values``; iteration
  ``iters[i]`` owns the slice ``values[offsets[i]:offsets[i + 1]]``
  (possibly empty: anti-joins keep iterations with no survivors);
* ``values``  — candidate node ids, unique and ascending (= document
  order) within each iteration's slice.

It is the *native currency* of the vectorized join kernels
(:mod:`repro.core.kernels_vec`) and of the step layer
(:func:`repro.core.steps.standoff_step` returns the two-column variant
:class:`ColumnarStepResult`).  Both types also implement the read-only
``Mapping`` protocol with **lazy per-iteration decoding**, so code
written against the historical ``dict[int, list[int]]`` ``JoinResult``
(the ``ll``/``basic``/``udf`` reference paths, trace sinks, tests)
consumes columnar results unchanged — decoding happens per accessed
iteration and is cached, never eagerly for the whole result.

:func:`complement` is the shared anti-join helper: both the vectorized
kernels and the row-at-a-time reference merge compute ``reject-*`` as
the per-iteration complement of the matching ``select-*`` through it.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Iterable, Sequence

import numpy as np

#: Upper bound on the boolean membership matrix materialized by the
#: vectorized complement; above it the per-iteration fallback runs (the
#: matrix is proportional to the *output* size, so this only triggers
#: for anti-joins whose result would be enormous anyway).
COMPLEMENT_BUDGET = 32_000_000


def run_starts(sorted_vals: np.ndarray) -> np.ndarray:
    """Start offsets of the runs of equal values in a sorted array."""
    return np.concatenate(
        ([0], np.flatnonzero(sorted_vals[1:] != sorted_vals[:-1]) + 1))


def segment_lengths(offsets: np.ndarray) -> np.ndarray:
    """Per-row segment sizes of a CSR layout: for every value row, the
    length of the segment it belongs to.

    This is ``last()`` over a columnar axis result — one batched array
    op instead of a per-context-node count.
    """
    counts = np.diff(np.asarray(offsets, dtype=np.int64))
    return np.repeat(counts, counts)


def segment_positions(offsets: np.ndarray, *,
                      reverse: bool = False) -> np.ndarray:
    """Per-row 1-based positions within each CSR segment.

    With ``reverse=False`` rows count up in storage order (``1..len``
    per segment — XPath ``position()`` on a forward axis, whose result
    is stored in document order).  ``reverse=True`` counts down
    (``len..1``): reverse axes enumerate in reverse document order, so
    the first stored row of a segment is that context node's *last*
    axis position — a segmented cumcount flipped per segment.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    counts = np.diff(offsets)
    total = int(offsets[-1])
    ordinal = (np.arange(total, dtype=np.int64)
               - np.repeat(offsets[:-1], counts))
    if reverse:
        return np.repeat(counts, counts) - ordinal
    return ordinal + 1


def _as_int64(values) -> np.ndarray:
    return np.asarray(values, dtype=np.int64)


class _ColumnarMapping(Mapping):
    """Shared CSR bookkeeping and the lazy read-only ``Mapping`` adapter.

    Subclasses carry the value column(s); this base owns ``iters`` +
    ``offsets``, the binary-search key lookup, and the per-iteration
    decode cache.  Hooks: :meth:`_decode_slice` materializes one
    iteration's Python view, :meth:`_columns` lists every array for the
    same-type equality check.
    """

    __slots__ = ("iters", "offsets", "_decoded")

    def __init__(self, iters: np.ndarray, offsets: np.ndarray):
        self.iters = iters
        self.offsets = offsets
        self._decoded: dict[int, list] = {}

    def _decode_slice(self, a: int, b: int) -> list:
        raise NotImplementedError

    def _columns(self) -> tuple[np.ndarray, ...]:
        raise NotImplementedError

    # -- columnar accessors ------------------------------------------------

    def _find(self, iteration: int) -> int:
        i = int(np.searchsorted(self.iters, iteration))
        if i == len(self.iters) or self.iters[i] != iteration:
            raise KeyError(iteration)
        return i

    def slice_of(self, iteration: int) -> tuple[int, int]:
        """The ``[a, b)`` bounds of an iteration's slice of the value
        column(s)."""
        i = self._find(iteration)
        return int(self.offsets[i]), int(self.offsets[i + 1])

    def iterations(self) -> list[int]:
        return self.iters.tolist()

    # -- lazy dict view (the compatibility adapter) ------------------------

    def __getitem__(self, iteration: int) -> list:
        cached = self._decoded.get(iteration)
        if cached is None:
            cached = self._decode_slice(*self.slice_of(iteration))
            self._decoded[iteration] = cached
        return cached

    def __iter__(self):
        return iter(self.iters.tolist())

    def __len__(self) -> int:
        return len(self.iters)

    def __contains__(self, iteration) -> bool:
        try:
            self._find(iteration)
        except (KeyError, TypeError):
            return False
        return True

    def to_dict(self) -> dict[int, list]:
        """Fully decode to the classical dict representation."""
        return {it: self[it] for it in self.iters.tolist()}

    def __eq__(self, other: object) -> bool:
        if isinstance(other, _ColumnarMapping):
            return type(other) is type(self) and all(
                np.array_equal(mine, theirs)
                for mine, theirs in zip(self._columns(), other._columns()))
        if isinstance(other, Mapping):
            return self.to_dict() == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(iters={len(self.iters)}, "
                f"values={int(self.offsets[-1])})")


class ColumnarResult(_ColumnarMapping):
    """A loop-lifted join result as ``iters`` + CSR ``offsets|values``.

    Iteration -> unique candidate node ids in ascending (= document)
    order, stored columnar.  See the module docstring for invariants.
    """

    __slots__ = ("values",)

    def __init__(self, iters: np.ndarray, offsets: np.ndarray,
                 values: np.ndarray):
        super().__init__(iters, offsets)
        self.values = values

    # -- constructors ------------------------------------------------------

    @classmethod
    def empty(cls) -> "ColumnarResult":
        return cls(np.empty(0, np.int64), np.zeros(1, np.int64),
                   np.empty(0, np.int64))

    @classmethod
    def from_pairs(cls, iter_vals: np.ndarray, values: np.ndarray, *,
                   presorted: bool = False, unique: bool = False
                   ) -> "ColumnarResult":
        """Group matched ``(iter, candidate id)`` pairs into canonical
        columnar form: unique ids per iteration, ascending.

        ``presorted`` promises ``(iter, value)``-lexicographic input
        order; ``unique`` promises there are no duplicate pairs.  Both
        skip the corresponding normalization pass.
        """
        iter_vals = _as_int64(iter_vals)
        values = _as_int64(values)
        if len(iter_vals) == 0:
            return cls.empty()
        if not presorted:
            order = np.lexsort((values, iter_vals))
            iter_vals = iter_vals[order]
            values = values[order]
        if not unique:
            keep = np.empty(len(iter_vals), bool)
            keep[0] = True
            np.logical_or(iter_vals[1:] != iter_vals[:-1],
                          values[1:] != values[:-1], out=keep[1:])
            iter_vals = iter_vals[keep]
            values = values[keep]
        first = run_starts(iter_vals)
        return cls(iter_vals[first], np.append(first, len(iter_vals)),
                   values)

    @classmethod
    def from_dict(cls, mapping: Mapping) -> "ColumnarResult":
        """Columnarize a ``dict[int, list[int]]``-shaped result.

        Iterations are sorted and each iteration's ids canonicalized
        (sorted, deduplicated); iterations with empty sequences are
        preserved as empty slices.
        """
        if not mapping:
            return cls.empty()
        its = sorted(mapping)
        chunks = [np.unique(_as_int64(mapping[it])) for it in its]
        offsets = np.zeros(len(its) + 1, np.int64)
        np.cumsum([len(c) for c in chunks], out=offsets[1:])
        values = (np.concatenate(chunks) if offsets[-1]
                  else np.empty(0, np.int64))
        return cls(_as_int64(its), offsets, values)

    # -- hooks -------------------------------------------------------------

    def _decode_slice(self, a: int, b: int) -> list[int]:
        return self.values[a:b].tolist()

    def _columns(self) -> tuple[np.ndarray, ...]:
        return (self.iters, self.offsets, self.values)

    # -- columnar accessors ------------------------------------------------

    def values_for(self, iteration: int) -> np.ndarray:
        """An iteration's id column (no Python-list materialization)."""
        a, b = self.slice_of(iteration)
        return self.values[a:b]

    @property
    def n_values(self) -> int:
        """Total number of ``(iter, id)`` result rows."""
        return len(self.values)

    def to_dict(self) -> dict[int, list[int]]:
        # One batched tolist() instead of a per-iteration decode — this
        # is the reference paths' bulk decolumnarization (ll rejects).
        bounds = self.offsets.tolist()
        vals = self.values.tolist()
        return {it: vals[a:b] for it, a, b in zip(self.iters.tolist(),
                                                  bounds[:-1], bounds[1:])}


class ColumnarStepResult(_ColumnarMapping):
    """A step-level result: ``iter -> [(fragment, node id), ...]``.

    Same CSR layout as :class:`ColumnarResult` with a parallel ``frags``
    column; within an iteration's slice rows are ordered by fragment
    rank then node id (= document order when ranks follow document
    order).  Built by :meth:`from_fragments` without ever decolumnarizing
    per-fragment join results.
    """

    __slots__ = ("frags", "values")

    def __init__(self, iters: np.ndarray, offsets: np.ndarray,
                 frags: np.ndarray, values: np.ndarray):
        super().__init__(iters, offsets)
        self.frags = frags
        self.values = values

    @classmethod
    def empty(cls) -> "ColumnarStepResult":
        return cls(np.empty(0, np.int64), np.zeros(1, np.int64),
                   np.empty(0, np.int64), np.empty(0, np.int64))

    @classmethod
    def from_fragments(cls, parts: Iterable[tuple[int, Mapping]]
                       ) -> "ColumnarStepResult":
        """Concatenate per-fragment join results, columnar.

        ``parts`` is ``(fragment id, join result)`` in the desired
        fragment order; each join result is a :class:`ColumnarResult`
        or a ``dict[int, list[int]]`` (the reference paths).  Iterations
        with empty sequences survive (anti-join semantics); within an
        iteration the given fragment order is preserved and ids stay
        ascending per fragment — one stable sort on ``iter`` suffices.
        """
        iter_cols: list[np.ndarray] = []
        frag_cols: list[np.ndarray] = []
        val_cols: list[np.ndarray] = []
        key_cols: list[np.ndarray] = []     # all iteration keys, incl. empty
        for fragment, result in parts:
            if isinstance(result, ColumnarResult):
                keys = result.iters
                rep = np.repeat(result.iters, np.diff(result.offsets))
                vals = result.values
            else:
                keys = _as_int64(sorted(result))
                rep_list: list[int] = []
                val_list: list[int] = []
                for it in keys.tolist():
                    ids = result[it]
                    rep_list.extend([it] * len(ids))
                    val_list.extend(ids)
                rep = _as_int64(rep_list)
                vals = _as_int64(val_list)
            if len(keys) == 0:
                continue
            key_cols.append(keys)
            if len(vals):
                iter_cols.append(rep)
                frag_cols.append(np.full(len(vals), fragment, np.int64))
                val_cols.append(vals)
        if not key_cols:
            return cls.empty()
        uniq_iters = np.unique(np.concatenate(key_cols))
        if iter_cols:
            rep_all = np.concatenate(iter_cols)
            order = np.argsort(rep_all, kind="stable")
            rep_all = rep_all[order]
            frags = np.concatenate(frag_cols)[order]
            values = np.concatenate(val_cols)[order]
        else:
            rep_all = np.empty(0, np.int64)
            frags = np.empty(0, np.int64)
            values = np.empty(0, np.int64)
        offsets = np.append(
            np.searchsorted(rep_all, uniq_iters, side="left"),
            len(rep_all))
        return cls(uniq_iters, offsets, frags, values)

    # -- hooks -------------------------------------------------------------

    def _decode_slice(self, a: int, b: int) -> list[tuple[int, int]]:
        return list(zip(self.frags[a:b].tolist(),
                        self.values[a:b].tolist()))

    def _columns(self) -> tuple[np.ndarray, ...]:
        return (self.iters, self.offsets, self.frags, self.values)

    # -- columnar accessors ------------------------------------------------

    def segment(self, iteration: int) -> tuple[np.ndarray, np.ndarray]:
        """An iteration's ``(fragment, node id)`` column pair."""
        a, b = self.slice_of(iteration)
        return self.frags[a:b], self.values[a:b]

    @property
    def n_pairs(self) -> int:
        return len(self.values)


# ----------------------------------------------------------------------
# the shared anti-join helper
# ----------------------------------------------------------------------

def _selected_pairs(selected) -> tuple[np.ndarray, np.ndarray]:
    """Flatten a select-join result to ``(iter, id)`` pair columns."""
    if isinstance(selected, ColumnarResult):
        return (np.repeat(selected.iters, np.diff(selected.offsets)),
                selected.values)
    rep: list[int] = []
    vals: list[int] = []
    for it, ids in selected.items():
        rep.extend([it] * len(ids))
        vals.extend(ids)
    return _as_int64(rep), _as_int64(vals)


def complement(selected, iterations: Sequence[int],
               universe: np.ndarray, *,
               budget: int = COMPLEMENT_BUDGET) -> ColumnarResult:
    """Per-iteration complement of a semi-join result over *universe*.

    The single anti-join implementation shared by the vectorized kernels
    and the row-at-a-time reference merge: for every iteration in
    *iterations* (ascending, usually ``context.iterations()``), the
    result is ``universe`` minus that iteration's selected ids.

    :param selected: the semi-join result — a :class:`ColumnarResult`
        or any ``iter -> ids`` mapping; ids must be drawn from
        *universe*.
    :param universe: sorted unique candidate node ids.
    :param budget: cell cap for the vectorized membership matrix
        (``iterations x universe``); larger shapes use the
        per-iteration ``setdiff1d`` fallback.
    """
    its = _as_int64(list(iterations))
    universe = _as_int64(universe)
    n_it, m = len(its), len(universe)
    if n_it == 0:
        return ColumnarResult.empty()
    if m == 0:
        return ColumnarResult(its, np.zeros(n_it + 1, np.int64),
                              np.empty(0, np.int64))
    if n_it * m <= budget:
        keep = np.ones((n_it, m), bool)
        sel_it, sel_val = _selected_pairs(selected)
        if len(sel_val):
            row = np.searchsorted(its, sel_it)
            col = np.searchsorted(universe, sel_val)
            ok = (row < n_it) & (col < m)
            ok &= its[np.minimum(row, n_it - 1)] == sel_it
            ok &= universe[np.minimum(col, m - 1)] == sel_val
            keep[row[ok], col[ok]] = False
        offsets = np.zeros(n_it + 1, np.int64)
        np.cumsum(keep.sum(axis=1), out=offsets[1:])
        values = np.broadcast_to(universe, (n_it, m))[keep]
        return ColumnarResult(its, offsets, values)
    # Fallback: the matrix would be enormous — walk iterations.
    chunks: list[np.ndarray] = []
    offsets = np.zeros(n_it + 1, np.int64)
    for i, it in enumerate(its.tolist()):
        matched = selected.get(it)
        if matched is not None and len(matched):
            chunk = np.setdiff1d(universe, _as_int64(matched),
                                 assume_unique=True)
        else:
            chunk = universe
        chunks.append(chunk)
        offsets[i + 1] = offsets[i] + len(chunk)
    values = (np.concatenate(chunks) if offsets[-1]
              else np.empty(0, np.int64))
    return ColumnarResult(its, offsets, values)
