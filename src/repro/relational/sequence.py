"""Loop-lifted sequences: the ``iter|pos|item`` representation (§4.1).

Pathfinder represents the value of an expression *inside a for-loop* as a
single table with columns ``iter|pos|item``: for every iteration ``iter``
of the loop, the rows with that iteration number are the expression's
item sequence (ordered by ``pos``).  :class:`IterSeq` is that table; the
physical storage groups items per iteration (``pos`` is implicit in list
order) and :meth:`to_table` materialises the classical three-column view.

The for-loop machinery follows Pathfinder's *loop lifting* [Grust et al.,
VLDB 2004]:

* :func:`expand_loop` maps every ``(iter, item)`` row of the binding
  sequence to a fresh inner iteration number (the inner ``loop``
  relation), remembering the outer iteration each inner one came from;
* :meth:`IterSeq.relift` re-expresses an outer-scope variable in the
  inner loop (each inner iteration sees its outer iteration's items);
* :func:`unlift` folds the body's inner-loop result back onto the outer
  loop, concatenating per outer iteration in inner-iteration order.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.relational.column import Column
from repro.relational.table import Table

#: A loop relation: the ordered iteration numbers of a live scope.
Loop = list


class LazyIterData(Mapping):
    """A lazily-decoded ``iter -> item list`` mapping over a columnar
    backbone.

    Wraps the sorted iteration keys of a columnar join result and a
    ``decode(iteration) -> list`` callable; per-iteration item lists are
    materialized only when accessed (and cached, shared across
    :meth:`restrict` copies).  This is the node-id fast path that lets
    the bulk evaluator consume StandOff join output without eagerly
    exploding every iteration into Python lists — iterations dropped by
    a ``where`` clause or an ``if`` branch are never decoded.
    """

    __slots__ = ("_keys", "_keyset", "_decode", "_cache")

    def __init__(self, keys: list[int], decode: Callable[[int], list],
                 _cache: dict | None = None):
        self._keys = keys
        self._keyset = frozenset(keys)
        self._decode = decode
        self._cache: dict[int, list] = {} if _cache is None else _cache

    def __getitem__(self, iteration: int) -> list:
        # Membership first: the decode cache is shared with restrict()
        # views, so it may hold iterations this view has filtered out.
        if iteration not in self._keyset:
            raise KeyError(iteration)
        cached = self._cache.get(iteration)
        if cached is None:
            cached = self._decode(iteration)
            self._cache[iteration] = cached
        return cached

    def __iter__(self) -> Iterator[int]:
        return iter(self._keys)

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, iteration) -> bool:
        return iteration in self._keyset

    def restrict(self, live: set) -> "LazyIterData":
        """The sub-mapping of iterations in *live*, still lazy.

        The decode cache is shared with the parent, so an iteration
        decoded through either view is decoded once.
        """
        return LazyIterData([it for it in self._keys if it in live],
                            self._decode, _cache=self._cache)

    def __repr__(self) -> str:
        return (f"LazyIterData(iters={len(self._keys)}, "
                f"decoded={len(self._cache)})")


class IterSeq:
    """A loop-lifted item sequence (``iter|pos|item``).

    ``data`` maps an iteration number to its item list — a plain dict,
    or any read-only mapping such as :class:`LazyIterData` (the
    columnar-backed lazy view over join results).  Iterations with
    an empty sequence may be absent — consumers must treat a missing key
    as the empty sequence.
    """

    __slots__ = ("data",)

    def __init__(self, data: Mapping | None = None):
        self.data = data if data is not None else {}

    # -- constructors ------------------------------------------------------

    @classmethod
    def lifted(cls, items: list, loop: Loop) -> "IterSeq":
        """The constant sequence *items* in every iteration of *loop*."""
        if not items:
            return cls({})
        return cls({it: list(items) for it in loop})

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[int, object]]) -> "IterSeq":
        data: dict[int, list] = {}
        for it, item in pairs:
            data.setdefault(it, []).append(item)
        return cls(data)

    @classmethod
    def single(cls, items: list, iteration: int = 0) -> "IterSeq":
        """A sequence living in a single iteration (top-level scope)."""
        if not items:
            return cls({})
        return cls({iteration: list(items)})

    # -- accessors ----------------------------------------------------------

    def items_for(self, iteration: int) -> list:
        return self.data.get(iteration, [])

    def iterations(self) -> list[int]:
        return sorted(self.data)

    def per_iter(self) -> Iterator[tuple[int, list]]:
        for it in sorted(self.data):
            yield it, self.data[it]

    def total_items(self) -> int:
        return sum(len(v) for v in self.data.values())

    def is_empty(self) -> bool:
        return all(not v for v in self.data.values())

    # -- bulk operations ------------------------------------------------------

    def map_items(self, fn: Callable) -> "IterSeq":
        """Apply *fn* to every item, preserving iter/pos structure."""
        return IterSeq({it: [fn(x) for x in items]
                        for it, items in self.data.items()})

    def map_seq(self, fn: Callable[[int, list], list]) -> "IterSeq":
        """Apply a per-iteration sequence transform ``fn(iter, items)``."""
        out = {}
        for it, items in self.data.items():
            new = fn(it, items)
            if new:
                out[it] = new
        return IterSeq(out)

    def restrict(self, live: Iterable[int]) -> "IterSeq":
        """Keep only the iterations in *live*.

        Lazily-backed sequences stay lazy (iterations outside *live*
        are never decoded); dict-backed ones are filtered eagerly.
        """
        live_set = set(live)
        if isinstance(self.data, LazyIterData):
            return IterSeq(self.data.restrict(live_set))
        return IterSeq({it: items for it, items in self.data.items()
                        if it in live_set})

    def filter_items(self, pred: Callable) -> "IterSeq":
        out = {}
        for it, items in self.data.items():
            kept = [x for x in items if pred(x)]
            if kept:
                out[it] = kept
        return IterSeq(out)

    def concat(self, other: "IterSeq") -> "IterSeq":
        """Per-iteration sequence concatenation (XQuery ``,``)."""
        out: dict[int, list] = {}
        for it, items in self.data.items():
            out[it] = list(items)
        for it, items in other.data.items():
            out.setdefault(it, []).extend(items)
        return IterSeq(out)

    # -- table view -----------------------------------------------------------

    def to_table(self) -> Table:
        """Materialise the classical ``iter|pos|item`` table view."""
        iters: list[int] = []
        poss: list[int] = []
        items: list = []
        for it in sorted(self.data):
            for pos, item in enumerate(self.data[it], start=1):
                iters.append(it)
                poss.append(pos)
                items.append(item)
        return Table([
            Column("iter", np.asarray(iters, dtype=np.int64)),
            Column("pos", np.asarray(poss, dtype=np.int64)),
            Column("item", items),
        ])

    def __repr__(self) -> str:
        return f"IterSeq(iters={len(self.data)}, items={self.total_items()})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IterSeq):
            return NotImplemented
        mine = {it: v for it, v in self.data.items() if v}
        theirs = {it: v for it, v in other.data.items() if v}
        return mine == theirs

    def __hash__(self):
        raise TypeError("IterSeq is unhashable")

    # -- loop lifting ------------------------------------------------------------

    def relift(self, outer_of_inner: list[int]) -> "IterSeq":
        """Re-express this outer-loop sequence in an inner loop.

        ``outer_of_inner[q]`` is the outer iteration that inner iteration
        *q* descends from; each inner iteration sees its outer
        iteration's item sequence.
        """
        out: dict[int, list] = {}
        for q, outer in enumerate(outer_of_inner):
            items = self.data.get(outer)
            if items:
                out[q] = items
        return IterSeq(out)


def expand_loop(binding: IterSeq, loop: Loop
                ) -> tuple[Loop, list[int], IterSeq, IterSeq]:
    """Create the inner loop for ``for $v [at $p] in <binding>``.

    Every ``(iter, item)`` row of the binding sequence becomes one inner
    iteration, numbered densely in (outer iter, pos) order.

    :returns: ``(inner_loop, outer_of_inner, var_seq, pos_seq)`` where
        ``var_seq`` binds ``$v`` (one item per inner iteration) and
        ``pos_seq`` binds the positional variable (1-based position of
        the item within its outer iteration's binding sequence).
    """
    inner_loop: Loop = []
    outer_of_inner: list[int] = []
    var_data: dict[int, list] = {}
    pos_data: dict[int, list] = {}
    q = 0
    for it in loop:
        for pos, item in enumerate(binding.items_for(it), start=1):
            inner_loop.append(q)
            outer_of_inner.append(it)
            var_data[q] = [item]
            pos_data[q] = [pos]
            q += 1
    return inner_loop, outer_of_inner, IterSeq(var_data), IterSeq(pos_data)


def unlift(result: IterSeq, outer_of_inner: list[int],
           order: list[int] | None = None) -> IterSeq:
    """Fold an inner-loop result back onto the outer loop.

    Inner iterations are visited in order (or in the explicit *order* —
    the ``order by`` case); their sequences concatenate under the outer
    iteration they descend from — exactly the XQuery semantics of a
    for-loop's result sequence.
    """
    out: dict[int, list] = {}
    inner_iterations = (range(len(outer_of_inner)) if order is None
                        else order)
    for q in inner_iterations:
        items = result.data.get(q)
        if items:
            out.setdefault(outer_of_inner[q], []).extend(items)
    return IterSeq(out)
