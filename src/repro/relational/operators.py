"""Classical relational operators over :class:`~repro.relational.table.Table`.

Pathfinder compiles XQuery to Select / Project / Join / Product /
Aggregation over ``iter|pos|item`` tables (§4.1).  The bulk evaluator
mostly works on the grouped :class:`~repro.relational.sequence.IterSeq`
view, but these operators give the classical table-level vocabulary used
by tests, docs and the shredded-table utilities.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import RelationalError
from repro.relational.column import Column
from repro.relational.table import Table


def select(table: Table, predicate: Callable[[tuple], bool]) -> Table:
    """Row selection by a Python predicate over row tuples."""
    mask = np.fromiter((bool(predicate(row)) for row in table.rows()),
                       dtype=bool, count=len(table))
    return table.filter_mask(mask)


def select_eq(table: Table, column: str, value) -> Table:
    """Fast equality selection on a numeric column."""
    col = table.col(column)
    if col.is_numeric:
        return table.filter_mask(col.data == value)
    mask = np.fromiter((v == value for v in col.data), dtype=bool,
                       count=len(table))
    return table.filter_mask(mask)


def project(table: Table, *names: str) -> Table:
    return table.project(*names)


def sort(table: Table, *names: str) -> Table:
    """Stable lexicographic sort on numeric key columns."""
    if not names:
        return table
    keys = []
    for name in reversed(names):
        col = table.col(name)
        if not col.is_numeric:
            raise RelationalError(f"cannot sort on item column {name!r}")
        keys.append(col.data)
    order = np.lexsort(keys)
    return table.take(order)


def equi_join(left: Table, right: Table, on: str,
              suffix: str = "_r") -> Table:
    """Hash equi-join on a shared numeric column.

    Right columns clashing with left names get *suffix* appended.  Output
    row order follows the left input (then right match order) — the
    order-preserving join Pathfinder relies on.
    """
    lcol = left.col(on)
    rcol = right.col(on)
    buckets: dict = {}
    for idx, key in enumerate(rcol.to_list()):
        buckets.setdefault(key, []).append(idx)
    lidx: list[int] = []
    ridx: list[int] = []
    for idx, key in enumerate(lcol.to_list()):
        for r in buckets.get(key, ()):
            lidx.append(idx)
            ridx.append(r)
    taken_left = left.take(lidx)
    right_names = [c.name for c in right.columns if c.name != on]
    taken_right = right.project(*right_names).take(ridx)
    rename = {name: name + suffix for name in right_names
              if taken_left.has_column(name)}
    return Table([*taken_left.columns,
                  *taken_right.rename(rename).columns])


def semijoin(left: Table, right: Table, on: str) -> Table:
    """Rows of *left* whose key appears in *right* (order-preserving)."""
    keys = set(right.col(on).to_list())
    mask = np.fromiter((k in keys for k in left.col(on).to_list()),
                       dtype=bool, count=len(left))
    return left.filter_mask(mask)


def antijoin(left: Table, right: Table, on: str) -> Table:
    """Rows of *left* whose key does not appear in *right*."""
    keys = set(right.col(on).to_list())
    mask = np.fromiter((k not in keys for k in left.col(on).to_list()),
                       dtype=bool, count=len(left))
    return left.filter_mask(mask)


def cross(left: Table, right: Table, suffix: str = "_r") -> Table:
    """Cartesian product, left-major order."""
    nl, nr = len(left), len(right)
    lidx = np.repeat(np.arange(nl, dtype=np.int64), nr)
    ridx = np.tile(np.arange(nr, dtype=np.int64), nl)
    taken_left = left.take(lidx)
    rename = {c.name: c.name + suffix for c in right.columns
              if taken_left.has_column(c.name)}
    return Table([*taken_left.columns,
                  *right.rename(rename).take(ridx).columns])


def group_count(table: Table, key: str, out: str = "count") -> Table:
    """Per-key row counts, keys in first-appearance order."""
    counts: dict = {}
    for k in table.col(key).to_list():
        counts[k] = counts.get(k, 0) + 1
    return Table([
        Column(key, np.asarray(list(counts.keys()), dtype=np.int64)),
        Column.int64(out, counts.values()),
    ])


def row_number(table: Table, partition: str, out: str = "pos") -> Table:
    """1-based dense row numbers per partition (Pathfinder's ``rownum``)."""
    seen: dict = {}
    numbers = []
    for key in table.col(partition).to_list():
        seen[key] = seen.get(key, 0) + 1
        numbers.append(seen[key])
    return table.with_column(Column.int64(out, numbers))


def distinct(table: Table, *names: str) -> Table:
    """Rows with distinct values of the key columns (first wins)."""
    cols = [table.col(n).to_list() for n in names]
    seen: set = set()
    keep: list[int] = []
    for i, key in enumerate(zip(*cols) if cols else ()):
        if key not in seen:
            seen.add(key)
            keep.append(i)
    return table.take(keep)
