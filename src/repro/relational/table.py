"""Tables: ordered collections of equal-length named columns."""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.errors import RelationalError
from repro.relational.column import Column


class Table:
    """A small relational table with named columns.

    The row order is meaningful (XQuery sequences are ordered): operators
    that need a different order produce a *new* table.
    """

    __slots__ = ("columns",)

    def __init__(self, columns: Iterable[Column]):
        cols = list(columns)
        if cols:
            length = len(cols[0])
            for col in cols[1:]:
                if len(col) != length:
                    raise RelationalError(
                        f"column {col.name!r} has {len(col)} rows, "
                        f"expected {length}")
        names = [c.name for c in cols]
        if len(set(names)) != len(names):
            raise RelationalError(f"duplicate column names: {names}")
        self.columns = cols

    @classmethod
    def from_dict(cls, data: dict) -> "Table":
        return cls(Column(name, values) for name, values in data.items())

    def __len__(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def col(self, name: str) -> Column:
        for column in self.columns:
            if column.name == name:
                return column
        raise RelationalError(
            f"no column {name!r}; have {self.column_names}")

    def __getitem__(self, name: str) -> Column:
        return self.col(name)

    def has_column(self, name: str) -> bool:
        return any(c.name == name for c in self.columns)

    def take(self, indexes) -> "Table":
        return Table(c.take(indexes) for c in self.columns)

    def filter_mask(self, mask: np.ndarray) -> "Table":
        return Table(c.filter_mask(mask) for c in self.columns)

    def project(self, *names: str) -> "Table":
        return Table(self.col(n) for n in names)

    def rename(self, mapping: dict[str, str]) -> "Table":
        return Table(c.renamed(mapping.get(c.name, c.name))
                     for c in self.columns)

    def with_column(self, column: Column) -> "Table":
        if self.has_column(column.name):
            raise RelationalError(f"column {column.name!r} already present")
        return Table([*self.columns, column])

    def concat(self, other: "Table") -> "Table":
        if self.column_names != other.column_names:
            raise RelationalError(
                f"schema mismatch: {self.column_names} vs "
                f"{other.column_names}")
        return Table(a.concat(b)
                     for a, b in zip(self.columns, other.columns))

    def rows(self) -> Iterator[tuple]:
        cols = [c.data for c in self.columns]
        if not cols:
            return iter(())
        return zip(*[c.to_list() for c in self.columns])

    def __repr__(self) -> str:
        return f"Table({self.column_names}, n={len(self)})"

    def pretty(self, limit: int = 20) -> str:
        """A fixed-width rendering for docs/tests (pos|item style)."""
        names = self.column_names
        rows = list(self.rows())[:limit]
        widths = [max(len(str(n)),
                      *(len(str(r[i])) for r in rows)) if rows else len(str(n))
                  for i, n in enumerate(names)]
        def fmt(values):
            return " | ".join(str(v).ljust(w) for v, w in zip(values, widths))
        lines = [fmt(names), "-+-".join("-" * w for w in widths)]
        lines.extend(fmt(r) for r in rows)
        if len(self) > limit:
            lines.append(f"... ({len(self)} rows)")
        return "\n".join(lines)
