"""Columns: typed, immutable-by-convention arrays.

MonetDB stores everything in BATs (binary association tables); our
substrate keeps it simpler — a :class:`Column` is either a numpy array
(numeric columns such as ``iter``, ``pos``, ``pre``, ``start``, ``end``)
or a Python list (item columns holding nodes/atomics).  The class exists
to give both storage kinds one interface for the table operators.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

from repro.errors import RelationalError


class Column:
    """A named column of homogeneous storage."""

    __slots__ = ("name", "data", "is_numeric")

    def __init__(self, name: str, data):
        self.name = name
        if isinstance(data, np.ndarray):
            self.data = data
            self.is_numeric = True
        elif isinstance(data, list):
            self.data = data
            self.is_numeric = False
        else:
            self.data = list(data)
            self.is_numeric = False

    @classmethod
    def int64(cls, name: str, values: Iterable[int]) -> "Column":
        return cls(name, np.asarray(list(values), dtype=np.int64))

    def __len__(self) -> int:
        return len(self.data)

    def __getitem__(self, i):
        return self.data[i]

    def take(self, indexes) -> "Column":
        """A new column with the rows at *indexes* (any int sequence)."""
        if self.is_numeric:
            return Column(self.name,
                          self.data[np.asarray(indexes, dtype=np.int64)])
        return Column(self.name, [self.data[i] for i in indexes])

    def filter_mask(self, mask: np.ndarray) -> "Column":
        if self.is_numeric:
            return Column(self.name, self.data[mask])
        return Column(self.name,
                      [v for v, keep in zip(self.data, mask) if keep])

    def concat(self, other: "Column") -> "Column":
        if self.name != other.name:
            raise RelationalError(
                f"cannot concat columns {self.name!r} and {other.name!r}")
        if self.is_numeric and other.is_numeric:
            return Column(self.name, np.concatenate([self.data, other.data]))
        return Column(self.name, list(self.data) + list(other.data))

    def to_list(self) -> list:
        if self.is_numeric:
            return self.data.tolist()
        return list(self.data)

    def renamed(self, name: str) -> "Column":
        return Column(name, self.data)

    def __repr__(self) -> str:
        return f"Column({self.name!r}, n={len(self)})"


def as_int64(values: Sequence[Any]) -> np.ndarray:
    return np.asarray(values, dtype=np.int64)
