"""A scalable, deterministic XMark-style auction-document generator.

Reproduces the element vocabulary and cardinality ratios of the XMark
benchmark [Schmidt et al., VLDB 2002] for the parts its queries Q1, Q2,
Q6 and Q7 touch: ``site`` with ``regions`` (six continents holding
``item`` elements with ``description``/``mailbox``), ``categories``,
``people`` (``person`` with ``@id="personN"``, ``name``,
``emailaddress``), ``open_auctions`` (``open_auction`` with ``bidder``
elements carrying ``increase``, plus ``annotation``) and
``closed_auctions``.

``scale=1.0`` yields a document of roughly half a megabyte (about 1/200
of XMark's 100 MB scale factor 1) with the same relative cardinalities:

=================== =========== =====================
entity               ratio       count at scale=1.0
``item``             21750/SF    400
``person``           25500/SF    500
``open_auction``     12000/SF    240
``closed_auction``   9750/SF     195
``category``         1000/SF     25
=================== =========== =====================

Generation is fully deterministic given ``(scale, seed)``.
"""

from __future__ import annotations

import random

from repro.xmark import data
from repro.xmldb.dom import Document, Element

#: Entity counts at scale 1.0 (see module docstring).
BASE_COUNTS = {
    "items": 400,
    "persons": 500,
    "open_auctions": 240,
    "closed_auctions": 195,
    "categories": 25,
}


class _Gen:
    def __init__(self, scale: float, seed: int):
        self.rng = random.Random(seed)
        self.counts = {name: max(1, int(round(base * scale)))
                       for name, base in BASE_COUNTS.items()}

    # -- small helpers ----------------------------------------------------

    def words(self, lo: int, hi: int) -> str:
        n = self.rng.randint(lo, hi)
        return " ".join(self.rng.choice(data.WORDS) for _ in range(n))

    def sentence(self) -> str:
        return self.words(4, 12) + "."

    def person_name(self) -> str:
        return (f"{self.rng.choice(data.FIRST_NAMES)} "
                f"{self.rng.choice(data.LAST_NAMES)}")

    def element(self, parent: Element, tag: str,
                text: str | None = None, **attrs: str) -> Element:
        el = Element(tag, {k: str(v) for k, v in attrs.items()})
        parent.append(el)
        if text is not None:
            el.append_text(text)
        return el

    # -- document sections ---------------------------------------------------

    def build(self) -> Document:
        doc = Document()
        site = Element("site")
        doc.append(site)
        self.regions(site)
        self.categories(site)
        self.people(site)
        self.open_auctions(site)
        self.closed_auctions(site)
        doc.renumber()
        return doc

    def regions(self, site: Element) -> None:
        regions = self.element(site, "regions")
        per_region = self._split(self.counts["items"], len(data.REGIONS))
        item_id = 0
        for region_name, n in zip(data.REGIONS, per_region):
            region = self.element(regions, region_name)
            for _ in range(n):
                self.item(region, item_id)
                item_id += 1

    def item(self, region: Element, item_id: int) -> None:
        item = self.element(region, "item", id=f"item{item_id}")
        self.element(item, "location",
                     self.rng.choice(data.COUNTRIES))
        self.element(item, "quantity", str(self.rng.randint(1, 5)))
        self.element(item, "name", self.words(2, 4))
        payment = self.element(item, "payment")
        payment.append_text(", ".join(
            self.rng.sample(data.PAYMENT_KINDS,
                            self.rng.randint(1, 3))))
        self.description(item)
        self.element(item, "shipping",
                     self.rng.choice(data.SHIPPING_KINDS))
        mailbox = self.element(item, "mailbox")
        for _ in range(self.rng.randint(0, 2)):
            mail = self.element(mailbox, "mail")
            self.element(mail, "from", self.person_name())
            self.element(mail, "to", self.person_name())
            self.element(mail, "date", self._date())
            self.element(mail, "text", self.sentence())

    def description(self, parent: Element) -> None:
        description = self.element(parent, "description")
        text = self.element(description, "text")
        text.append_text(self.sentence())
        if self.rng.random() < 0.3:
            self.element(description, "parlist",
                         self.sentence())

    def categories(self, site: Element) -> None:
        categories = self.element(site, "categories")
        for i in range(self.counts["categories"]):
            category = self.element(categories, "category",
                                    id=f"category{i}")
            self.element(category, "name",
                         self.rng.choice(data.CATEGORY_THEMES))
            self.description(category)

    def people(self, site: Element) -> None:
        people = self.element(site, "people")
        for i in range(self.counts["persons"]):
            person = self.element(people, "person", id=f"person{i}")
            self.element(person, "name", self.person_name())
            self.element(person, "emailaddress",
                         f"mailto:person{i}@xmark.example")
            if self.rng.random() < 0.5:
                self.element(person, "phone",
                             f"+31 {self.rng.randint(10, 99)} "
                             f"{self.rng.randint(1000000, 9999999)}")
            if self.rng.random() < 0.4:
                address = self.element(person, "address")
                self.element(address, "street",
                             f"{self.rng.randint(1, 99)} "
                             f"{self.rng.choice(data.WORDS).title()} St")
                self.element(address, "city",
                             self.rng.choice(data.CITIES))
                self.element(address, "country",
                             self.rng.choice(data.COUNTRIES))
            if self.rng.random() < 0.3:
                self.element(person, "homepage",
                             f"http://xmark.example/~person{i}")
            if self.rng.random() < 0.6:
                profile = self.element(
                    person, "profile",
                    income=f"{self.rng.uniform(9000, 90000):.2f}")
                for _ in range(self.rng.randint(0, 3)):
                    self.element(
                        profile, "interest",
                        category=(f"category"
                                  f"{self.rng.randrange(self.counts['categories'])}"))
                if self.rng.random() < 0.5:
                    self.element(profile, "education",
                                 self.rng.choice(
                                     ("High School", "College",
                                      "Graduate School", "Other")))
                self.element(profile, "gender",
                             self.rng.choice(("male", "female")))
            if self.rng.random() < 0.4:
                watches = self.element(person, "watches")
                for _ in range(self.rng.randint(1, 3)):
                    self.element(
                        watches, "watch",
                        open_auction=(f"open_auction"
                                      f"{self.rng.randrange(self.counts['open_auctions'])}"))

    def open_auctions(self, site: Element) -> None:
        auctions = self.element(site, "open_auctions")
        n_items = self.counts["items"]
        n_people = self.counts["persons"]
        for i in range(self.counts["open_auctions"]):
            auction = self.element(auctions, "open_auction",
                                   id=f"open_auction{i}")
            self.element(auction, "initial",
                         f"{self.rng.uniform(1, 200):.2f}")
            for _ in range(self.rng.randint(1, 5)):
                bidder = self.element(auction, "bidder")
                self.element(bidder, "date", self._date())
                self.element(
                    bidder, "personref",
                    person=f"person{self.rng.randrange(n_people)}")
                self.element(bidder, "increase",
                             f"{self.rng.uniform(1.5, 60):.2f}")
            self.element(auction, "current",
                         f"{self.rng.uniform(1, 400):.2f}")
            self.element(auction, "itemref",
                         item=f"item{self.rng.randrange(n_items)}")
            self.element(auction, "seller",
                         person=f"person{self.rng.randrange(n_people)}")
            self.annotation(auction)
            self.element(auction, "quantity", "1")
            self.element(auction, "type", "Regular")
            interval = self.element(auction, "interval")
            self.element(interval, "start", self._date())
            self.element(interval, "end", self._date())

    def closed_auctions(self, site: Element) -> None:
        auctions = self.element(site, "closed_auctions")
        n_items = self.counts["items"]
        n_people = self.counts["persons"]
        for i in range(self.counts["closed_auctions"]):
            auction = self.element(auctions, "closed_auction")
            self.element(auction, "seller",
                         person=f"person{self.rng.randrange(n_people)}")
            self.element(auction, "buyer",
                         person=f"person{self.rng.randrange(n_people)}")
            self.element(auction, "itemref",
                         item=f"item{self.rng.randrange(n_items)}")
            self.element(auction, "price",
                         f"{self.rng.uniform(1, 400):.2f}")
            self.element(auction, "date", self._date())
            self.element(auction, "quantity", "1")
            self.element(auction, "type", "Regular")
            self.annotation(auction)

    def annotation(self, parent: Element) -> None:
        annotation = self.element(parent, "annotation")
        self.element(annotation, "author", self.person_name())
        self.description(annotation)
        self.element(annotation, "happiness",
                     str(self.rng.randint(1, 10)))

    def _date(self) -> str:
        return (f"{self.rng.randint(1, 28):02d}/"
                f"{self.rng.randint(1, 12):02d}/"
                f"{self.rng.randint(1998, 2006)}")

    def _split(self, total: int, buckets: int) -> list[int]:
        base, extra = divmod(total, buckets)
        return [base + (1 if i < extra else 0) for i in range(buckets)]


def generate_xmark_document(scale: float = 1.0, seed: int = 42) -> Document:
    """Generate an XMark-style auction document as a DOM."""
    return _Gen(scale, seed).build()


def generate_xmark(scale: float = 1.0, seed: int = 42) -> str:
    """Generate an XMark-style auction document as XML text."""
    return generate_xmark_document(scale, seed).serialize()
