"""StandOff conversion of XMark documents (paper §4.6).

The paper's benchmark modifies the XMark document as follows:

* the textual contents of the auction document move to a separate file —
  the **BLOB**;
* instead of its text, every element node carries a *region* (attribute
  format, ``start``/``end``) referring into the BLOB;
* the element order is **permuted on a coarse level**, destroying some
  of the original parent-child relationships (so plain child/descendant
  steps no longer suffice and StandOff joins become necessary);
* queries replace descendant/child steps with ``select-narrow``.

Region construction guarantees proper nesting: the BLOB receives one
boundary character at every element open and close (plus the element's
text), so an element's region strictly contains exactly the regions of
its original descendants and shares no position with disjoint subtrees.
On an *unpermuted* conversion, ``select-narrow`` therefore coincides
with ``descendant`` — the equivalence the test suite checks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.xmldb.dom import Document, Element, Node, Text

#: BLOB boundary characters emitted at element open/close.
OPEN_MARK = "⌈"   # left ceiling
CLOSE_MARK = "⌉"  # right ceiling


@dataclass
class StandoffBundle:
    """Result of a conversion: the annotation document plus the BLOB."""

    document: Document
    blob: str

    @property
    def blob_size(self) -> int:
        return len(self.blob)


def standoffize(source: Document, *, permute: bool = True,
                permute_depth: int = 2, permute_fraction: float = 0.5,
                seed: int = 7) -> StandoffBundle:
    """Convert an XML document to its StandOff form.

    :param source: the original document (not modified).
    :param permute: apply the coarse element permutation.
    :param permute_depth: tree level whose elements get reshuffled among
        alternative parents (2 = the children of ``site``'s sections).
    :param permute_fraction: fraction of depth-``permute_depth``
        subtrees that move to a random sibling parent.
    :param seed: permutation RNG seed.
    """
    blob_parts: list[str] = []
    cursor = 0

    def convert(node: Element) -> Element:
        nonlocal cursor
        clone = Element(node.tag)
        for attr in node.attributes:
            if attr.name not in ("start", "end"):
                clone.set_attribute(attr.name, attr.value)
        start = cursor
        blob_parts.append(OPEN_MARK)
        cursor += 1
        for child in node.children:
            if isinstance(child, Text):
                blob_parts.append(child.text)
                cursor += len(child.text)
            elif isinstance(child, Element):
                clone.append(convert(child))
        blob_parts.append(CLOSE_MARK)
        cursor += 1
        clone.set_attribute("start", str(start))
        clone.set_attribute("end", str(cursor - 1))
        return clone

    root = convert(source.root_element)
    out = Document(uri=source.uri)
    out.append(root)
    out.renumber()          # assign levels for the permutation pass
    if permute:
        _permute(out, permute_depth, permute_fraction, seed)
        out.renumber()
    return StandoffBundle(out, "".join(blob_parts))


def _permute(document: Document, depth: int, fraction: float,
             seed: int) -> None:
    """Coarsely permute: move a fraction of depth-``depth`` element
    subtrees under a different (randomly chosen) depth-``depth - 1``
    parent, and shuffle every touched parent's child order."""
    rng = random.Random(seed)
    parents = [node for node in document.descendants()
               if isinstance(node, Element) and node.level == depth]
    if len(parents) < 2:
        return
    movable: list[tuple[Element, Element]] = []
    for parent in parents:
        for child in list(parent.elements()):
            movable.append((parent, child))
    for parent, child in movable:
        if rng.random() < fraction:
            target = rng.choice(parents)
            if target is parent:
                continue
            parent.children.remove(child)
            target.append(child)
    for parent in parents:
        rng.shuffle(parent.children)


def rewrite_query_standoff(query: str) -> str:
    """Rewrite plain child/descendant path steps to ``select-narrow``.

    This is the paper's query transformation (Figure 5): ``a/b`` becomes
    ``a/select-narrow::b`` and ``a//b`` becomes ``a/select-narrow::b``
    too (containment covers any depth).  Only bare name steps are
    rewritten; attribute steps, predicates and function calls pass
    through untouched.  The rewriting is intentionally textual and
    simple — the benchmark queries are written out fully in
    :mod:`repro.xmark.queries`, so this helper is a convenience for
    user-authored queries that follow the same shape.
    """
    import re

    def repl(match: re.Match) -> str:
        slashes, name = match.group(1), match.group(2)
        return f"/select-narrow::{name}"

    return re.sub(r"(//|/)(?!@)([A-Za-z_][\w.-]*)(?!\s*\()(?!:)",
                  repl, query)
