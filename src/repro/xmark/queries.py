"""XMark queries Q1, Q2, Q6, Q7 — plain and StandOff forms (§4.6).

The plain forms follow the original XMark formulations restricted to the
engine's subset; the StandOff forms replace child/descendant steps with
``select-narrow`` exactly as the paper describes (Figure 5 shows the Q2
translation).  ``doc("{uri}")`` placeholders are filled by
:func:`query_text`.
"""

from __future__ import annotations

PLAIN = {
    "q1": (
        'for $b in doc("{uri}")/site/people/person[@id="person0"]\n'
        'return $b/name/text()'
    ),
    "q2": (
        'for $b in doc("{uri}")/site/open_auctions/open_auction\n'
        'return <increase>{{$b/bidder[1]/increase/text()}}</increase>'
    ),
    "q6": (
        'for $b in doc("{uri}")//site/regions\n'
        'return count($b//item)'
    ),
    "q7": (
        'for $p in doc("{uri}")/site\n'
        'return count($p//description) + count($p//annotation)\n'
        '     + count($p//emailaddress)'
    ),
}

#: StandOff forms: every child/descendant element step becomes a
#: select-narrow step (Figure 5).  The descendant-or-self shorthand
#: ``//site`` keeps its structural form — ``site`` is the root element
#: and carries the all-covering region, so the paper's rewriting leaves
#: the leading step intact and replaces the inner navigation.
STANDOFF = {
    "q1": (
        'for $b in doc("{uri}")//site/select-narrow::people'
        '/select-narrow::person[@id="person0"]\n'
        'return $b/select-narrow::name'
    ),
    "q2": (
        'for $b in doc("{uri}")//site/select-narrow::open_auctions\n'
        '         /select-narrow::open_auction\n'
        'return <increase>{{\n'
        '  $b/select-narrow::bidder[1]/select-narrow::increase\n'
        '}}</increase>'
    ),
    "q6": (
        'for $b in doc("{uri}")//site/select-narrow::regions\n'
        'return count($b/select-narrow::item)'
    ),
    "q7": (
        'for $p in doc("{uri}")//site\n'
        'return count($p/select-narrow::description)\n'
        '     + count($p/select-narrow::annotation)\n'
        '     + count($p/select-narrow::emailaddress)'
    ),
}

QUERY_IDS = ("q1", "q2", "q6", "q7")


def query_text(query_id: str, uri: str, *, standoff: bool = True) -> str:
    """The query text for one benchmark query against document *uri*."""
    table = STANDOFF if standoff else PLAIN
    try:
        template = table[query_id]
    except KeyError:
        raise ValueError(
            f"unknown query {query_id!r}; expected one of {QUERY_IDS}"
        ) from None
    return template.format(uri=uri)


# ----------------------------------------------------------------------
# The wider original XMark suite (adapted to the engine's subset and the
# generator's schema).  The paper only benchmarks Q1/Q2/Q6/Q7; these are
# provided — with StandOff forms where the translation makes sense — to
# exercise the engine the way a full XMark run would.  Queries marked
# iterative-only use order by / quantifiers / value joins.
# ----------------------------------------------------------------------

EXTENDED_PLAIN = {
    # Q3: auctions whose last bid is at least twice the first bid
    "q3": (
        'for $b in doc("{uri}")/site/open_auctions/open_auction\n'
        'where zero-or-one($b/bidder[1]/increase/text()) * 2\n'
        '      <= $b/bidder[last()]/increase/text()\n'
        'return <increase first="{{$b/bidder[1]/increase/text()}}"\n'
        '                 last="{{$b/bidder[last()]/increase/text()}}"/>'
    ),
    # Q4 (adapted): auctions where person20 bid before person40
    "q4": (
        'for $b in doc("{uri}")/site/open_auctions/open_auction\n'
        'where some $pr1 in $b/bidder/personref[@person = "person20"]\n'
        '      satisfies some $pr2 in\n'
        '          $b/bidder/personref[@person = "person40"]\n'
        '      satisfies $pr1 << $pr2\n'
        'return <history>{{$b/@id}}</history>'
    ),
    # Q5: closed auctions that sold above 40
    "q5": (
        'count(for $i in doc("{uri}")/site/closed_auctions/closed_auction\n'
        '      where $i/price/text() >= 40\n'
        '      return $i/price)'
    ),
    # Q8: number of items bought per person (value join)
    "q8": (
        'for $p in doc("{uri}")/site/people/person\n'
        'let $a := for $t in doc("{uri}")/site/closed_auctions\n'
        '                    /closed_auction\n'
        '          where $t/buyer/@person = $p/@id\n'
        '          return $t\n'
        'return <item person="{{$p/name/text()}}">{{count($a)}}</item>'
    ),
    # Q13: names and descriptions of Australian items
    "q13": (
        'for $i in doc("{uri}")/site/regions/australia/item\n'
        'return <item name="{{$i/name/text()}}">'
        '{{$i/description}}</item>'
    ),
    # Q14: items whose description mentions "gold"
    "q14": (
        'for $i in doc("{uri}")//item\n'
        'where contains(string-join($i/description//text(), " "),\n'
        '               "gold")\n'
        'return $i/name/text()'
    ),
    # Q17: people without a homepage
    "q17": (
        'for $p in doc("{uri}")/site/people/person\n'
        'where empty($p/homepage/text())\n'
        'return <person name="{{$p/name/text()}}"/>'
    ),
    # Q20: income distribution of people with a profile
    "q20": (
        '<result>\n'
        ' <preferred>{{count(doc("{uri}")//profile[@income >= 50000])}}'
        '</preferred>\n'
        ' <standard>{{count(doc("{uri}")//profile'
        '[@income < 50000][@income >= 30000])}}</standard>\n'
        ' <challenge>{{count(doc("{uri}")//profile[@income < 30000])}}'
        '</challenge>\n'
        '</result>'
    ),
}

#: StandOff translations for the extended queries whose navigation is
#: purely structural (the same select-narrow rewriting as Figure 5).
EXTENDED_STANDOFF = {
    "q5": (
        'count(for $i in doc("{uri}")//site'
        '/select-narrow::closed_auctions\n'
        '      /select-narrow::closed_auction\n'
        '      where number($i/select-narrow::price/@start) >= 0\n'
        '        and $i/select-narrow::price/@end > 0\n'
        '      return $i/select-narrow::price)'
    ),
    "q13": (
        'for $i in doc("{uri}")//site/select-narrow::regions\n'
        '         /select-narrow::australia/select-narrow::item\n'
        'return <item name="{{$i/@id}}">'
        '{{count($i/select-narrow::description)}}</item>'
    ),
    "q17": (
        'for $p in doc("{uri}")//site/select-narrow::people\n'
        '         /select-narrow::person\n'
        'where empty($p/select-narrow::homepage)\n'
        'return <person id="{{$p/@id}}"/>'
    ),
}


def extended_query_text(query_id: str, uri: str, *,
                        standoff: bool = False) -> str:
    """Text of one extended-suite query against document *uri*."""
    table = EXTENDED_STANDOFF if standoff else EXTENDED_PLAIN
    try:
        template = table[query_id]
    except KeyError:
        raise ValueError(
            f"unknown extended query {query_id!r}; expected one of "
            f"{sorted(table)}") from None
    return template.format(uri=uri)
