"""XMark-derived StandOff benchmark workload (paper §4.6)."""

from repro.xmark.generator import (
    BASE_COUNTS,
    generate_xmark,
    generate_xmark_document,
)
from repro.xmark.queries import (
    EXTENDED_PLAIN,
    EXTENDED_STANDOFF,
    PLAIN,
    QUERY_IDS,
    STANDOFF,
    extended_query_text,
    query_text,
)
from repro.xmark.standoffize import (
    StandoffBundle,
    rewrite_query_standoff,
    standoffize,
)

__all__ = [
    "BASE_COUNTS",
    "generate_xmark",
    "generate_xmark_document",
    "PLAIN",
    "EXTENDED_PLAIN",
    "EXTENDED_STANDOFF",
    "extended_query_text",
    "STANDOFF",
    "QUERY_IDS",
    "query_text",
    "StandoffBundle",
    "standoffize",
    "rewrite_query_standoff",
]
