"""Deterministic vocabulary for the XMark-style generator.

Word pools modelled on the original xmlgen's Shakespeare-derived text;
kept small (generation is seeded, so variety comes from combination).
"""

from __future__ import annotations

WORDS = (
    "gold silver page hero castle king queen sword merchant harbour "
    "night day summer winter letter horse crown banner feast stone "
    "river bridge tower garden cloak dagger ship anchor market scroll "
    "lantern candle mirror ring chain goblet throne shield spear arrow "
    "falcon raven wolf lion serpent oak willow rose thorn ember ash"
).split()

FIRST_NAMES = (
    "Wouter Raoul Arjen Peter Ingrid Maarten Sanne Jeroen Anna Paul "
    "Marta Gustav Elena Bram Lotte Hendrik Carmen Nikolai Petra Stefan"
).split()

LAST_NAMES = (
    "Alink Bhoedjang Vries Boncz Keulen Grust Teubner Manegold Kersten "
    "Schmidt Waas Carey Manolescu Busse Jansen Bakker Visser Smit Meyer"
).split()

COUNTRIES = (
    "Netherlands Germany Belgium France Spain Italy Norway Sweden "
    "Denmark Austria Portugal Finland Ireland Scotland Iceland"
).split()

CITIES = (
    "Amsterdam Utrecht Rotterdam Delft Leiden Groningen Eindhoven "
    "Haarlem Nijmegen Maastricht Tilburg Arnhem Zwolle Breda Leeuwarden"
).split()

REGIONS = ("africa", "asia", "australia", "europe", "namerica", "samerica")

CATEGORY_THEMES = (
    "antiques books coins collectibles computers electronics jewellery "
    "instruments maps photography pottery stamps toys art travel"
).split()

PAYMENT_KINDS = ("Creditcard", "money order", "personal check", "cash")
SHIPPING_KINDS = ("Will ship internationally", "Buyer pays fixed shipping",
                  "See description for charges")
