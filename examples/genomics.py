"""Genome sequence annotation (the paper's §6 future-work domain).

The BLOB is a DNA sequence; annotation layers — genes, exons, repeat
regions, sequencing reads — are stand-off regions over base-pair
offsets, each layer stored as its own document.  Within one layer the
XPath-step joins apply; *across* layers the collection-global functions
(`select-wide-global`, ...) match annotations from every stored
document, the multiple-layers-over-one-BLOB design of §3.3.

Run:  python examples/genomics.py
"""

import random

from repro import Database


def make_sequence(n: int, seed: int = 13) -> str:
    rng = random.Random(seed)
    return "".join(rng.choice("ACGT") for _ in range(n))


GENES = """
<genes>
  <gene name="geneA" start="100" end="899"/>
  <gene name="geneB" start="1200" end="2399"/>
</genes>
"""

# exons of geneA and geneB; introns are the gaps between them
FEATURES = """
<features>
  <exon id="A1" start="100" end="279"/>
  <exon id="A2" start="430" end="649"/>
  <exon id="A3" start="760" end="899"/>
  <exon id="B1" start="1200" end="1499"/>
  <exon id="B2" start="1900" end="2399"/>
  <repeat family="ALU" start="300" end="420"/>
  <repeat family="LINE" start="1550" end="1830"/>
</features>
"""

READS = """
<reads>
  <read id="r1" start="150" end="249"/>
  <read id="r2" start="250" end="349"/>
  <read id="r3" start="600" end="699"/>
  <read id="r4" start="1000" end="1099"/>
  <read id="r5" start="1450" end="1549"/>
  <read id="r6" start="2300" end="2399"/>
  <read id="r7" start="660" end="750"/>
</reads>
"""


def main() -> None:
    db = Database()
    sequence = make_sequence(2500)
    db.add_blob("chr1", sequence)
    db.add_document("genes.xml", GENES)
    db.add_document("features.xml", FEATURES)
    db.add_document("reads.xml", READS)

    # Within-layer and cross-layer joins -------------------------------

    exonic = db.query(
        'select-narrow-global(doc("genes.xml")//gene)/self::exon')
    print("exons inside genes:",
          [e.get_attribute("id") for e in exonic])

    intergenic = db.query(
        'reject-wide-global(doc("genes.xml")//gene)/self::read')
    print("reads mapping outside every gene:",
          [r.get_attribute("id") for r in intergenic])

    intronic = db.query("""
        let $in_gene := select-wide-global(doc("genes.xml")//gene)
                        /self::read
        let $in_exon := select-wide-global(doc("features.xml")//exon)
                        /self::read
        return $in_gene except $in_exon
    """)
    print("reads overlapping a gene but no exon (intronic):",
          [r.get_attribute("id") for r in intronic])

    # Region predicates + BLOB access -----------------------------------

    spanning = db.query("""
        for $r in doc("reads.xml")//read
        for $e in doc("features.xml")//exon
        where standoff-overlaps($r, $e)
          and not(standoff-contains($e, $r))
        return concat($r/@id, " straddles ", $e/@id, " (",
                      region-relation($r, $e), ")")
    """)
    print("\nreads straddling an exon boundary:")
    for line in spanning:
        print(" ", line)

    (first_exon_seq,) = db.query(
        'blob-content("chr1", (doc("features.xml")//exon)[1])')
    print(f"\ngeneA exon 1 sequence ({len(first_exon_seq)} bp): "
          f"{first_exon_seq[:48]}...")

    gc = first_exon_seq.count("G") + first_exon_seq.count("C")
    print(f"GC content of exon A1: {gc / len(first_exon_seq):.1%}")


if __name__ == "__main__":
    main()
