"""NLP: overlapping linguistic annotation over a text corpus.

Natural language processing was the paper's second motivating domain:
tokenizers, parsers and named-entity recognizers annotate the *same*
text with hierarchies that overlap (a named entity can straddle a
phrase boundary; prosodic units cross syntactic ones), which inline XML
markup cannot represent.  Stand-off annotation keeps the text as the
BLOB (character offsets) and each tool's output as its own document
layer — here combined into one annotation document.

Run:  python examples/nlp_corpus.py
"""

from repro import Database

TEXT = "Wouter Alink and Peter Boncz met in Amsterdam last June ."
#       0123456789...


def offsets_of(word: str) -> tuple[int, int]:
    start = TEXT.index(word)
    return start, start + len(word) - 1


def build_annotations() -> str:
    """Three annotation layers over the BLOB, by character offset."""
    words = TEXT.split()
    token_xml = []
    cursor = 0
    for i, word in enumerate(words):
        start = TEXT.index(word, cursor)
        end = start + len(word) - 1
        cursor = end + 1
        token_xml.append(
            f'<token id="t{i}" start="{start}" end="{end}"/>')

    entities = [
        ("person", "Wouter Alink"),
        ("person", "Peter Boncz"),
        ("location", "Amsterdam"),
        ("date", "last June"),
    ]
    entity_xml = []
    for kind, surface in entities:
        start, end = offsets_of(surface)
        entity_xml.append(f'<entity type="{kind}" surface="{surface}" '
                          f'start="{start}" end="{end}"/>')

    # a (crude) chunker whose spans disagree with the entity layer:
    # the "last June" date entity straddles the vp/pp boundary — the
    # overlapping-hierarchies situation that motivates stand-off markup
    chunks = [("np", "Wouter Alink and Peter Boncz"),
              ("vp", "met in Amsterdam last"),
              ("pp", "June .")]
    chunk_xml = []
    for kind, surface in chunks:
        start, end = offsets_of(surface)
        chunk_xml.append(f'<chunk type="{kind}" start="{start}" '
                         f'end="{end}"/>')

    return (
        "<corpus>"
        f"<tokens>{''.join(token_xml)}</tokens>"
        f"<entities>{''.join(entity_xml)}</entities>"
        f"<chunks>{''.join(chunk_xml)}</chunks>"
        "</corpus>"
    )


def main() -> None:
    db = Database()
    db.add_document("corpus.xml", build_annotations())
    print(f"BLOB text: {TEXT!r}\n")

    # tokens inside each named entity (containment join)
    result = db.query("""
        for $e in doc("corpus.xml")//entity
        return <entity type="{$e/@type}"
                       tokens="{count($e/select-narrow::token)}"/>
    """)
    print("tokens per entity:")
    print(result.serialize(indent=True))

    # entities that straddle a chunk boundary: they overlap some chunk
    # (select-wide) yet are contained in none (reject-narrow) — the
    # overlapping-hierarchies case that motivates stand-off markup.
    straddling = db.query("""
        let $chunks := doc("corpus.xml")//chunk
        let $overlapping := $chunks/select-wide::entity
        let $uncontained := $chunks/reject-narrow::entity
        for $e in $overlapping intersect $uncontained
        return <straddles entity="{$e/@surface}" type="{$e/@type}"/>
    """)
    print("\nentities straddling a chunk boundary:")
    print(straddling.serialize(indent=True))

    # tokens not covered by any entity (anti-join)
    uncovered = db.query(
        'doc("corpus.xml")//entity/reject-wide::token')
    surfaces = [TEXT[int(t.get_attribute("start")):
                     int(t.get_attribute("end")) + 1]
                for t in uncovered]
    print(f"\ntokens outside all entities: {surfaces}")


if __name__ == "__main__":
    main()
