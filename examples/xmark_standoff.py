"""The paper's benchmark workload end-to-end (§4.6), at a small scale.

Generates an XMark auction document, converts it to StandOff form
(text -> BLOB, per-element regions, coarse permutation), runs the four
benchmark queries under all three evaluation strategies, and prints the
timings — a miniature of Figure 6.  For the full sweep with DNF budgets
use ``python -m repro.bench.figure6``.

Run:  python examples/xmark_standoff.py [scale]
"""

import sys
import time

from repro.xmark import (
    QUERY_IDS,
    generate_xmark_document,
    query_text,
    standoffize,
)
from repro.xquery import Database


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25

    print(f"generating XMark document at scale {scale} ...")
    source = generate_xmark_document(scale=scale)
    bundle = standoffize(source, permute=True)
    size_mb = len(bundle.document.serialize()) / 1e6
    print(f"  annotation document: {bundle.document.node_count} nodes, "
          f"{size_mb:.2f} MB serialized")
    print(f"  BLOB: {bundle.blob_size} characters\n")

    db = Database()
    db.store.add("xmark.xml", bundle.document)

    header = f"{'query':8}" + "".join(
        f"{s:>12}" for s in ("udf", "basic", "ll"))
    print(header)
    print("-" * len(header))
    for qid in QUERY_IDS:
        query = query_text(qid, "xmark.xml", standoff=True)
        cells = [f"{qid:8}"]
        reference = None
        for strategy in ("udf", "basic", "ll"):
            start = time.perf_counter()
            result = db.query(query, strategy=strategy)
            elapsed = time.perf_counter() - start
            cells.append(f"{elapsed:>11.3f}s")
            rendered = result.serialize()
            if reference is None:
                reference = rendered
            elif rendered != reference:
                raise AssertionError(
                    f"{qid}: {strategy} result differs from udf")
        print("".join(cells))
    print("\nall three strategies returned identical results.")


if __name__ == "__main__":
    main()
