"""Quickstart: the paper's multimedia example (Figure 1, §3.1).

A video's audio and video tracks are annotated independently — shot
boundaries on the video track, music detection on the audio track.  The
two annotation hierarchies overlap freely, which plain XML nesting
cannot express; stand-off regions (start/end in seconds) can.

Run:  python examples/quickstart.py
"""

from repro import Database

VIDEO_ANNOTATIONS = """
<sample>
  <video>
    <shot id="Intro" start="0" end="8"/>
    <shot id="Interview" start="8" end="64"/>
    <shot id="Outro" start="64" end="94"/>
  </video>
  <audio>
    <music artist="U2" start="0" end="31"/>
    <music artist="Bach" start="52" end="94"/>
  </audio>
</sample>
"""


def main() -> None:
    db = Database()
    db.add_document("video.xml", VIDEO_ANNOTATIONS)

    # The four StandOff joins of the paper, as XPath axis steps.
    queries = [
        ("shots during which ONLY U2 played",
         'doc("video.xml")//music[@artist="U2"]/select-narrow::shot'),
        ("shots during which U2 played at some point",
         'doc("video.xml")//music[@artist="U2"]/select-wide::shot'),
        ("shots NOT fully covered by U2 music",
         'doc("video.xml")//music[@artist="U2"]/reject-narrow::shot'),
        ("shots with no U2 music at all",
         'doc("video.xml")//music[@artist="U2"]/reject-wide::shot'),
    ]
    for title, query in queries:
        result = db.query(query)
        ids = ", ".join(node.get_attribute("id") for node in result)
        print(f"{title}:\n  {query}\n  -> {ids}\n")

    # StandOff steps compose with ordinary XQuery.
    report = db.query("""
        for $m in doc("video.xml")//music
        return <music artist="{$m/@artist}"
                      shots="{count($m/select-wide::shot)}"/>
    """)
    print("per-artist shot coverage:")
    print(report.serialize(indent=True))


if __name__ == "__main__":
    main()
