"""Digital forensics: querying tool output over a disk image (XIRAF).

The paper's home turf (the first two authors built the XIRAF forensic
system at the NFI): the BLOB is the raw image of a confiscated hard
drive; multiple analysis tools annotate byte ranges independently —

* a filesystem recoverer emits carved files.  Files reconstructed from
  scattered blocks are **non-contiguous areas**: several ``<region>``
  elements per file (the element representation of §2);
* a keyword scanner emits hit positions;
* a credit-card-number detector emits candidate matches.

StandOff joins then answer the investigator's questions: which hits
fall inside recovered files?  Which hits lie in unallocated space
(inside no file)?  Which carved files contain card numbers?

Run:  python examples/forensics.py
"""

from repro import Database

# Byte offsets into the (imaginary) 4 GB disk image BLOB.
DISK_ANNOTATIONS = """
<image device="HDD-2006-031">
  <filesystem>
    <file id="f-report.doc" type="doc">
      <region><start>4096</start><end>16383</end></region>
    </file>
    <file id="f-ledger.xls" type="xls">
      <region><start>20480</start><end>24575</end></region>
      <region><start>61440</start><end>65535</end></region>
    </file>
    <file id="f-photo.jpg" type="jpg">
      <region><start>32768</start><end>49151</end></region>
    </file>
  </filesystem>
  <keywords>
    <hit term="offshore"><region><start>8000</start><end>8007</end></region></hit>
    <hit term="invoice"><region><start>22000</start><end>22006</end></region></hit>
    <hit term="transfer"><region><start>55000</start><end>55007</end></region></hit>
    <hit term="account"><region><start>62000</start><end>62006</end></region></hit>
  </keywords>
  <cardscan>
    <card digits="4111111111111111">
      <region><start>23900</start><end>23915</end></region>
    </card>
    <card digits="5500005555555559">
      <region><start>58000</start><end>58015</end></region>
    </card>
  </cardscan>
</image>
"""

PROLOG = 'declare option standoff-region "region"\n'


def main() -> None:
    db = Database()
    db.add_document("disk.xml", DISK_ANNOTATIONS)

    def show(title, query, label):
        result = db.query(PROLOG + query)
        values = ", ".join(node.get_attribute(label) or "?"
                           for node in result)
        print(f"{title}\n  -> {values or '(none)'}\n")

    show("keyword hits inside recovered files",
         'doc("disk.xml")//file/select-narrow::hit', "term")

    show("keyword hits in unallocated space (inside no file)",
         'doc("disk.xml")//file/reject-narrow::hit', "term")

    show("carved files containing a card number",
         'doc("disk.xml")//card/select-wide::file', "id")

    show("files containing the term 'account'",
         'doc("disk.xml")//hit[@term="account"]/select-wide::file', "id")

    # Non-contiguous semantics at work: the ledger file consists of two
    # scattered block runs; a hit in its second run still belongs to it,
    # while positions between the runs do not.
    result = db.query(PROLOG + """
        for $f in doc("disk.xml")//file
        return <file id="{$f/@id}"
                     fragments="{count($f/region)}"
                     hits="{count($f/select-narrow::hit)}"
                     cards="{count($f/select-wide::card)}"/>
    """)
    print("per-file evidence summary:")
    print(result.serialize(indent=True))


if __name__ == "__main__":
    main()
