"""§3.1 table: the four StandOff joins — correctness micro-bench plus
core join throughput on synthetic overlapping annotation sets.
"""

import pytest

from conftest import synthetic_iter_context, synthetic_regions
from repro.core import StandoffOp, basic_join, ll_join
from repro.xquery import Database

FIGURE1 = """
<sample>
  <video>
    <shot id="Intro" start="0" end="8"/>
    <shot id="Interview" start="8" end="64"/>
    <shot id="Outro" start="64" end="94"/>
  </video>
  <audio>
    <music artist="U2" start="0" end="31"/>
    <music artist="Bach" start="52" end="94"/>
  </audio>
</sample>
"""

EXPECTED = {
    "select-narrow": ["Intro"],
    "select-wide": ["Intro", "Interview"],
    "reject-narrow": ["Interview", "Outro"],
    "reject-wide": ["Outro"],
}


@pytest.fixture(scope="module")
def figure1_db():
    db = Database()
    db.add_document("video.xml", FIGURE1)
    return db


@pytest.mark.parametrize("op", sorted(EXPECTED))
def test_section31_table_query(benchmark, figure1_db, op):
    query = f'doc("video.xml")//music[@artist="U2"]/{op}::shot'
    result = benchmark(lambda: figure1_db.query(query))
    assert [n.get_attribute("id") for n in result] == EXPECTED[op]


@pytest.mark.parametrize("op", list(StandoffOp))
def test_core_join_throughput_single(benchmark, op):
    """Basic merge join over 20k context x 20k candidate regions."""
    index = synthetic_regions(20_000, seed=3)
    context = synthetic_regions(20_000, seed=4)
    result = benchmark(lambda: basic_join(op, context.table, index.table))
    assert isinstance(result, list)


@pytest.mark.parametrize("op", [StandoffOp.SELECT_NARROW,
                                StandoffOp.SELECT_WIDE])
def test_core_join_throughput_lifted(benchmark, op):
    """Loop-lifted join: 500 iterations x 20 context regions each."""
    index = synthetic_regions(20_000, seed=5)
    context = synthetic_iter_context(500, 20, span=1_000_000, max_len=500)
    result = benchmark(lambda: ll_join(op, context, index.table))
    assert isinstance(result, dict)
