"""Figure 6, Q1 panel: StandOff XMark Q1 under the three strategies.

Paper shape: the loop-lifted StandOff MergeJoin wins; the UDF variant is
one to two orders of magnitude slower.
Full-size sweep with DNF budgets: `python -m repro.bench.figure6`.
"""

import pytest

from repro.xmark import query_text

QUERY_ID = "q1"


@pytest.mark.parametrize("strategy", ["udf", "basic", "ll"])
def test_q1_strategy(benchmark, xmark_db, strategy):
    query = query_text(QUERY_ID, "xmark.xml", standoff=True)
    result = benchmark(lambda: xmark_db.query(query, strategy=strategy))
    assert len(result) >= 1
