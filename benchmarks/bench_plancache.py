"""Cross-query caches: compiled plans and fragment shreds, warm vs cold.

The per-query constant factor the PR 7 caches eliminate:

* **Plan cache** — a parse-heavy batch (prolog function declarations,
  nested FLWOR, chained predicates) over a tiny document, so
  compilation dominates evaluation.  Warm (LRU enabled) vs cold
  (``plan_cache_size=0``, every query re-parses).
* **Shred cache** — ``shred_fragment`` on content-equal constructed
  fragments: a content-hash hit pays renumber + fingerprint + a
  column rebind, a cold call pays renumber + the full column build.

The trajectory harness (``run_all.py``, scenario family
``plancache.*``) carries these as committed trajectory points; this
file keeps the pytest-benchmark view.
"""

import pytest

from repro.xmldb.shred import SHRED_CACHE, shred_fragment
from repro.xquery import Database

XML = "<r><a i='1'><b>t</b></a><a i='2'><c/></a></r>"
PROLOG = ("declare function local:pick($s, $k) "
          "{ for $x in $s where $x/@i = $k return $x };\n")
QUERIES = tuple(
    PROLOG
    + f'for $a in local:pick(doc("t.xml")/r/child::a, "{k % 2 + 1}") '
      f"return count($a/descendant-or-self::node()"
      f"[position() mod {d} = 1])"
    for k in range(8) for d in (2, 3)
) + tuple(
    f'doc("t.xml")/r/child::a[@i = "{k % 2 + 1}"]'
    f"/child::*[1]/ancestor-or-self::node()[last()]"
    for k in range(8)
)


def _database(plan_cache_size):
    db = Database(plan_cache_size=plan_cache_size)
    db.add_document("t.xml", XML)
    return db


def _batch(db):
    for query in QUERIES:
        db.query(query, strategy="basic")


@pytest.mark.parametrize("size", [256, 0], ids=["warm", "cold"])
def test_plan_cache_batch(benchmark, size):
    db = _database(size)
    _batch(db)    # prime: the warm arm's one-time parse round
    benchmark(lambda: _batch(db))
    stats = db.plan_cache.stats()
    if size:
        assert stats["hits"] > 0
    else:
        assert stats["entries"] == 0


@pytest.fixture(scope="module")
def fragment_roots():
    """Distinct content-equal constructed roots: every cache hit goes
    through the fingerprint + rebind path, never the same-root
    shortcut."""
    db = Database()
    ctor = "<w>" + '<a i="1"><b>text</b></a>' * 2_000 + "</w>"
    return [list(db.query(ctor))[0] for _ in range(4)]


@pytest.fixture
def shred_cache_budget():
    saved = (SHRED_CACHE.max_entries, SHRED_CACHE.max_bytes)
    SHRED_CACHE.clear()
    yield SHRED_CACHE
    SHRED_CACHE.configure(max_entries=saved[0], max_bytes=saved[1])
    SHRED_CACHE.clear()


@pytest.mark.parametrize("entries", [512, 0], ids=["hit", "rebuild"])
def test_shred_fragment(benchmark, fragment_roots, shred_cache_budget,
                        entries):
    shred_cache_budget.configure(max_entries=entries)
    if entries:
        shred_fragment(fragment_roots[0])    # prime the one miss
    results = benchmark(
        lambda: [shred_fragment(root) for root in fragment_roots])
    assert len(results) == len(fragment_roots)
    for root, shredded in zip(fragment_roots, results):
        assert shredded.node_by_pre(0) is root
