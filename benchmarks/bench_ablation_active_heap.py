"""§5 ablation: list- vs heap-based active context items.

The paper notes its active "stack" is really a list with mid-deletion
and suggests a heap "in data-distributions that cause it to grow long".
We benchmark both structures under two distributions:

* ``shallow`` — short regions, the active list stays tiny (the XMark
  case; the list should win or tie);
* ``deep`` — many long, heavily overlapping regions across many
  iterations, growing the active set (where the heap's O(log n)
  maintenance can pay off).
"""

import random

import pytest

from repro.core import StandoffOp, ll_join
from repro.core.mergejoin_ll import IterContext
from repro.core.region_index import RegionTable


def _distribution(kind: str, n_iters: int = 400, per_iter: int = 25,
                  n_cand: int = 30_000, seed: int = 9):
    rng = random.Random(seed)
    span = 1_000_000
    rows = []
    node = 0
    for it in range(n_iters):
        for _ in range(per_iter):
            start = rng.randrange(span)
            if kind == "deep":
                length = rng.randrange(span // 3)   # long, overlapping
            else:
                length = rng.randrange(200)          # short
            rows.append((it, node, start, min(span, start + length)))
            node += 1
    context = IterContext.from_rows(rows)
    cand_rows = []
    for i in range(n_cand):
        start = rng.randrange(span)
        cand_rows.append((start, start + rng.randrange(150), 10_000_000 + i))
    return context, RegionTable.from_rows(cand_rows)


@pytest.mark.parametrize("structure", ["list", "heap"])
@pytest.mark.parametrize("kind", ["shallow", "deep"])
def test_active_structure(benchmark, structure, kind):
    context, candidates = _distribution(kind)
    result = benchmark(lambda: ll_join(
        StandoffOp.SELECT_NARROW, context, candidates,
        active_structure=structure))
    assert isinstance(result, dict)


def test_structures_agree():
    for kind in ("shallow", "deep"):
        context, candidates = _distribution(kind, n_iters=50,
                                            per_iter=10, n_cand=2000)
        a = ll_join(StandoffOp.SELECT_NARROW, context, candidates,
                    active_structure="list")
        b = ll_join(StandoffOp.SELECT_NARROW, context, candidates,
                    active_structure="heap")
        assert a == b
