"""Sibling-axis staircase kernels: batched columnar vs the DOM walk.

The PR 5 companion of ``bench_staircase_axes.py``: one iteration per
XMark ``bidder`` element, bidders as candidates (the bidders inside one
auction are each other's siblings), running the three serving paths for
``following-sibling``/``preceding-sibling`` against each other —

* the per-node DOM walk (``repro.xquery.axes``), which served the
  sibling axes before the shredded kernels existed and remains the
  ``basic``-strategy oracle;
* the dict-shaped per-set reference joins (``staircase/staircase.py``
  through ``loop_lifted.ll_axis_join``);
* the batched columnar kernels (``staircase/kernels_vec.py``).

The trajectory harness (``run_all.py``, scenario family
``staircase_siblings.*``) sweeps document scales; this file keeps the
pytest-benchmark view at one scale.
"""

import pytest

from repro.staircase.kernels_vec import vec_staircase_join
from repro.staircase.loop_lifted import ll_axis_join
from repro.xmldb import Element
from repro.xquery.axes import AXIS_FUNCTIONS

AXES = ("following-sibling", "preceding-sibling")


@pytest.fixture(scope="module")
def inputs(xmark_db):
    stored = xmark_db.store.get("xmark.xml")
    shredded = stored.shredded
    bidders = shredded.elements_named("bidder")
    context = [(it, int(pre))
               for it, pre in enumerate(bidders.tolist())]
    return shredded, context, bidders


@pytest.mark.parametrize("axis", AXES)
def test_sibling_dom_walk(benchmark, inputs, axis):
    shredded, context, _bidders = inputs
    axis_fn = AXIS_FUNCTIONS[axis]

    def walk():
        out = {}
        for it, pre in context:
            node = shredded.node_by_pre(pre)
            matched = [s.pre for s in axis_fn(node)
                       if isinstance(s, Element) and s.tag == "bidder"]
            if matched:
                out[it] = matched
        return out

    assert isinstance(benchmark(walk), dict)


@pytest.mark.parametrize("axis", AXES)
def test_sibling_ll_dict(benchmark, inputs, axis):
    shredded, context, bidders = inputs
    result = benchmark(
        lambda: ll_axis_join(shredded, axis, context, bidders))
    assert isinstance(result, dict)


@pytest.mark.parametrize("axis", AXES)
def test_sibling_vectorized(benchmark, inputs, axis):
    shredded, context, bidders = inputs
    result = benchmark(
        lambda: vec_staircase_join(axis, shredded, context, bidders))
    assert result is not None


def test_kernels_agree(inputs):
    shredded, context, bidders = inputs
    for axis in AXES:
        vec = vec_staircase_join(axis, shredded, context, bidders)
        assert vec.to_dict() == ll_axis_join(shredded, axis, context,
                                             bidders), axis
