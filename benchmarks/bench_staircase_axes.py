"""Staircase axis-step kernels: batched columnar vs the dict path.

The §4.6 companion of ``bench_staircase_vs_standoff.py``: the same
StandOff XMark workload (one iteration per ``open_auction``, bidder
candidates), but running the *Staircase* side's kernels against each
other — the bisect/insort dict-shaped loop-lifted reference
(``staircase/loop_lifted.py``) vs the batched columnar kernels
(``staircase/kernels_vec.py``) — across the axis family (descendant,
ancestor, child, following, preceding).

The trajectory harness (``run_all.py``, scenario family
``staircase_axes.*``) sweeps document scales; this file keeps the
pytest-benchmark view at one scale.
"""

import pytest

from repro.staircase.kernels_vec import vec_staircase_join
from repro.staircase.loop_lifted import ll_axis_join

AXES = ("descendant", "ancestor", "child", "following", "preceding")


@pytest.fixture(scope="module")
def inputs(xmark_db):
    stored = xmark_db.store.get("xmark.xml")
    shredded = stored.shredded
    auction_pres = shredded.elements_named("open_auction")
    context = [(it, int(pre))
               for it, pre in enumerate(auction_pres.tolist())]
    candidates = shredded.elements_named("bidder")
    return shredded, context, candidates


@pytest.mark.parametrize("axis", AXES)
def test_axis_ll_dict(benchmark, inputs, axis):
    shredded, context, candidates = inputs
    result = benchmark(
        lambda: ll_axis_join(shredded, axis, context, candidates))
    assert isinstance(result, dict)


@pytest.mark.parametrize("axis", AXES)
def test_axis_vectorized(benchmark, inputs, axis):
    shredded, context, candidates = inputs
    result = benchmark(
        lambda: vec_staircase_join(axis, shredded, context, candidates))
    assert result is not None


def test_kernels_agree(inputs):
    shredded, context, candidates = inputs
    for axis in AXES:
        vec = vec_staircase_join(axis, shredded, context, candidates)
        assert vec.to_dict() == ll_axis_join(shredded, axis, context,
                                             candidates), axis
