"""§3.3 / §4.3 ablation: selection pushdown into the StandOff step.

A name test can either be pushed into the join as a candidate sequence
(index intersection on node id, preserving start order) or applied
afterwards to the join's full result.  Pushdown should win whenever the
name test is selective; the paper argues StandOff steps *as XPath steps*
let the optimizer make exactly this choice (unlike the builtin-function
handling which forces pushdown).
"""

import pytest

from conftest import synthetic_regions
from repro.core import StandoffOp, basic_join
from repro.core.region_index import RegionIndex
from repro.xmark import query_text


@pytest.fixture(scope="module")
def big_index():
    return synthetic_regions(60_000, seed=21)


@pytest.fixture(scope="module")
def context_table(big_index):
    return synthetic_regions(500, span=1_000_000, max_len=2_000,
                             seed=22).table


def _selective_ids(index: RegionIndex, fraction: float):
    ids = index.annotated_ids()
    step = max(1, int(1 / fraction))
    return ids[::step]


@pytest.mark.parametrize("selectivity", [0.01, 0.1, 0.5])
def test_with_pushdown(benchmark, big_index, context_table, selectivity):
    wanted = _selective_ids(big_index, selectivity)
    candidates = big_index.candidates(wanted)
    result = benchmark(lambda: basic_join(
        StandoffOp.SELECT_WIDE, context_table, candidates))
    assert isinstance(result, list)


@pytest.mark.parametrize("selectivity", [0.01, 0.1, 0.5])
def test_post_filter(benchmark, big_index, context_table, selectivity):
    wanted = set(_selective_ids(big_index, selectivity).tolist())

    def run():
        full = basic_join(StandoffOp.SELECT_WIDE, context_table,
                          big_index.table)
        return [nid for nid in full if nid in wanted]

    result = benchmark(run)
    assert isinstance(result, list)


def test_pushdown_and_postfilter_agree(big_index, context_table):
    wanted = _selective_ids(big_index, 0.1)
    pushed = basic_join(StandoffOp.SELECT_WIDE, context_table,
                        big_index.candidates(wanted))
    wanted_set = set(wanted.tolist())
    full = basic_join(StandoffOp.SELECT_WIDE, context_table,
                      big_index.table)
    assert pushed == [nid for nid in full if nid in wanted_set]
