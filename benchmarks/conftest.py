"""Shared fixtures for the benchmark suite.

Scale notes: the paper benchmarks 11 MB-1100 MB documents on a C engine;
the pytest-benchmark suite uses one fixed small scale per workload so a
full ``pytest benchmarks/ --benchmark-only`` run stays in minutes.  The
full sweep with DNF handling (the actual Figure 6 series) lives in
``python -m repro.bench.figure6``.
"""

import os
import random

import pytest

from repro.bench.figure6 import build_database
from repro.core import RegionIndex, RegionTable
from repro.core.mergejoin_ll import IterContext

#: XMark scale for the per-query strategy benchmarks.  Operators can
#: shrink the ``pytest benchmarks/`` workloads with e.g.
#: ``REPRO_BENCH_SCALE=0.1`` (``run_all.py`` has its own smoke sizes).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))


@pytest.fixture(scope="session")
def xmark_db():
    """StandOff XMark database at the benchmark scale."""
    db, label = build_database(BENCH_SCALE)
    return db


@pytest.fixture(scope="session")
def xmark_db_tiny():
    """A very small instance for the quadratic (no-candidate) variants."""
    db, label = build_database(0.05)
    return db


def synthetic_regions(n: int, *, span: int = 1_000_000, max_len: int = 500,
                      seed: int = 1) -> RegionIndex:
    """A region index of n random (overlapping) annotations."""
    rng = random.Random(seed)
    entries = []
    for node_id in range(n):
        start = rng.randrange(span)
        entries.append((node_id, start, start + rng.randrange(max_len)))
    return RegionIndex.build(entries)


def synthetic_iter_context(n_iters: int, per_iter: int, *, span: int,
                           max_len: int, seed: int = 2) -> IterContext:
    rng = random.Random(seed)
    rows = []
    node_id = 10_000_000
    for it in range(n_iters):
        for _ in range(per_iter):
            start = rng.randrange(span)
            rows.append((it, node_id, start, start + rng.randrange(max_len)))
            node_id += 1
    return IterContext.from_rows(rows)
