"""Region index micro-benchmarks (§4.3): build, fetch, intersection."""

import pytest

from conftest import synthetic_regions
from repro.core.region_index import RegionIndex


@pytest.fixture(scope="module")
def entries():
    index = synthetic_regions(100_000, seed=31)
    return [(int(i), int(s), int(e))
            for s, e, i in index.table.iter_rows()]


def test_build_index(benchmark, entries):
    index = benchmark(lambda: RegionIndex.build(entries))
    assert len(index) == len(entries)


def test_candidate_intersection(benchmark, entries):
    index = RegionIndex.build(entries)
    wanted = index.annotated_ids()[::10]
    result = benchmark(lambda: index.candidates(wanted))
    assert len(result) == len(wanted)


def test_fetch_context(benchmark, entries):
    index = RegionIndex.build(entries)
    context_ids = index.annotated_ids()[:500].tolist()
    result = benchmark(lambda: index.fetch(context_ids))
    assert len(result) == 500
