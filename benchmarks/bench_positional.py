"""Positional predicates: vectorized CSR filter vs the per-node walk.

The PR 7 companion of ``bench_staircase_siblings.py``: anchors are
XMark ``open_auction`` (forward axes) or ``bidder`` (reverse axes)
elements, and the final step carries a positional predicate —
``[position() mod 2 = 1]``, ``[position() < 5]``, ``[1]``,
``[last()]``-style.  Three serving paths race:

* the per-node DOM walk — axis enumeration plus per-candidate
  predicate evaluation through the iterative evaluator (the
  ``basic``-strategy oracle and the pre-PR7 ``ll`` fallback);
* one staircase kernel join per anchor batch followed by the
  vectorized position/length mask chain
  (``repro.xquery.bulk._apply_positional_chain``);
* the end-to-end ``ll`` query with the columnar positional path
  toggled off vs on (``repro.xquery.bulk.POSITIONAL_KERNELS``) —
  the same contrast diluted by the shared anchor step and decode.

The trajectory harness (``run_all.py``, scenario family
``positional.*``) sweeps document scales; this file keeps the
pytest-benchmark view at one scale.
"""

import pytest

from repro.staircase.kernels_vec import staircase_join
from repro.xquery import bulk
from repro.xquery.axes import STAIRCASE_AXES
from repro.xquery.context import DynamicContext
from repro.xquery.parser import parse

CASES = {
    "child_mod": ("open_auction",
                  "child::bidder[position() mod 2 = 1]"),
    "descendant_window": ("open_auction",
                          "descendant::*[position() < 5]"),
    "ancestor_first": ("bidder", "ancestor::*[1]"),
    "preceding_sibling_last": ("bidder",
                               "preceding-sibling::*[last()]"),
}


@pytest.fixture(scope="module")
def inputs(xmark_db):
    stored = xmark_db.store.get("xmark.xml")
    shredded = stored.shredded
    scope = DynamicContext(xmark_db.store)
    prepared = {}
    for name, (anchor_tag, step_text) in CASES.items():
        step = parse(f'doc("x.xml")/r/{step_text}').body.steps[-1]
        axis, or_self = STAIRCASE_AXES[step.axis]
        maskers = bulk.compile_positional_predicates(step.predicates)
        assert maskers is not None, step_text
        rows = [(i, int(pre)) for i, pre in enumerate(
            shredded.elements_named(anchor_tag).tolist())]
        candidates = bulk._staircase_candidates(shredded, step.test)
        prepared[name] = (step, axis, or_self, maskers,
                          step.axis in bulk.REVERSE_AXES, rows,
                          candidates)
    return xmark_db, shredded, scope, prepared


@pytest.mark.parametrize("name", list(CASES))
def test_positional_dom_walk(benchmark, inputs, name):
    _db, shredded, scope, prepared = inputs
    step, _axis, _or_self, _maskers, _rev, rows, _cands = prepared[name]

    def walk():
        out = {}
        for i, pre in rows:
            nodes = bulk._dom_positional_anchor(
                shredded.node_by_pre(pre), step, scope)
            if nodes:
                out[i] = nodes
        return out

    assert isinstance(benchmark(walk), dict)


@pytest.mark.parametrize("name", list(CASES))
def test_positional_vectorized(benchmark, inputs, name):
    _db, shredded, _scope, prepared = inputs
    _step, axis, or_self, maskers, reverse, rows, cands = prepared[name]

    def vectorized():
        result = staircase_join(axis, shredded, rows, cands,
                                or_self=or_self, kernel="vectorized")
        return bulk._apply_positional_chain(
            result.offsets, result.values, maskers, reverse)

    offsets, _values = benchmark(vectorized)
    assert len(offsets) == len(rows) + 1


@pytest.mark.parametrize("flag", [False, True],
                         ids=["dom-walk", "vectorized"])
def test_positional_query_end_to_end(benchmark, inputs, flag):
    db, _shredded, _scope, _prepared = inputs
    query = ('doc("xmark.xml")//open_auction'
             '/child::bidder[position() mod 2 = 1]')

    def run():
        bulk.POSITIONAL_KERNELS = flag
        try:
            return db.query(query, strategy="ll")
        finally:
            bulk.POSITIONAL_KERNELS = True

    assert len(benchmark(run)) > 0


def test_serving_paths_agree(inputs):
    _db, shredded, scope, prepared = inputs
    for name, (step, axis, or_self, maskers, reverse, rows,
               cands) in prepared.items():
        result = staircase_join(axis, shredded, rows, cands,
                                or_self=or_self, kernel="vectorized")
        offsets, values = bulk._apply_positional_chain(
            result.offsets, result.values, maskers, reverse)
        bounds, vals = offsets.tolist(), values.tolist()
        got = {i: vals[bounds[i]:bounds[i + 1]]
               for i in range(len(rows)) if bounds[i + 1] > bounds[i]}
        ref = {}
        for i, pre in rows:
            nodes = bulk._dom_positional_anchor(
                shredded.node_by_pre(pre), step, scope)
            if nodes:
                ref[i] = [node.pre for node in nodes]
        assert got == ref, name
