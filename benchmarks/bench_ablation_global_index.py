"""§3.3 (ii) ablation: per-document region indexes vs one global index.

The paper chooses XPath-step (per-fragment) semantics partly because a
collection-global index "may lead to the index containing many data
items that are not needed if a small set of documents is queried" and
makes updates conflict across documents.  We measure both costs:

* **query**: a StandOff join whose context touches ONE document, run
  against that document's own index vs against the global index of an
  N-document collection (the global scan walks past other documents'
  regions);
* **maintenance**: adding one document invalidates only its own index
  in the per-document design, but forces a full global rebuild.
"""

import random

import pytest

from repro.core import RegionIndex, StandoffOp, basic_join
from repro.core.global_index import GlobalRegionIndex, global_standoff_join

N_DOCS = 20
REGIONS_PER_DOC = 5_000
SPAN = 1_000_000


def _collection(seed: int = 5):
    rng = random.Random(seed)
    per_fragment = {}
    for frag in range(1, N_DOCS + 1):
        entries = []
        for node_id in range(REGIONS_PER_DOC):
            start = rng.randrange(SPAN)
            entries.append((node_id, start, start + rng.randrange(400)))
        per_fragment[frag] = RegionIndex.build(entries)
    return per_fragment


@pytest.fixture(scope="module")
def collection():
    return _collection()


@pytest.fixture(scope="module")
def global_index(collection):
    return GlobalRegionIndex(collection)


@pytest.fixture(scope="module")
def context_rows(collection):
    index = collection[1]
    ids = index.annotated_ids()[:200]
    return [(0, 1, int(node_id)) for node_id in ids]


def test_query_per_document_index(benchmark, collection, context_rows):
    index = collection[1]
    context = index.fetch([node_id for _it, _frag, node_id
                           in context_rows])

    result = benchmark(lambda: basic_join(
        StandoffOp.SELECT_WIDE, context, index.table))
    assert result


def test_query_global_index(benchmark, collection, global_index,
                            context_rows):
    result = benchmark(lambda: global_standoff_join(
        StandoffOp.SELECT_WIDE, context_rows, global_index, collection))
    assert result[0]


def test_maintenance_per_document(benchmark, collection):
    """Adding a document: per-document design rebuilds one index."""
    rng = random.Random(99)
    entries = [(i, rng.randrange(SPAN), rng.randrange(SPAN, SPAN + 400))
               for i in range(REGIONS_PER_DOC)]

    result = benchmark(lambda: RegionIndex.build(entries))
    assert len(result) == REGIONS_PER_DOC


def test_maintenance_global(benchmark, collection):
    """Adding a document: global design rebuilds the whole collection."""
    result = benchmark(lambda: GlobalRegionIndex(collection))
    assert result.fragment_count() == N_DOCS


def test_results_agree_within_fragment(collection, global_index,
                                       context_rows):
    """Global join restricted to fragment 1 == the per-document join."""
    index = collection[1]
    context = index.fetch([node_id for _it, _frag, node_id
                           in context_rows])
    local = basic_join(StandoffOp.SELECT_WIDE, context, index.table)
    global_result = global_standoff_join(
        StandoffOp.SELECT_WIDE, context_rows, global_index, collection)
    in_frag1 = [node for frag, node in global_result[0] if frag == 1]
    assert in_frag1 == local
