#!/usr/bin/env python
"""Unified benchmark runner: every ``bench_*.py`` scenario, one JSON.

Executes the workload behind each benchmark file in this directory with
wall-clock timing (median of N repeats, DNF budget via SIGALRM) and
emits a machine-readable trajectory file::

    PYTHONPATH=src python benchmarks/run_all.py             # full run
    PYTHONPATH=src python benchmarks/run_all.py --smoke     # CI-sized
    PYTHONPATH=src python benchmarks/run_all.py --only staircase

Each scenario record carries ``scenario`` (dotted name), ``file`` (the
bench_*.py it mirrors), ``kernel`` (``ll-list`` | ``ll-heap`` |
``ll-dict`` | ``vectorized`` | ``auto`` | ``null`` for non-join
scenarios), ``n`` (workload size), ``seconds`` (median wall time;
``null`` + ``dnf: true`` on budget overrun) and ``repeats``.  The
staircase-vs-standoff, staircase-axis, sibling-axis, sharding and
positional scenarios sweep scales; the summary block records the
vectorized-kernel, fan-out, positional-predicate and plan-cache
speedups at the largest size — the perf-trajectory headlines.  The
``sharding.*`` family measures the worker-pool fan-out
(:mod:`repro.exec.sharding`) against the deterministic serial
reference, per join family (``.serial`` vs ``.workers4`` scenario
variants; each record carries the ``workers`` setting).  The
``positional.*`` family pits the vectorized positional-predicate
filter against the per-node DOM walk; ``plancache.*`` measures the
cross-query compiled-plan and fragment-shred caches warm vs cold.
The ``coldstart.*`` family times serving a saved store (zero-copy
``np.memmap`` open) against rebuilding the shred from XML text, and
``procpool.*`` pits the process-pool executor against the thread pool
and the serial reference over store-backed documents
(``.serial``/``.threads4``/``.procs4`` variants).  The ``serving.*``
family drives a mixed point-lookup/scan workload through the
concurrent query server and records batch time plus p50/p99
per-query latency and throughput (see ``benchmarks/README.md``).

Output defaults to ``BENCH_PR9.json`` (``BENCH_SMOKE.json`` with
``--smoke``) at the repository root.

**Trajectory comparison**: a full run whose label is ``PR<k>`` is
automatically diffed against the committed ``BENCH_PR<k-1>.json``
(override with ``--baseline PATH``, disable with ``--baseline none``).
Missing ``scenario``/``kernel`` keys and *new* DNFs fail the run
(exit 1); per-key speedup ratios are reported.  Full runs additionally
enforce the *required scenario families*
(:data:`REQUIRED_SCENARIO_PREFIXES`, override with ``--require``): a
trajectory file without any key in a required family — e.g. the
``staircase_axes.*`` scenarios — fails even when the baseline predates
the family.  ``--compare PATH`` skips running entirely and just
applies both gates to an existing trajectory file — the CI guard for
committed trajectory points::

    python benchmarks/run_all.py --compare BENCH_PR3.json \
        --baseline BENCH_PR2.json
"""

from __future__ import annotations

import argparse
import functools
import json
import math
import platform
import re
import sys
import time
from pathlib import Path

_HERE = Path(__file__).resolve().parent
_ROOT = _HERE.parent
for path in (str(_ROOT / "src"), str(_HERE)):
    if path not in sys.path:
        sys.path.insert(0, path)

import numpy as np                                        # noqa: E402

from conftest import synthetic_iter_context, synthetic_regions  # noqa: E402
from repro.bench.figure6 import build_database            # noqa: E402
from repro.bench.harness import median_runtime            # noqa: E402
from repro.core import (                                  # noqa: E402
    RegionIndex,
    RegionTable,
    StandoffOp,
    basic_join,
    kernel_join,
    ll_join,
    vec_join,
)
from repro.core.global_index import (                     # noqa: E402
    GlobalRegionIndex,
    global_standoff_join,
)
from repro.core.mergejoin_ll import IterContext           # noqa: E402
from repro.staircase.loop_lifted import ll_descendant_join  # noqa: E402
from repro.xmark import query_text                        # noqa: E402
from repro.xquery import Database                         # noqa: E402

#: Kernel labels used in the JSON records.
LL_LIST = "ll-list"
LL_HEAP = "ll-heap"
LL_DICT = "ll-dict"        # dict-shaped staircase reference path
DOM_WALK = "dom-walk"      # per-node DOM walk (the basic-strategy step)
VECTORIZED = "vectorized"
AUTO = "auto"

#: Scenario families a full trajectory file must contain — the gate
#: that keeps newly-introduced scenario groups from silently dropping
#: out of later runs (``--require`` overrides; ``--require none``
#: disables).
REQUIRED_SCENARIO_PREFIXES = ("staircase.", "staircase_axes.",
                              "sharding.", "staircase_siblings.",
                              "positional.", "plancache.",
                              "coldstart.", "procpool.", "serving.")


class Runner:
    """Collects scenario records with shared timing settings."""

    def __init__(self, *, smoke: bool, only: str | None,
                 repeats: int, budget: float):
        self.smoke = smoke
        self.only = only
        self.repeats = repeats
        self.budget = budget
        self.records: list[dict] = []

    def wanted(self, scenario: str) -> bool:
        return self.only is None or self.only in scenario

    def any_wanted(self, *scenarios: str) -> bool:
        """True when at least one scenario name passes the --only filter
        (lets scenario functions skip expensive setup entirely)."""
        return any(self.wanted(name) for name in scenarios)

    def measure(self, scenario: str, file: str, kernel: str | None,
                n: int, fn, label: str | None = None, **extra) -> float:
        """Time one scenario, record it, and return the median seconds
        (``inf`` when the budget was exceeded or the scenario was
        filtered out)."""
        if not self.wanted(scenario):
            return math.inf
        seconds = median_runtime(fn, self.budget, self.repeats)
        dnf = math.isinf(seconds)
        self.records.append({
            "scenario": scenario,
            "file": file,
            "kernel": kernel,
            "n": int(n),
            "seconds": None if dnf else round(seconds, 6),
            "repeats": self.repeats,
            "dnf": dnf,
            **extra,
        })
        shown = "DNF" if dnf else f"{seconds * 1e3:10.3f}ms"
        print(f"  {label or scenario:58s} {shown}", flush=True)
        return seconds


def _join_kernels(op, context, candidates):
    """(kernel label, callable) for one loop-lifted join workload."""
    return [
        (LL_LIST, lambda: ll_join(op, context, candidates,
                                  active_structure="list")),
        (LL_HEAP, lambda: ll_join(op, context, candidates,
                                  active_structure="heap")),
        (VECTORIZED, lambda: vec_join(op, context, candidates)),
        (AUTO, lambda: kernel_join(op, context, candidates,
                                   kernel="auto")),
    ]


# ----------------------------------------------------------------------
# scenarios (one function per bench_*.py file)
# ----------------------------------------------------------------------

def scenario_region_index(r: Runner) -> None:
    file = "bench_region_index.py"
    if not r.any_wanted("region_index.build", "region_index.intersection",
                        "region_index.fetch"):
        return
    n = 5_000 if r.smoke else 100_000
    index = synthetic_regions(n, seed=31)
    entries = [(int(i), int(s), int(e))
               for s, e, i in index.table.iter_rows()]
    r.measure("region_index.build", file, None, n,
              lambda: RegionIndex.build(entries))
    wanted = index.annotated_ids()[::10]
    r.measure("region_index.intersection", file, None, n,
              lambda: index.candidates(wanted))
    context_ids = index.annotated_ids()[:500].tolist()
    r.measure("region_index.fetch", file, None, n,
              lambda: index.fetch(context_ids))


def scenario_table_joins(r: Runner) -> None:
    file = "bench_table_standoff_joins.py"
    if not r.any_wanted(
            *(f"table_joins.basic.{op.value}" for op in StandoffOp),
            "table_joins.lifted.select-narrow",
            "table_joins.lifted.select-wide"):
        return
    n = 2_000 if r.smoke else 20_000
    index = synthetic_regions(n, seed=3)
    context = synthetic_regions(n, seed=4)
    for op in StandoffOp:
        r.measure(f"table_joins.basic.{op.value}", file, LL_LIST, n,
                  lambda op=op: basic_join(op, context.table, index.table))
    n_iters, per_iter = (50, 5) if r.smoke else (500, 20)
    lifted = synthetic_iter_context(n_iters, per_iter, span=1_000_000,
                                   max_len=500)
    for op in (StandoffOp.SELECT_NARROW, StandoffOp.SELECT_WIDE):
        for kernel, fn in _join_kernels(op, lifted, index.table):
            r.measure(f"table_joins.lifted.{op.value}", file, kernel,
                      n, fn)


def scenario_active_structures(r: Runner) -> None:
    import random as _random

    file = "bench_ablation_active_heap.py"
    n_iters, per_iter, n_cand = (50, 8, 3_000) if r.smoke \
        else (400, 25, 30_000)
    for kind in ("shallow", "deep"):
        if not r.wanted(f"active_structure.{kind}"):
            continue
        rng = _random.Random(9)
        span = 1_000_000
        rows = []
        node = 0
        for it in range(n_iters):
            for _ in range(per_iter):
                start = rng.randrange(span)
                length = rng.randrange(span // 3) if kind == "deep" \
                    else rng.randrange(200)
                rows.append((it, node, start, min(span, start + length)))
                node += 1
        context = IterContext.from_rows(rows)
        cand_rows = []
        for i in range(n_cand):
            start = rng.randrange(span)
            cand_rows.append((start, start + rng.randrange(150),
                              10_000_000 + i))
        candidates = RegionTable.from_rows(cand_rows)
        for kernel, fn in _join_kernels(StandoffOp.SELECT_NARROW,
                                        context, candidates):
            r.measure(f"active_structure.{kind}", file, kernel,
                      n_cand, fn)


def scenario_global_index(r: Runner) -> None:
    import random as _random

    file = "bench_ablation_global_index.py"
    if not r.any_wanted("global_index.query.per_document",
                        "global_index.query.global",
                        "global_index.maintenance.per_document",
                        "global_index.maintenance.global"):
        return
    n_docs, per_doc = (5, 800) if r.smoke else (20, 5_000)
    span = 1_000_000
    rng = _random.Random(5)
    collection = {}
    for frag in range(1, n_docs + 1):
        entries = [(node_id, start, start + rng.randrange(400))
                   for node_id in range(per_doc)
                   for start in (rng.randrange(span),)]
        collection[frag] = RegionIndex.build(entries)
    global_index = GlobalRegionIndex(collection)
    index = collection[1]
    ids = index.annotated_ids()[:200]
    context_rows = [(0, 1, int(node_id)) for node_id in ids]
    context = index.fetch([nid for _it, _frag, nid in context_rows])
    n = n_docs * per_doc
    r.measure("global_index.query.per_document", file, LL_LIST, per_doc,
              lambda: basic_join(StandoffOp.SELECT_WIDE, context,
                                 index.table))
    r.measure("global_index.query.global", file, LL_LIST, n,
              lambda: global_standoff_join(StandoffOp.SELECT_WIDE,
                                           context_rows, global_index,
                                           collection))
    entries = [(i, rng.randrange(span), rng.randrange(span, span + 400))
               for i in range(per_doc)]
    r.measure("global_index.maintenance.per_document", file, None,
              per_doc, lambda: RegionIndex.build(entries))
    r.measure("global_index.maintenance.global", file, None, n,
              lambda: GlobalRegionIndex(collection))


def scenario_pushdown(r: Runner) -> None:
    file = "bench_ablation_pushdown.py"
    if not r.any_wanted(*(f"pushdown.{mode}.sel{sel}"
                          for mode in ("pushed", "postfilter")
                          for sel in (0.01, 0.1, 0.5))):
        return
    n, n_ctx = (6_000, 100) if r.smoke else (60_000, 500)
    big_index = synthetic_regions(n, seed=21)
    context_table = synthetic_regions(n_ctx, span=1_000_000,
                                      max_len=2_000, seed=22).table
    for selectivity in (0.01, 0.1, 0.5):
        ids = big_index.annotated_ids()
        step = max(1, int(1 / selectivity))
        wanted = ids[::step]
        candidates = big_index.candidates(wanted)
        r.measure(f"pushdown.pushed.sel{selectivity}", file, LL_LIST, n,
                  lambda candidates=candidates: basic_join(
                      StandoffOp.SELECT_WIDE, context_table, candidates),
                  selectivity=selectivity)
        wanted_set = set(wanted.tolist())

        def post_filter(wanted_set=wanted_set):
            full = basic_join(StandoffOp.SELECT_WIDE, context_table,
                              big_index.table)
            return [nid for nid in full if nid in wanted_set]

        r.measure(f"pushdown.postfilter.sel{selectivity}", file, LL_LIST,
                  n, post_filter, selectivity=selectivity)


def scenario_figure6(r: Runner) -> None:
    variants = [("udf", "ll"), ("basic", "ll"), ("ll", "ll"),
                ("ll", "vectorized")]
    names = [f"figure6.{q}.{s}" + (".vectorized" if k == "vectorized"
                                   else "")
             for q in ("q1", "q2", "q6", "q7") for s, k in variants]
    if not r.any_wanted(*names):
        return
    scale = 0.05 if r.smoke else 0.5
    db, label = build_database(scale)
    n = len(db.store.get("xmark.xml").region_index())
    for query_id in ("q1", "q2", "q6", "q7"):
        file = f"bench_figure6_{query_id}.py"
        query = query_text(query_id, "xmark.xml", standoff=True)
        for strategy, kernel in variants:
            if strategy == "udf":
                label_kernel = None        # the quadratic baseline
            else:
                label_kernel = VECTORIZED if kernel == "vectorized" \
                    else LL_LIST
            r.measure(
                f"figure6.{query_id}.{strategy}"
                + (".vectorized" if kernel == "vectorized" else ""),
                file, label_kernel, n,
                lambda q=query, s=strategy, k=kernel: db.query(
                    q, strategy=s, kernel=k),
                strategy=strategy, scale=scale, size=label)


def scenario_udf_nocand(r: Runner) -> None:
    file = "bench_figure6_udf_nocand.py"
    if not r.any_wanted("udf_nocand.udf_without_candidates",
                        "udf_nocand.udf_with_candidates",
                        "udf_nocand.ll_reference"):
        return
    scale = 0.02 if r.smoke else 0.05
    db, label = build_database(scale)
    n = len(db.store.get("xmark.xml").region_index())
    nocand = ('for $b in doc("xmark.xml")//site'
              '/select-narrow::open_auctions\n'
              '         /select-narrow::open_auction\n'
              'return count($b/select-narrow::*)')
    r.measure("udf_nocand.udf_without_candidates", file, None, n,
              lambda: db.query(nocand, strategy="udf"), scale=scale)
    query = query_text("q2", "xmark.xml", standoff=True)
    r.measure("udf_nocand.udf_with_candidates", file, None, n,
              lambda: db.query(query, strategy="udf"), scale=scale)
    r.measure("udf_nocand.ll_reference", file, LL_LIST, n,
              lambda: db.query(nocand, strategy="ll"), scale=scale)


@functools.lru_cache(maxsize=None)
def _xmark_build(scale: float):
    # Cached: the staircase, staircase_axes and positional scenarios
    # share the same XMark build per scale (multi-second at scale 16).
    return build_database(scale)


@functools.lru_cache(maxsize=None)
def _staircase_workload(scale: float):
    db, label = _xmark_build(scale)
    stored = db.store.get("xmark.xml")
    shredded = stored.shredded
    index = stored.region_index()
    auction_pres = shredded.elements_named("open_auction")
    context_rows = [(it, int(pre))
                    for it, pre in enumerate(auction_pres.tolist())]
    candidates = shredded.elements_named("bidder")
    cand_table = index.candidates(candidates)
    fetched = index.fetch([pre for _it, pre in context_rows])
    by_id = {}
    for s, e, i in zip(fetched.starts.tolist(), fetched.ends.tolist(),
                       fetched.ids.tolist()):
        by_id[i] = (s, e)
    context = IterContext.from_rows(
        (it, pre, *by_id[pre]) for it, pre in context_rows)
    return shredded, context_rows, candidates, context, cand_table, label


def scenario_staircase(r: Runner) -> dict | None:
    """§4.6 claim C workload across document scales; returns the
    summary of the vectorized speedup at the largest size."""
    file = "bench_staircase_vs_standoff.py"
    scales = (0.25,) if r.smoke else (0.5, 4.0, 16.0)
    summary = None
    for scale in scales:
        join_name = f"staircase.scale{scale}.select_narrow"
        stair_name = f"staircase.scale{scale}.descendant_staircase"
        if not r.any_wanted(join_name, stair_name):
            continue
        shredded, context_rows, candidates, context, cand_table, label = \
            _staircase_workload(scale)
        n = len(context) + len(cand_table)
        reference = ll_join(StandoffOp.SELECT_NARROW, context, cand_table)
        assert vec_join(StandoffOp.SELECT_NARROW, context,
                        cand_table) == reference, \
            "vectorized kernel diverged from the reference join"
        r.measure(stair_name, file, None, n,
                  lambda: ll_descendant_join(shredded, context_rows,
                                             candidates),
                  scale=scale, size=label)
        timings = {}
        for kernel, fn in _join_kernels(StandoffOp.SELECT_NARROW,
                                        context, cand_table):
            timings[kernel] = r.measure(
                join_name, file, kernel, n, fn,
                label=f"{join_name}[{kernel}]", scale=scale, size=label)
        ll_list = timings.get(LL_LIST, math.inf)
        vectorized = timings.get(VECTORIZED, math.inf)
        if math.isfinite(ll_list) and math.isfinite(vectorized) \
                and vectorized > 0:
            summary = {
                "scale": scale, "size": label, "n": int(n),
                "ll_list_seconds": round(ll_list, 6),
                "vectorized_seconds": round(vectorized, 6),
                "speedup": round(ll_list / vectorized, 2),
            }
    return summary


def scenario_staircase_axes(r: Runner) -> dict | None:
    """Staircase axis family across document scales: the dict-shaped
    loop-lifted reference vs the batched columnar kernels; returns the
    descendant-axis speedup at the largest size."""
    from repro.staircase.kernels_vec import vec_staircase_join
    from repro.staircase.loop_lifted import ll_axis_join

    file = "bench_staircase_axes.py"
    axes = ("descendant", "ancestor", "child", "following", "preceding")
    scales = (0.25,) if r.smoke else (0.5, 4.0, 16.0)
    summary = None
    for scale in scales:
        names = [f"staircase_axes.scale{scale}.{axis}" for axis in axes]
        if not r.any_wanted(*names):
            continue
        shredded, context_rows, candidates, _ctx, _cand, label = \
            _staircase_workload(scale)
        n = len(context_rows) + len(candidates)
        for axis in axes:
            name = f"staircase_axes.scale{scale}.{axis}"
            if scale == scales[0]:
                # Kernel-agreement guard at the cheapest scale only;
                # the committed differential suite covers the rest.
                assert vec_staircase_join(
                    axis, shredded, context_rows,
                    candidates).to_dict() == ll_axis_join(
                        shredded, axis, context_rows, candidates), \
                    f"staircase kernels diverged on {axis}"
            timings = {}
            for kernel, fn in (
                    (LL_DICT, lambda axis=axis: ll_axis_join(
                        shredded, axis, context_rows, candidates)),
                    (VECTORIZED, lambda axis=axis: vec_staircase_join(
                        axis, shredded, context_rows, candidates))):
                timings[kernel] = r.measure(
                    name, file, kernel, n, fn,
                    label=f"{name}[{kernel}]", scale=scale, size=label)
            if axis == "descendant" \
                    and math.isfinite(timings[LL_DICT]) \
                    and math.isfinite(timings[VECTORIZED]) \
                    and timings[VECTORIZED] > 0:
                summary = {
                    "scale": scale, "size": label, "n": int(n),
                    "ll_dict_seconds": round(timings[LL_DICT], 6),
                    "vectorized_seconds": round(timings[VECTORIZED], 6),
                    "speedup": round(timings[LL_DICT]
                                     / timings[VECTORIZED], 2),
                }
    return summary


@functools.lru_cache(maxsize=None)
def _sibling_workload(scale: float):
    """One iteration per ``bidder`` element, bidders as candidates —
    the bidders inside one auction are each other's siblings, so both
    sibling axes produce non-trivial per-iteration windows."""
    shredded, _rows, bidders, _ctx, _cand, label = \
        _staircase_workload(scale)
    context_rows = [(it, int(pre))
                    for it, pre in enumerate(bidders.tolist())]
    return shredded, context_rows, bidders, label


def scenario_staircase_siblings(r: Runner) -> dict | None:
    """Sibling-axis kernels: the per-node DOM walk (the pre-PR5 serving
    path) vs the dict-shaped reference vs the batched columnar kernel;
    returns the following-sibling speedup over the DOM walk at the
    largest size."""
    from repro.staircase.kernels_vec import vec_staircase_join
    from repro.staircase.loop_lifted import ll_axis_join
    from repro.xmldb import Element
    from repro.xquery.axes import AXIS_FUNCTIONS

    file = "bench_staircase_siblings.py"
    axes = ("following-sibling", "preceding-sibling")
    scales = (0.25,) if r.smoke else (0.5, 4.0, 16.0)
    summary = None
    for scale in scales:
        names = {axis: (f"staircase_siblings.scale{scale}."
                        f"{axis.replace('-', '_')}") for axis in axes}
        if not r.any_wanted(*names.values()):
            continue
        shredded, context_rows, bidders, label = _sibling_workload(scale)
        n = 2 * len(context_rows)
        for axis in axes:
            name = names[axis]
            axis_fn = AXIS_FUNCTIONS[axis]
            if scale == scales[0]:
                # Kernel-agreement guard at the cheapest scale only;
                # the committed differential suite covers the rest.
                assert vec_staircase_join(
                    axis, shredded, context_rows,
                    bidders).to_dict() == ll_axis_join(
                        shredded, axis, context_rows, bidders), \
                    f"sibling kernels diverged on {axis}"

            def dom_walk(axis_fn=axis_fn):
                out = {}
                for it, pre in context_rows:
                    node = shredded.node_by_pre(pre)
                    matched = [s.pre for s in axis_fn(node)
                               if isinstance(s, Element)
                               and s.tag == "bidder"]
                    if matched:
                        out[it] = matched
                return out

            timings = {}
            for kernel, fn in (
                    (DOM_WALK, dom_walk),
                    (LL_DICT, lambda axis=axis: ll_axis_join(
                        shredded, axis, context_rows, bidders)),
                    (VECTORIZED, lambda axis=axis: vec_staircase_join(
                        axis, shredded, context_rows, bidders))):
                timings[kernel] = r.measure(
                    name, file, kernel, n, fn,
                    label=f"{name}[{kernel}]", scale=scale, size=label)
            if axis == "following-sibling" \
                    and math.isfinite(timings[DOM_WALK]) \
                    and math.isfinite(timings[VECTORIZED]) \
                    and timings[VECTORIZED] > 0:
                summary = {
                    "scale": scale, "size": label, "n": int(n),
                    "dom_walk_seconds": round(timings[DOM_WALK], 6),
                    "vectorized_seconds": round(timings[VECTORIZED], 6),
                    "speedup": round(timings[DOM_WALK]
                                     / timings[VECTORIZED], 2),
                }
    return summary


@functools.lru_cache(maxsize=None)
def _sharding_standoff_workload(scale: float, smoke: bool):
    """A dense loop-lifted StandOff workload whose iteration count
    sweeps with *scale* (the candidate table stays fixed, like the
    ``table_joins`` family)."""
    n_cand = 2_000 if smoke else 20_000
    n_iters = max(4, int(round((8 if smoke else 31.25) * scale)))
    per_iter = 20
    index = synthetic_regions(n_cand, seed=3)
    ids = index.annotated_ids().tolist()
    context = []
    cursor = 0
    for it in range(n_iters):
        for _ in range(per_iter):
            context.append((it, 0, ids[cursor % len(ids)]))
            cursor += 17
    return context, {0: index}, n_cand


def scenario_sharding(r: Runner) -> dict | None:
    """Sharded fan-out vs the serial reference, both join families;
    returns the StandOff fan-out speedup at the largest scale."""
    from repro.core.steps import Strategy, standoff_step
    from repro.staircase import staircase_join

    file = "bench_sharding.py"
    scales = (0.25,) if r.smoke else (0.5, 4.0, 16.0)
    variants = (("serial", "serial"), ("workers4", 4))
    shard_min_rows = 512
    summary = None
    for scale in scales:
        ops = {"standoff_select_wide": StandoffOp.SELECT_WIDE,
               "standoff_select_narrow": StandoffOp.SELECT_NARROW}
        names = [f"sharding.scale{scale}.{group}.{tag}"
                 for group in (*ops, "staircase_following")
                 for tag, _w in variants]
        if not r.any_wanted(*names):
            continue
        context, indexes, n_cand = _sharding_standoff_workload(
            scale, r.smoke)
        n = len(context) + n_cand
        for group, op in ops.items():
            def run(workers, op=op):
                return standoff_step(
                    op, context, indexes,
                    strategy=Strategy.LOOP_LIFTED, kernel="vectorized",
                    workers=workers, shard_min_rows=shard_min_rows)

            # Divergence guard at every scale — the planner only fans
            # out above 2 x shard_min_rows rows, so checking just the
            # smallest scale would compare serial to serial.
            assert run("serial") == run(4), \
                f"sharded standoff diverged from serial ({group})"
            timings = {}
            for tag, workers in variants:
                timings[tag] = r.measure(
                    f"sharding.scale{scale}.{group}.{tag}", file,
                    VECTORIZED, n,
                    lambda workers=workers: run(workers),
                    label=f"sharding.scale{scale}.{group}[{tag}]",
                    scale=scale, workers=workers,
                    shard_min_rows=shard_min_rows)
            if group == "standoff_select_wide" \
                    and math.isfinite(timings["serial"]) \
                    and math.isfinite(timings["workers4"]) \
                    and timings["workers4"] > 0:
                summary = {
                    "scale": scale, "n": int(n),
                    "serial_seconds": round(timings["serial"], 6),
                    "workers4_seconds": round(timings["workers4"], 6),
                    "speedup": round(timings["serial"]
                                     / timings["workers4"], 2),
                }
        shredded, context_rows, candidates, _ctx, _cand, label = \
            _staircase_workload(scale)
        def run_stair(workers):
            return staircase_join(
                "following", shredded, context_rows, candidates,
                kernel="vectorized", workers=workers,
                shard_min_rows=shard_min_rows)

        assert run_stair("serial") == run_stair(4), \
            "sharded staircase diverged from serial"
        for tag, workers in variants:
            r.measure(
                f"sharding.scale{scale}.staircase_following.{tag}",
                file, VECTORIZED,
                len(context_rows) + len(candidates),
                lambda workers=workers: run_stair(workers),
                label=f"sharding.scale{scale}.staircase_following"
                      f"[{tag}]",
                scale=scale, size=label, workers=workers,
                shard_min_rows=shard_min_rows)
    return summary


#: Positional-predicate cases: (name, anchor element, final step).
#: ``child_mod``/``descendant_window`` are the forward-axis headline
#: shapes; the other two exercise reverse-axis position flipping.
_POSITIONAL_CASES = (
    ("child_mod", "open_auction",
     "child::bidder[position() mod 2 = 1]"),
    ("descendant_window", "open_auction",
     "descendant::*[position() < 5]"),
    ("ancestor_first", "bidder", "ancestor::*[1]"),
    ("preceding_sibling_last", "bidder",
     "preceding-sibling::*[last()]"),
)


def scenario_positional(r: Runner) -> dict | None:
    """Positional predicates off the CSR backbone: the per-node DOM
    walk (axis enumeration + per-candidate predicate evaluation — the
    pre-PR7 serving path) vs one kernel join per anchor batch plus the
    vectorized position/length mask chain.  End-to-end query records
    (``query_child_mod``) show the same comparison diluted by the
    shared anchor step and result decode; the step-level records carry
    the headline.  Returns the forward-axis speedup at the largest
    scale."""
    from repro.staircase.kernels_vec import staircase_join
    from repro.xquery import bulk
    from repro.xquery.axes import STAIRCASE_AXES
    from repro.xquery.context import DynamicContext
    from repro.xquery.parser import parse

    file = "bench_positional.py"
    scales = (0.25,) if r.smoke else (0.5, 4.0, 16.0)
    query_name = "query_child_mod"
    summary = None
    for scale in scales:
        names = [f"positional.scale{scale}.{name}"
                 for name, _a, _s in _POSITIONAL_CASES]
        names.append(f"positional.scale{scale}.{query_name}")
        if not r.any_wanted(*names):
            continue
        db, label = _xmark_build(scale)
        stored = db.store.get("xmark.xml")
        shredded = stored.shredded
        scope = DynamicContext(db.store)
        anchor_pres = {
            tag: shredded.elements_named(tag).tolist()
            for tag in ("open_auction", "bidder")}
        timings = {}
        for name, anchor_tag, step_text in _POSITIONAL_CASES:
            scenario = f"positional.scale{scale}.{name}"
            step = parse(f'doc("x.xml")/r/{step_text}').body.steps[-1]
            axis, or_self = STAIRCASE_AXES[step.axis]
            maskers = bulk.compile_positional_predicates(step.predicates)
            assert maskers is not None, step_text
            reverse = step.axis in bulk.REVERSE_AXES
            rows = [(i, pre)
                    for i, pre in enumerate(anchor_pres[anchor_tag])]
            candidates = bulk._staircase_candidates(shredded, step.test)
            n = len(rows) + len(candidates)

            def vectorized(rows=rows, candidates=candidates, axis=axis,
                           or_self=or_self, maskers=maskers,
                           reverse=reverse):
                result = staircase_join(axis, shredded, rows, candidates,
                                        or_self=or_self,
                                        kernel="vectorized")
                return bulk._apply_positional_chain(
                    result.offsets, result.values, maskers, reverse)

            def dom_walk(rows=rows, step=step):
                out = {}
                for i, pre in rows:
                    nodes = bulk._dom_positional_anchor(
                        shredded.node_by_pre(pre), step, scope)
                    if nodes:
                        out[i] = nodes
                return out

            if scale == scales[0]:
                # Serving-path agreement guard at the cheapest scale
                # only; the committed fuzz suite covers the rest.
                offsets, values = vectorized()
                bounds, vals = offsets.tolist(), values.tolist()
                got = {i: vals[bounds[i]:bounds[i + 1]]
                       for i in range(len(rows))
                       if bounds[i + 1] > bounds[i]}
                ref = {i: [node.pre for node in nodes]
                       for i, nodes in dom_walk().items()}
                assert got == ref, f"positional paths diverged: {name}"

            case = {}
            for kernel, fn in ((DOM_WALK, dom_walk),
                               (VECTORIZED, vectorized)):
                case[kernel] = r.measure(
                    scenario, file, kernel, n, fn,
                    label=f"{scenario}[{kernel}]", scale=scale,
                    size=label)
            timings[name] = case
        # End-to-end query pair: the bulk evaluator with the columnar
        # positional path toggled off (whole-step DOM fallback) vs on.
        query = ('doc("xmark.xml")//open_auction'
                 '/child::bidder[position() mod 2 = 1]')
        scenario = f"positional.scale{scale}.{query_name}"
        if r.wanted(scenario):
            n = len(shredded)

            def run_query(flag):
                bulk.POSITIONAL_KERNELS = flag
                try:
                    return db.query(query, strategy="ll")
                finally:
                    bulk.POSITIONAL_KERNELS = True

            for kernel, flag in ((DOM_WALK, False), (VECTORIZED, True)):
                r.measure(scenario, file, kernel, n,
                          lambda flag=flag: run_query(flag),
                          label=f"{scenario}[{kernel}]", scale=scale,
                          size=label)
        headline = timings.get("child_mod", {})
        dom = headline.get(DOM_WALK, math.inf)
        vec = headline.get(VECTORIZED, math.inf)
        if math.isfinite(dom) and math.isfinite(vec) and vec > 0:
            summary = {
                "scale": scale, "size": label,
                "case": "child_mod",
                "dom_walk_seconds": round(dom, 6),
                "vectorized_seconds": round(vec, 6),
                "speedup": round(dom / vec, 2),
            }
    return summary


#: The plan-cache batch: parse-heavy queries (prolog function + nested
#: FLWOR/predicates) over a tiny document, so compilation dominates —
#: the repeated-small-query serving shape the plan cache targets.
_PLANCACHE_XML = "<r><a i='1'><b>t</b></a><a i='2'><c/></a></r>"
_PLANCACHE_PROLOG = (
    "declare function local:pick($s, $k) "
    "{ for $x in $s where $x/@i = $k return $x };\n")
_PLANCACHE_QUERIES = tuple(
    _PLANCACHE_PROLOG
    + f'for $a in local:pick(doc("t.xml")/r/child::a, "{k % 2 + 1}") '
      f"return count($a/descendant-or-self::node()"
      f"[position() mod {d} = 1])"
    for k in range(8) for d in (2, 3)
) + tuple(
    f'doc("t.xml")/r/child::a[@i = "{k % 2 + 1}"]'
    f"/child::*[1]/ancestor-or-self::node()[last()]"
    for k in range(8)
)


def scenario_plancache(r: Runner) -> dict | None:
    """Cross-query caches: the compiled-plan LRU on a repeated
    small-query batch (warm vs ``plan_cache_size=0``), and the
    content-hash shred cache at the ``shred_fragment`` level (hit +
    rebind vs full column rebuild).  Returns the plan-cache batch
    speedup."""
    from repro.xmldb.shred import SHRED_CACHE, shred_fragment

    file = "bench_plancache.py"
    batch_names = ("plancache.batch.warm", "plancache.batch.cold")
    shred_names = ("plancache.shred_fragment.hit",
                   "plancache.shred_fragment.rebuild")
    summary = None
    if r.any_wanted(*batch_names):
        def batch(db):
            for query in _PLANCACHE_QUERIES:
                db.query(query, strategy="basic")

        timings = {}
        for tag, size in (("warm", 256), ("cold", 0)):
            db = Database(plan_cache_size=size)
            db.add_document("t.xml", _PLANCACHE_XML)
            batch(db)    # prime: the warm arm's one-time parse round
            timings[tag] = r.measure(
                f"plancache.batch.{tag}", file, None,
                len(_PLANCACHE_QUERIES), lambda db=db: batch(db),
                plan_cache_size=size)
        if math.isfinite(timings.get("warm", math.inf)) \
                and math.isfinite(timings.get("cold", math.inf)) \
                and timings["warm"] > 0:
            summary = {
                "queries": len(_PLANCACHE_QUERIES),
                "warm_seconds": round(timings["warm"], 6),
                "cold_seconds": round(timings["cold"], 6),
                "speedup": round(timings["cold"] / timings["warm"], 2),
            }
    if r.any_wanted(*shred_names):
        repeat = 200 if r.smoke else 2_000
        db = Database()
        ctor = "<w>" + "<a i=\"1\"><b>text</b></a>" * repeat + "</w>"
        # distinct content-equal roots: every hit goes through the
        # fingerprint + rebind path, never the same-root shortcut
        roots = [list(db.query(ctor))[0] for _ in range(4)]
        n = sum(1 for _ in roots[0].descendants_or_self())
        saved = (SHRED_CACHE.max_entries, SHRED_CACHE.max_bytes)
        try:
            for tag, entries in (("hit", 512), ("rebuild", 0)):
                SHRED_CACHE.clear()
                SHRED_CACHE.configure(max_entries=entries)
                if entries:
                    shred_fragment(roots[0])    # prime the one miss
                r.measure(
                    f"plancache.shred_fragment.{tag}", file, None,
                    n * len(roots),
                    lambda: [shred_fragment(root) for root in roots],
                    shred_cache_entries=entries)
        finally:
            SHRED_CACHE.configure(max_entries=saved[0],
                                  max_bytes=saved[1])
            SHRED_CACHE.clear()
    return summary


def scenario_coldstart(r: Runner) -> dict | None:
    """Out-of-core cold start: serving a saved store (O(1) header read
    + zero-copy ``np.memmap`` column views) vs re-deriving the same
    state from XML text (parse + shred + region extraction — what
    every process had to pay before PR 8).  Both arms end ready for
    kernel joins: shredded columns plus the default region index; the
    mapped arm touches first/last column entries so the timing
    includes the initial page faults, not just the ``open`` syscall.
    Returns the speedup at the largest scale."""
    import shutil
    import tempfile

    from repro import storage
    from repro.core.region_index import RegionIndex
    from repro.xmldb.parser import parse_document
    from repro.xmldb.shred import shred
    from repro.xmldb.store import extract_regions

    file = "bench_coldstart.py"
    scales = (0.25,) if r.smoke else (0.5, 4.0, 16.0)
    summary = None
    for scale in scales:
        names = [f"coldstart.scale{scale}.{tag}"
                 for tag in ("open_mmap", "reshred")]
        if not r.any_wanted(*names):
            continue
        db, label = _xmark_build(scale)
        stored = db.store.get("xmark.xml")
        xml = stored.document.serialize()
        n = len(stored.shredded)
        tmp = tempfile.mkdtemp(prefix="repro-bench-coldstart-")
        try:
            path = str(Path(tmp) / "xmark.repro")
            storage.save_store(path, db)    # paid once, at publish time

            def open_mmap():
                reader = storage.StoreReader(path)
                sh = reader.shredded("xmark.xml")
                index = reader.region_index("xmark.xml")
                return (int(sh.pre[0]) + int(sh.size[-1])
                        + int(sh.name[0]) + len(index))

            def reshred():
                document = parse_document(xml, uri="xmark.xml")
                sh = shred(document)
                index = RegionIndex.build(extract_regions(document))
                return (int(sh.pre[0]) + int(sh.size[-1])
                        + int(sh.name[0]) + len(index))

            assert open_mmap() == reshred(), \
                "mapped cold start diverged from the rebuilt shred"
            timings = {}
            for tag, fn in (("open_mmap", open_mmap),
                            ("reshred", reshred)):
                timings[tag] = r.measure(
                    f"coldstart.scale{scale}.{tag}", file, None, n, fn,
                    label=f"coldstart.scale{scale}.{tag}",
                    scale=scale, size=label,
                    store_bytes=Path(path).stat().st_size)
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
        open_s = timings.get("open_mmap", math.inf)
        reshred_s = timings.get("reshred", math.inf)
        if math.isfinite(open_s) and math.isfinite(reshred_s) \
                and open_s > 0:
            summary = {
                "scale": scale, "size": label, "n": int(n),
                "open_mmap_seconds": round(open_s, 6),
                "reshred_seconds": round(reshred_s, 6),
                "speedup": round(reshred_s / open_s, 2),
            }
    return summary


def scenario_procpool(r: Runner) -> dict | None:
    """The process-pool executor on the bandwidth-bound axes: serial vs
    the thread pool vs real processes (``executor="process"``), all
    over one *store-backed* document so workers ship ``(path, slice)``
    descriptors and map the shared pages instead of pickling columns.
    The staircase arms run ``following``/``preceding`` (the axes whose
    result mass made thread fan-out a wash under the GIL — PR 4
    measured ``workers4`` at ~0.7x serial here); the StandOff arm is a
    wide select scan through the same store-backed region index.  Pool
    spawn cost is paid outside the timings (``warm_pool``), matching
    the long-lived-server deployment the executor targets.  Returns
    the process-vs-threads speedup on ``following`` at the largest
    scale."""
    import shutil
    import tempfile

    from repro import storage
    from repro.core.steps import Strategy, standoff_step
    from repro.exec import procpool
    from repro.staircase.kernels_vec import staircase_join

    file = "bench_procpool.py"
    scales = (0.25,) if r.smoke else (0.5, 4.0, 16.0)
    workers = 4
    shard_min_rows = 512
    variants = ("serial", "threads4", "procs4")
    axes = ("following", "preceding")
    summary = None
    for scale in scales:
        names = [f"procpool.scale{scale}.staircase_{axis}.{tag}"
                 for axis in axes for tag in variants]
        names += [f"procpool.scale{scale}.standoff_select_wide.{tag}"
                  for tag in variants]
        if not r.any_wanted(*names):
            continue
        db, label = _xmark_build(scale)
        tmp = tempfile.mkdtemp(prefix="repro-bench-procpool-")
        try:
            path = str(Path(tmp) / "xmark.repro")
            storage.save_store(path, db)
            reader = storage.StoreReader(path)
            shredded = reader.shredded("xmark.xml")
            index = reader.region_index("xmark.xml")
            procpool.warm_pool(workers)    # spawn cost paid up front

            desc = ("name", "bidder")
            pool = procpool.resolve_staircase_pool(shredded, desc)
            context_rows = [
                (it, int(pre)) for it, pre in enumerate(
                    shredded.elements_named("open_auction").tolist())]
            n = len(context_rows) + len(pool)

            def run_staircase(axis, tag):
                executor = "process" if tag == "procs4" else "thread"
                w = "serial" if tag == "serial" else workers
                return staircase_join(
                    axis, shredded, context_rows, pool,
                    kernel="vectorized", workers=w,
                    shard_min_rows=shard_min_rows,
                    executor=executor, candidate_desc=desc)

            for axis in axes:
                serial_ref = run_staircase(axis, "serial")
                for tag in ("threads4", "procs4"):
                    got = run_staircase(axis, tag)
                    assert np.array_equal(serial_ref.iters, got.iters) \
                        and np.array_equal(serial_ref.offsets,
                                           got.offsets) \
                        and np.array_equal(serial_ref.values,
                                           got.values), \
                        f"{tag} staircase diverged from serial ({axis})"
                timings = {}
                for tag in variants:
                    timings[tag] = r.measure(
                        f"procpool.scale{scale}.staircase_{axis}.{tag}",
                        file, VECTORIZED, n,
                        lambda axis=axis, tag=tag: run_staircase(
                            axis, tag),
                        label=f"procpool.scale{scale}."
                              f"staircase_{axis}[{tag}]",
                        scale=scale, size=label, workers=workers,
                        shard_min_rows=shard_min_rows,
                        executor="process" if tag == "procs4"
                        else "thread")
                if axis == "following" \
                        and math.isfinite(timings["threads4"]) \
                        and math.isfinite(timings["procs4"]) \
                        and timings["procs4"] > 0:
                    summary = {
                        "scale": scale, "size": label, "n": int(n),
                        "axis": axis,
                        "serial_seconds": round(timings["serial"], 6),
                        "threads4_seconds": round(
                            timings["threads4"], 6),
                        "procs4_seconds": round(timings["procs4"], 6),
                        "speedup_vs_threads": round(
                            timings["threads4"] / timings["procs4"], 2),
                    }

            ids = index.annotated_ids().tolist()
            per_iter = 20
            n_iters = max(4, len(ids) // per_iter)
            context, cursor = [], 0
            for it in range(n_iters):
                for _ in range(per_iter):
                    context.append((it, 0, ids[cursor % len(ids)]))
                    cursor += 17
            n_standoff = len(context) + len(index)

            def run_standoff(tag):
                executor = "process" if tag == "procs4" else "thread"
                w = "serial" if tag == "serial" else workers
                return standoff_step(
                    StandoffOp.SELECT_WIDE, context, {0: index},
                    strategy=Strategy.LOOP_LIFTED, kernel="vectorized",
                    workers=w, shard_min_rows=shard_min_rows,
                    executor=executor)

            serial_ref = run_standoff("serial")
            for tag in ("threads4", "procs4"):
                assert run_standoff(tag) == serial_ref, \
                    f"{tag} standoff diverged from serial"
            for tag in variants:
                r.measure(
                    f"procpool.scale{scale}.standoff_select_wide.{tag}",
                    file, VECTORIZED, n_standoff,
                    lambda tag=tag: run_standoff(tag),
                    label=f"procpool.scale{scale}."
                          f"standoff_select_wide[{tag}]",
                    scale=scale, size=label, workers=workers,
                    shard_min_rows=shard_min_rows,
                    executor="process" if tag == "procs4" else "thread")
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
    return summary


def scenario_serving(r: Runner) -> dict | None:
    """Concurrent query serving through :class:`repro.serve.QueryServer`:
    a mixed workload — point lookups pipelined with full scans — runs
    serially (one ``db.query`` after another) and then concurrently
    through the server's admission control, over one shared XMark
    database.  The serial/concurrent pair times the whole batch; a
    separate instrumented pass records per-query wall latency
    (admission wait included) and reports throughput (qps) plus the
    p50/p99 latencies as their own scenario records, so trajectory
    diffs catch tail-latency regressions, not just batch time.
    Returns the qps/percentile headline at the largest scale."""
    import asyncio

    from repro.serve import QueryServer

    file = "bench_serving.py"
    scales = (0.25,) if r.smoke else (0.5, 2.0)
    concurrency = 8
    summary = None
    for scale in scales:
        names = [f"serving.scale{scale}.mixed.serial",
                 f"serving.scale{scale}.mixed.concurrent{concurrency}",
                 f"serving.scale{scale}.latency.p50",
                 f"serving.scale{scale}.latency.p99"]
        if not r.any_wanted(*names):
            continue
        db, label = _xmark_build(scale)
        point = ('doc("xmark.xml")//open_auction'
                 '[@id="open_auction7"]/bidder[1]')
        scan = ('for $a in doc("xmark.xml")//open_auction '
                'return count($a/descendant::bidder)')
        # 6:1 point:scan mix, repeated — the shape admission control
        # is for (scans must not starve the lookups between them)
        workload = ([point] * 6 + [scan]) * 4
        n = len(workload)
        db.query(point, strategy="ll")     # warm plans + shredding
        db.query(scan, strategy="ll")

        def run_serial():
            for q in workload:
                db.query(q, strategy="ll")

        def run_concurrent():
            async def go():
                async with QueryServer(
                        db=db, max_concurrency=concurrency,
                        default_timeout=0) as server:
                    await asyncio.gather(
                        *(server.query(q) for q in workload))
            asyncio.run(go())

        serial_s = r.measure(
            names[0], file, None, n, run_serial,
            label=f"serving.scale{scale}.mixed[serial]",
            scale=scale, size=label, queries=n)
        concurrent_s = r.measure(
            names[1], file, None, n, run_concurrent,
            label=f"serving.scale{scale}.mixed"
                  f"[concurrent{concurrency}]",
            scale=scale, size=label, queries=n,
            concurrency=concurrency)

        # one instrumented pass for per-query latency + throughput
        async def instrumented():
            async with QueryServer(
                    db=db, max_concurrency=concurrency,
                    default_timeout=0) as server:
                async def timed(q):
                    t0 = time.perf_counter()
                    await server.query(q)
                    return time.perf_counter() - t0
                t0 = time.perf_counter()
                latencies = await asyncio.gather(
                    *(timed(q) for q in workload))
                return latencies, time.perf_counter() - t0

        latencies, wall = asyncio.run(instrumented())
        latencies.sort()
        p50 = latencies[len(latencies) // 2]
        p99 = latencies[min(len(latencies) - 1,
                            int(len(latencies) * 0.99))]
        qps = n / wall if wall > 0 else math.inf
        for name, seconds in ((names[2], p50), (names[3], p99)):
            if not r.wanted(name):
                continue
            r.records.append({
                "scenario": name, "file": file, "kernel": None,
                "n": int(n), "seconds": round(seconds, 6),
                "repeats": 1, "dnf": False, "scale": scale,
                "size": label, "queries": n,
                "concurrency": concurrency,
                "qps": round(qps, 2),
            })
            print(f"  {name:58s} {seconds * 1e3:10.3f}ms", flush=True)
        if math.isfinite(serial_s) and math.isfinite(concurrent_s):
            summary = {
                "scale": scale, "size": label, "queries": n,
                "concurrency": concurrency,
                "qps": round(qps, 2),
                "p50_ms": round(p50 * 1e3, 3),
                "p99_ms": round(p99 * 1e3, 3),
                "serial_seconds": round(serial_s, 6),
                "concurrent_seconds": round(concurrent_s, 6),
            }
    return summary


SCENARIOS = [
    scenario_region_index,
    scenario_table_joins,
    scenario_active_structures,
    scenario_global_index,
    scenario_pushdown,
    scenario_figure6,
    scenario_udf_nocand,
]


# ----------------------------------------------------------------------
# trajectory comparison
# ----------------------------------------------------------------------

def missing_required_families(payload: dict,
                              prefixes: tuple[str, ...]) -> list[str]:
    """Hard failures for required scenario families absent (or entirely
    DNF) in a trajectory file — the gate that makes a run without e.g.
    the ``staircase_axes.*`` keys fail even against an older baseline."""
    problems: list[str] = []
    for prefix in prefixes:
        hits = [s for s in payload["scenarios"]
                if s["scenario"].startswith(prefix)]
        if not hits:
            problems.append(
                f"required scenario family missing: {prefix}*")
        elif all(s["dnf"] for s in hits):
            problems.append(
                f"required scenario family is all-DNF: {prefix}*")
    return problems


def compare_trajectories(new_payload: dict, baseline_payload: dict
                         ) -> tuple[list[str], list[str]]:
    """Diff two trajectory files on their ``scenario``/``kernel`` keys.

    :returns: ``(problems, report)`` — *problems* are hard failures
        (a baseline key missing from the new run, or a key that DNFed
        in the new run but finished in the baseline); *report* lines
        summarize per-key speedups/regressions for shared keys.
    """
    def by_key(payload):
        return {(s["scenario"], s["kernel"]): s
                for s in payload["scenarios"]}

    base = by_key(baseline_payload)
    new = by_key(new_payload)
    problems: list[str] = []
    report: list[str] = []
    if new_payload.get("smoke") != baseline_payload.get("smoke"):
        problems.append(
            "smoke/full mismatch: comparing a "
            f"smoke={new_payload.get('smoke')} run against a "
            f"smoke={baseline_payload.get('smoke')} baseline "
            "(workload scales differ; keys would not line up)")
        return problems, report
    for key in sorted(base.keys() - new.keys(),
                      key=lambda k: (k[0], str(k[1]))):
        problems.append(f"missing scenario: {key[0]} [{key[1]}]")
    regressions = improvements = 0
    for key in sorted(new.keys(), key=lambda k: (k[0], str(k[1]))):
        record = new[key]
        ref = base.get(key)
        if record["dnf"]:
            if ref is None:
                problems.append(
                    f"new DNF: {key[0]} [{key[1]}] (no baseline entry)")
            elif not ref["dnf"]:
                problems.append(
                    f"new DNF: {key[0]} [{key[1]}] "
                    f"(baseline finished in {ref['seconds']}s)")
            continue
        if ref is None or ref["dnf"] or not ref.get("seconds"):
            continue
        ratio = ref["seconds"] / record["seconds"] \
            if record["seconds"] else math.inf
        if ratio >= 1.05:
            improvements += 1
            tag = f"{ratio:.2f}x faster"
        elif ratio <= 0.8:
            regressions += 1
            tag = f"{1 / ratio:.2f}x SLOWER"
        else:
            continue
        report.append(f"  {key[0]} [{key[1]}]: "
                      f"{ref['seconds']}s -> {record['seconds']}s "
                      f"({tag})")
    report.append(f"compared {len(new.keys() & base.keys())} shared "
                  f"keys: {improvements} faster (>=1.05x), "
                  f"{regressions} slower (>=1.25x), "
                  f"{len(new.keys() - base.keys())} new")
    return problems, report


def resolve_baseline(arg: str | None, pr_label: str, smoke: bool
                     ) -> Path | None:
    """The baseline file to diff against, or ``None``.

    Explicit ``--baseline PATH`` wins (``none`` disables); otherwise a
    full run labelled ``PR<k>`` auto-detects the highest-numbered
    committed ``BENCH_PR<j>.json`` (``j < k``) at the repository root —
    trajectory points need not be consecutive (there is no PR6 file,
    so a PR7 run diffs against ``BENCH_PR5.json``).
    """
    if arg is not None:
        if arg.lower() == "none":
            return None
        return Path(arg)
    if smoke:
        return None
    match = re.fullmatch(r"PR(\d+)", pr_label)
    if match:
        for j in range(int(match.group(1)) - 1, 0, -1):
            candidate = _ROOT / f"BENCH_PR{j}.json"
            if candidate.exists():
                return candidate
    return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks/run_all.py", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workloads (CI harness check)")
    parser.add_argument("--only", default=None, metavar="SUBSTR",
                        help="run only scenarios whose name contains "
                             "this substring")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timed repeats per scenario "
                             "(default: 3, smoke: 1)")
    parser.add_argument("--budget", type=float, default=None,
                        help="DNF budget seconds per scenario "
                             "(default: 120, smoke: 30)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="output JSON path (default: BENCH_PR9.json "
                             "at the repo root; BENCH_SMOKE.json with "
                             "--smoke)")
    parser.add_argument("--pr", default=None, metavar="LABEL",
                        help="trajectory-point label stamped into the "
                             "JSON (default: derived from the output "
                             "file name, e.g. BENCH_PR2.json -> PR2)")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="trajectory file to diff against (fails on "
                             "missing scenario/kernel keys or new DNFs; "
                             "default: auto-detect BENCH_PR<k-1>.json "
                             "for a PR<k> run; 'none' disables)")
    parser.add_argument("--compare", default=None, metavar="PATH",
                        help="skip running: load this trajectory JSON "
                             "and only perform the baseline comparison")
    parser.add_argument("--require", action="append", default=None,
                        metavar="PREFIX",
                        help="scenario-name prefix that must be present "
                             "(and not all-DNF) in the trajectory file; "
                             "repeatable (default: "
                             f"{', '.join(REQUIRED_SCENARIO_PREFIXES)}; "
                             "'none' disables)")
    args = parser.parse_args(argv)

    if args.require is None:
        required = REQUIRED_SCENARIO_PREFIXES
    else:
        required = tuple(p for p in args.require if p.lower() != "none")

    repeats = args.repeats if args.repeats is not None \
        else (1 if args.smoke else 3)
    budget = args.budget if args.budget is not None \
        else (30.0 if args.smoke else 120.0)

    if args.compare is not None:
        source = Path(args.compare)
        if not source.exists():
            print(f"trajectory file {source} does not exist")
            return 1
        payload = json.loads(source.read_text(encoding="utf-8"))
        pr_label = payload.get("pr", source.stem)
        smoke = bool(payload.get("smoke"))
        print(f"run_all: comparing {source} (no scenarios executed)")
    else:
        out = Path(args.out) if args.out else \
            _ROOT / ("BENCH_SMOKE.json" if args.smoke
                     else "BENCH_PR9.json")
        pr_label = args.pr if args.pr else (
            out.stem[len("BENCH_"):] if out.stem.startswith("BENCH_")
            else out.stem)
        smoke = args.smoke

        runner = Runner(smoke=args.smoke, only=args.only,
                        repeats=repeats, budget=budget)
        print(f"run_all: smoke={args.smoke} repeats={repeats} "
              f"budget={budget}s", flush=True)
        for scenario in SCENARIOS:
            scenario(runner)
        staircase_summary = scenario_staircase(runner)
        axes_summary = scenario_staircase_axes(runner)
        siblings_summary = scenario_staircase_siblings(runner)
        sharding_summary = scenario_sharding(runner)
        positional_summary = scenario_positional(runner)
        plancache_summary = scenario_plancache(runner)
        coldstart_summary = scenario_coldstart(runner)
        procpool_summary = scenario_procpool(runner)
        serving_summary = scenario_serving(runner)

        payload = {
            "schema": "repro-bench-trajectory/1",
            "pr": pr_label,
            "smoke": args.smoke,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "repeats": repeats,
            "budget_seconds": budget,
            "scenarios": runner.records,
            "summary": {
                "scenario_count": len(runner.records),
                "staircase_vectorized_headline": staircase_summary,
                "staircase_axes_headline": axes_summary,
                "staircase_siblings_headline": siblings_summary,
                "sharding_headline": sharding_summary,
                "positional_headline": positional_summary,
                "plancache_headline": plancache_summary,
                "coldstart_headline": coldstart_summary,
                "procpool_headline": procpool_summary,
                "serving_headline": serving_summary,
            },
        }
        out.write_text(json.dumps(payload, indent=2) + "\n",
                       encoding="utf-8")
        print(f"\nwrote {len(runner.records)} scenario records to {out}")
        if staircase_summary:
            print(f"staircase headline: vectorized "
                  f"{staircase_summary['speedup']}x "
                  f"vs ll-list at scale {staircase_summary['scale']} "
                  f"({staircase_summary['size']})")
        if axes_summary:
            print(f"staircase axes headline: vectorized descendant "
                  f"{axes_summary['speedup']}x vs ll-dict at scale "
                  f"{axes_summary['scale']} ({axes_summary['size']})")
        if siblings_summary:
            print(f"staircase siblings headline: vectorized "
                  f"following-sibling {siblings_summary['speedup']}x "
                  f"vs the DOM walk at scale "
                  f"{siblings_summary['scale']} "
                  f"({siblings_summary['size']})")
        if sharding_summary:
            print(f"sharding headline: standoff select-wide workers=4 "
                  f"{sharding_summary['speedup']}x vs serial at scale "
                  f"{sharding_summary['scale']}")
        if positional_summary:
            print(f"positional headline: vectorized "
                  f"{positional_summary['case']} "
                  f"{positional_summary['speedup']}x vs the DOM walk "
                  f"at scale {positional_summary['scale']} "
                  f"({positional_summary['size']})")
        if plancache_summary:
            print(f"plancache headline: warm plan cache "
                  f"{plancache_summary['speedup']}x vs cold parsing "
                  f"over {plancache_summary['queries']} queries")
        if coldstart_summary:
            print(f"coldstart headline: mmap open "
                  f"{coldstart_summary['speedup']}x vs re-shred at "
                  f"scale {coldstart_summary['scale']} "
                  f"({coldstart_summary['size']})")
        if procpool_summary:
            print(f"procpool headline: process executor "
                  f"{procpool_summary['speedup_vs_threads']}x vs "
                  f"workers=4 threads on {procpool_summary['axis']} "
                  f"at scale {procpool_summary['scale']} "
                  f"({procpool_summary['size']})")
        if serving_summary:
            print(f"serving headline: {serving_summary['qps']} qps, "
                  f"p50 {serving_summary['p50_ms']}ms / p99 "
                  f"{serving_summary['p99_ms']}ms over "
                  f"{serving_summary['queries']} mixed queries at "
                  f"concurrency {serving_summary['concurrency']}, "
                  f"scale {serving_summary['scale']} "
                  f"({serving_summary['size']})")

    gate_problems: list[str] = []
    gate_ran = required and not smoke \
        and (args.compare is not None or args.only is None)
    if gate_ran:
        gate_problems = missing_required_families(payload, required)

    baseline_path = resolve_baseline(args.baseline, pr_label, smoke)
    if baseline_path is None:
        if gate_problems:
            for problem in gate_problems:
                print(f"FAIL: {problem}")
            return 1
        if args.compare is not None:
            print("no baseline to compare against "
                  "(pass --baseline PATH)")
            return 1
        return 0
    if not baseline_path.exists():
        print(f"baseline {baseline_path} does not exist")
        return 1
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    problems, report = compare_trajectories(payload, baseline)
    problems = gate_problems + problems
    print(f"\ntrajectory diff vs {baseline_path.name} "
          f"({baseline.get('pr', '?')}):")
    for line in report:
        print(line)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}")
        return 1
    print("trajectory check OK: no missing scenarios, no new DNFs"
          + (", required families present" if gate_ran else ""))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
