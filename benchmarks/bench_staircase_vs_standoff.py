"""§4.6 claim C: loop-lifted select-narrow is < ~20 % slower than
loop-lifted descendant Staircase Join.

Both algorithms answer "which candidates fall inside each context
window, per iteration" — Staircase Join on the tree's pre/size windows,
StandOff MergeJoin on (potentially overlapping) annotation regions.  We
run both over the same StandOff XMark document with the same context
(one iteration per open_auction) and the same candidates (the bidder
elements); inputs are prepared outside the timed region so the measured
work is the join scan itself.
"""

import pytest

from repro.core.mergejoin_ll import IterContext, ll_select_narrow
from repro.staircase.loop_lifted import ll_descendant_join


@pytest.fixture(scope="module")
def inputs(xmark_db):
    stored = xmark_db.store.get("xmark.xml")
    shredded = stored.shredded
    index = stored.region_index()
    auction_pres = shredded.elements_named("open_auction")
    context_rows = [(it, int(pre))
                    for it, pre in enumerate(auction_pres.tolist())]
    candidates = shredded.elements_named("bidder")
    cand_table = index.candidates(candidates)
    fetched = index.fetch([pre for _it, pre in context_rows])
    by_id = {}
    for s, e, i in zip(fetched.starts.tolist(), fetched.ends.tolist(),
                       fetched.ids.tolist()):
        by_id[i] = (s, e)
    context = IterContext.from_rows(
        (it, pre, *by_id[pre]) for it, pre in context_rows)
    return shredded, context_rows, candidates, context, cand_table


def test_ll_descendant_staircase(benchmark, inputs):
    shredded, context_rows, candidates, _context, _cand_table = inputs
    result = benchmark(
        lambda: ll_descendant_join(shredded, context_rows, candidates))
    assert result


def test_ll_select_narrow(benchmark, inputs):
    _shredded, _rows, _candidates, context, cand_table = inputs
    result = benchmark(lambda: ll_select_narrow(context, cand_table))
    assert result


def test_join_results_agree(inputs):
    """Same question, same answer: the region windows of an unpermuted-
    by-containment pair coincide with pre/size windows per iteration."""
    shredded, context_rows, candidates, context, cand_table = inputs
    staircase = ll_descendant_join(shredded, context_rows, candidates)
    standoff = ll_select_narrow(context, cand_table)
    # The permuted document moved elements, but regions preserve the
    # ORIGINAL containment; staircase sees the PERMUTED tree.  They agree
    # on which bidders belong to which auction whenever the permutation
    # did not move that bidder out of its auction subtree — which it
    # never does below the permutation depth.  So the standoff answer is
    # a superset per iteration.
    for it, pres in staircase.items():
        assert set(pres) <= set(standoff.get(it, [])), it


def test_relative_slowdown_is_bounded(inputs):
    """The headline ratio: the paper reports <= ~1.2x inside MonetDB;
    after inlining the active-list fast path we measure ~1.1-1.2x here.
    Asserted at 2x to keep CI robust; EXPERIMENTS.md records the
    measured value."""
    import time

    shredded, context_rows, candidates, context, cand_table = inputs

    def time_it(fn, repeats=7):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    staircase = time_it(
        lambda: ll_descendant_join(shredded, context_rows, candidates))
    standoff = time_it(lambda: ll_select_narrow(context, cand_table))
    assert standoff < 2.0 * staircase + 0.01, (standoff, staircase)
