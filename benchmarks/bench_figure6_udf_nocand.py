"""§4.6 claim A: the UDF *without* candidate sequence DNFs everywhere.

The paper reports that the plain Figure-2 UDF (semi-join against all
document nodes, ``//*``) did not finish within an hour at any document
size; with candidate pushdown it finishes but remains 1-2 orders of
magnitude behind the merge joins.  We time the no-candidate form on a
*tiny* instance so it terminates, and assert the growth: it must be
substantially slower than the candidate form on the same instance.
"""

import pytest

from repro.xmark import query_text

#: select-narrow with no name restriction: candidates = all annotations.
NOCAND_QUERY = (
    'for $b in doc("xmark.xml")//site/select-narrow::open_auctions\n'
    '         /select-narrow::open_auction\n'
    'return count($b/select-narrow::*)'
)


def test_udf_without_candidates(benchmark, xmark_db_tiny):
    result = benchmark.pedantic(
        lambda: xmark_db_tiny.query(NOCAND_QUERY, strategy="udf"),
        rounds=1, iterations=1)
    assert len(result) >= 1


def test_udf_with_candidates(benchmark, xmark_db_tiny):
    query = query_text("q2", "xmark.xml", standoff=True)
    result = benchmark.pedantic(
        lambda: xmark_db_tiny.query(query, strategy="udf"),
        rounds=3, iterations=1)
    assert len(result) >= 1


def test_nocand_is_much_slower_than_ll(xmark_db_tiny):
    """Directly compare wall-clock on the same instance."""
    import time

    start = time.perf_counter()
    xmark_db_tiny.query(NOCAND_QUERY, strategy="udf")
    nocand = time.perf_counter() - start

    start = time.perf_counter()
    xmark_db_tiny.query(NOCAND_QUERY, strategy="ll")
    ll = time.perf_counter() - start
    assert nocand > 3 * ll, (nocand, ll)
