"""Sharded fan-out execution: serial reference vs worker-pool fan-out.

Two workloads through the real execution layers (the trajectory
harness's ``sharding.*`` family sweeps sizes; this file keeps the
pytest-benchmark view at one scale):

* **StandOff iteration sharding** — a dense loop-lifted select join
  through :func:`repro.core.steps.standoff_step`; the planner splits
  the context into contiguous iteration ranges, one batched kernel
  call per shard.  This is the workload where the thread fan-out wins
  (the vectorized kernel's sort/searchsorted phases release the GIL).
* **Staircase pool sharding** — the XMark following-axis step through
  :func:`repro.staircase.kernels_vec.staircase_join` with the bidder
  pool split into contiguous pre-order ranges.  Output-bound
  (memory-bandwidth-saturated) axes gain little from threads; the
  scenario documents that honestly.
"""

import pytest

from conftest import synthetic_regions
from repro.core.naive import StandoffOp
from repro.core.steps import Strategy, standoff_step
from repro.staircase import staircase_join

N_CANDIDATES = 20_000
N_ITERS = 250
PER_ITER = 20


@pytest.fixture(scope="module")
def standoff_inputs():
    index = synthetic_regions(N_CANDIDATES, seed=3)
    ids = index.annotated_ids().tolist()
    context = []
    cursor = 0
    for it in range(N_ITERS):
        for _ in range(PER_ITER):
            context.append((it, 0, ids[cursor % len(ids)]))
            cursor += 17
    return context, {0: index}


@pytest.fixture(scope="module")
def staircase_inputs(xmark_db):
    stored = xmark_db.store.get("xmark.xml")
    shredded = stored.shredded
    context = [(it, int(pre)) for it, pre in
               enumerate(shredded.elements_named("open_auction").tolist())]
    return shredded, context, shredded.elements_named("bidder")


@pytest.mark.parametrize("workers", ["serial", 4])
def test_standoff_select_wide(benchmark, standoff_inputs, workers):
    context, indexes = standoff_inputs
    result = benchmark(lambda: standoff_step(
        StandoffOp.SELECT_WIDE, context, indexes,
        strategy=Strategy.LOOP_LIFTED, kernel="vectorized",
        workers=workers, shard_min_rows=512))
    assert len(result) == N_ITERS


@pytest.mark.parametrize("workers", ["serial", 4])
def test_staircase_following(benchmark, staircase_inputs, workers):
    shredded, context, candidates = staircase_inputs
    result = benchmark(lambda: staircase_join(
        "following", shredded, context, candidates,
        kernel="vectorized", workers=workers, shard_min_rows=512))
    assert len(result) > 0


def test_sharded_equals_serial(standoff_inputs, staircase_inputs):
    context, indexes = standoff_inputs
    serial = standoff_step(StandoffOp.SELECT_WIDE, context, indexes,
                           strategy=Strategy.LOOP_LIFTED,
                           kernel="vectorized", workers="serial")
    sharded = standoff_step(StandoffOp.SELECT_WIDE, context, indexes,
                            strategy=Strategy.LOOP_LIFTED,
                            kernel="vectorized", workers=4,
                            shard_min_rows=512)
    assert serial == sharded
    shredded, s_context, candidates = staircase_inputs
    assert staircase_join("following", shredded, s_context, candidates,
                          kernel="vectorized", workers="serial") == \
        staircase_join("following", shredded, s_context, candidates,
                       kernel="vectorized", workers=4,
                       shard_min_rows=512)
