"""Tests for the Database facade and QueryResult."""

import pytest

from repro import Database
from repro.errors import ReproError
from repro.xquery.engine import QueryResult


@pytest.fixture
def db():
    database = Database()
    database.add_document("a.xml", '<a x="1"><b start="1" end="2"/></a>')
    return database


class TestDatabase:
    def test_contains_and_document(self, db):
        assert "a.xml" in db
        assert "b.xml" not in db
        assert db.document("a.xml").uri == "a.xml"

    def test_remove_document(self, db):
        db.remove_document("a.xml")
        assert "a.xml" not in db

    def test_unknown_strategy(self, db):
        with pytest.raises(ValueError):
            db.query("1", strategy="warp9")

    def test_unknown_pushdown(self, db):
        with pytest.raises(ValueError):
            db.query("1", pushdown="sometimes")

    def test_context_uri_enables_relative_paths(self, db):
        result = db.query("count(//b)", context_uri="a.xml")
        assert result == [1]
        result = db.query("/a/@x", context_uri="a.xml")
        assert result.atomized() == ["1"]

    def test_context_uri_bulk(self, db):
        result = db.query("count(//b)", context_uri="a.xml",
                          strategy="ll")
        assert result == [1]

    def test_absolute_path_without_context_fails(self, db):
        from repro.errors import XQueryDynamicError

        with pytest.raises(XQueryDynamicError):
            db.query("//b")

    def test_variables_kwarg(self, db):
        assert db.query("$x + $y", variables={"x": 1, "y": 2}) == [3]
        assert db.query("count($xs)",
                        variables={"xs": [1, 2, 3]}) == [3]

    def test_explain_renders_ast(self, db):
        text = db.explain("1 + 2")
        assert "BinaryOp" in text

    def test_lazy_database_export(self):
        import repro

        assert repro.Database is Database
        with pytest.raises(AttributeError):
            repro.does_not_exist


class TestQueryResult:
    def test_is_a_list(self, db):
        result = db.query("(1, 2)")
        assert isinstance(result, QueryResult)
        assert isinstance(result, list)
        assert result + [3] == [1, 2, 3]

    def test_serialize_mixed(self, db):
        result = db.query('(1, "x", <e/>)')
        assert result.serialize(sep=" ") == "1 x <e/>"

    def test_serialize_indent(self, db):
        result = db.query("<a><b><c/></b></a>")
        assert "\n  " in result.serialize(indent=True)

    def test_atomized(self, db):
        result = db.query('doc("a.xml")//b')
        assert result.atomized() == [""]

    def test_empty_serialize(self, db):
        assert db.query("()").serialize() == ""


class TestObservability:
    def test_standoff_join_call_counter(self, db):
        """The paper's basic-vs-ll difference is visible in join calls:
        the loop-lifted strategy issues one call per step, the basic
        strategy one per iteration."""
        from repro.core.steps import Strategy
        from repro.xquery.context import DynamicContext
        from repro.xquery.evaluator import evaluate_module
        from repro.xquery.bulk import evaluate_module_bulk
        from repro.xquery.parser import parse

        database = Database()
        database.add_document("m.xml", """
            <s>
              <c id="1" start="0" end="10"/>
              <c id="2" start="20" end="30"/>
              <c id="3" start="40" end="50"/>
              <t start="1" end="2"/>
              <t start="21" end="22"/>
            </s>""")
        query = parse('for $c in doc("m.xml")//c '
                      'return count($c/select-narrow::t)')

        ctx = DynamicContext(database.store,
                             strategy=Strategy.BASIC)
        evaluate_module(query, ctx)
        assert ctx.standoff_join_calls == 3      # one per iteration

        ctx = DynamicContext(database.store,
                             strategy=Strategy.LOOP_LIFTED)
        evaluate_module_bulk(query, ctx)
        assert ctx.standoff_join_calls == 1      # one for the whole loop


class TestStandoffConversionAPI:
    def test_add_document_standoff(self):
        db = Database()
        db.add_document_standoff(
            "book.xml",
            "<book><title>Stand-Off</title>"
            "<chapter>One upon a time.</chapter></book>")
        # structure preserved, text moved to the BLOB
        assert db.query('count(doc("book.xml")//chapter/text())') == [0]
        (title,) = db.query(
            'blob-content("book.xml.blob", doc("book.xml")//title)')
        assert "Stand-Off" in title
        # select-narrow == descendant on the unpermuted conversion
        narrow = db.query('doc("book.xml")//book/select-narrow::title')
        descend = db.query('doc("book.xml")//book/descendant::title')
        assert [n.pre for n in narrow] == [n.pre for n in descend]

    def test_custom_blob_uri(self):
        db = Database()
        db.add_document_standoff("d.xml", "<d>text</d>",
                                 blob_uri="corpus")
        assert db.query('blob-length("corpus")')[0] > 0
