"""Tests for StandoffConfig and the error hierarchy."""

import pytest

from repro.config import (
    DEFAULT_CONFIG,
    OPTION_END,
    OPTION_REGION,
    OPTION_START,
    OPTION_TYPE,
    StandoffConfig,
)
from repro import errors


class TestStandoffConfig:
    def test_defaults_match_paper(self):
        assert DEFAULT_CONFIG.position_type == "xs:integer"
        assert DEFAULT_CONFIG.start_name == "start"
        assert DEFAULT_CONFIG.end_name == "end"
        assert DEFAULT_CONFIG.region_name is None
        assert not DEFAULT_CONFIG.uses_region_elements

    def test_from_options(self):
        config = StandoffConfig.from_options({
            OPTION_TYPE: "xs:double",
            OPTION_START: "b",
            OPTION_END: "e",
            OPTION_REGION: "span",
        })
        assert config.position_type == "xs:double"
        assert config.uses_region_elements
        assert config.region_name == "span"

    def test_from_options_defaults(self):
        config = StandoffConfig.from_options({})
        assert config == DEFAULT_CONFIG

    def test_unknown_option_rejected(self):
        with pytest.raises(errors.XQueryStaticError):
            StandoffConfig.from_options({"standoff-oops": "x"})

    def test_bad_type_rejected(self):
        with pytest.raises(errors.XQueryStaticError):
            StandoffConfig(position_type="xs:duration")

    def test_equal_names_rejected(self):
        with pytest.raises(errors.XQueryStaticError):
            StandoffConfig(start_name="pos", end_name="pos")

    def test_empty_name_rejected(self):
        with pytest.raises(errors.XQueryStaticError):
            StandoffConfig(start_name="")

    def test_parse_position_integer(self):
        assert DEFAULT_CONFIG.parse_position(" 42 ") == 42
        assert isinstance(DEFAULT_CONFIG.parse_position("42"), int)

    def test_parse_position_double(self):
        config = StandoffConfig(position_type="xs:double")
        assert config.parse_position("2.5") == 2.5
        assert not config.integral_positions

    def test_parse_position_garbage(self):
        with pytest.raises(errors.RegionError):
            DEFAULT_CONFIG.parse_position("two")
        with pytest.raises(errors.RegionError):
            DEFAULT_CONFIG.parse_position("2.5")  # not an integer

    def test_hashable_for_cache_keys(self):
        a = StandoffConfig()
        b = StandoffConfig()
        assert hash(a) == hash(b)
        assert a == b
        assert len({a, b}) == 1


class TestErrorHierarchy:
    def test_everything_is_reproerror(self):
        leaf_types = [
            errors.RegionError,
            errors.XMLSyntaxError,
            errors.ShredError,
            errors.RelationalError,
            errors.XQuerySyntaxError,
            errors.XQueryStaticError,
            errors.XQueryTypeError,
            errors.XQueryDynamicError,
            errors.UnsupportedFeatureError,
        ]
        for exc_type in leaf_types:
            assert issubclass(exc_type, errors.ReproError), exc_type
        # The DNF interrupt is raised from a SIGALRM handler at arbitrary
        # bytecode boundaries; it must escape broad `except Exception`
        # clauses, so it sits outside the library error hierarchy.
        assert issubclass(errors.BenchmarkTimeout, BaseException)
        assert not issubclass(errors.BenchmarkTimeout, Exception)

    def test_xquery_errors_carry_codes(self):
        error = errors.XQueryTypeError("bad")
        assert error.code == "err:XPTY0004"
        assert "[err:XPTY0004]" in str(error)

    def test_syntax_error_position(self):
        error = errors.XQuerySyntaxError("oops", line=3, column=7)
        assert error.line == 3
        assert "line 3" in str(error)

    def test_xml_error_position(self):
        error = errors.XMLSyntaxError("oops", line=2, column=5)
        assert "line 2" in str(error)

    def test_benchmark_timeout_budget(self):
        error = errors.BenchmarkTimeout("slow", 30.0)
        assert error.budget_seconds == 30.0

    def test_one_except_clause_catches_all(self):
        try:
            raise errors.XQueryDynamicError("x")
        except errors.ReproError:
            pass
