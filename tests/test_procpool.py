"""The process-pool executor: real processes, identical answers.

The executor knob may only change *where* shards run, never what they
compute.  These tests pin:

* that the pool really is other processes (worker PIDs differ);
* that the store-backed staircase dispatch actually routes through
  :mod:`repro.exec.procpool` — and returns arrays byte-identical to
  the serial call;
* engine-level answer parity for process vs thread vs serial across
  backends, including the graceful thread fallback when a document has
  no store behind it (memory backend, constructed fragments).
"""

import os

import numpy as np
import pytest

from repro import storage
from repro.exec import procpool
from repro.staircase.kernels_vec import staircase_join
from repro.xquery.engine import Database

WORKERS = 2

XML = "<doc>" + "".join(
    f"<s id='{i}' start='{i * 10}' end='{i * 10 + 9}'>"
    + "".join(f"<w start='{i * 10 + j}' end='{i * 10 + j}'>t{j}</w>"
              for j in range(6))
    + "</s>" for i in range(120)) + "</doc>"

QUERIES = (
    "for $s in doc('d.xml')//s return count($s/following::w)",
    "for $s in doc('d.xml')//s return count($s/preceding::w)",
    "doc('d.xml')//s[@id='7']/descendant::w",
    "for $w in doc('d.xml')//w[@start < 40] "
    "return standoff:select-wide(doc('d.xml')//s, $w)",
    "for $s in doc('d.xml')//s[position() < 20] "
    "return count($s/reject-narrow::w)",
)


def build(backend):
    db = Database(storage_backend=backend)
    db.add_document("d.xml", XML)
    return db


def test_workers_are_separate_processes():
    pids = procpool.worker_pids(WORKERS)
    assert pids
    assert os.getpid() not in pids


def test_store_backed_staircase_roundtrip(tmp_path):
    """The direct procpool staircase path must match the serial call
    array-for-array."""
    path = str(tmp_path / "d.repro")
    storage.save_store(path, build("memory"))
    sh = storage.StoreReader(path).shredded("d.xml")
    assert sh.store_ref is not None
    context = [(it, pre) for it, pre in
               enumerate(sh.all_element_pres().tolist()[:80])]
    for axis, desc in (("following", ("name", "w")),
                       ("preceding", ("name", "w")),
                       ("descendant", ("non-attr",)),
                       ("child", ("all-elements",))):
        pool = procpool.resolve_staircase_pool(sh, desc)
        serial = staircase_join(axis, sh, context, pool,
                                kernel="vectorized", workers="serial")
        via_procs = staircase_join(axis, sh, context, pool,
                                   kernel="vectorized", workers=WORKERS,
                                   shard_min_rows=1, executor="process",
                                   candidate_desc=desc)
        assert np.array_equal(serial.iters, via_procs.iters), axis
        assert np.array_equal(serial.offsets, via_procs.offsets), axis
        assert np.array_equal(serial.values, via_procs.values), axis


def test_process_dispatch_actually_engages(monkeypatch):
    """Under the mmap backend the staircase fan-out must really route
    through the process pool (not silently fall back to threads)."""
    calls = []
    real = procpool.run_staircase

    def spy(*args, **kwargs):
        calls.append(args[0])
        return real(*args, **kwargs)

    monkeypatch.setattr(procpool, "run_staircase", spy)
    db = build("mmap")
    db.query("for $s in doc('d.xml')//s return count($s/following::w)",
             strategy="ll", staircase_kernel="vectorized",
             workers=WORKERS, shard_min_rows=1, executor="process")
    assert "following" in calls


def test_memory_backend_falls_back_to_threads(monkeypatch):
    """No store behind the document: the process executor must degrade
    to the thread path — same answers, no crash, no process dispatch."""

    def boom(*_args, **_kwargs):  # pragma: no cover - must not run
        raise AssertionError("process dispatch without a store")

    monkeypatch.setattr(procpool, "run_staircase", boom)
    monkeypatch.setattr(procpool, "run_standoff", boom)
    db = build("memory")
    for query in QUERIES:
        want = db.query(query, strategy="ll",
                        workers="serial").serialize()
        got = db.query(query, strategy="ll", workers=WORKERS,
                       shard_min_rows=1,
                       executor="process").serialize()
        assert got == want, query


@pytest.mark.parametrize("backend", ["memory", "mmap"])
def test_engine_parity_across_executors(backend):
    db = build(backend)
    reference = build("memory")
    for query in QUERIES:
        want = reference.query(query, workers="serial").serialize()
        for executor in ("thread", "process"):
            got = db.query(query, strategy="ll", workers=WORKERS,
                           shard_min_rows=1,
                           executor=executor).serialize()
            assert got == want, (backend, executor, query)


def test_standoff_process_path(tmp_path):
    """StandOff joins over an opened store: the region indexes carry
    store refs, so the process path engages end to end."""
    path = str(tmp_path / "d.repro")
    storage.save_store(path, build("memory"))
    db = storage.open_store(path)
    reference = build("memory")
    query = ("for $w in doc('d.xml')//w "
             "return standoff:select-wide(doc('d.xml')//s, $w)")
    want = reference.query(query, workers="serial").serialize()
    got = db.query(query, strategy="ll", workers=WORKERS,
                   shard_min_rows=1, executor="process").serialize()
    assert got == want


def test_shared_memory_transport_roundtrip(tmp_path, monkeypatch):
    """Forcing every result through the shared-memory transport (the
    large-result path) must not change a single array element, and the
    segments must be unlinked once the merge is done."""
    monkeypatch.setattr(procpool, "SHM_MIN_BYTES", 0)
    path = str(tmp_path / "d.repro")
    storage.save_store(path, build("memory"))
    sh = storage.StoreReader(path).shredded("d.xml")
    context = [(it, pre) for it, pre in
               enumerate(sh.all_element_pres().tolist()[:80])]
    desc = ("name", "w")
    pool = procpool.resolve_staircase_pool(sh, desc)
    serial = staircase_join("following", sh, context, pool,
                            kernel="vectorized", workers="serial")
    via_shm = staircase_join("following", sh, context, pool,
                             kernel="vectorized", workers=WORKERS,
                             shard_min_rows=1, executor="process",
                             candidate_desc=desc)
    assert np.array_equal(serial.iters, via_shm.iters)
    assert np.array_equal(serial.offsets, via_shm.offsets)
    assert np.array_equal(serial.values, via_shm.values)
    leftovers = [name for name in os.listdir("/dev/shm")
                 if name.startswith("psm_")] \
        if os.path.isdir("/dev/shm") else []
    assert not leftovers, leftovers


def test_executor_validation():
    db = build("memory")
    with pytest.raises(ValueError, match="executor"):
        db.query("1 + 1", executor="carrier-pigeon")


def test_warm_pool():
    procpool.warm_pool(WORKERS)
    assert procpool.worker_pids(WORKERS)


def test_broken_pool_evicted_and_rebuilt(tmp_path):
    """A worker dying mid-job breaks the whole pool; the next dispatch
    must evict the carcass from ``_PROC_POOLS``, rebuild, and retry —
    not keep raising ``BrokenProcessPool`` forever."""
    from concurrent.futures.process import BrokenProcessPool

    procpool.warm_pool(WORKERS)
    pool = procpool._proc_pool(WORKERS)
    with pytest.raises(BrokenProcessPool):
        pool.submit(os._exit, 13).result()

    # the cached pool is now broken; both the pool utilities and a real
    # store-backed staircase dispatch must transparently recover
    pids = procpool.worker_pids(WORKERS)
    assert pids and os.getpid() not in pids

    path = str(tmp_path / "d.repro")
    storage.save_store(path, build("memory"))
    db = storage.open_store(path)
    reference = build("memory")
    query = QUERIES[0]
    want = reference.query(query, workers="serial").serialize()

    broken = procpool._proc_pool(WORKERS)
    with pytest.raises(BrokenProcessPool):
        broken.submit(os._exit, 13).result()
    got = db.query(query, strategy="ll", workers=WORKERS,
                   shard_min_rows=1, executor="process").serialize()
    assert got == want


def test_shm_unlinked_when_merge_fails(tmp_path, monkeypatch):
    """A failure between a worker publishing its shared-memory payload
    and the caller consuming it must not leak the segment: the error
    path drains the remaining futures and unlinks every payload."""
    monkeypatch.setattr(procpool, "SHM_MIN_BYTES", 0)
    path = str(tmp_path / "d.repro")
    storage.save_store(path, build("memory"))
    sh = storage.StoreReader(path).shredded("d.xml")
    context = [(it, pre) for it, pre in
               enumerate(sh.all_element_pres().tolist()[:80])]
    desc = ("name", "w")
    pool = procpool.resolve_staircase_pool(sh, desc)

    real = procpool._unpack_columnar
    consumed = []

    def unpack_once_then_fail(payload, handles):
        if consumed:
            raise RuntimeError("merge failure")
        consumed.append(1)
        return real(payload, handles)

    monkeypatch.setattr(procpool, "_unpack_columnar",
                        unpack_once_then_fail)
    with pytest.raises(RuntimeError, match="merge failure"):
        staircase_join("following", sh, context, pool,
                       kernel="vectorized", workers=WORKERS,
                       shard_min_rows=1, executor="process",
                       candidate_desc=desc)
    assert consumed, "expected the first shard to be consumed"
    leftovers = [name for name in os.listdir("/dev/shm")
                 if name.startswith("psm_")] \
        if os.path.isdir("/dev/shm") else []
    assert not leftovers, leftovers
