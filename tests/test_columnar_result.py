"""Tests for the columnar (offsets + values) join-result backbone.

Covers the ``ColumnarResult`` <-> dict round-trip (empty iterations,
unsorted input, duplicates — property-based), the ``Mapping``
compatibility adapter, the shared anti-join ``complement`` helper, the
per-fragment columnar concatenation of the step layer, the lazy
``LazyIterData`` decode path, and the ``auto`` kernel selection
heuristic.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    AUTO_KERNEL_MAX_PAIRS,
    AUTO_KERNEL_MIN_ROWS,
    FAMILY_STAIRCASE,
    FAMILY_STANDOFF,
    KERNEL_AUTO,
    KERNEL_LL,
    KERNEL_VECTORIZED,
    KERNELS,
)
from repro.core import IterContext, RegionTable, StandoffOp, standoff_step
from repro.core.kernels_vec import kernel_join, vec_join
from repro.core.mergejoin_ll import ll_join
from repro.core.region_index import RegionIndex
from repro.relational import (
    ColumnarResult,
    ColumnarStepResult,
    IterSeq,
    LazyIterData,
    complement,
)
from repro.xquery import Database


def canonical(mapping):
    """The canonical form of a dict-shaped result: sorted unique ids."""
    return {it: sorted(set(ids)) for it, ids in mapping.items()}


# ----------------------------------------------------------------------
# ColumnarResult <-> dict round-trip
# ----------------------------------------------------------------------

result_dicts = st.dictionaries(
    keys=st.integers(min_value=-50, max_value=10_000),
    values=st.lists(st.integers(min_value=0, max_value=500), max_size=8),
    max_size=12)


class TestRoundTrip:
    @given(result_dicts)
    @settings(max_examples=200, deadline=None)
    def test_dict_roundtrip_is_canonical(self, mapping):
        col = ColumnarResult.from_dict(mapping)
        assert col.to_dict() == canonical(mapping)
        assert col == canonical(mapping)

    @given(result_dicts)
    @settings(max_examples=100, deadline=None)
    def test_csr_invariants(self, mapping):
        col = ColumnarResult.from_dict(mapping)
        assert len(col.offsets) == len(col.iters) + 1
        assert col.offsets[0] == 0
        assert col.offsets[-1] == len(col.values)
        assert np.all(np.diff(col.offsets) >= 0)
        if len(col.iters) > 1:
            assert np.all(np.diff(col.iters) > 0)
        for i in range(len(col.iters)):
            seg = col.values[col.offsets[i]:col.offsets[i + 1]]
            if len(seg) > 1:
                assert np.all(np.diff(seg) > 0)

    def test_empty_iterations_survive(self):
        mapping = {3: [], 1: [5, 2], 7: []}
        col = ColumnarResult.from_dict(mapping)
        assert col.to_dict() == {1: [2, 5], 3: [], 7: []}
        assert col[3] == []
        assert 7 in col

    @given(st.lists(st.tuples(st.integers(0, 40), st.integers(0, 60)),
                    max_size=60))
    @settings(max_examples=200, deadline=None)
    def test_from_pairs_matches_grouping(self, pairs):
        """Unsorted, duplicated pairs canonicalize like dict grouping."""
        random.Random(0).shuffle(pairs)
        iters = np.asarray([p[0] for p in pairs], np.int64)
        vals = np.asarray([p[1] for p in pairs], np.int64)
        col = ColumnarResult.from_pairs(iters, vals)
        grouped = {}
        for it, v in pairs:
            grouped.setdefault(it, set()).add(v)
        assert col.to_dict() == {it: sorted(vs)
                                 for it, vs in grouped.items()}

    def test_from_pairs_flags(self):
        iters = np.asarray([0, 0, 1], np.int64)
        vals = np.asarray([2, 5, 1], np.int64)
        fast = ColumnarResult.from_pairs(iters, vals, presorted=True,
                                         unique=True)
        assert fast.to_dict() == {0: [2, 5], 1: [1]}


class TestMappingAdapter:
    def make(self):
        return ColumnarResult.from_dict({0: [3, 1], 2: [], 5: [9]})

    def test_mapping_protocol(self):
        col = self.make()
        assert len(col) == 3
        assert list(col) == [0, 2, 5]
        assert col[0] == [1, 3]
        assert col.get(2) == []
        assert col.get(1, "missing") == "missing"
        assert 5 in col and 4 not in col
        with pytest.raises(KeyError):
            col[4]
        assert dict(col.items()) == {0: [1, 3], 2: [], 5: [9]}

    def test_decode_is_cached(self):
        col = self.make()
        assert col[0] is col[0]

    def test_equality(self):
        col = self.make()
        assert col == {0: [1, 3], 2: [], 5: [9]}
        assert col != {0: [1, 3], 5: [9]}          # empty slice matters
        assert col == ColumnarResult.from_dict({0: [1, 3], 2: [], 5: [9]})
        assert col != ColumnarResult.from_dict({0: [1, 3], 5: [9]})
        assert col != 17
        assert ColumnarResult.empty() == {}

    def test_columnar_accessors(self):
        col = self.make()
        assert col.n_values == 3
        assert col.iterations() == [0, 2, 5]
        assert col.values_for(0).tolist() == [1, 3]
        assert col.slice_of(5) == (2, 3)

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(self.make())


# ----------------------------------------------------------------------
# the shared complement helper
# ----------------------------------------------------------------------

def brute_complement(selected, iterations, universe):
    return {it: [x for x in universe if x not in set(selected.get(it, []))]
            for it in iterations}


class TestComplement:
    @given(result_dicts, st.lists(st.integers(0, 500), max_size=20),
           st.booleans())
    @settings(max_examples=150, deadline=None)
    def test_matches_brute_force(self, selected, universe, tiny_budget):
        selected = canonical(selected)
        universe = sorted(set(universe))
        iterations = sorted(set(selected) | {0, 1})
        # selected ids must come from the universe (join invariant)
        selected = {it: [x for x in ids if x in set(universe)]
                    for it, ids in selected.items()}
        budget = 1 if tiny_budget else 32_000_000
        got = complement(selected, iterations,
                         np.asarray(universe, np.int64), budget=budget)
        assert got.to_dict() == brute_complement(selected, iterations,
                                                 universe)

    def test_columnar_selected_input(self):
        selected = ColumnarResult.from_dict({0: [1, 3], 2: [5]})
        universe = np.asarray([1, 3, 5], np.int64)
        got = complement(selected, [0, 1, 2], universe)
        assert got == {0: [5], 1: [1, 3, 5], 2: [1, 3]}

    def test_empty_universe_and_iterations(self):
        assert complement({}, [], np.empty(0, np.int64)) == {}
        assert complement({}, [4], np.empty(0, np.int64)) == {4: []}

    def test_budget_fallback_equivalence(self):
        rng = random.Random(3)
        universe = np.asarray(sorted(rng.sample(range(1000), 80)), np.int64)
        selected = {it: sorted(rng.sample(universe.tolist(), 10))
                    for it in range(15)}
        full = complement(selected, range(20), universe)
        tiny = complement(selected, range(20), universe, budget=1)
        assert full == tiny

    def test_ll_and_vec_rejects_share_it(self):
        """Both reject families produce complement-shaped results."""
        ctx = IterContext.from_rows([(0, 1, 0, 10), (1, 2, 50, 60)])
        cand = RegionTable.from_rows([(2, 3, 7), (55, 58, 8), (90, 95, 9)])
        vec = vec_join(StandoffOp.REJECT_NARROW, ctx, cand)
        ll = ll_join(StandoffOp.REJECT_NARROW, ctx, cand)
        assert isinstance(vec, ColumnarResult)
        assert vec.to_dict() == ll == {0: [8, 9], 1: [7, 9]}


# ----------------------------------------------------------------------
# per-fragment columnar concatenation
# ----------------------------------------------------------------------

class TestStepConcatenation:
    def test_mixed_dict_and_columnar_parts(self):
        parts = [(7, ColumnarResult.from_dict({0: [2, 4], 1: []})),
                 (3, {0: [1], 2: [9]})]
        merged = ColumnarStepResult.from_fragments(parts)
        # fragment order is the given order (7 before 3), ids ascending
        # within each fragment; empty iteration 1 survives.
        assert merged == {0: [(7, 2), (7, 4), (3, 1)], 1: [], 2: [(3, 9)]}
        assert merged.n_pairs == 4
        assert merged.iterations() == [0, 1, 2]
        frags, vals = merged.segment(0)
        assert frags.tolist() == [7, 7, 3]
        assert vals.tolist() == [2, 4, 1]

    def test_empty(self):
        assert ColumnarStepResult.from_fragments([]) == {}
        assert ColumnarStepResult.from_fragments([(1, {})]) == {}

    def test_standoff_step_fragment_rank(self):
        index = RegionIndex.build([(1, 0, 100), (2, 10, 20)])
        indexes = {101: index, 102: index}
        context = [(0, 101, 1), (0, 102, 1)]
        default = standoff_step(StandoffOp.SELECT_NARROW, context, indexes)
        assert isinstance(default, ColumnarStepResult)
        assert default[0] == [(101, 1), (101, 2), (102, 1), (102, 2)]
        ranked = standoff_step(StandoffOp.SELECT_NARROW, context, indexes,
                               fragment_rank={101: 1, 102: 0})
        assert ranked[0] == [(102, 1), (102, 2), (101, 1), (101, 2)]


# ----------------------------------------------------------------------
# lazy decode path
# ----------------------------------------------------------------------

class TestLazyIterData:
    def test_decodes_only_accessed_iterations(self):
        decoded = []

        def decode(it):
            decoded.append(it)
            return [it * 10]

        lazy = LazyIterData([1, 2, 3], decode)
        assert lazy[2] == [20]
        assert decoded == [2]
        assert lazy[2] == [20]          # cached
        assert decoded == [2]
        assert len(lazy) == 3 and list(lazy) == [1, 2, 3]
        with pytest.raises(KeyError):
            lazy[9]
        assert lazy.get(9) is None

    def test_restrict_shares_cache_and_stays_lazy(self):
        decoded = []

        def decode(it):
            decoded.append(it)
            return [it]

        seq = IterSeq(LazyIterData([1, 2, 3, 4], decode))
        live = seq.restrict([2, 4])
        assert isinstance(live.data, LazyIterData)
        assert decoded == []
        assert live.items_for(4) == [4]
        assert seq.items_for(4) == [4]  # decoded once, shared cache
        assert decoded == [4]
        assert live.items_for(1) == []  # restricted away

    def test_dict_backed_restrict(self):
        seq = IterSeq({1: ["a"], 2: ["b"]})
        assert seq.restrict([2]).data == {2: ["b"]}

    def test_restricted_view_hides_cached_dead_iterations(self):
        """The shared cache must not leak restricted-away iterations."""
        lazy = LazyIterData([1, 2], lambda it: [it])
        assert lazy[2] == [2]           # decode *before* restricting
        live = lazy.restrict({1})
        assert live.get(2) is None      # cached but filtered out
        with pytest.raises(KeyError):
            live[2]
        assert 2 not in live
        assert lazy[2] == [2]           # parent view unaffected

    def test_where_clause_filters_cached_join_results(self):
        """End-to-end FLWOR repro: a where clause that decodes every
        iteration (count) must not resurrect filtered iterations."""
        db = Database()
        db.add_document("d.xml", """
            <d><a nr="1" start="0" end="10"/>
               <a nr="2" start="20" end="30"/>
               <b start="1" end="2"/><b start="3" end="4"/>
               <b start="21" end="22"/></d>""")
        query = ('for $x in doc("d.xml")//a '
                 'let $y := $x/select-narrow::b '
                 'where count($y) > 1 return $y')
        ll = db.query(query, strategy="ll").serialize()
        assert ll == db.query(query, strategy="basic").serialize()
        assert '<b start="21"' not in ll


# ----------------------------------------------------------------------
# auto kernel selection
# ----------------------------------------------------------------------

class TestAutoKernel:
    def test_select_kernel_threshold(self):
        def select(name, **kwargs):
            return KERNELS.select(FAMILY_STANDOFF, name, **kwargs)

        assert select(KERNEL_AUTO, context_rows=1,
                      candidate_rows=1) == KERNEL_LL
        big = AUTO_KERNEL_MIN_ROWS
        assert select(KERNEL_AUTO, context_rows=big,
                      candidate_rows=0) == KERNEL_VECTORIZED
        assert select(KERNEL_AUTO, context_rows=big,
                      tracing=True) == KERNEL_LL
        assert select(KERNEL_LL, context_rows=10**9) == KERNEL_LL
        assert select(KERNEL_VECTORIZED) == KERNEL_VECTORIZED
        with pytest.raises(ValueError, match="unknown join kernel"):
            select("simd")

    def test_select_kernel_density(self):
        """The density-aware component: a probe-pair estimate past the
        pair budget sends auto back to the reference merge (for every
        family that registers a vectorized kernel)."""
        big = AUTO_KERNEL_MIN_ROWS
        for family in (FAMILY_STANDOFF, FAMILY_STAIRCASE):
            assert KERNELS.select(family, KERNEL_AUTO, context_rows=big,
                                  probe_pairs=AUTO_KERNEL_MAX_PAIRS + 1
                                  ) == KERNEL_LL
            assert KERNELS.select(family, KERNEL_AUTO, context_rows=big,
                                  probe_pairs=AUTO_KERNEL_MAX_PAIRS
                                  ) == KERNEL_VECTORIZED

    def test_registry_families(self):
        assert set(KERNELS.families()) == {FAMILY_STANDOFF,
                                           FAMILY_STAIRCASE}
        for family in KERNELS.families():
            assert set(KERNELS.names(family)) == {KERNEL_LL,
                                                  KERNEL_VECTORIZED,
                                                  KERNEL_AUTO}
        with pytest.raises(ValueError, match="unknown join family"):
            KERNELS.validate("quantum", KERNEL_LL)

    @pytest.mark.parametrize("op", list(StandoffOp))
    def test_kernel_join_auto_matches_reference(self, op):
        rng = random.Random(11)
        for n_cand in (8, 600):                   # below / above threshold
            rows = [(it, it * 100 + k, s, s + rng.randrange(40))
                    for it in range(6) for k in range(4)
                    for s in (rng.randrange(2_000),)]
            cand = [(s, s + rng.randrange(30), 50_000 + i)
                    for i in range(n_cand)
                    for s in (rng.randrange(2_000),)]
            ctx = IterContext.from_rows(rows)
            table = RegionTable.from_rows(cand)
            auto = kernel_join(op, ctx, table, kernel=KERNEL_AUTO)
            assert auto == ll_join(op, ctx, table)

    def test_engine_and_cli_accept_auto(self, tmp_path):
        db = Database()
        db.add_document("d.xml", '<d><a start="0" end="9"/>'
                                 '<b start="2" end="3"/></d>')
        for strategy in ("basic", "ll"):
            got = db.query('doc("d.xml")//a/select-narrow::b',
                           strategy=strategy, kernel="auto").serialize()
            ref = db.query('doc("d.xml")//a/select-narrow::b',
                           strategy=strategy, kernel="ll").serialize()
            assert got == ref

        import io
        from repro.cli import CliSession

        out = io.StringIO()
        session = CliSession(out=out)
        session.handle("\\kernel auto")
        assert session.kernel == "auto"
        assert "kernel = auto" in out.getvalue()


class TestSegmentPositionColumns:
    """``segment_positions`` / ``segment_lengths``: the per-segment
    ordinal and length columns the positional-predicate kernels read
    straight off a CSR ``offsets`` array."""

    def test_forward_positions(self):
        from repro.relational.columnar import segment_positions

        offsets = np.array([0, 3, 3, 5], dtype=np.int64)
        assert segment_positions(offsets).tolist() == [1, 2, 3, 1, 2]

    def test_reverse_positions(self):
        from repro.relational.columnar import segment_positions

        offsets = np.array([0, 3, 3, 5], dtype=np.int64)
        got = segment_positions(offsets, reverse=True)
        assert got.tolist() == [3, 2, 1, 2, 1]

    def test_segment_lengths(self):
        from repro.relational.columnar import segment_lengths

        offsets = np.array([0, 3, 3, 5], dtype=np.int64)
        assert segment_lengths(offsets).tolist() == [3, 3, 3, 2, 2]

    def test_empty_offsets(self):
        from repro.relational.columnar import (
            segment_lengths,
            segment_positions,
        )

        offsets = np.array([0], dtype=np.int64)
        assert segment_positions(offsets).size == 0
        assert segment_lengths(offsets).size == 0

    @given(st.lists(st.integers(min_value=0, max_value=7),
                    min_size=1, max_size=12))
    @settings(max_examples=50, deadline=None)
    def test_matches_per_segment_enumeration(self, counts):
        from repro.relational.columnar import (
            segment_lengths,
            segment_positions,
        )

        offsets = np.concatenate(
            ([0], np.cumsum(counts))).astype(np.int64)
        forward, reverse, lengths = [], [], []
        for count in counts:
            forward.extend(range(1, count + 1))
            reverse.extend(range(count, 0, -1))
            lengths.extend([count] * count)
        assert segment_positions(offsets).tolist() == forward
        assert segment_positions(
            offsets, reverse=True).tolist() == reverse
        assert segment_lengths(offsets).tolist() == lengths
