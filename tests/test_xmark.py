"""XMark generator, StandOff conversion and benchmark-query tests."""

import pytest

from repro.xmark import (
    BASE_COUNTS,
    QUERY_IDS,
    generate_xmark,
    generate_xmark_document,
    query_text,
    rewrite_query_standoff,
    standoffize,
)
from repro.xmldb import parse_document
from repro.xquery import Database


@pytest.fixture(scope="module")
def small_doc():
    return generate_xmark_document(scale=0.08, seed=11)


@pytest.fixture(scope="module")
def standoff_db(small_doc):
    bundle = standoffize(small_doc, permute=True)
    db = Database()
    db.store.add("xmark.xml", bundle.document)
    return db


class TestGenerator:
    def test_deterministic(self):
        assert generate_xmark(0.05, seed=3) == generate_xmark(0.05, seed=3)

    def test_seed_changes_content(self):
        assert generate_xmark(0.05, seed=3) != generate_xmark(0.05, seed=4)

    def test_cardinalities_scale(self, small_doc):
        db = Database()
        db.store.add("x.xml", small_doc)
        scale = 0.08
        for entity, tag in (("items", "item"), ("persons", "person"),
                            ("open_auctions", "open_auction")):
            (count,) = db.query(f'count(doc("x.xml")//{tag})')
            expected = max(1, round(BASE_COUNTS[entity] * scale))
            assert count == expected, tag

    def test_structure_expected_sections(self, small_doc):
        site = small_doc.root_element
        assert site.tag == "site"
        sections = [el.tag for el in site.elements()]
        assert sections == ["regions", "categories", "people",
                            "open_auctions", "closed_auctions"]

    def test_person_ids_dense(self, small_doc):
        db = Database()
        db.store.add("x.xml", small_doc)
        (name,) = db.query(
            'doc("x.xml")//person[@id="person0"]/name/text()')
        assert name.string_value()

    def test_every_open_auction_has_bidder(self, small_doc):
        db = Database()
        db.store.add("x.xml", small_doc)
        (auctions,) = db.query('count(doc("x.xml")//open_auction)')
        (with_bidder,) = db.query(
            'count(doc("x.xml")//open_auction[bidder])')
        assert auctions == with_bidder

    def test_parses_after_serialization(self, small_doc):
        text = small_doc.serialize()
        reparsed = parse_document(text)
        assert reparsed.root_element.tag == "site"


class TestStandoffize:
    def test_blob_contains_text(self, small_doc):
        bundle = standoffize(small_doc, permute=False)
        # every original text chunk must appear in the BLOB
        for node in small_doc.descendants():
            if node.kind_name == "text":
                assert node.text in bundle.blob

    def test_annotation_document_has_no_text(self, small_doc):
        bundle = standoffize(small_doc)
        assert all(node.kind_name != "text"
                   for node in bundle.document.descendants())

    def test_every_element_has_region(self, small_doc):
        bundle = standoffize(small_doc)
        for node in bundle.document.descendants():
            if node.kind_name == "element":
                start = int(node.get_attribute("start"))
                end = int(node.get_attribute("end"))
                assert 0 <= start <= end < bundle.blob_size

    def test_regions_nest_like_original_tree(self, small_doc):
        """Unpermuted: child regions strictly inside parent regions."""
        bundle = standoffize(small_doc, permute=False)
        for node in bundle.document.descendants():
            if node.kind_name != "element" or node.parent is None \
                    or node.parent.kind_name != "element":
                continue
            ps = int(node.parent.get_attribute("start"))
            pe = int(node.parent.get_attribute("end"))
            s = int(node.get_attribute("start"))
            e = int(node.get_attribute("end"))
            assert ps < s <= e < pe

    def test_disjoint_subtrees_disjoint_regions(self, small_doc):
        bundle = standoffize(small_doc, permute=False)
        site = bundle.document.root_element
        sections = list(site.elements())
        spans = [(int(el.get_attribute("start")),
                  int(el.get_attribute("end"))) for el in sections]
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 < s2

    def test_permutation_changes_structure_not_regions(self, small_doc):
        plain = standoffize(small_doc, permute=False)
        permuted = standoffize(small_doc, permute=True)
        assert plain.blob == permuted.blob

        def region_set(document):
            return sorted(
                (node.tag, node.get_attribute("start"),
                 node.get_attribute("end"))
                for node in document.descendants()
                if node.kind_name == "element")

        assert region_set(plain.document) == region_set(permuted.document)

        def parent_pairs(document):
            return sorted(
                (node.tag, node.parent.tag)
                for node in document.descendants()
                if node.kind_name == "element"
                and node.parent.kind_name == "element")

        assert parent_pairs(plain.document) != \
            parent_pairs(permuted.document)

    def test_unpermuted_select_narrow_equals_descendant(self, small_doc):
        """The fidelity check: on an unpermuted conversion,
        select-narrow::X == descendant::X for element steps."""
        bundle = standoffize(small_doc, permute=False)
        db = Database()
        db.store.add("s.xml", bundle.document)
        for tag in ("item", "person", "bidder", "description"):
            narrow = db.query(
                f'doc("s.xml")//site/select-narrow::{tag}')
            descend = db.query(f'doc("s.xml")/site/descendant::{tag}')
            assert [n.pre for n in narrow] == [n.pre for n in descend], tag


class TestBenchmarkQueries:
    @pytest.mark.parametrize("qid", QUERY_IDS)
    def test_standoff_strategies_agree(self, standoff_db, qid):
        query = query_text(qid, "xmark.xml", standoff=True)
        results = {
            strategy: standoff_db.query(query, strategy=strategy)
            for strategy in ("udf", "basic", "ll")}
        base = results["udf"].serialize()
        assert results["basic"].serialize() == base
        assert results["ll"].serialize() == base

    @pytest.mark.parametrize("qid", QUERY_IDS)
    def test_nonempty_results(self, standoff_db, qid):
        query = query_text(qid, "xmark.xml", standoff=True)
        result = standoff_db.query(query, strategy="ll")
        assert len(result) >= 1

    def test_q2_returns_increase_elements(self, standoff_db):
        query = query_text("q2", "xmark.xml", standoff=True)
        result = standoff_db.query(query, strategy="ll")
        assert all(el.tag == "increase" for el in result)

    def test_q6_counts_items(self, standoff_db):
        query = query_text("q6", "xmark.xml", standoff=True)
        (count,) = standoff_db.query(query, strategy="ll")
        expected = max(1, round(BASE_COUNTS["items"] * 0.08))
        assert count == expected

    def test_plain_queries_on_original(self, small_doc):
        db = Database()
        db.store.add("plain.xml", small_doc)
        for qid in QUERY_IDS:
            query = query_text(qid, "plain.xml", standoff=False)
            assert len(db.query(query)) >= 1

    def test_plain_vs_standoff_q6_agree_on_unpermuted(self, small_doc):
        """Counting items inside regions == counting item descendants,
        when the conversion does not permute."""
        bundle = standoffize(small_doc, permute=False)
        db = Database()
        db.store.add("plain.xml", small_doc)
        db.store.add("s.xml", bundle.document)
        plain = db.query(query_text("q6", "plain.xml", standoff=False))
        standoff = db.query(query_text("q6", "s.xml", standoff=True))
        assert plain == standoff


class TestQueryRewriter:
    def test_simple_rewrite(self):
        assert rewrite_query_standoff("//site/open_auctions") == \
            "/select-narrow::site/select-narrow::open_auctions"

    def test_preserves_attributes_and_calls(self):
        rewritten = rewrite_query_standoff('$b/bidder[1]/@id')
        assert "select-narrow::bidder" in rewritten
        assert "@id" in rewritten


class TestStandoffizeOptions:
    def test_permute_fraction_zero_keeps_structure(self, small_doc):
        bundle = standoffize(small_doc, permute=True, permute_fraction=0.0,
                             seed=1)
        reference = standoffize(small_doc, permute=False)

        def parent_pairs(document):
            return sorted(
                (node.tag, node.parent.tag)
                for node in document.descendants()
                if node.kind_name == "element"
                and node.parent.kind_name == "element")

        # fraction 0 moves nothing; only child order is shuffled
        assert parent_pairs(bundle.document) == \
            parent_pairs(reference.document)

    def test_permutation_deterministic_per_seed(self, small_doc):
        a = standoffize(small_doc, permute=True, seed=3)
        b = standoffize(small_doc, permute=True, seed=3)
        c = standoffize(small_doc, permute=True, seed=4)
        assert a.document.serialize() == b.document.serialize()
        assert a.document.serialize() != c.document.serialize()

    def test_queries_survive_any_seed(self, small_doc):
        from repro.xquery import Database

        for seed in (1, 2):
            bundle = standoffize(small_doc, permute=True, seed=seed)
            db = Database()
            db.store.add("s.xml", bundle.document)
            q = query_text("q6", "s.xml", standoff=True)
            basic = db.query(q, strategy="basic")
            ll = db.query(q, strategy="ll")
            assert list(basic) == list(ll)
            assert basic[0] > 0
