"""The REPRO_LOCKCHECK dynamic sanitizer (repro.exec.lockcheck).

Unit tests drive private :class:`LockGraph` instances so the
process-global graph (shared with whatever the rest of the suite
acquired) stays out of the assertions; the end-to-end test re-executes
the real store code in a subprocess with ``REPRO_LOCKCHECK=1``.
"""

import os
import subprocess
import sys
import textwrap
import threading
from pathlib import Path

import pytest

from repro.exec import lockcheck
from repro.exec.lockcheck import (
    CheckedLock,
    CheckedRLock,
    LockDisciplineError,
    LockGraph,
    LockOrderError,
    assert_locked,
    audit_lazy_stores,
)

ROOT = Path(__file__).resolve().parents[1]


class TestLockGraph:
    def test_consistent_order_accumulates_edges(self):
        graph = LockGraph()
        a, b = CheckedLock("A", graph), CheckedLock("B", graph)
        for _ in range(3):
            with a:
                with b:
                    pass
        assert graph.edges() == {"A": {"B"}}

    def test_direct_cycle_detected(self):
        graph = LockGraph()
        a, b = CheckedLock("A", graph), CheckedLock("B", graph)
        with a:
            with b:
                pass
        with b:
            with pytest.raises(LockOrderError):
                a.acquire()

    def test_transitive_cycle_reports_the_recorded_order(self):
        graph = LockGraph()
        a = CheckedLock("A", graph)
        b = CheckedLock("B", graph)
        c = CheckedLock("C", graph)
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        with c:
            with pytest.raises(LockOrderError) as exc:
                a.acquire()
        assert "A" in str(exc.value) and "C" in str(exc.value)

    def test_two_instances_of_one_lock_class_form_a_self_edge(self):
        # Two ShredCache._lock-style instances are one lock *class*:
        # nesting them is the same deadlock as nesting one of them.
        graph = LockGraph()
        first = CheckedLock("ShredCache._lock", graph)
        second = CheckedLock("ShredCache._lock", graph)
        with first:
            with pytest.raises(LockOrderError):
                second.acquire()

    def test_failed_acquire_leaves_stack_clean(self):
        graph = LockGraph()
        a, b = CheckedLock("A", graph), CheckedLock("B", graph)
        with a:
            with b:
                pass
        with b:
            with pytest.raises(LockOrderError):
                a.acquire()
        # b was released normally despite the refused acquisition ...
        assert not b.held_by_current_thread()
        # ... and the refused lock was never pushed as held.
        assert not a.held_by_current_thread()


class TestCheckedLocks:
    def test_non_reentrant_reacquire_reports_self_deadlock(self):
        a = CheckedLock("A", LockGraph())
        with a:
            with pytest.raises(LockOrderError):
                a.acquire()

    def test_rlock_reentry_is_not_an_edge(self):
        graph = LockGraph()
        a = CheckedRLock("StoredDocument._build_lock", graph)
        with a:
            with a:
                assert a.held_by_current_thread()
        assert not a.held_by_current_thread()
        assert graph.edges() == {}

    def test_assert_locked(self):
        a = CheckedLock("A", LockGraph())
        with pytest.raises(LockDisciplineError):
            assert_locked(a, "Thing._attr")
        with a:
            assert_locked(a, "Thing._attr")     # held: no error
        # Plain locks carry no ownership info: always a no-op.
        assert_locked(threading.Lock(), "Thing._attr")
        assert_locked(None, "Thing._attr")

    def test_assert_locked_is_per_thread(self):
        a = CheckedLock("A", LockGraph())
        errors = []

        def probe():
            try:
                assert_locked(a, "Thing._attr")
            except LockDisciplineError as error:
                errors.append(error)

        with a:
            worker = threading.Thread(target=probe)
            worker.start()
            worker.join()
        assert len(errors) == 1


class TestAuditLazyStores:
    def make_class(self):
        graph = LockGraph()

        @audit_lazy_stores(("_shredded",))
        class Doc:
            def __init__(self):
                self._build_lock = CheckedRLock("Doc._build_lock", graph)
                self._shredded = None     # construction store: exempt

        return Doc

    def test_unguarded_store_raises(self, monkeypatch):
        monkeypatch.setattr(lockcheck, "ENABLED", True)
        doc = self.make_class()()
        with pytest.raises(LockDisciplineError):
            doc._shredded = object()

    def test_guarded_store_and_unaudited_attrs_pass(self, monkeypatch):
        monkeypatch.setattr(lockcheck, "ENABLED", True)
        doc = self.make_class()()
        with doc._build_lock:
            doc._shredded = object()
        doc.unaudited = 1                 # not a lazy-build attr

    def test_subclass_inherits_auditing(self, monkeypatch):
        monkeypatch.setattr(lockcheck, "ENABLED", True)
        Doc = self.make_class()

        class Sub(Doc):
            pass

        sub = Sub()
        with pytest.raises(LockDisciplineError):
            sub._shredded = object()

    def test_disabled_is_a_no_op(self, monkeypatch):
        monkeypatch.setattr(lockcheck, "ENABLED", False)

        @audit_lazy_stores(("_x",))
        class Plain:
            def __init__(self):
                self._x = None

        plain = Plain()
        plain._x = 1                      # no lock anywhere: fine
        assert isinstance(lockcheck.new_lock("n"),
                          type(threading.Lock()))


class TestFactories:
    def test_enabled_factories_return_checked_locks(self, monkeypatch):
        monkeypatch.setattr(lockcheck, "ENABLED", True)
        assert isinstance(lockcheck.new_lock("a"), CheckedLock)
        assert isinstance(lockcheck.new_rlock("b"), CheckedRLock)


END_TO_END = textwrap.dedent("""
    from repro.xmldb.parser import parse_document
    from repro.xmldb.store import StoredDocument
    from repro.exec.lockcheck import LockDisciplineError

    doc = parse_document("<a><b/></a>", uri="d.xml", doc_id=1)
    stored = StoredDocument(doc)
    stored.shredded                # lazy build under the lock: fine
    stored.region_index()          # dict-valued store under the lock
    try:
        stored._shredded = None    # armed store, no lock held
    except LockDisciplineError:
        print("CAUGHT")
    else:
        print("MISSED")
    with stored._build_lock:
        stored._shredded = None    # same store under the lock
    print("GUARDED-OK")
""")


class TestEnvMode:
    def test_lockcheck_env_catches_unguarded_store(self):
        env = dict(os.environ)
        env["REPRO_LOCKCHECK"] = "1"
        env["PYTHONPATH"] = str(ROOT / "src")
        proc = subprocess.run([sys.executable, "-c", END_TO_END],
                              env=env, capture_output=True, text=True,
                              timeout=120)
        assert proc.returncode == 0, proc.stderr
        assert "CAUGHT" in proc.stdout
        assert "GUARDED-OK" in proc.stdout

    def test_disabled_by_default(self):
        env = dict(os.environ)
        env.pop("REPRO_LOCKCHECK", None)
        env["PYTHONPATH"] = str(ROOT / "src")
        proc = subprocess.run([sys.executable, "-c", END_TO_END],
                              env=env, capture_output=True, text=True,
                              timeout=120)
        assert proc.returncode == 0, proc.stderr
        # Plain locks: the unguarded store goes unnoticed (zero-cost
        # default), the guarded one is equally fine.
        assert "MISSED" in proc.stdout
        assert "GUARDED-OK" in proc.stdout
