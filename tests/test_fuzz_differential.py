"""Randomized differential fuzz oracle for the sharded engine.

A seeded generator produces random XML trees and random multi-step
path/predicate queries; the loop-lifted engine must agree *exactly*
(serialized output) with the DOM-walk oracle — the ``basic`` strategy's
iterative evaluator — for every kernel choice crossed with
``workers`` ∈ {serial, 4} (``shard_min_rows=1`` forces the fan-out
path even on these small documents).  The PR 8 matrix extends the
cross with ``executor`` ∈ {thread, process} × storage backend ∈
{memory, mmap}: process-pool workers re-open the memory-mapped store
and re-derive their candidate pools, and memory-backed documents
degrade the process executor to threads — none of which may change a
single serialized byte.

Beyond the stored-document paths, dedicated fuzz targets pin the
corners that previously fell off the kernel path: the sibling axes
(including attribute anchors — which have no siblings — and merged
text-node siblings) and *constructed-fragment* contexts, which now
shred on demand instead of dropping to the DOM walk.

Seeds are fixed: every failure is reproducible from the printed
(seed, query) pair.  The whole module is budgeted at roughly two
seconds so it stays in the tier-1 suite.
"""

import random

import pytest

from repro.config import (
    KERNEL_AUTO,
    KERNEL_LL,
    KERNEL_VECTORIZED,
    WORKERS_SERIAL,
)
from repro.xquery import Database

TAGS = ("a", "b", "c", "d")

AXES = (
    "child", "descendant", "descendant-or-self", "self", "parent",
    "ancestor", "ancestor-or-self", "following", "preceding",
    "following-sibling", "preceding-sibling",
)

KERNELS_UNDER_TEST = (KERNEL_LL, KERNEL_VECTORIZED, KERNEL_AUTO)
WORKERS_UNDER_TEST = (WORKERS_SERIAL, 4)


# ----------------------------------------------------------------------
# generators
# ----------------------------------------------------------------------

def random_xml(rng: random.Random, max_nodes: int = 45) -> str:
    """A random element tree with attributes, text and comments."""
    budget = [rng.randrange(8, max_nodes)]

    def element(depth: int) -> str:
        budget[0] -= 1
        tag = rng.choice(TAGS)
        attrs = ""
        if rng.random() < 0.3:
            attrs = f' i="{rng.randrange(9)}"'
        if rng.random() < 0.15:
            attrs += f' j="{rng.randrange(9)}"'
        children: list[str] = []
        while budget[0] > 0 and depth < 5 \
                and rng.random() < (0.75 if depth < 2 else 0.45):
            roll = rng.random()
            if roll < 0.6:
                children.append(element(depth + 1))
            elif roll < 0.85:
                children.append(f"t{rng.randrange(99)}")
                budget[0] -= 1
            else:
                children.append("<!--c-->")
                budget[0] -= 1
        return f"<{tag}{attrs}>{''.join(children)}</{tag}>"

    return f"<r>{''.join(element(0) for _ in range(rng.randrange(1, 4)))}</r>"


def random_step(rng: random.Random) -> str:
    axis = rng.choice(AXES)
    test = rng.choice((*TAGS, "*", "node()", "text()"))
    if test == "text()" and rng.random() < 0.5:
        test = "node()"
    step = f"{axis}::{test}"
    if rng.random() < 0.3 and not test.endswith(")"):
        predicate = rng.choice((
            f"[{rng.choice(TAGS)}]",
            "[@i]",
            f"[{rng.randrange(1, 3)}]",
            f'[@i = "{rng.randrange(9)}"]',
        ))
        step += predicate
    return step


def random_query(rng: random.Random) -> str:
    steps = "/".join(random_step(rng)
                     for _ in range(rng.randrange(1, 4)))
    base = rng.choice((f'doc("f.xml")//{rng.choice(TAGS)}',
                       'doc("f.xml")/r'))
    path = f"{base}/{steps}"
    if rng.random() < 0.25:
        return f"for $x in {base} return count($x/{steps})"
    return path


# ----------------------------------------------------------------------
# the oracle check
# ----------------------------------------------------------------------

def assert_engine_matches_oracle(seed: int, n_queries: int) -> None:
    rng = random.Random(seed)
    db = Database()
    db.add_document("f.xml", random_xml(rng))
    for _ in range(n_queries):
        query = random_query(rng)
        oracle = db.query(query, strategy="basic").serialize()
        for kernel in KERNELS_UNDER_TEST:
            for workers in WORKERS_UNDER_TEST:
                got = db.query(query, strategy="ll", kernel=kernel,
                               staircase_kernel=kernel, workers=workers,
                               shard_min_rows=1).serialize()
                assert got == oracle, (seed, query, kernel, workers)


@pytest.mark.parametrize("seed", range(5000, 5008))
def test_fuzz_engine_vs_dom_walk(seed):
    assert_engine_matches_oracle(seed, n_queries=3)


def test_fuzz_standoff_joins(seed=7100):
    """Random region annotations: the StandOff axes under every kernel
    and worker setting against the basic-strategy result."""
    rng = random.Random(seed)
    for _trial in range(3):
        n = rng.randrange(8, 30)
        parts = []
        for i in range(n):
            start = rng.randrange(200)
            end = start + rng.randrange(1, 60)
            inner = ""
            if rng.random() < 0.4:
                s2 = start + rng.randrange(1, 10)
                inner = (f'<shot start="{s2}" '
                         f'end="{s2 + rng.randrange(1, 10)}"/>')
            parts.append(f'<music start="{start}" end="{end}">'
                         f'{inner}</music>')
        db = Database()
        db.add_document("v.xml", f"<doc>{''.join(parts)}</doc>")
        for op in ("select-wide", "select-narrow", "reject-wide",
                   "reject-narrow"):
            query = (f'for $m in doc("v.xml")//music '
                     f'return count($m/{op}::shot)')
            oracle = db.query(query, strategy="basic").serialize()
            for kernel in KERNELS_UNDER_TEST:
                for workers in WORKERS_UNDER_TEST:
                    got = db.query(query, strategy="ll", kernel=kernel,
                                   workers=workers,
                                   shard_min_rows=1).serialize()
                    assert got == oracle, (seed, op, kernel, workers)


SIBLING_AXES = ("following-sibling", "preceding-sibling")

#: Constructed-fragment query templates: a fragment built per iteration
#: from stored content (copied children, attributes, merged text), then
#: axis-stepped — exercising the shred-on-demand path.  ``{axis}`` and
#: ``{test}`` are filled per trial.
CONSTRUCTED_TEMPLATES = (
    'for $x in doc("f.xml")//{tag} '
    'let $f := <w p="1" q="2">{{$x/child::node()}}</w> '
    'return $f/{axis}::{test}',
    'for $x in doc("f.xml")//{tag} '
    'let $f := <w>head{{$x/child::node()}}tail<z/>{{$x/@i}}</w> '
    'return count($f/child::node()/{axis}::{test})',
    'for $x in doc("f.xml")//{tag} '
    'let $f := <w><u>{{$x/text()}}</u>mid{{$x/{tag}}}</w> '
    'return $f/descendant-or-self::node()/{axis}::{test}',
    '(doc("f.xml")/r, <w><a i="5"/>t<b/></w>)/{axis}::{test}',
)


def test_fuzz_sibling_axes(seed=8200):
    """Sibling-axis steps under every kernel and worker setting against
    the DOM-walk oracle — anchored on elements, attributes (which have
    no siblings) and text nodes."""
    rng = random.Random(seed)
    anchors = (
        "child::*", "descendant::node()", "child::text()",
        "descendant-or-self::*/@i", "child::node()",
    )
    for _trial in range(4):
        db = Database()
        db.add_document("f.xml", random_xml(rng))
        for _q in range(4):
            axis = rng.choice(SIBLING_AXES)
            test = rng.choice((*TAGS, "*", "node()", "text()"))
            query = (f'doc("f.xml")/r/{rng.choice(anchors)}'
                     f'/{axis}::{test}')
            oracle = db.query(query, strategy="basic").serialize()
            for kernel in KERNELS_UNDER_TEST:
                for workers in WORKERS_UNDER_TEST:
                    got = db.query(query, strategy="ll", kernel=kernel,
                                   staircase_kernel=kernel,
                                   workers=workers,
                                   shard_min_rows=1).serialize()
                    assert got == oracle, (seed, query, kernel, workers)


def test_fuzz_constructed_fragment_contexts(seed=9300):
    """Axis steps over constructed fragments (shredded on demand) must
    match the DOM-walk oracle for every kernel and worker setting —
    including merged text-node siblings and attribute content."""
    rng = random.Random(seed)
    for _trial in range(3):
        db = Database()
        db.add_document("f.xml", random_xml(rng))
        for template in CONSTRUCTED_TEMPLATES:
            axis = rng.choice((*SIBLING_AXES, "descendant", "child",
                               "ancestor", "following", "preceding"))
            test = rng.choice((*TAGS, "*", "node()", "text()"))
            query = template.format(tag=rng.choice(TAGS), axis=axis,
                                    test=test)
            oracle = db.query(query, strategy="basic").serialize()
            for kernel in KERNELS_UNDER_TEST:
                for workers in WORKERS_UNDER_TEST:
                    got = db.query(query, strategy="ll", kernel=kernel,
                                   staircase_kernel=kernel,
                                   workers=workers,
                                   shard_min_rows=1).serialize()
                    assert got == oracle, (seed, query, kernel, workers)


#: Positional-predicate pool: numeric literals, ``position()``
#: arithmetic (every operator the columnar compiler accepts),
#: ``last()``, boolean combinators and chained predicates.  Each one
#: must compile onto the CSR position/length columns — and where it
#: cannot (the DOM-walk fallback), still agree with the oracle.
POSITIONAL_PREDICATES = (
    "[1]", "[2]", "[3]", "[last()]", "[last() - 1]",
    "[position() = 2]", "[position() != 2]", "[position() < 3]",
    "[position() <= 2]", "[position() >= 2]", "[position() > 1]",
    "[position() mod 2 = 1]", "[position() mod 2 = 0]",
    "[position() = last()]", "[position() < last()]",
    "[(position() + 1) idiv 2]", "[position() * 2 - 1]",
    "[last() idiv 2 + 1]", "[-position() + 3]",
    "[not(position() = 1)]",
    "[position() > 1 and position() < 4]",
    "[position() = 1 or position() = last()]",
)

#: Reverse axes flip positional order (position 1 = nearest in reverse
#: document order); keep them over-represented in the positional fuzz.
REVERSE_FUZZ_AXES = ("parent", "ancestor", "ancestor-or-self",
                     "preceding", "preceding-sibling")


def random_positional_step(rng: random.Random) -> str:
    if rng.random() < 0.45:
        axis = rng.choice(REVERSE_FUZZ_AXES)
    else:
        axis = rng.choice(AXES)
    test = rng.choice((*TAGS, "*", "node()", "text()"))
    step = f"{axis}::{test}" + rng.choice(POSITIONAL_PREDICATES)
    if rng.random() < 0.3:
        step += rng.choice(POSITIONAL_PREDICATES)
    return step


@pytest.mark.parametrize("seed", range(6000, 6006))
def test_fuzz_positional_predicates(seed):
    """Positional predicates — ``position()`` arithmetic, ``last()``,
    chained predicates, reverse axes — under every kernel × workers
    setting must serialize identically to the DOM-walk oracle."""
    rng = random.Random(seed)
    db = Database()
    db.add_document("f.xml", random_xml(rng))
    anchors = (f'doc("f.xml")//{rng.choice(TAGS)}',
               'doc("f.xml")/r', 'doc("f.xml")//node()')
    for _q in range(4):
        steps = "/".join(random_positional_step(rng)
                         for _ in range(rng.randrange(1, 3)))
        query = f"{rng.choice(anchors)}/{steps}"
        if rng.random() < 0.25:
            query = f"count({query})"
        oracle = db.query(query, strategy="basic").serialize()
        for kernel in KERNELS_UNDER_TEST:
            for workers in WORKERS_UNDER_TEST:
                got = db.query(query, strategy="ll", kernel=kernel,
                               staircase_kernel=kernel, workers=workers,
                               shard_min_rows=1).serialize()
                assert got == oracle, (seed, query, kernel, workers)


def test_fuzz_positional_constructed_fragments(seed=6500):
    """Positional predicates over constructed-fragment contexts ride
    the content-hash shred cache; answers must stay oracle-identical."""
    rng = random.Random(seed)
    for _trial in range(2):
        db = Database()
        db.add_document("f.xml", random_xml(rng))
        for template in CONSTRUCTED_TEMPLATES[:3]:
            axis = rng.choice((*REVERSE_FUZZ_AXES, "child",
                               "descendant", "following-sibling"))
            test = rng.choice(("*", "node()"))
            query = template.format(tag=rng.choice(TAGS), axis=axis,
                                    test=test)
            # graft a positional predicate onto the final step
            query += rng.choice(POSITIONAL_PREDICATES)
            oracle = db.query(query, strategy="basic").serialize()
            for kernel in KERNELS_UNDER_TEST:
                for workers in WORKERS_UNDER_TEST:
                    got = db.query(query, strategy="ll", kernel=kernel,
                                   staircase_kernel=kernel,
                                   workers=workers,
                                   shard_min_rows=1).serialize()
                    assert got == oracle, (seed, query, kernel, workers)


def test_positional_division_by_zero_matches_oracle():
    """Eagerly vectorized arithmetic must raise the same err:FOAR0001
    the per-item oracle raises — and must refuse to compile ``and``/
    ``or`` over operands that may raise, preserving short-circuits."""
    from repro.errors import XQueryDynamicError

    db = Database()
    db.add_document("f.xml", "<r><a/><a/><a/></r>")
    query = 'doc("f.xml")/r/child::a[position() mod (position() - 1) = 0]'
    with pytest.raises(XQueryDynamicError) as oracle_err:
        db.query(query, strategy="basic")
    with pytest.raises(XQueryDynamicError) as ll_err:
        db.query(query, strategy="ll")
    assert oracle_err.value.code == ll_err.value.code == "err:FOAR0001"
    # short-circuit guard: the oracle never reaches the division for
    # position 1, so neither may the kernel path
    guarded = ('doc("f.xml")/r/child::a'
               '[position() > 1 and position() mod (position() - 1) = 0]')
    oracle = db.query(guarded, strategy="basic").serialize()
    for kernel in KERNELS_UNDER_TEST:
        got = db.query(guarded, strategy="ll", staircase_kernel=kernel,
                       workers=4, shard_min_rows=1).serialize()
        assert got == oracle, kernel


def test_positional_compiler_covers_the_pool():
    """The predicate pool above must actually exercise the columnar
    compiler: every entry without a known bail-out reason compiles."""
    from repro.xquery import bulk
    from repro.xquery.parser import parse

    for predicate in POSITIONAL_PREDICATES:
        module = parse(f'doc("f.xml")/r/child::a{predicate}')
        step = module.body.steps[-1]
        maskers = bulk.compile_positional_predicates(step.predicates)
        assert maskers is not None and len(maskers) == 1, predicate


def test_cross_fragment_tie_break_matches_oracle():
    """Two transient fragments share doc id -1, so their nodes can tie
    on (doc id, pre); the DOM walk breaks ties by per-iteration context
    order.  The kernel path must reproduce that exactly — including
    when the fragments' first appearance (in an earlier iteration)
    differs from a later iteration's context order."""
    db = Database()
    db.add_document("d.xml", "<r><a/></r>")
    queries = [
        'let $a := <u><x/></u> let $b := <v><y/></v> '
        'for $i in (1, 2) return '
        '(if ($i = 1) then $b else ($a, $b))/child::*',
        'let $a := <u><x/><w/></u> let $b := <v><y/></v> '
        'return ($a, $b, $a)/child::*',
        'let $a := <u><x/></u> let $b := <v><y/></v> '
        'return ($b/child::*, $a/child::*)'
        '/following-sibling::node()',
        'let $a := <u><x/></u> '
        'return (doc("d.xml")/r, $a)/child::*',
    ]
    for query in queries:
        oracle = db.query(query, strategy="basic").serialize()
        for kernel in KERNELS_UNDER_TEST:
            for workers in WORKERS_UNDER_TEST:
                got = db.query(query, strategy="ll",
                               staircase_kernel=kernel, workers=workers,
                               shard_min_rows=1).serialize()
                assert got == oracle, (query, kernel, workers)


def test_merged_text_node_siblings():
    """Constructed content merges adjacent text into one node; sibling
    enumeration over the merged node must agree with the oracle (the
    stale-node corner the DOM walk guards with an identity scan)."""
    db = Database()
    db.add_document("f.xml", "<r><a>x</a><a>y</a></r>")
    queries = [
        'let $f := <w>{doc("f.xml")//a/text()}</w> '
        'return $f/child::text()/following-sibling::node()',
        'let $f := <w>a{"b"}c<m/>d{"e"}</w> '
        'return $f/child::m/preceding-sibling::text()',
        'let $f := <w>a{"b"}c<m/>d{"e"}</w> '
        'return count($f/child::text()/following-sibling::m)',
    ]
    for query in queries:
        oracle = db.query(query, strategy="basic").serialize()
        for kernel in KERNELS_UNDER_TEST:
            got = db.query(query, strategy="ll", kernel=kernel,
                           staircase_kernel=kernel, workers=4,
                           shard_min_rows=1).serialize()
            assert got == oracle, (query, kernel)


#: The executor/backend cross (PR 8): the process-pool executor over
#: memory-mapped stores may change where shards run, never what they
#: compute.  Memory-backed documents have no store file, so the process
#: executor degrades to threads there — that degradation must be
#: answer-invisible too.
EXECUTORS_UNDER_TEST = ("thread", "process")
BACKENDS_UNDER_TEST = ("memory", "mmap")


def test_fuzz_executor_backend_matrix(seed=10400):
    """Every kernel × workers × executor × storage backend combination
    must serialize identically to the serial in-memory oracle — the
    PR 8 acceptance matrix, on randomized trees and queries."""
    rng = random.Random(seed)
    xml = random_xml(rng, max_nodes=60)
    queries = [random_query(rng) for _ in range(3)]
    queries.append('doc("f.xml")/r/descendant::*'
                   '/following-sibling::node()')
    databases = {}
    for backend in BACKENDS_UNDER_TEST:
        db = Database(storage_backend=backend)
        db.add_document("f.xml", xml)
        databases[backend] = db
    oracle_db = databases["memory"]
    for query in queries:
        oracle = oracle_db.query(query, strategy="basic").serialize()
        for backend, db in databases.items():
            for kernel in KERNELS_UNDER_TEST:
                for workers in WORKERS_UNDER_TEST:
                    for executor in EXECUTORS_UNDER_TEST:
                        got = db.query(
                            query, strategy="ll", kernel=kernel,
                            staircase_kernel=kernel, workers=workers,
                            shard_min_rows=1,
                            executor=executor).serialize()
                        assert got == oracle, (seed, query, backend,
                                               kernel, workers,
                                               executor)


def test_fuzz_standoff_executor_matrix(seed=10500):
    """StandOff joins under the full executor × backend cross — the
    process path re-derives candidate pushdowns worker-side, which must
    be invisible in the answers."""
    rng = random.Random(seed)
    parts = []
    for _i in range(30):
        start = rng.randrange(150)
        end = start + rng.randrange(1, 40)
        parts.append(f'<music start="{start}" end="{end}">'
                     f'<shot start="{start + 1}" end="{end}"/></music>')
    xml = f"<doc>{''.join(parts)}</doc>"
    databases = {}
    for backend in BACKENDS_UNDER_TEST:
        db = Database(storage_backend=backend)
        db.add_document("v.xml", xml)
        databases[backend] = db
    for op in ("select-wide", "reject-narrow"):
        query = (f'for $m in doc("v.xml")//music '
                 f'return count($m/{op}::shot)')
        oracle = databases["memory"].query(
            query, strategy="basic").serialize()
        for backend, db in databases.items():
            for kernel in KERNELS_UNDER_TEST:
                for executor in EXECUTORS_UNDER_TEST:
                    got = db.query(query, strategy="ll", kernel=kernel,
                                   workers=4, shard_min_rows=1,
                                   executor=executor).serialize()
                    assert got == oracle, (seed, op, backend, kernel,
                                           executor)


def test_serial_byte_identical_to_unsharded_columnar():
    """workers='serial' must leave the columnar pipeline untouched:
    the exact arrays, not just equal decodes."""
    import numpy as np

    from repro.staircase import staircase_join, vec_staircase_join
    from repro.xmldb import parse_document, shred

    rng = random.Random(4242)
    doc = parse_document(random_xml(rng))
    sh = shred(doc)
    context = [(it, pre) for it, pre in
               enumerate(range(0, len(sh), 3))]
    for axis in ("descendant", "ancestor", "child", "following",
                 "preceding", "following-sibling", "preceding-sibling"):
        direct = vec_staircase_join(axis, sh, context)
        via_serial = staircase_join(axis, sh, context,
                                    kernel="vectorized",
                                    workers=WORKERS_SERIAL)
        for mine, theirs in zip(
                (direct.iters, direct.offsets, direct.values),
                (via_serial.iters, via_serial.offsets,
                 via_serial.values)):
            assert np.array_equal(mine, theirs), axis
