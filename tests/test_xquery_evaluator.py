"""Evaluator tests, run against BOTH engines where the subset overlaps.

The ``engine`` fixture parameterises every test over the iterative
(tree-walking) evaluator and the loop-lifted bulk evaluator, asserting
identical observable results — the bulk evaluator's correctness oracle.
"""

import math

import pytest

from repro.errors import (
    UnsupportedFeatureError,
    XQueryDynamicError,
    XQueryStaticError,
    XQueryTypeError,
)
from repro.xquery import Database

DOC = """
<library>
  <book year="2003" price="30">
    <title>Staircase Join</title>
    <author>Grust</author>
  </book>
  <book year="2002" price="15">
    <title>Structural Joins</title>
    <author>Al-Khalifa</author>
  </book>
  <book year="2006" price="45">
    <title>StandOff Annotation</title>
    <author>Alink</author>
    <author>Boncz</author>
  </book>
</library>
"""


@pytest.fixture(params=["basic", "ll"])
def engine(request):
    db = Database()
    db.add_document("lib.xml", DOC)
    strategy = request.param

    def run(query, **kw):
        return db.query(query, strategy=strategy, **kw)

    run.strategy = strategy
    run.db = db
    return run


class TestBasics:
    def test_literal(self, engine):
        assert engine("42") == [42]

    def test_sequence(self, engine):
        assert engine("(1, 2, 3)") == [1, 2, 3]

    def test_arithmetic(self, engine):
        assert engine("2 + 3 * 4") == [14]
        assert engine("10 div 4") == [2.5]
        assert engine("10 idiv 4") == [2]
        assert engine("10 mod 4") == [2]
        assert engine("-(5)") == [-5]

    def test_division_by_zero(self, engine):
        with pytest.raises(XQueryDynamicError):
            engine("1 div 0")

    def test_integer_arithmetic_stays_integral(self, engine):
        (result,) = engine("2 + 3")
        assert isinstance(result, int)

    def test_empty_propagates_through_arithmetic(self, engine):
        assert engine("() + 1") == []

    def test_range(self, engine):
        assert engine("1 to 4") == [1, 2, 3, 4]
        assert engine("3 to 2") == []

    def test_comparisons(self, engine):
        assert engine("1 < 2") == [True]
        assert engine('"a" = "a"') == [True]
        assert engine("1 eq 1") == [True]
        assert engine("2 gt 3") == [False]

    def test_general_comparison_existential(self, engine):
        assert engine("(1, 2, 3) = 2") == [True]
        assert engine("(1, 2) = (3, 4)") == [False]

    def test_untyped_coercion_number_vs_node(self, engine):
        assert engine('doc("lib.xml")//book[@price > 20]/@price',
                      ).atomized() == ["30", "45"]

    def test_if(self, engine):
        assert engine("if (1 = 1) then 'y' else 'n'") == ["y"]
        assert engine("if (()) then 'y' else 'n'") == ["n"]

    def test_and_or(self, engine):
        assert engine("1 = 1 and 2 = 2") == [True]
        assert engine("1 = 2 or 2 = 2") == [True]


class TestPathsAndPredicates:
    def test_descendant(self, engine):
        assert len(engine('doc("lib.xml")//book')) == 3

    def test_child_chain(self, engine):
        titles = engine('doc("lib.xml")/library/book/title').atomized()
        assert titles == ["Staircase Join", "Structural Joins",
                          "StandOff Annotation"]

    def test_attribute_step(self, engine):
        assert engine('doc("lib.xml")//book[1]/@year').atomized() == ["2003"]

    def test_predicate_comparison(self, engine):
        titles = engine(
            'doc("lib.xml")//book[@year="2006"]/title').atomized()
        assert titles == ["StandOff Annotation"]

    def test_positional_predicate_per_context(self, engine):
        # author[1] picks the first author of EACH book
        firsts = engine('doc("lib.xml")//book/author[1]').atomized()
        assert firsts == ["Grust", "Al-Khalifa", "Alink"]

    def test_text_node_step(self, engine):
        texts = engine('doc("lib.xml")//book[3]/title/text()')
        assert texts.atomized() == ["StandOff Annotation"]

    def test_wildcard(self, engine):
        kids = engine('doc("lib.xml")/library/book[1]/*')
        assert len(kids) == 2

    def test_result_in_document_order_and_deduped(self, engine):
        # union of overlapping node sets
        result = engine('doc("lib.xml")//author union '
                        'doc("lib.xml")//book[3]/author')
        assert result.atomized() == ["Grust", "Al-Khalifa", "Alink",
                                     "Boncz"]

    def test_count(self, engine):
        assert engine('count(doc("lib.xml")//author)') == [4]

    def test_descendant_or_self_shorthand_midpath(self, engine):
        assert engine('count(doc("lib.xml")/library//author)') == [4]


class TestFLWOR:
    def test_paper_section41_example(self, engine):
        result = engine('for $x in ("twenty", "thirty") '
                        'for $y in ("one", "two") '
                        'let $z := ($x, $y) return $z')
        assert result == ["twenty", "one", "twenty", "two",
                          "thirty", "one", "thirty", "two"]

    def test_where(self, engine):
        assert engine("for $i in (1 to 6) where $i mod 2 = 0 "
                      "return $i") == [2, 4, 6]

    def test_positional_variable(self, engine):
        assert engine('for $x at $i in ("a","b","c") '
                      'return $i * 10') == [10, 20, 30]

    def test_nested_loops_with_paths(self, engine):
        result = engine(
            'for $b in doc("lib.xml")//book '
            'for $a in $b/author '
            'return concat($a, "/", $b/@year)')
        assert result == ["Grust/2003", "Al-Khalifa/2002",
                          "Alink/2006", "Boncz/2006"]

    def test_let_reused(self, engine):
        assert engine("let $x := 5 let $y := $x * $x "
                      "return $y - $x") == [20]

    def test_empty_binding_skips_body(self, engine):
        assert engine("for $x in () return 1") == []

    def test_count_per_iteration(self, engine):
        counts = engine('for $b in doc("lib.xml")//book '
                        'return count($b/author)')
        assert counts == [1, 1, 2]


class TestOrderByAndQuantifiers:
    def test_order_by(self, engine):
        result = engine('for $b in doc("lib.xml")//book '
                        'order by $b/@year return $b/@year')
        assert result.atomized() == ["2002", "2003", "2006"]

    def test_order_by_descending(self, engine):
        result = engine('for $b in doc("lib.xml")//book '
                        'order by $b/@year descending return $b/@year')
        assert result.atomized() == ["2006", "2003", "2002"]

    def test_order_by_numeric_key(self, engine):
        result = engine('for $p in (3, 1, 2) order by $p return $p * 10')
        assert result == [10, 20, 30]

    def test_order_by_multi_key(self, engine):
        result = engine(
            'for $b in doc("lib.xml")//book '
            'for $a in $b/author '
            'order by $b/@year descending, $a '
            'return concat($b/@year, ":", $a)')
        assert result == ["2006:Alink", "2006:Boncz",
                          "2003:Grust", "2002:Al-Khalifa"]

    def test_order_by_inside_outer_loop_stays_grouped(self, engine):
        result = engine(
            'for $g in (1, 2) return <g>{'
            'for $x in (3, 1, 2) order by $x return $x * $g'
            '}</g>')
        assert [el.string_value() for el in result] == \
            ["1 2 3", "2 4 6"]

    def test_some_every(self, engine):
        assert engine('some $b in doc("lib.xml")//book '
                      'satisfies $b/@price > 40') == [True]
        assert engine('every $b in doc("lib.xml")//book '
                      'satisfies $b/@price > 40') == [False]

    def test_quantifier_over_empty_binding(self, engine):
        assert engine('some $x in () satisfies $x') == [False]
        assert engine('every $x in () satisfies $x') == [True]

    def test_quantifier_in_where(self, engine):
        result = engine(
            'for $b in doc("lib.xml")//book '
            'where some $a in $b/author satisfies $a = "Boncz" '
            'return $b/title/text()')
        assert result.atomized() == ["StandOff Annotation"]


class TestConstructors:
    def test_simple_element(self, engine):
        (el,) = engine("<a x='1'>hi</a>")
        assert el.serialize() == '<a x="1">hi</a>'

    def test_embedded_expression(self, engine):
        (el,) = engine("<a>{1 + 1}</a>")
        assert el.serialize() == "<a>2</a>"

    def test_attribute_expression(self, engine):
        (el,) = engine('<a n="{2 * 21}"/>')
        assert el.get_attribute("n") == "42"

    def test_copied_nodes(self, engine):
        (el,) = engine('<best>{doc("lib.xml")//book[3]/title}</best>')
        assert el.serialize() == \
            "<best><title>StandOff Annotation</title></best>"

    def test_atomics_space_separated(self, engine):
        (el,) = engine("<a>{(1, 2, 3)}</a>")
        assert el.serialize() == "<a>1 2 3</a>"

    def test_constructed_nodes_queryable(self, engine):
        result = engine('count(<a><b/><b/></a>/b)')
        assert result == [2]

    def test_constructor_per_iteration(self, engine):
        result = engine('for $b in doc("lib.xml")//book '
                        'return <y>{$b/@year}</y>')
        assert [el.string_value() for el in result] == \
            ["2003", "2002", "2006"]


class TestFunctions:
    def test_string_functions(self, engine):
        assert engine('concat("a", "b", "c")') == ["abc"]
        assert engine('contains("standoff", "and")') == [True]
        assert engine('starts-with("abc", "ab")') == [True]
        assert engine('substring("hello", 2, 3)') == ["ell"]
        assert engine('string-length("four")') == [4]
        assert engine('upper-case("up")') == ["UP"]
        assert engine('normalize-space("  a   b ")') == ["a b"]
        assert engine('string-join(("a","b"), "-")') == ["a-b"]

    def test_numeric_functions(self, engine):
        assert engine("sum((1, 2, 3))") == [6]
        assert engine("avg((2, 4))") == [3.0]
        assert engine("min((3, 1, 2))") == [1.0]
        assert engine("max((3, 1, 2))") == [3.0]
        assert engine("floor(2.7)") == [2]
        assert engine("ceiling(2.1)") == [3]
        assert engine("round(2.5)") == [3]
        assert engine("abs(-4)") == [4.0]

    def test_number_of_unparseable_is_nan(self, engine):
        (value,) = engine('number("not-a-number")')
        assert math.isnan(value)

    def test_sequence_functions(self, engine):
        assert engine("empty(())") == [True]
        assert engine("exists((1))") == [True]
        assert engine("distinct-values((1, 2, 1, 3))") == [1, 2, 3]
        assert engine("reverse((1, 2, 3))") == [3, 2, 1]
        assert engine("subsequence((1,2,3,4), 2, 2)") == [2, 3]
        assert engine('index-of((5,6,5), 5)') == [1, 3]

    def test_boolean_functions(self, engine):
        assert engine("not(1 = 1)") == [False]
        assert engine("true()") == [True]
        assert engine("boolean((1))") == [True]

    def test_name_functions(self, engine):
        assert engine('name(doc("lib.xml")/library)') == ["library"]
        assert engine('local-name(doc("lib.xml")//book[1]/@year)') == \
            ["year"]

    def test_root_function(self, engine):
        result = engine('count(root((doc("lib.xml")//author)[1])//book)')
        assert result == [3]

    def test_unknown_function_raises(self, engine):
        with pytest.raises(XQueryStaticError):
            engine("no-such-function(1)")

    def test_doc_of_missing_document(self, engine):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            engine('doc("nope.xml")')


class TestExternalVariables:
    def test_binding(self, engine):
        assert engine("$n * 2", variables={"n": 21}) == [42]

    def test_sequence_binding(self, engine):
        assert engine("sum($xs)", variables={"xs": [1, 2, 3]}) == [6]

    def test_undefined_variable(self, engine):
        with pytest.raises(XQueryDynamicError):
            engine("$missing")


class TestIterativeOnly:
    """Features supported only by the tree-walking evaluator."""

    def fixture_db(self):
        db = Database()
        db.add_document("lib.xml", DOC)
        return db

    def test_declared_variable(self):
        db = self.fixture_db()
        assert db.query("declare variable $n := 6; $n * 7") == [42]

    def test_user_defined_function(self):
        db = self.fixture_db()
        result = db.query(
            "declare function double($x as xs:integer) as xs:integer "
            "{ $x * 2 }; double(21)")
        assert result == [42]

    def test_bulk_rejects_udf(self):
        db = self.fixture_db()
        with pytest.raises(UnsupportedFeatureError):
            db.query("declare function f($x) { $x }; f(1)",
                     strategy="ll")


    def test_following_preceding_axes(self):
        db = self.fixture_db()
        result = db.query(
            'doc("lib.xml")//book[2]/following-sibling::book/@year')
        assert result.atomized() == ["2006"]
        result = db.query(
            'doc("lib.xml")//book[2]/preceding-sibling::book/@year')
        assert result.atomized() == ["2003"]

    def test_ancestor_axis(self):
        db = self.fixture_db()
        result = db.query('doc("lib.xml")//author[1]/ancestor::library')
        assert len(result) == 1

    def test_node_comparisons(self):
        db = self.fixture_db()
        assert db.query('doc("lib.xml")//book[1] is '
                        'doc("lib.xml")//book[1]') == [True]
        assert db.query('doc("lib.xml")//book[1] << '
                        'doc("lib.xml")//book[2]') == [True]
