"""Tests for the command-line shell."""

import io

import pytest

from repro.cli import CliSession, main

VIDEO = """
<sample>
  <shot id="Intro" start="0" end="8"/>
  <music artist="U2" start="0" end="31"/>
</sample>
"""


@pytest.fixture
def video_file(tmp_path):
    path = tmp_path / "video.xml"
    path.write_text(VIDEO)
    return path


def make_session():
    out = io.StringIO()
    return CliSession(out=out), out


class TestSession:
    def test_load_and_query(self, video_file):
        session, out = make_session()
        session.load_document("video.xml", str(video_file))
        session.handle('doc("video.xml")//music/select-wide::shot')
        text = out.getvalue()
        assert "loaded video.xml" in text
        assert 'id="Intro"' in text
        assert "(1 item(s))" in text

    def test_backslash_load(self, video_file):
        session, out = make_session()
        session.handle(f"\\load video.xml {video_file}")
        session.handle("\\docs")
        assert "doc  video.xml" in out.getvalue()

    def test_strategy_switch(self, video_file):
        session, out = make_session()
        session.load_document("video.xml", str(video_file))
        session.handle("\\strategy ll")
        session.handle('count(doc("video.xml")//shot)')
        text = out.getvalue()
        assert "strategy = ll" in text
        assert "\n1\n" in text

    def test_bad_strategy(self):
        session, out = make_session()
        session.handle("\\strategy warp")
        assert "unknown strategy" in out.getvalue()

    def test_timing_toggle(self, video_file):
        session, out = make_session()
        session.load_document("video.xml", str(video_file))
        session.handle("\\timing on")
        session.handle("1 + 1")
        assert "s)" in out.getvalue()

    def test_query_error_reported_not_raised(self):
        session, out = make_session()
        session.handle('doc("missing.xml")')
        assert "error:" in out.getvalue()

    def test_syntax_error_reported(self):
        session, out = make_session()
        session.handle("for $x in")
        assert "error:" in out.getvalue()

    def test_unknown_command(self):
        session, out = make_session()
        session.handle("\\frobnicate")
        assert "unknown command" in out.getvalue()

    def test_help_and_quit(self):
        session, out = make_session()
        session.handle("\\help")
        assert "\\strategy" in out.getvalue()
        session.handle("\\quit")
        assert session.done

    def test_blob_roundtrip(self, tmp_path, video_file):
        blob_path = tmp_path / "movie.bin"
        blob_path.write_bytes(b"0123456789")
        session, out = make_session()
        session.load_document("video.xml", str(video_file))
        session.handle(f"\\blob movie {blob_path}")
        session.handle(
            'blob-content("movie", doc("video.xml")//shot)')
        assert "012345678" in out.getvalue()

    def test_missing_file_reported(self):
        session, out = make_session()
        session.handle("\\load x.xml /nonexistent/path.xml")
        assert "error:" in out.getvalue()

    def test_workers_switch(self, video_file):
        session, out = make_session()
        session.load_document("video.xml", str(video_file))
        session.handle("\\workers 4")
        assert "workers = 4" in out.getvalue()
        assert session.workers == "4"
        session.handle('doc("video.xml")//music/select-wide::shot')
        assert 'id="Intro"' in out.getvalue()
        session.handle("\\workers serial")
        assert "workers = serial" in out.getvalue()

    def test_bad_workers_reported(self):
        session, out = make_session()
        session.handle("\\workers plenty")
        assert "invalid workers" in out.getvalue()
        session.handle("\\workers 0")
        assert "invalid workers '0'" in out.getvalue()

    def test_workers_in_help(self):
        session, out = make_session()
        session.handle("\\help")
        assert "\\workers" in out.getvalue()


class TestMain:
    def test_one_shot_query(self, video_file, capsys):
        code = main(["--load", str(video_file), "--query",
                     'count(doc("video.xml")//shot)'])
        assert code == 0
        assert "1" in capsys.readouterr().out

    def test_strategy_flag(self, video_file, capsys):
        code = main(["--load", str(video_file), "--strategy", "ll",
                     "--query",
                     'doc("video.xml")//music/select-narrow::shot'])
        assert code == 0
        assert "Intro" in capsys.readouterr().out

    def test_missing_load_file(self, capsys):
        code = main(["--load", "/does/not/exist.xml", "--query", "1"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_workers_flag(self, video_file, capsys):
        code = main(["--load", str(video_file), "--workers", "4",
                     "--shard-min-rows", "1", "--strategy", "ll",
                     "--query",
                     'doc("video.xml")//music/select-wide::shot'])
        assert code == 0
        assert "Intro" in capsys.readouterr().out

    def test_bad_workers_flag(self, video_file, capsys):
        with pytest.raises(SystemExit):
            main(["--load", str(video_file), "--workers", "lots",
                  "--query", "1"])
        assert "workers" in capsys.readouterr().err

    def test_bad_shard_min_rows_flag(self, video_file, capsys):
        with pytest.raises(SystemExit):
            main(["--load", str(video_file), "--shard-min-rows", "0",
                  "--query", "1"])
        assert "--shard-min-rows" in capsys.readouterr().err
