"""The sharded fan-out execution layer (`repro.exec.sharding`).

Covers the shard planner (pool ranges and iteration ranges), the
thread-pool dispatcher, the k-way columnar shard merge (property-tested
against a dict-level oracle on adversarial shard boundaries), the
kernel-registry error contract, and the sharded execution paths of both
join families — including the two known fallback corners
(``following-sibling``/``preceding-sibling`` DOM walks and constructed
fragments) under ``kernel="auto"`` + sharding.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import errors
from repro.config import (
    FAMILY_STAIRCASE,
    FAMILY_STANDOFF,
    KERNEL_AUTO,
    KERNELS,
    WORKERS_SERIAL,
    normalize_workers,
)
from repro.core.naive import StandoffOp
from repro.core.steps import Strategy, standoff_step
from repro.exec.sharding import (
    ITER_RANGE,
    Shard,
    ShardPlan,
    concat_shards,
    partition_by_iteration,
    plan_shards,
    run_shards,
)
from repro.relational.columnar import ColumnarResult
from repro.staircase import staircase_join
from repro.xmldb import parse_document, shred
from repro.xquery import Database


# ----------------------------------------------------------------------
# the planner
# ----------------------------------------------------------------------

class TestPlanShards:
    def test_serial_is_single_shard(self):
        plan = plan_shards(1_000_000, WORKERS_SERIAL, shard_min_rows=1)
        assert not plan.is_sharded
        assert plan.shards == (Shard(0, 0, 1_000_000),)

    def test_small_workload_stays_serial(self):
        plan = plan_shards(100, 4, shard_min_rows=64)
        assert not plan.is_sharded

    def test_bounds_cover_gap_free(self):
        plan = plan_shards(100_001, 4, shard_min_rows=1000)
        assert plan.is_sharded and plan.n_shards == 4
        assert plan.shards[0].lo == 0
        assert plan.shards[-1].hi == 100_001
        for a, b in zip(plan.shards[:-1], plan.shards[1:]):
            assert a.hi == b.lo

    def test_min_rows_caps_shard_count(self):
        plan = plan_shards(10_000, 8, shard_min_rows=3000)
        assert plan.n_shards == 3
        assert all(s.n_rows >= 3000 for s in plan.shards)

    def test_workers_cap(self):
        plan = plan_shards(1_000_000, 2, shard_min_rows=1)
        assert plan.n_shards == 2

    def test_zero_rows(self):
        plan = plan_shards(0, 4, shard_min_rows=1)
        assert not plan.is_sharded and plan.shards[0].n_rows == 0

    def test_normalize_workers(self):
        assert normalize_workers(WORKERS_SERIAL) == 1
        assert normalize_workers(None) == 1
        assert normalize_workers(4) == 4
        assert normalize_workers("4") == 4
        with pytest.raises(ValueError, match="workers"):
            normalize_workers("many")
        with pytest.raises(ValueError, match="workers"):
            normalize_workers(0)


class TestPartitionByIteration:
    def test_never_splits_an_iteration(self):
        plan = partition_by_iteration([10] * 8, 4, shard_min_rows=5)
        assert plan.kind == ITER_RANGE
        assert plan.is_sharded
        assert plan.shards[0].lo == 0 and plan.shards[-1].hi == 8
        for a, b in zip(plan.shards[:-1], plan.shards[1:]):
            assert a.hi == b.lo

    def test_single_iteration_is_one_shard(self):
        plan = partition_by_iteration([100_000], 4, shard_min_rows=1)
        assert not plan.is_sharded

    def test_skewed_counts_keep_shards_nonempty(self):
        plan = partition_by_iteration([1000, 1, 1], 4, shard_min_rows=1)
        assert all(s.n_rows >= 1 for s in plan.shards)
        assert plan.shards[-1].hi == 3

    def test_min_rows_enforced_on_every_shard(self):
        # A dominant iteration must not strand a tiny trailing shard.
        plan = partition_by_iteration([1023, 1, 1], 4,
                                      shard_min_rows=512)
        assert not plan.is_sharded
        counts = [512] * 3 + [2]
        plan = partition_by_iteration(counts, 4, shard_min_rows=512)
        cum = [0]
        for c in counts:
            cum.append(cum[-1] + c)
        for shard in plan.shards:
            assert cum[shard.hi] - cum[shard.lo] >= 512

    def test_small_total_stays_serial(self):
        plan = partition_by_iteration([1, 1, 1], 4, shard_min_rows=100)
        assert not plan.is_sharded

    def test_balances_row_counts(self):
        plan = partition_by_iteration([5] * 100, 4, shard_min_rows=25)
        assert plan.n_shards == 4
        sizes = [s.n_rows for s in plan.shards]
        assert max(sizes) - min(sizes) <= 1


# ----------------------------------------------------------------------
# the dispatcher
# ----------------------------------------------------------------------

class TestRunShards:
    def test_preserves_job_order(self):
        jobs = [lambda i=i: i * i for i in range(20)]
        assert run_shards(jobs, 4) == [i * i for i in range(20)]

    def test_serial_runs_inline(self):
        import threading

        main = threading.get_ident()
        seen = []
        jobs = [lambda: seen.append(threading.get_ident())] * 3
        run_shards(jobs, WORKERS_SERIAL)
        assert seen == [main] * 3

    def test_exceptions_propagate(self):
        def boom():
            raise RuntimeError("shard failed")

        with pytest.raises(RuntimeError, match="shard failed"):
            run_shards([lambda: 1, boom, lambda: 2], 4)

    def test_empty_jobs(self):
        assert run_shards([], 4) == []


# ----------------------------------------------------------------------
# the k-way columnar shard merge
# ----------------------------------------------------------------------

def assert_csr_invariants(result: ColumnarResult) -> None:
    iters, offsets, values = result.iters, result.offsets, result.values
    assert len(offsets) == len(iters) + 1
    assert offsets[0] == 0 and offsets[-1] == len(values)
    assert np.all(np.diff(offsets) >= 0)
    if len(iters) > 1:
        assert np.all(np.diff(iters) > 0)
    for a, b in zip(offsets[:-1].tolist(), offsets[1:].tolist()):
        chunk = values[a:b]
        if len(chunk) > 1:
            assert np.all(np.diff(chunk) > 0)


def split_by_value_ranges(full: dict[int, list[int]],
                          bounds: list[int]) -> list[ColumnarResult]:
    """Slice a result into pool-range shards at the given value bounds
    (the shape the staircase pool sharding produces)."""
    shards = []
    edges = [-(1 << 60), *bounds, 1 << 60]
    for lo, hi in zip(edges[:-1], edges[1:]):
        part = {it: [v for v in vals if lo <= v < hi]
                for it, vals in full.items()}
        part = {it: vals for it, vals in part.items() if vals}
        shards.append(ColumnarResult.from_dict(part))
    return shards


class TestConcatShards:
    def test_empty_input(self):
        assert concat_shards([]).to_dict() == {}

    def test_all_empty_shards(self):
        merged = concat_shards([ColumnarResult.empty()] * 3)
        assert merged.to_dict() == {}

    def test_single_shard_identity(self):
        one = ColumnarResult.from_dict({3: [1, 2], 9: [5]})
        assert concat_shards([one, ColumnarResult.empty()]) is one

    def test_duplicate_iters_across_shards(self):
        a = ColumnarResult.from_dict({0: [1, 2], 2: [3]})
        b = ColumnarResult.from_dict({0: [10], 1: [7]})
        merged = concat_shards([a, b])
        assert merged.to_dict() == {0: [1, 2, 10], 1: [7], 2: [3]}
        assert_csr_invariants(merged)

    def test_empty_shards_interleaved(self):
        a = ColumnarResult.from_dict({5: [1]})
        b = ColumnarResult.from_dict({5: [2], 6: [9]})
        merged = concat_shards([a, ColumnarResult.empty(), b])
        assert merged.to_dict() == {5: [1, 2], 6: [9]}

    def test_preserved_empty_iterations(self):
        # Anti-join shape: an iteration present with an empty slice
        # survives the merge (its key must not be dropped).
        a = ColumnarResult(np.array([1, 2]), np.array([0, 0, 1]),
                           np.array([4]))
        b = ColumnarResult.from_dict({2: [8]})
        merged = concat_shards([a, b])
        assert merged.to_dict() == {1: [], 2: [4, 8]}

    @given(full=st.dictionaries(st.integers(0, 30),
                                st.lists(st.integers(0, 1000),
                                         min_size=0, max_size=15),
                                max_size=12),
           bounds=st.lists(st.integers(0, 1000), min_size=0,
                           max_size=6).map(sorted))
    @settings(max_examples=120, deadline=None)
    def test_matches_dict_oracle(self, full, bounds):
        """Adversarial shard boundaries: empty shards, single-iter
        shards, duplicate iters across shards — merge == from_dict."""
        full = {it: sorted(set(vals)) for it, vals in full.items()
                if vals}
        shards = split_by_value_ranges(full, bounds)
        merged = concat_shards(shards)
        assert_csr_invariants(merged)
        expected = ColumnarResult.from_dict(full)
        decoded = {it: vals for it, vals in merged.to_dict().items()
                   if vals}
        assert decoded == expected.to_dict()

    @given(per_shard=st.lists(
        st.dictionaries(st.integers(0, 6),
                        st.lists(st.integers(0, 50), min_size=1,
                                 max_size=5),
                        max_size=4),
        min_size=1, max_size=5))
    @settings(max_examples=80, deadline=None)
    def test_iter_range_shards(self, per_shard):
        """Disjoint-iteration shards (the StandOff sharding shape):
        offset each shard's iterations into its own range."""
        shards, expected = [], {}
        for i, data in enumerate(per_shard):
            shifted = {it + 100 * i: sorted(set(vals))
                       for it, vals in data.items()}
            expected.update(shifted)
            shards.append(ColumnarResult.from_dict(shifted))
        merged = concat_shards(shards)
        assert_csr_invariants(merged)
        assert merged.to_dict() == ColumnarResult.from_dict(
            expected).to_dict()


# ----------------------------------------------------------------------
# registry error contract
# ----------------------------------------------------------------------

class TestRegistryErrors:
    def test_unknown_family_raises_dedicated_type(self):
        with pytest.raises(errors.UnknownKernelError,
                           match="unknown join family"):
            KERNELS.validate("sideways", "ll")
        with pytest.raises(errors.UnknownKernelError) as info:
            KERNELS.select("sideways", "ll")
        assert FAMILY_STANDOFF in str(info.value)
        assert FAMILY_STAIRCASE in str(info.value)

    def test_unknown_kernel_lists_family_kernels(self):
        for family in (FAMILY_STANDOFF, FAMILY_STAIRCASE):
            with pytest.raises(errors.UnknownKernelError) as info:
                KERNELS.select(family, "warp9")
            message = str(info.value)
            assert family in message
            for name in KERNELS.names(family):
                assert name in message

    def test_not_a_keyerror(self):
        try:
            KERNELS.validate("sideways", "ll")
        except KeyError:                      # pragma: no cover
            pytest.fail("registry lookups must not leak KeyError")
        except errors.UnknownKernelError:
            pass

    def test_backwards_compatible_with_valueerror(self):
        # Callers that predate the dedicated type catch ValueError.
        assert issubclass(errors.UnknownKernelError, ValueError)
        assert issubclass(errors.UnknownKernelError, errors.ReproError)
        with pytest.raises(ValueError):
            KERNELS.spec(FAMILY_STANDOFF, "warp9")

    def test_names_rejects_unknown_family(self):
        with pytest.raises(errors.UnknownKernelError):
            KERNELS.names("sideways")


# ----------------------------------------------------------------------
# sharded execution == serial reference (both families)
# ----------------------------------------------------------------------

STAIRCASE_AXES = ("descendant", "ancestor", "child", "following",
                  "preceding")


def _tree_xml(n: int) -> str:
    return ("<r>"
            + "".join(f"<a i='{i}'><b><c/></b><d/></a>" for i in range(n))
            + "</r>")


class TestShardedStaircase:
    def test_sharded_equals_serial_all_axes(self):
        doc = parse_document(_tree_xml(40))
        sh = shred(doc)
        context = [(it, pre) for it, pre in
                   enumerate(range(1, len(sh) - 1, 5))]
        for axis in STAIRCASE_AXES:
            for candidates in (None, sh.all_element_pres(),
                               sh.pre[::3]):
                serial = staircase_join(axis, sh, context, candidates,
                                        kernel="vectorized",
                                        workers=WORKERS_SERIAL)
                sharded = staircase_join(axis, sh, context, candidates,
                                         kernel="vectorized", workers=4,
                                         shard_min_rows=1)
                assert serial == sharded, (axis, candidates is None)

    def test_sharded_or_self(self):
        doc = parse_document(_tree_xml(25))
        sh = shred(doc)
        context = [(it, pre) for it, pre in
                   enumerate(range(0, len(sh), 4))]
        for axis in ("descendant", "ancestor"):
            serial = staircase_join(axis, sh, context,
                                    sh.all_element_pres(), or_self=True,
                                    kernel="vectorized",
                                    workers=WORKERS_SERIAL)
            sharded = staircase_join(axis, sh, context,
                                     sh.all_element_pres(), or_self=True,
                                     kernel="vectorized", workers=4,
                                     shard_min_rows=1)
            assert serial == sharded, axis

    def test_ll_kernel_ignores_workers(self):
        # The reference path is the oracle; it never fans out.
        doc = parse_document(_tree_xml(10))
        sh = shred(doc)
        context = [(0, 0), (1, 1)]
        serial = staircase_join("descendant", sh, context, kernel="ll")
        sharded = staircase_join("descendant", sh, context, kernel="ll",
                                 workers=4, shard_min_rows=1)
        assert serial == sharded


def _standoff_db(n: int = 60) -> Database:
    xml = "<doc>" + "".join(
        f"<music start='{i * 10}' end='{i * 10 + 25}'/>"
        f"<shot start='{i * 10 + 2}' end='{i * 10 + 8}'/>"
        for i in range(n)) + "</doc>"
    db = Database()
    db.add_document("v.xml", xml)
    return db


class TestShardedStandoff:
    def test_step_level_sharded_equals_serial(self):
        db = _standoff_db()
        stored = db.store.get("v.xml")
        index = stored.region_index()
        ids = index.annotated_ids().tolist()
        context = [(it % 7, 0, nid) for it, nid in enumerate(ids)]
        indexes = {0: index}
        for op in StandoffOp:
            serial = standoff_step(op, context, indexes,
                                   strategy=Strategy.LOOP_LIFTED,
                                   kernel="vectorized",
                                   workers=WORKERS_SERIAL)
            sharded = standoff_step(op, context, indexes,
                                    strategy=Strategy.LOOP_LIFTED,
                                    kernel="vectorized", workers=4,
                                    shard_min_rows=1)
            assert serial == sharded, op

    @pytest.mark.parametrize("strategy", ["udf", "basic", "ll"])
    @pytest.mark.parametrize("kernel", ["ll", "vectorized", "auto"])
    def test_engine_level_sharded_equals_serial(self, strategy, kernel):
        db = _standoff_db()
        query = ('for $m in doc("v.xml")//music '
                 'return $m/select-wide::shot')
        serial = db.query(query, strategy=strategy,
                          kernel=kernel).serialize()
        sharded = db.query(query, strategy=strategy, kernel=kernel,
                           workers=4, shard_min_rows=1).serialize()
        assert serial == sharded, (strategy, kernel)

    def test_engine_rejects_bad_shard_min_rows(self):
        db = _standoff_db(5)
        with pytest.raises(ValueError, match="shard_min_rows"):
            db.query('doc("v.xml")//music', shard_min_rows=0)

    def test_anti_join_sharded(self):
        db = _standoff_db()
        query = ('for $m in doc("v.xml")//music '
                 'return count($m/reject-narrow::shot)')
        serial = db.query(query, strategy="ll").serialize()
        sharded = db.query(query, strategy="ll", workers=4,
                           shard_min_rows=1).serialize()
        assert serial == sharded

    def test_multi_fragment_sharded(self):
        # Constructed fragments + a stored document in one step.
        db = _standoff_db(20)
        query = ('let $f := <r><m start="5" end="50">'
                 '<s start="7" end="9"/></m></r> '
                 'return ($f//m/select-wide::s, '
                 'doc("v.xml")//music/select-wide::shot)')
        serial = db.query(query, strategy="ll").serialize()
        sharded = db.query(query, strategy="ll", workers=4,
                           shard_min_rows=1).serialize()
        assert serial == sharded


# ----------------------------------------------------------------------
# regression: the former fallback corners now run on the kernel path
# ----------------------------------------------------------------------

SIBLING_XML = ('<r><a i="1"/><b/><a i="2"><c/><d/><c/></a>'
               '<b j="9"/><a i="3"/>text<b/></r>')


class _NoDomWalk(dict):
    """An AXIS_FUNCTIONS stand-in that fails the test on first access —
    proof that a query never reached the generic DOM-walk step."""

    def __getitem__(self, axis):
        raise AssertionError(
            f"DOM-walk fallback reached for axis {axis!r}")


@pytest.fixture
def forbid_dom_walk(monkeypatch):
    from repro.xquery import bulk

    monkeypatch.setattr(bulk, "AXIS_FUNCTIONS", _NoDomWalk())


class TestFormerFallbackCorners:
    """PR 3/4 left two gaps that dropped to the per-node DOM walk:
    sibling axes and constructed fragments.  Both now run through the
    staircase kernel path — these tests additionally *forbid* the DOM
    walk while asserting oracle agreement under auto + sharding."""

    @pytest.mark.parametrize("axis", ["following-sibling",
                                      "preceding-sibling"])
    def test_sibling_axes_on_kernel_path_sharded(self, axis,
                                                 forbid_dom_walk):
        db = Database()
        db.add_document("d.xml", SIBLING_XML)
        for query in (f'doc("d.xml")//a/{axis}::b',
                      f'doc("d.xml")//b/{axis}::node()',
                      f'for $a in doc("d.xml")//a '
                      f'return count($a/{axis}::*)'):
            reference = db.query(query, strategy="basic").serialize()
            for kernel in ("ll", "vectorized", "auto"):
                got = db.query(query, strategy="ll", kernel=kernel,
                               staircase_kernel=kernel, workers=4,
                               shard_min_rows=1).serialize()
                assert got == reference, (axis, query, kernel)

    def test_constructed_fragments_on_kernel_path_sharded(
            self, forbid_dom_walk):
        """Constructed fragments shred on demand; the staircase path
        must serve them without the DOM walk — correct and crash-free
        under kernel='auto' + workers."""
        db = Database()
        db.add_document("d.xml", SIBLING_XML)
        queries = [
            'let $f := <x><a><b/><b/></a><c><b/></c></x> '
            'return $f/descendant::b',
            'let $f := <x><a><b/></a></x> '
            'return for $b in $f//b return count($b/ancestor::*)',
            'let $f := <x><a/><b/><c/></x> return $f/child::node()',
            'let $f := <x><a/>mid<b/><c/></x> '
            'return $f/a/following-sibling::node()',
        ]
        for query in queries:
            reference = db.query(query, strategy="basic").serialize()
            got = db.query(query, strategy="ll", kernel="auto",
                           staircase_kernel="auto", workers=4,
                           shard_min_rows=1).serialize()
            assert got == reference, query

    def test_mixed_stored_and_constructed_context(self, forbid_dom_walk):
        """A step whose context mixes a stored document with a
        constructed fragment runs one kernel join per fragment and
        merges per iteration in document order."""
        db = Database()
        db.add_document("d.xml", SIBLING_XML)
        queries = [
            'for $x in (doc("d.xml")/r, <x><a><b/></a></x>) '
            'return count($x/descendant::*)',
            '(doc("d.xml")/r, <x><y/><z/></x>)/child::*',
        ]
        for query in queries:
            reference = db.query(query, strategy="basic").serialize()
            got = db.query(query, strategy="ll", staircase_kernel="auto",
                           workers=4, shard_min_rows=1).serialize()
            assert got == reference, query
