"""Tests for shredding, the document store and region extraction."""

import numpy as np
import pytest

from repro.config import StandoffConfig
from repro.core import Area, Region
from repro.errors import RegionError, ReproError
from repro.xmldb import DocumentStore, parse_document, shred
from repro.xmldb.store import extract_regions

ANNOTATED = """
<sample>
  <video>
    <shot id="Intro" start="0" end="8"/>
    <shot id="Interview" start="8" end="64"/>
    <shot id="Outro" start="64" end="94"/>
  </video>
  <audio>
    <music artist="U2" start="0" end="31"/>
    <music artist="Bach" start="52" end="94"/>
  </audio>
</sample>
"""


class TestShred:
    def test_columns_aligned(self):
        doc = parse_document("<a x='1'><b>t</b></a>")
        sh = shred(doc)
        n = doc.node_count
        assert len(sh.pre) == len(sh.size) == len(sh.level) == n
        assert sh.pre.tolist() == list(range(n))

    def test_kind_and_names(self):
        doc = parse_document("<a x='1'><b>t</b><!--c--></a>")
        sh = shred(doc)
        assert sh.name_of(doc.root_element.pre) == "a"
        b = doc.root_element.find("b")
        assert sh.name_of(b.pre) == "b"
        assert sh.value_of(b.pre + 1) == "t"

    def test_parent_column(self):
        doc = parse_document("<a><b><c/></b></a>")
        sh = shred(doc)
        c = doc.root_element.find("b").find("c")
        assert sh.parent[c.pre] == doc.root_element.find("b").pre
        assert sh.parent[0] == -1

    def test_element_index(self):
        doc = parse_document("<a><b/><c><b/></c></a>")
        sh = shred(doc)
        bs = sh.elements_named("b")
        assert len(bs) == 2
        assert all(sh.name_of(p) == "b" for p in bs.tolist())
        assert sh.elements_named("zzz").tolist() == []

    def test_post_order(self):
        doc = parse_document("<a><b><c/></b><d/></a>")
        sh = shred(doc)
        post = sh.post()
        a = doc.root_element
        d = a.find("d")
        # post(a) is the largest in its subtree
        assert post[a.pre] == a.pre + a.size
        assert post[d.pre] == d.pre


class TestRegionExtraction:
    def test_attribute_form_default(self):
        doc = parse_document(ANNOTATED)
        entries = list(extract_regions(doc))
        assert len(entries) == 5
        starts = sorted(start for _pre, start, _end in entries)
        assert starts == [0, 0, 8, 52, 64]

    def test_custom_attribute_names(self):
        doc = parse_document('<a><x b="5" e="9"/></a>')
        config = StandoffConfig(start_name="b", end_name="e")
        entries = list(extract_regions(doc, config))
        assert len(entries) == 1
        assert entries[0][1:] == (5, 9)

    def test_element_form(self):
        doc = parse_document(
            "<a><f><region><start>1</start><end>2</end></region>"
            "<region><start>10</start><end>20</end></region>bar</f></a>")
        config = StandoffConfig(region_name="region")
        entries = list(extract_regions(doc, config))
        assert len(entries) == 2
        pres = {pre for pre, _s, _e in entries}
        assert len(pres) == 1  # both regions belong to the same element

    def test_element_form_requires_region_option(self):
        doc = parse_document(
            "<a><f><region><start>1</start><end>2</end></region></f></a>")
        assert list(extract_regions(doc)) == []

    def test_half_region_attribute_raises(self):
        doc = parse_document('<a><x start="5"/></a>')
        with pytest.raises(RegionError):
            list(extract_regions(doc))

    def test_inverted_region_raises(self):
        doc = parse_document('<a><x start="9" end="5"/></a>')
        with pytest.raises(RegionError):
            list(extract_regions(doc))

    def test_unparseable_position_raises(self):
        doc = parse_document('<a><x start="five" end="9"/></a>')
        with pytest.raises(RegionError):
            list(extract_regions(doc))

    def test_double_positions(self):
        doc = parse_document('<a><x start="0.5" end="2.75"/></a>')
        config = StandoffConfig(position_type="xs:double")
        ((_pre, start, end),) = extract_regions(doc, config)
        assert (start, end) == (0.5, 2.75)

    def test_nested_annotations_not_restricted(self):
        # A descendant's region need not be contained in the ancestor's.
        doc = parse_document(
            '<a><x start="10" end="20"><y start="0" end="100"/></x></a>')
        assert len(list(extract_regions(doc))) == 2


class TestDocumentStore:
    def test_add_and_get(self):
        store = DocumentStore()
        stored = store.add("doc.xml", "<a/>")
        assert store.get("doc.xml") is stored
        assert "doc.xml" in store
        assert len(store) == 1

    def test_duplicate_uri_rejected(self):
        store = DocumentStore()
        store.add("doc.xml", "<a/>")
        with pytest.raises(ReproError):
            store.add("doc.xml", "<b/>")

    def test_missing_uri(self):
        store = DocumentStore()
        with pytest.raises(ReproError):
            store.get("missing.xml")

    def test_doc_ids_distinct(self):
        store = DocumentStore()
        d1 = store.add("a.xml", "<a/>")
        d2 = store.add("b.xml", "<b/>")
        assert d1.doc_id != d2.doc_id
        assert store.by_id(d2.doc_id) is d2

    def test_remove(self):
        store = DocumentStore()
        store.add("a.xml", "<a/>")
        store.remove("a.xml")
        assert "a.xml" not in store
        with pytest.raises(ReproError):
            store.remove("a.xml")

    def test_region_index_cached_per_config(self):
        store = DocumentStore()
        stored = store.add("doc.xml", ANNOTATED)
        idx1 = stored.region_index()
        idx2 = stored.region_index()
        assert idx1 is idx2
        other = stored.region_index(StandoffConfig(start_name="s1",
                                                   end_name="e1"))
        assert other is not idx1
        assert len(other) == 0

    def test_area_of_node(self):
        store = DocumentStore()
        stored = store.add("doc.xml", ANNOTATED)
        doc = stored.document
        intro = next(el for el in doc.descendants()
                     if getattr(el, "tag", None) == "shot")
        area = stored.area_of_node(intro.pre)
        assert area == Area([Region(0, 8)])
        assert stored.area_of_node(doc.root_element.pre) is None
