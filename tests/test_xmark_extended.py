"""The wider XMark query suite on the generated document."""

import pytest

from repro.xmark import (
    EXTENDED_PLAIN,
    EXTENDED_STANDOFF,
    extended_query_text,
    generate_xmark_document,
    standoffize,
)
from repro.xquery import Database


@pytest.fixture(scope="module")
def db():
    source = generate_xmark_document(scale=0.2, seed=5)
    bundle = standoffize(source, permute=True)
    database = Database()
    database.store.add("plain.xml", source)
    database.store.add("standoff.xml", bundle.document)
    return database


class TestExtendedPlain:
    @pytest.mark.parametrize("qid", sorted(EXTENDED_PLAIN))
    def test_runs_without_error(self, db, qid):
        query = extended_query_text(qid, "plain.xml")
        result = db.query(query)
        assert isinstance(list(result), list)

    def test_q3_shape(self, db):
        result = db.query(extended_query_text("q3", "plain.xml"))
        for el in result:
            first = float(el.get_attribute("first"))
            last = float(el.get_attribute("last"))
            assert first * 2 <= last

    def test_q5_counts_expensive_sales(self, db):
        (count,) = db.query(extended_query_text("q5", "plain.xml"))
        (total,) = db.query('count(doc("plain.xml")//closed_auction)')
        assert 0 < count <= total

    def test_q8_join_totals_match(self, db):
        """Sum of per-person purchase counts == number of closed
        auctions (every auction has exactly one buyer)."""
        result = db.query(extended_query_text("q8", "plain.xml"))
        bought = sum(int(el.string_value()) for el in result)
        (total,) = db.query('count(doc("plain.xml")//closed_auction)')
        assert bought == total

    def test_q13_australian_items(self, db):
        result = db.query(extended_query_text("q13", "plain.xml"))
        (expected,) = db.query(
            'count(doc("plain.xml")/site/regions/australia/item)')
        assert len(result) == expected

    def test_q17_complement_of_homepages(self, db):
        result = db.query(extended_query_text("q17", "plain.xml"))
        (total,) = db.query('count(doc("plain.xml")//person)')
        (with_hp,) = db.query(
            'count(doc("plain.xml")//person[homepage])')
        assert len(result) == total - with_hp

    def test_q20_partitions_profiles(self, db):
        (result,) = db.query(extended_query_text("q20", "plain.xml"))
        buckets = [int(child.string_value())
                   for child in result.children]
        (total,) = db.query('count(doc("plain.xml")//profile)')
        assert sum(buckets) == total


class TestExtendedStandoff:
    @pytest.mark.parametrize("qid", sorted(EXTENDED_STANDOFF))
    @pytest.mark.parametrize("strategy", ["basic", "ll"])
    def test_runs_under_both_strategies(self, db, qid, strategy):
        query = extended_query_text(qid, "standoff.xml", standoff=True)
        result = db.query(query, strategy=strategy)
        assert isinstance(list(result), list)

    @pytest.mark.parametrize("qid", sorted(EXTENDED_STANDOFF))
    def test_strategies_agree(self, db, qid):
        query = extended_query_text(qid, "standoff.xml", standoff=True)
        basic = db.query(query, strategy="basic").serialize()
        ll = db.query(query, strategy="ll").serialize()
        assert basic == ll

    def test_q17_standoff_matches_plain_count(self, db):
        """Structure-independent invariant: the number of persons
        without homepage is the same however we navigate."""
        plain = db.query(extended_query_text("q17", "plain.xml"))
        standoff = db.query(
            extended_query_text("q17", "standoff.xml", standoff=True))
        assert len(plain) == len(standoff)

    def test_unknown_query_id(self):
        with pytest.raises(ValueError):
            extended_query_text("q99", "x.xml")
