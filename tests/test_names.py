"""Tests for XML name validation and QName handling."""

import pytest

from repro.errors import XMLSyntaxError
from repro.xmldb.names import (
    is_ncname,
    is_qname,
    local_name,
    require_qname,
    split_qname,
)


class TestNCName:
    @pytest.mark.parametrize("good", [
        "a", "abc", "_x", "a-b", "a.b", "a1", "héllo", "x_y-z.w",
    ])
    def test_valid(self, good):
        assert is_ncname(good)

    @pytest.mark.parametrize("bad", [
        "", "1a", "-a", ".a", "a b", "a:b", "a/b", "a<b",
    ])
    def test_invalid(self, bad):
        assert not is_ncname(bad)


class TestQName:
    @pytest.mark.parametrize("good", [
        "a", "ns:a", "ns:a-b", "_p:_l",
    ])
    def test_valid(self, good):
        assert is_qname(good)

    @pytest.mark.parametrize("bad", [
        "", ":a", "a:", "a:b:c", "1:a", "a:1", "a :b",
    ])
    def test_invalid(self, bad):
        assert not is_qname(bad)

    def test_require_qname_passes_through(self):
        assert require_qname("ns:tag") == "ns:tag"

    def test_require_qname_raises(self):
        with pytest.raises(XMLSyntaxError):
            require_qname("not a name")


class TestSplit:
    def test_unprefixed(self):
        assert split_qname("tag") == (None, "tag")

    def test_prefixed(self):
        assert split_qname("ns:tag") == ("ns", "tag")

    def test_local_name(self):
        assert local_name("ns:tag") == "tag"
        assert local_name("tag") == "tag"
