"""Parser tests: grammar coverage and error behaviour."""

import pytest

from repro.errors import UnsupportedFeatureError, XQuerySyntaxError
from repro.xquery import parse, parse_expr
from repro.xquery import ast


class TestLiteralsAndOperators:
    def test_integer(self):
        expr = parse_expr("42")
        assert isinstance(expr, ast.Literal)
        assert expr.value == 42

    def test_decimal_and_double(self):
        assert parse_expr("3.25").value == 3.25
        assert parse_expr("1e3").value == 1000.0
        assert parse_expr("2.5E-1").value == 0.25

    def test_string_quotes(self):
        assert parse_expr('"hello"').value == "hello"
        assert parse_expr("'world'").value == "world"
        assert parse_expr('"say ""hi"""').value == 'say "hi"'
        assert parse_expr('"a &amp; b"').value == "a & b"

    def test_arithmetic_precedence(self):
        expr = parse_expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_comparison_precedence(self):
        expr = parse_expr("1 + 1 = 2")
        assert expr.op == "="

    def test_and_or_precedence(self):
        expr = parse_expr("1 = 1 or 2 = 2 and 3 = 3")
        assert expr.op == "or"
        assert expr.right.op == "and"

    def test_value_comparisons(self):
        for op in ("eq", "ne", "lt", "le", "gt", "ge"):
            assert parse_expr(f"1 {op} 2").op == op

    def test_range(self):
        expr = parse_expr("1 to 5")
        assert isinstance(expr, ast.RangeExpr)

    def test_unary_minus(self):
        expr = parse_expr("-5")
        assert isinstance(expr, ast.UnaryOp)

    def test_sequence_comma(self):
        expr = parse_expr("(1, 2, 3)")
        assert isinstance(expr, ast.Sequence)
        assert len(expr.items) == 3

    def test_empty_sequence(self):
        assert isinstance(parse_expr("()"), ast.EmptySequence)

    def test_hyphenated_name_is_one_token(self):
        # XQuery: 'a-b' is a single name; subtraction needs spaces.
        expr = parse_expr("a-b")
        assert isinstance(expr, ast.AxisStep)
        assert expr.test.name == "a-b"
        sub = parse_expr("$a - $b")
        assert sub.op == "-"

    def test_comments_skipped(self):
        expr = parse_expr("1 (: a (: nested :) comment :) + 2")
        assert expr.op == "+"


class TestPaths:
    def test_descendant_shorthand(self):
        expr = parse_expr("//music")
        assert isinstance(expr, ast.PathExpr)
        assert expr.absolute
        assert expr.steps[0].axis == "descendant-or-self"
        assert expr.steps[1].test.name == "music"

    def test_explicit_axes(self):
        for axis in sorted(ast.STANDARD_AXES):
            expr = parse_expr(f"{axis}::x")
            assert expr.axis == axis

    def test_standoff_axes(self):
        for axis in sorted(ast.STANDOFF_AXES):
            expr = parse_expr(f"//a/{axis}::b")
            assert expr.steps[-1].axis == axis
            assert expr.steps[-1].is_standoff

    def test_unknown_axis_rejected(self):
        with pytest.raises(XQuerySyntaxError):
            parse_expr("sideways::x")

    def test_attribute_shorthand(self):
        expr = parse_expr("@id")
        assert expr.axis == "attribute"
        assert expr.test.name == "id"

    def test_wildcard(self):
        expr = parse_expr("//*")
        assert expr.steps[-1].test.name == "*"

    def test_kind_tests(self):
        expr = parse_expr("a/text()")
        assert expr.steps[-1].test.kind == "text"
        expr = parse_expr("a/node()")
        assert expr.steps[-1].test.kind == "node"

    def test_parent_shorthand(self):
        expr = parse_expr("a/..")
        assert expr.steps[-1].axis == "parent"

    def test_predicates(self):
        expr = parse_expr('person[@id="person0"][2]')
        assert len(expr.predicates) == 2

    def test_keyword_named_element_after_slash(self):
        # 'div' is an operator keyword but a legal step name after '/'
        expr = parse_expr("//div/span")
        assert expr.steps[1].test.name == "div"

    def test_function_call_in_path(self):
        expr = parse_expr('doc("x.xml")//a')
        assert isinstance(expr.steps[0], ast.FilterExpr)
        assert expr.steps[0].base.name == "doc"

    def test_path_after_predicate_filter(self):
        expr = parse_expr("$x[1]/b")
        assert isinstance(expr.steps[0], ast.FilterExpr)
        assert expr.steps[0].predicates


class TestFLWOR:
    def test_simple_for(self):
        expr = parse_expr("for $x in (1,2) return $x")
        assert isinstance(expr, ast.FLWOR)
        assert expr.clauses[0].var == "x"

    def test_multiple_bindings_one_for(self):
        expr = parse_expr("for $x in (1), $y in (2) return ($x,$y)")
        assert len(expr.clauses) == 2

    def test_let_where_order(self):
        expr = parse_expr(
            "for $x in (1,2) let $y := $x where $y > 1 "
            "order by $y descending return $y")
        assert isinstance(expr.clauses[1], ast.LetClause)
        assert expr.where is not None
        assert expr.order_by[0].descending

    def test_positional_variable(self):
        expr = parse_expr("for $x at $i in (5,6) return $i")
        assert expr.clauses[0].position_var == "i"

    def test_nested_flwor(self):
        expr = parse_expr(
            "for $x in (1,2) return for $y in (3,4) return $x * $y")
        assert isinstance(expr.return_expr, ast.FLWOR)

    def test_quantified(self):
        expr = parse_expr("some $x in (1,2) satisfies $x = 2")
        assert isinstance(expr, ast.Quantified)
        assert expr.quantifier == "some"

    def test_if_then_else(self):
        expr = parse_expr("if (1 = 1) then 'a' else 'b'")
        assert isinstance(expr, ast.IfExpr)


class TestProlog:
    def test_declare_option(self):
        module = parse(
            'declare option standoff-start "s";\n'
            'declare option standoff-end "e";\n'
            "1")
        assert module.prolog.options == {"standoff-start": "s",
                                         "standoff-end": "e"}

    def test_option_without_semicolon_paper_style(self):
        module = parse(
            'declare option standoff-type "xs:integer"\n'
            'declare option standoff-start "b"\n'
            "2")
        assert module.prolog.options["standoff-start"] == "b"

    def test_declare_namespace_and_module(self):
        module = parse(
            'declare namespace x = "http://example.org";\n'
            'declare module standoff = "http://w3c.org/tr/standoff/"\n'
            "3")
        assert module.prolog.namespaces["x"] == "http://example.org"
        assert "standoff" in module.prolog.namespaces

    def test_declare_variable(self):
        module = parse("declare variable $n := 41; $n + 1")
        assert module.prolog.variables[0].name == "n"

    def test_declare_function_figure2(self):
        """The Figure 2 UDF declaration parses."""
        module = parse("""
            declare module standoff = "http://w3c.org/tr/standoff/"
            declare function select-narrow-udf($input as xs:anyNode*)
              as xs:anyNode*
            {
              (for $q in $input
               for $p in root($q)//*
               where $p/@start >= $q/@start
                 and $p/@end <= $q/@end
               return $p)/.
            }
            1
        """)
        decl = module.prolog.functions[0]
        assert decl.name == "select-narrow-udf"
        assert decl.params == ["input"]

    def test_unsupported_declare(self):
        with pytest.raises(UnsupportedFeatureError):
            parse('declare boundary-space preserve; 1')


class TestConstructors:
    def test_empty_element(self):
        expr = parse_expr("<a/>")
        assert isinstance(expr, ast.ElementConstructor)
        assert expr.name == "a"

    def test_attributes_with_expr(self):
        expr = parse_expr('<a x="1" y="{1+1}z"/>')
        assert expr.attributes[0].parts == ["1"]
        y_parts = expr.attributes[1].parts
        assert isinstance(y_parts[0], ast.BinaryOp)
        assert y_parts[1] == "z"

    def test_nested_content(self):
        expr = parse_expr("<a>text<b/>{$x}</a>")
        kinds = [type(p).__name__ if not isinstance(p, str) else "str"
                 for p in expr.content]
        assert kinds == ["str", "ElementConstructor", "VarRef"]

    def test_figure5_query_parses(self):
        """The paper's StandOff XMark Query 2 (Figure 5)."""
        expr = parse_expr("""
            for $b in doc("xmark110MB.xml")
                //site/select-narrow::open_auctions
                /select-narrow::open_auction
            return <increase> {
                $b/select-narrow::bidder[1]/select-narrow::increase
            } </increase>
        """)
        assert isinstance(expr, ast.FLWOR)
        ctor = expr.return_expr
        assert isinstance(ctor, ast.ElementConstructor)
        inner = [p for p in ctor.content if isinstance(p, ast.PathExpr)]
        assert inner[0].steps[-1].axis == "select-narrow"

    def test_brace_escapes(self):
        expr = parse_expr("<a>{{literal}}</a>")
        assert expr.content == ["{literal}"]

    def test_mismatched_close_rejected(self):
        with pytest.raises(XQuerySyntaxError):
            parse_expr("<a></b>")

    def test_computed_constructor_unsupported(self):
        with pytest.raises(UnsupportedFeatureError):
            parse_expr('element {"x"} {1}')


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "for $x in", "1 +", "((1)", "let $x 1", "<a>",
        "$", "for x in (1) return x", 'declare option x 1; 2',
    ])
    def test_syntax_errors(self, bad):
        with pytest.raises(XQuerySyntaxError):
            parse(bad)

    def test_error_has_position(self):
        with pytest.raises(XQuerySyntaxError) as info:
            parse_expr("1 +\n+")
        assert info.value.line >= 1

    def test_trailing_garbage(self):
        with pytest.raises(XQuerySyntaxError):
            parse_expr("1 2 3")
