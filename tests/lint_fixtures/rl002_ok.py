"""RL002 near-misses: frozen columns, scratch arrays, read-only maps."""

import numpy as np


def freeze(*arrays):
    for array in arrays:
        array.flags.writeable = False
    return arrays


class RegionTable:
    def __init__(self, rows):
        self.starts = np.asarray(rows, dtype="<i8")
        self.ends = np.zeros(len(rows), dtype="<i8")
        self.scratch = np.ones(3, dtype="<f8")
        freeze(self.starts)
        self.ends.flags.writeable = False


class MappedTable:
    def __init__(self, path):
        self.starts = np.memmap(path, dtype="<i8", mode="r")
