"""RL001 near-misses: pinned dtypes, astype chains, same-line suppression."""

import numpy as np


def build(rows):
    starts = np.zeros(len(rows), dtype="<i8")
    ids = np.asarray(rows, dtype=np.int64)
    ranks = np.arange(0, len(rows), 1, np.int64)
    kinds = np.asarray(rows).astype("<u1")
    values = np.fromiter(rows, np.float64)
    return starts, ids, ranks, kinds, values


def dispatch(rows):
    return np.asarray(rows)   # repro: lint-ok[RL001] kind-dispatch point
