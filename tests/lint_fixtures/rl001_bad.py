"""RL001 true positives: platform-default dtypes in scoped code."""

import numpy as np


def build(rows):
    starts = np.zeros(len(rows))
    ids = np.asarray(rows)
    ranks = np.arange(len(rows))
    return starts, ids, ranks
