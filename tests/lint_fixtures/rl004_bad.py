"""RL004 true positives: lazy-build stores outside the build lock."""


class StoredThing:
    def __init__(self):
        self._shredded = None
        self._region_indexes = {}
        self._build_lock = None

    def shredded(self):
        if self._shredded is None:
            self._shredded = build()
        return self._shredded

    def region_index(self, config):
        index = self._region_indexes.get(config)
        if index is None:
            index = build()
            self._region_indexes[config] = index
        return index


def build():
    return object()
