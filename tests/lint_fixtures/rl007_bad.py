"""RL007 true positives: unpolled unbounded/shard-wait loops."""


def pump(queue):
    while True:
        item = queue.get()
        if item is None:
            return


def drain(futures, as_completed):
    for future in as_completed(futures):
        future.result()


def must_poll_fn(rows):
    return list(rows)
