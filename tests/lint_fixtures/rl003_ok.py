"""RL003 near-misses: entries that pin the referent, non-id keys."""


class FragmentCache:
    def __init__(self):
        self._infos = {}

    def remember(self, root, info):
        self._infos[id(root)] = (root, info)

    def remember_via_var(self, root, info):
        key = id(root)
        self._infos[key] = (root, info)

    def remember_by_uri(self, root, info):
        self._infos[root.uri] = info
