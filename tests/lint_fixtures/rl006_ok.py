"""RL006 near-misses: concrete catches and re-raising cleanup."""


def run(work):
    try:
        return work()
    except (ValueError, KeyError):
        return None


def cleanup(work, state):
    try:
        return work()
    except BaseException:
        state.clear()
        raise
