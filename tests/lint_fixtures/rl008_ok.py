"""RL008 near-misses: canonical axes, non-axis string tuples."""


def register(KernelSpec):
    return KernelSpec(name="vec",
                      axes=("descendant", "ancestor", "following-sibling"))


def check(validate_axis, axis):
    validate_axis(axis, ("child", "preceding-sibling"))


def unrelated(KernelSpec):
    return KernelSpec(name="vec", tags=("sideways", "upward"))
