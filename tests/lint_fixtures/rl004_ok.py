"""RL004 near-misses: stores under the lock, __init__ defaults."""

import threading


class StoredThing:
    def __init__(self):
        self._shredded = None
        self._region_indexes = {}
        self._build_lock = threading.RLock()

    def shredded(self):
        if self._shredded is None:
            with self._build_lock:
                if self._shredded is None:
                    self._shredded = build()
        return self._shredded

    def region_index(self, config):
        with self._build_lock:
            self._region_indexes[config] = build()
        return self._region_indexes[config]


def build():
    return object()
