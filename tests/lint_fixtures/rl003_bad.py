"""RL003 true positives: id()-keyed stores with no pinned referent."""


class FragmentCache:
    def __init__(self):
        self._infos = {}

    def remember(self, root, info):
        self._infos[id(root)] = info

    def remember_via_var(self, root, info):
        key = id(root)
        self._infos.setdefault(key, info)
