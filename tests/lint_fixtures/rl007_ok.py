"""RL007 near-misses: polled loops, bounded loops."""


def pump(queue, token):
    while True:
        token.raise_if_cancelled()
        item = queue.get()
        if item is None:
            return


def drain(futures, as_completed, token):
    for future in as_completed(futures):
        check_cancelled(token)
        future.result()


def must_poll_fn(rows, token):
    token.raise_if_cancelled()
    return list(rows)


def bounded(rows):
    total = 0
    for row in rows:
        total += row
    return total


def check_cancelled(token):
    pass
