"""RL008 true positives: axis names outside the canonical vocabulary."""


def register(KernelSpec):
    return KernelSpec(name="vec", axes=("descendant", "sideways"))


def check(validate_axis, axis):
    validate_axis(axis, ("ancestor", "upward"))
