"""RL000 near-miss: a reasoned suppression is accepted (and applied)."""

import numpy as np


def build():
    # repro: lint-ok[RL001] caller casts to the backend dtype
    return np.zeros(4)
