"""RL000 true positive: a suppression comment with no reason."""

import numpy as np


def build():
    # repro: lint-ok[RL001]
    return np.zeros(4)
