"""RL006 true positives: broad catches in a cancellation-visible module."""


def run(work):
    try:
        return work()
    except Exception:
        return None


def cleanup(work, state):
    try:
        return work()
    except BaseException:
        state.clear()
        return None
