"""RL005 true positive: an shm segment created with no unwind guard."""

from multiprocessing import shared_memory


def pack(arrays, total):
    segment = shared_memory.SharedMemory(create=True, size=total)
    for array in arrays:
        fill(segment, array)
    return segment.name


def fill(segment, array):
    pass
