"""RL005 near-misses: guarded creations and attach-only opens."""

from multiprocessing import shared_memory


def pack_guarded(arrays, total):
    segment = shared_memory.SharedMemory(create=True, size=total)
    try:
        for array in arrays:
            fill(segment, array)
    except BaseException:
        segment.close()
        segment.unlink()
        raise
    return segment.name


def pack_enclosed(arrays, total):
    try:
        segment = shared_memory.SharedMemory(create=True, size=total)
        fill(segment, arrays)
        return segment.name
    except BaseException:
        _unlink_pending()
        raise


def attach(name):
    return shared_memory.SharedMemory(name=name)


def fill(segment, array):
    pass


def _unlink_pending():
    pass
