"""RL002 true positive: a shared column built but never frozen."""

import numpy as np


class RegionTable:
    def __init__(self, rows):
        self.starts = np.asarray(rows, dtype="<i8")
