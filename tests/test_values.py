"""Unit and property tests for the XQuery value model."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import XQueryDynamicError, XQueryTypeError
from repro.xmldb import parse_document
from repro.xquery.values import (
    arithmetic,
    atomic_to_string,
    atomize,
    atomize_single,
    compare_atomic,
    effective_boolean_value,
    general_compare,
    string_value,
    to_number,
    value_compare,
)


class TestAtomize:
    def test_nodes_become_string_values(self):
        doc = parse_document("<a>one<b>two</b></a>")
        assert atomize([doc.root_element]) == ["onetwo"]

    def test_attributes(self):
        doc = parse_document('<a x="42"/>')
        attr = doc.root_element.attribute_node("x")
        assert atomize([attr]) == ["42"]

    def test_atomics_pass_through(self):
        assert atomize([1, "x", True, 2.5]) == [1, "x", True, 2.5]

    def test_atomize_single_rejects_many(self):
        with pytest.raises(XQueryTypeError):
            atomize_single([1, 2])

    def test_atomize_single_empty_is_none(self):
        assert atomize_single([]) is None


class TestEffectiveBooleanValue:
    def test_empty_false(self):
        assert effective_boolean_value([]) is False

    def test_node_first_true(self):
        doc = parse_document("<a/>")
        assert effective_boolean_value([doc.root_element, 1, 2]) is True

    def test_singleton_rules(self):
        assert effective_boolean_value([True]) is True
        assert effective_boolean_value([False]) is False
        assert effective_boolean_value([""]) is False
        assert effective_boolean_value(["x"]) is True
        assert effective_boolean_value([0]) is False
        assert effective_boolean_value([0.0]) is False
        assert effective_boolean_value([7]) is True
        assert effective_boolean_value([float("nan")]) is False

    def test_multi_atomic_raises(self):
        with pytest.raises(XQueryTypeError):
            effective_boolean_value([1, 2])


class TestToNumber:
    def test_parses(self):
        assert to_number("42") == 42.0
        assert to_number(" 2.5 ") == 2.5
        assert to_number(True) == 1.0
        assert to_number(3) == 3.0

    def test_rejects_garbage(self):
        with pytest.raises(XQueryDynamicError):
            to_number("forty-two")


class TestAtomicToString:
    def test_booleans(self):
        assert atomic_to_string(True) == "true"
        assert atomic_to_string(False) == "false"

    def test_whole_floats_printed_as_integers(self):
        assert atomic_to_string(2.0) == "2"
        assert atomic_to_string(2.5) == "2.5"

    def test_string_value_of_empty(self):
        assert string_value([]) == ""


class TestComparisons:
    def test_numeric_string_coercion(self):
        # untyped vs number -> numeric comparison
        assert compare_atomic("8", 31, "<=") is True
        assert compare_atomic(31, "8", ">=") is True

    def test_string_string_is_lexicographic(self):
        # two untyped values compare as strings (the Figure 2 erratum)
        assert compare_atomic("8", "31", "<=") is False

    def test_boolean_mismatch_raises(self):
        with pytest.raises(XQueryTypeError):
            compare_atomic(True, "true", "=")

    def test_general_compare_existential(self):
        assert general_compare([1, 2], [2, 9], "=") is True
        assert general_compare([1, 2], [], "=") is False
        assert general_compare([], [], "=") is False

    def test_value_compare_empty_propagates(self):
        assert value_compare([], [1], "eq") == []
        assert value_compare([1], [], "lt") == []

    def test_value_compare_multi_raises(self):
        with pytest.raises(XQueryTypeError):
            value_compare([1, 2], [1], "eq")

    @given(st.integers(-100, 100), st.integers(-100, 100))
    def test_total_order_consistency(self, a, b):
        assert compare_atomic(a, b, "<") == (a < b)
        assert compare_atomic(a, b, "=") == (a == b)
        lt = compare_atomic(a, b, "<")
        gt = compare_atomic(a, b, ">")
        eq = compare_atomic(a, b, "=")
        assert lt + gt + eq == 1


class TestArithmetic:
    def test_integer_ops_stay_int(self):
        (r,) = arithmetic([6], [4], "+")
        assert r == 10 and isinstance(r, int)
        (r,) = arithmetic([6], [4], "idiv")
        assert r == 1 and isinstance(r, int)
        (r,) = arithmetic([6], [4], "mod")
        assert r == 2

    def test_integer_div_gives_decimal(self):
        (r,) = arithmetic([1], [2], "div")
        assert r == 0.5

    def test_idiv_truncates_toward_zero(self):
        assert arithmetic([-7], [2], "idiv") == [-3]
        assert arithmetic([7], [-2], "idiv") == [-3]

    def test_mod_sign_follows_dividend(self):
        assert arithmetic([-7], [2], "mod") == [-1]
        assert arithmetic([7], [-2], "mod") == [1]

    def test_untyped_coercion(self):
        assert arithmetic(["6"], [2], "*") == [12.0]

    def test_empty_propagates(self):
        assert arithmetic([], [2], "+") == []

    def test_division_by_zero(self):
        for op in ("div", "idiv", "mod"):
            with pytest.raises(XQueryDynamicError):
                arithmetic([1], [0], op)

    @given(st.integers(-50, 50), st.integers(1, 50))
    def test_idiv_mod_invariant(self, a, b):
        (q,) = arithmetic([a], [b], "idiv")
        (r,) = arithmetic([a], [b], "mod")
        assert q * b + r == a
