"""Tests for Allen's 13 interval relations and their reduction (§3)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    AllenRelation,
    CONTAINMENT_RELATIONS,
    OVERLAP_RELATIONS,
    Region,
    classify,
    region_contains,
    region_overlaps,
)

regions = st.tuples(st.integers(-50, 50), st.integers(0, 30)).map(
    lambda t: Region(t[0], t[0] + t[1]))


class TestClassify:
    def test_all_thirteen_reachable(self):
        cases = {
            AllenRelation.BEFORE: (Region(0, 2), Region(5, 9)),
            AllenRelation.MEETS: (Region(0, 5), Region(5, 9)),
            AllenRelation.OVERLAPS: (Region(0, 6), Region(4, 9)),
            AllenRelation.STARTS: (Region(0, 4), Region(0, 9)),
            AllenRelation.DURING: (Region(2, 4), Region(0, 9)),
            AllenRelation.FINISHES: (Region(5, 9), Region(0, 9)),
            AllenRelation.EQUAL: (Region(0, 9), Region(0, 9)),
            AllenRelation.FINISHED_BY: (Region(0, 9), Region(5, 9)),
            AllenRelation.CONTAINS: (Region(0, 9), Region(2, 4)),
            AllenRelation.STARTED_BY: (Region(0, 9), Region(0, 4)),
            AllenRelation.OVERLAPPED_BY: (Region(4, 9), Region(0, 6)),
            AllenRelation.MET_BY: (Region(5, 9), Region(0, 5)),
            AllenRelation.AFTER: (Region(5, 9), Region(0, 2)),
        }
        assert set(cases) == set(AllenRelation)
        for expected, (r1, r2) in cases.items():
            assert classify(r1, r2) is expected, expected

    @given(regions, regions)
    def test_classification_is_total_and_unique(self, r1, r2):
        rel = classify(r1, r2)
        assert isinstance(rel, AllenRelation)

    @given(regions, regions)
    def test_inverse_symmetry(self, r1, r2):
        assert classify(r2, r1) is classify(r1, r2).inverse

    @given(regions)
    def test_self_is_equal(self, r):
        assert classify(r, r) is AllenRelation.EQUAL


class TestReduction:
    """§3: the StandOff predicates collapse the 13 relations."""

    @given(regions, regions)
    def test_contains_matches_relation_set(self, r1, r2):
        assert region_contains(r1, r2) == (
            classify(r1, r2) in CONTAINMENT_RELATIONS)

    @given(regions, regions)
    def test_overlaps_matches_relation_set(self, r1, r2):
        assert region_overlaps(r1, r2) == (
            classify(r1, r2) in OVERLAP_RELATIONS)

    @given(regions, regions)
    def test_containment_implies_overlap(self, r1, r2):
        if region_contains(r1, r2):
            assert region_overlaps(r1, r2)

    @given(regions, regions)
    def test_overlap_is_symmetric(self, r1, r2):
        assert region_overlaps(r1, r2) == region_overlaps(r2, r1)

    def test_spectrum_extremes_are_disjunctive(self):
        # "from r1 disjunctively preceding r2 ... to r1 disjunctively
        # succeeding r2" — exactly BEFORE and AFTER are non-overlapping.
        non_overlap = set(AllenRelation) - OVERLAP_RELATIONS
        assert non_overlap == {AllenRelation.BEFORE, AllenRelation.AFTER}
