"""Unit tests for Region and Area (paper §2, §3.1)."""

import pytest

from repro.core import Area, Region
from repro.errors import RegionError


class TestRegion:
    def test_valid_region(self):
        r = Region(1, 10)
        assert r.start == 1
        assert r.end == 10
        assert r.length == 9

    def test_point_region(self):
        r = Region(5, 5)
        assert r.length == 0
        assert r.contains_point(5)

    def test_inverted_region_rejected(self):
        with pytest.raises(RegionError):
            Region(10, 1)

    def test_negative_positions_allowed(self):
        r = Region(-10, -1)
        assert r.length == 9

    def test_float_positions(self):
        r = Region(0.5, 2.25)
        assert r.contains_point(1.0)
        assert not r.contains_point(2.5)

    def test_ordering_is_start_then_end(self):
        assert sorted([Region(3, 4), Region(1, 9), Region(1, 2)]) == [
            Region(1, 2), Region(1, 9), Region(3, 4)]

    def test_contains_inclusive_bounds(self):
        outer = Region(1, 10)
        assert outer.contains(Region(1, 10))
        assert outer.contains(Region(1, 5))
        assert outer.contains(Region(5, 10))
        assert not outer.contains(Region(0, 10))
        assert not outer.contains(Region(1, 11))

    def test_overlaps_shared_point_counts(self):
        assert Region(1, 5).overlaps(Region(5, 9))
        assert Region(5, 9).overlaps(Region(1, 5))

    def test_overlaps_disjoint(self):
        assert not Region(1, 4).overlaps(Region(5, 9))
        assert not Region(5, 9).overlaps(Region(1, 4))

    def test_touches(self):
        assert Region(1, 4).touches(Region(5, 9))
        assert Region(5, 9).touches(Region(1, 4))
        assert not Region(1, 4).touches(Region(6, 9))
        assert not Region(1, 5).touches(Region(5, 9))

    def test_intersection(self):
        assert Region(1, 6).intersection(Region(4, 9)) == Region(4, 6)
        assert Region(1, 3).intersection(Region(5, 9)) is None

    def test_shifted(self):
        assert Region(1, 4).shifted(10) == Region(11, 14)

    def test_str(self):
        assert str(Region(1, 4)) == "[1,4]"

    def test_hashable(self):
        assert len({Region(1, 2), Region(1, 2), Region(1, 3)}) == 2


class TestArea:
    def test_single_region(self):
        a = Area.of(1, 10)
        assert len(a) == 1
        assert a.start == 1
        assert a.end == 10

    def test_empty_rejected(self):
        with pytest.raises(RegionError):
            Area([])

    def test_regions_sorted_canonically(self):
        a = Area([Region(10, 20), Region(1, 5)])
        assert a.regions == (Region(1, 5), Region(10, 20))

    def test_overlapping_regions_rejected(self):
        with pytest.raises(RegionError):
            Area([Region(1, 5), Region(4, 9)])

    def test_touching_regions_rejected(self):
        with pytest.raises(RegionError):
            Area([Region(1, 4), Region(5, 9)])

    def test_coalescing_merges_overlap_and_touch(self):
        a = Area.coalescing([Region(1, 4), Region(5, 9), Region(8, 12),
                             Region(20, 25)])
        assert a.regions == (Region(1, 12), Region(20, 25))

    def test_envelope(self):
        a = Area([Region(1, 5), Region(10, 20)])
        assert a.envelope == Region(1, 20)
        assert a.start == 1
        assert a.end == 20

    def test_equality_and_hash(self):
        a = Area([Region(1, 5), Region(10, 20)])
        b = Area([Region(10, 20), Region(1, 5)])
        assert a == b
        assert hash(a) == hash(b)

    def test_iteration(self):
        a = Area([Region(1, 5), Region(10, 20)])
        assert list(a) == [Region(1, 5), Region(10, 20)]


class TestAreaContains:
    """Paper §3.1: contains(a1,a2) = ∀ r2 ∈ a2 ∃ r1 ∈ a1 : r1 ⊇ r2."""

    def test_single_in_single(self):
        assert Area.of(0, 100).contains(Area.of(10, 20))
        assert not Area.of(10, 20).contains(Area.of(0, 100))

    def test_equal_areas_contain_each_other(self):
        a = Area([Region(1, 5), Region(10, 20)])
        assert a.contains(a)

    def test_multi_region_candidate_each_region_must_fit(self):
        a1 = Area([Region(0, 10), Region(20, 30)])
        inside = Area([Region(1, 2), Region(25, 28)])
        straddling = Area([Region(1, 2), Region(15, 18)])
        assert a1.contains(inside)
        assert not a1.contains(straddling)

    def test_one_candidate_region_spanning_gap_not_contained(self):
        a1 = Area([Region(0, 10), Region(20, 30)])
        # [5,25] is not inside [0,10] nor inside [20,30].
        assert not a1.contains(Area.of(5, 25))

    def test_envelope_containment_is_not_area_containment(self):
        a1 = Area([Region(0, 10), Region(20, 30)])
        cand = Area.of(12, 18)  # inside the envelope, inside the gap
        assert a1.envelope.contains(cand.envelope)
        assert not a1.contains(cand)


class TestAreaOverlaps:
    """Paper §3.1: overlaps(a1,a2) = ∃ r1, r2 sharing a position."""

    def test_simple_overlap(self):
        assert Area.of(0, 10).overlaps(Area.of(5, 15))
        assert Area.of(5, 15).overlaps(Area.of(0, 10))

    def test_disjoint(self):
        assert not Area.of(0, 10).overlaps(Area.of(11, 15))

    def test_boundary_point_overlap(self):
        assert Area.of(0, 10).overlaps(Area.of(10, 15))

    def test_multi_region_gap_no_overlap(self):
        a1 = Area([Region(0, 10), Region(20, 30)])
        assert not a1.overlaps(Area.of(12, 18))

    def test_multi_region_cross_overlap(self):
        a1 = Area([Region(0, 10), Region(20, 30)])
        a2 = Area([Region(12, 22), Region(40, 50)])
        assert a1.overlaps(a2)
        assert a2.overlaps(a1)

    def test_containment_implies_overlap(self):
        a1 = Area([Region(0, 10), Region(20, 30)])
        a2 = Area([Region(1, 2), Region(25, 28)])
        assert a1.contains(a2)
        assert a1.overlaps(a2)
