"""The merge-join algorithms against the naive oracle (paper §3.1, §4.4-4.5).

The naive joins are a literal transcription of the paper's definitions and
serve as reference semantics.  Hypothesis drives random region
distributions — overlapping, nested, touching, multi-region — through
both the basic and the loop-lifted merge joins, for both active-items
structures.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Area,
    IterContext,
    Region,
    RegionIndex,
    RegionTable,
    StandoffOp,
    basic_join,
    ll_join,
    naive_join,
    naive_join_loop,
)

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

def single_regions(max_pos=60):
    return st.tuples(st.integers(0, max_pos), st.integers(0, 20)).map(
        lambda t: Area.of(t[0], t[0] + t[1]))


def multi_region_areas(max_pos=60):
    """Areas with 1-3 disjoint, non-touching regions."""
    def build(raw):
        regions = []
        cursor = 0
        for gap, length in raw:
            start = cursor + gap + 2
            regions.append(Region(start, start + length))
            cursor = start + length
        return Area(regions)
    return st.lists(
        st.tuples(st.integers(0, max_pos), st.integers(0, 15)),
        min_size=1, max_size=3).map(build)


def annotated(areas, max_nodes=20):
    """(node_id, Area) lists with unique node ids."""
    return st.lists(areas, min_size=0, max_size=max_nodes).map(
        lambda lst: [(i, a) for i, a in enumerate(lst)])


def as_table(pairs):
    return RegionTable.from_areas(pairs)


ALL_OPS = list(StandoffOp)


# ----------------------------------------------------------------------
# basic merge join == naive
# ----------------------------------------------------------------------

@pytest.mark.parametrize("op", ALL_OPS)
@pytest.mark.parametrize("structure", ["list", "heap"])
@given(ctx=annotated(single_regions()), cand=annotated(single_regions()))
@settings(max_examples=60, deadline=None)
def test_basic_equals_naive_single_region(op, structure, ctx, cand):
    expected = naive_join(op, ctx, cand)
    got = basic_join(op, as_table(ctx), as_table(cand),
                     active_structure=structure)
    assert got == expected


@pytest.mark.parametrize("op", ALL_OPS)
@given(ctx=annotated(multi_region_areas()),
       cand=annotated(multi_region_areas()))
@settings(max_examples=60, deadline=None)
def test_basic_equals_naive_multi_region(op, ctx, cand):
    expected = naive_join(op, ctx, cand)
    got = basic_join(op, as_table(ctx), as_table(cand))
    assert got == expected


@pytest.mark.parametrize("op", ALL_OPS)
@given(ctx=annotated(multi_region_areas()),
       cand=annotated(single_regions()))
@settings(max_examples=40, deadline=None)
def test_basic_multi_context_single_candidates(op, ctx, cand):
    expected = naive_join(op, ctx, cand)
    assert basic_join(op, as_table(ctx), as_table(cand)) == expected


# ----------------------------------------------------------------------
# loop-lifted merge join == naive, per iteration
# ----------------------------------------------------------------------

def iter_annotated(areas, max_iters=5):
    """(iter, node_id, Area) triples; several iterations share nodes.

    A node id denotes one annotation, so its area must be consistent:
    node id = index into a generated area pool.
    """
    def build(data):
        pool, refs = data
        return [(it, nid % len(pool), pool[nid % len(pool)])
                for it, nid in refs]
    return st.tuples(
        st.lists(areas, min_size=1, max_size=12),
        st.lists(st.tuples(st.integers(1, max_iters), st.integers(0, 30)),
                 min_size=0, max_size=25, unique=True),
    ).map(build)


@pytest.mark.parametrize("op", ALL_OPS)
@pytest.mark.parametrize("structure", ["list", "heap"])
@given(ctx=iter_annotated(single_regions()),
       cand=annotated(single_regions()))
@settings(max_examples=60, deadline=None)
def test_ll_equals_naive_single_region(op, structure, ctx, cand):
    expected = naive_join_loop(op, ctx, cand)
    expected = {it: ids for it, ids in expected.items()
                if ids or op.is_reject}
    context = IterContext.from_rows(
        (it, nid, r.start, r.end)
        for it, nid, area in ctx for r in area.regions)
    got = ll_join(op, context, as_table(cand), active_structure=structure)
    got = {it: ids for it, ids in got.items() if ids or op.is_reject}
    assert got == expected


@pytest.mark.parametrize("op", ALL_OPS)
@given(ctx=iter_annotated(multi_region_areas()),
       cand=annotated(multi_region_areas()))
@settings(max_examples=60, deadline=None)
def test_ll_equals_naive_multi_region(op, ctx, cand):
    expected = naive_join_loop(op, ctx, cand)
    expected = {it: ids for it, ids in expected.items()
                if ids or op.is_reject}
    context = IterContext.from_rows(
        (it, nid, r.start, r.end)
        for it, nid, area in ctx for r in area.regions)
    got = ll_join(op, context, as_table(cand))
    got = {it: ids for it, ids in got.items() if ids or op.is_reject}
    assert got == expected


# ----------------------------------------------------------------------
# targeted cases
# ----------------------------------------------------------------------

class TestSelectNarrowCases:
    def table(self, *rows):
        return RegionTable.from_rows(rows)

    def test_empty_inputs(self):
        empty = self.table()
        some = self.table((0, 10, 1))
        assert basic_join(StandoffOp.SELECT_NARROW, empty, some) == []
        assert basic_join(StandoffOp.SELECT_NARROW, some, empty) == []

    def test_candidate_before_first_context(self):
        # Regression: a candidate starting before every context region
        # must not be reported just because some active end is large.
        ctx = self.table((2, 10, 1))
        cand = self.table((0, 5, 7))
        assert basic_join(StandoffOp.SELECT_NARROW, ctx, cand) == []

    def test_equal_boundaries_contained(self):
        ctx = self.table((2, 10, 1))
        cand = self.table((2, 10, 7))
        assert basic_join(StandoffOp.SELECT_NARROW, ctx, cand) == [7]

    def test_nested_contexts_same_result_once(self):
        ctx = self.table((0, 100, 1), (10, 50, 2))
        cand = self.table((20, 30, 7))
        assert basic_join(StandoffOp.SELECT_NARROW, ctx, cand) == [7]

    def test_candidate_spanning_two_disjoint_contexts(self):
        ctx = self.table((0, 10, 1), (20, 30, 2))
        cand = self.table((5, 25, 7))
        assert basic_join(StandoffOp.SELECT_NARROW, ctx, cand) == []
        assert basic_join(StandoffOp.SELECT_WIDE, ctx, cand) == [7]

    def test_multi_region_candidate_must_fit_one_context_area(self):
        # Candidate 7 has two regions matched by *different* context
        # areas: §3.1 requires a single containing area, so no match.
        ctx = RegionTable.from_areas([(1, Area.of(0, 10)),
                                      (2, Area.of(20, 30))])
        cand = RegionTable.from_areas(
            [(7, Area([Region(2, 5), Region(22, 25)]))])
        assert basic_join(StandoffOp.SELECT_NARROW, ctx, cand) == []

    def test_multi_region_candidate_inside_multi_region_context(self):
        ctx = RegionTable.from_areas(
            [(1, Area([Region(0, 10), Region(20, 30)]))])
        cand = RegionTable.from_areas(
            [(7, Area([Region(2, 5), Region(22, 25)]))])
        assert basic_join(StandoffOp.SELECT_NARROW, ctx, cand) == [7]


class TestLoopLiftedCases:
    def test_paper_figure4_result(self):
        """The example table of §4.5: only (iter 1, r1) and (iter 1, r4)."""
        context = IterContext.from_rows([
            (1, 101, 0, 15),    # c1
            (2, 102, 12, 35),   # c2
            (1, 103, 20, 30),   # c3
            (1, 104, 55, 80),   # c4
        ])
        candidates = RegionTable.from_rows([
            (5, 10, 201),   # r1
            (22, 45, 202),  # r2
            (40, 60, 203),  # r3
            (65, 70, 204),  # r4
        ])
        result = ll_join(StandoffOp.SELECT_NARROW, context, candidates)
        assert result == {1: [201, 204]}

    def test_iterations_kept_separate(self):
        context = IterContext.from_rows([
            (1, 11, 0, 10),
            (2, 12, 100, 110),
        ])
        candidates = RegionTable.from_rows([(2, 5, 21), (102, 105, 22)])
        result = ll_join(StandoffOp.SELECT_NARROW, context, candidates)
        assert result == {1: [21], 2: [22]}

    def test_same_node_in_many_iterations(self):
        context = IterContext.from_rows(
            [(it, 11, 0, 50) for it in range(1, 6)])
        candidates = RegionTable.from_rows([(10, 20, 21)])
        result = ll_join(StandoffOp.SELECT_NARROW, context, candidates)
        assert result == {it: [21] for it in range(1, 6)}

    def test_reject_returns_universe_for_unmatched_iter(self):
        context = IterContext.from_rows([
            (1, 11, 0, 100),
            (2, 12, 1000, 1001),
        ])
        candidates = RegionTable.from_rows([(10, 20, 21), (30, 40, 22)])
        result = ll_join(StandoffOp.REJECT_NARROW, context, candidates)
        assert result == {1: [], 2: [21, 22]}

    def test_empty_context_no_iterations(self):
        candidates = RegionTable.from_rows([(10, 20, 21)])
        for op in ALL_OPS:
            assert ll_join(op, IterContext.from_rows([]), candidates) == {}


class TestRegionIndexIntegration:
    def test_fetch_then_join(self):
        index = RegionIndex.build([
            (1, 0, 100), (2, 10, 20), (3, 30, 40), (4, 200, 250)])
        ctx = index.fetch([1])
        result = basic_join(StandoffOp.SELECT_NARROW, ctx, index.table)
        assert result == [1, 2, 3]

    def test_candidate_pushdown(self):
        index = RegionIndex.build([
            (1, 0, 100), (2, 10, 20), (3, 30, 40)])
        ctx = index.fetch([1])
        result = basic_join(StandoffOp.SELECT_NARROW, ctx,
                            index.candidates([3]))
        assert result == [3]
