"""Every worked example in the paper, as executable assertions.

* Figure 1 + the §3.1 table of StandOff joins on the multimedia example;
* §3.2's four notation alternatives (XQuery UDFs, UDFs with candidate
  sequence, builtin functions, XPath steps) — all four give the same
  answers;
* §2's configurable representation (custom attribute names, the
  ``<region>`` element form, non-contiguous areas).
"""

import pytest

from repro.xquery import Database

#: Figure 1's stand-off annotation document (attribute representation;
#: time as seconds so positions stay integral: 0:08 -> 8 ... 1:34 -> 94).
FIGURE1 = """
<sample>
  <video>
    <shot id="Intro" start="0" end="8"/>
    <shot id="Interview" start="8" end="64"/>
    <shot id="Outro" start="64" end="94"/>
  </video>
  <audio>
    <music artist="U2" start="0" end="31"/>
    <music artist="Bach" start="52" end="94"/>
  </audio>
</sample>
"""

#: The expected results of the §3.1 table.
SECTION31_TABLE = {
    "select-narrow": ["Intro"],
    "select-wide": ["Intro", "Interview"],
    "reject-narrow": ["Interview", "Outro"],
    "reject-wide": ["Outro"],
}


@pytest.fixture
def db():
    database = Database()
    database.add_document("video.xml", FIGURE1)
    return database


def ids(result):
    return [node.get_attribute("id") for node in result]


class TestSection31Table:
    @pytest.mark.parametrize("strategy", ["udf", "basic", "ll"])
    @pytest.mark.parametrize("op,expected",
                             sorted(SECTION31_TABLE.items()))
    def test_axis_step_form(self, db, op, expected, strategy):
        result = db.query(
            f'doc("video.xml")//music[@artist="U2"]/{op}::shot',
            strategy=strategy)
        assert ids(result) == expected

    @pytest.mark.parametrize("op,expected",
                             sorted(SECTION31_TABLE.items()))
    def test_builtin_function_form(self, db, op, expected):
        """Alternative 3: StandOff operators as builtin functions."""
        result = db.query(
            f'{op}(doc("video.xml")//music[@artist="U2"],'
            f' doc("video.xml")//shot)')
        assert ids(result) == expected

    def test_results_are_document_ordered_nodes(self, db):
        result = db.query(
            'doc("video.xml")//music/select-wide::shot')
        pres = [node.pre for node in result]
        assert pres == sorted(set(pres))

    def test_bach_contains_outro_only(self, db):
        result = db.query(
            'doc("video.xml")//music[@artist="Bach"]/select-narrow::shot')
        assert ids(result) == ["Outro"]

    def test_whole_sample_selects_everything(self, db):
        # <sample> carries no region, so it cannot be a context node —
        # but the shots contain themselves via the video track regions.
        result = db.query('doc("video.xml")//shot/select-wide::music')
        assert {node.get_attribute("artist") for node in result} == \
            {"U2", "Bach"}


class TestFigure2UDF:
    """Alternative 1: the StandOff join as a plain XQuery function.

    Figure 2 as printed compares ``@start``/``@end`` directly; with
    untyped (schema-less) XML attributes the W3C general comparison of
    two untypedAtomic values is *lexicographic*, so ``"8" <= "31"`` would
    be false.  The paper's positions are typed integers; we make the
    typing explicit with ``fn:number`` (see EXPERIMENTS.md, errata).
    Other adaptations: the function name must not shadow the builtin.
    """

    QUERY = """
    declare module standoff = "http://w3c.org/tr/standoff/"
    declare function my-select-narrow($input as xs:anyNode*)
      as xs:anyNode*
    {
      (for $q in $input
       for $p in root($q)//*
       where number($p/@start) >= number($q/@start)
         and number($p/@end) <= number($q/@end)
       return $p)/.
    }
    my-select-narrow(doc("video.xml")//music[@artist="U2"])/self::shot
    """

    def test_figure2_matches_axis_step(self, db):
        result = db.query(self.QUERY)
        assert ids(result) == ["Intro"]

    def test_figure2_without_selffilter_includes_context(self, db):
        # Without the /self::shot filter the semi-join against //* also
        # returns the U2 annotation itself (a region contains itself).
        query = self.QUERY.replace("/self::shot", "")
        result = db.query(query)
        labels = [node.get_attribute("id") or node.get_attribute("artist")
                  for node in result]
        assert labels == ["Intro", "U2"]


class TestFigure3UDF:
    """Alternative 2: function with candidate sequence (Figure 3)."""

    QUERY = """
    declare function my-select-narrow($input as xs:anyNode*,
                                      $candidates as xs:anyNode*)
      as xs:anyNode*
    {
      (for $q in $input
       for $p in $candidates
       where number($p/@start) >= number($q/@start)
         and number($p/@end) <= number($q/@end)
         and root($p) is root($q)
       return $p)/.
    }
    my-select-narrow(doc("video.xml")//music[@artist="U2"],
                     doc("video.xml")//shot)
    """

    def test_figure3_matches_axis_step(self, db):
        result = db.query(self.QUERY)
        assert ids(result) == ["Intro"]

    def test_figure3_candidates_filter_out_other_fragment(self):
        database = Database()
        database.add_document("video.xml", FIGURE1)
        database.add_document("other.xml",
                              '<d><shot id="alien" start="0" end="1"/></d>')
        query = self.QUERY.replace(
            'doc("video.xml")//shot',
            '(doc("video.xml")//shot, doc("other.xml")//shot)')
        result = database.query(query)
        assert ids(result) == ["Intro"]


class TestConfigurableRepresentation:
    """§2: names and representation are run-time settings."""

    def test_custom_attribute_names(self):
        db = Database()
        db.add_document("doc.xml", """
            <a><x id="outer" b="0" e="100"/>
               <y id="inner" b="10" e="20"/></a>""")
        result = db.query(
            'declare option standoff-start "b"\n'
            'declare option standoff-end "e"\n'
            'doc("doc.xml")//x/select-narrow::y')
        assert ids(result) == ["inner"]

    def test_region_element_form(self):
        db = Database()
        db.add_document("doc.xml", """
            <a>
              <x id="outer"><region><start>0</start><end>100</end></region></x>
              <y id="inner"><region><start>10</start><end>20</end></region></y>
            </a>""")
        result = db.query(
            'declare option standoff-region "region"\n'
            'doc("doc.xml")//x/select-narrow::y')
        assert ids(result) == ["inner"]

    def test_non_contiguous_area(self):
        """A file reconstructed from scattered blocks (the forensics
        motivation): its area is two disjoint regions."""
        db = Database()
        db.add_document("disk.xml", """
            <image>
              <file id="f1">
                <region><start>0</start><end>10</end></region>
                <region><start>50</start><end>60</end></region>
              </file>
              <hit id="inside-first"><region><start>2</start><end>5</end></region></hit>
              <hit id="spanning-gap"><region><start>8</start><end>52</end></region></hit>
              <hit id="in-gap"><region><start>20</start><end>30</end></region></hit>
            </image>""")
        prolog = 'declare option standoff-region "region"\n'
        narrow = db.query(
            prolog + 'doc("disk.xml")//file/select-narrow::hit')
        assert ids(narrow) == ["inside-first"]
        wide = db.query(
            prolog + 'doc("disk.xml")//file/select-wide::hit')
        assert ids(wide) == ["inside-first", "spanning-gap"]
        reject_wide = db.query(
            prolog + 'doc("disk.xml")//file/reject-wide::hit')
        assert ids(reject_wide) == ["in-gap"]

    def test_double_positions(self):
        db = Database()
        db.add_document("t.xml", """
            <a><x id="o" start="0.0" end="1.5"/>
               <y id="i" start="0.25" end="0.75"/></a>""")
        result = db.query(
            'declare option standoff-type "xs:double"\n'
            'doc("t.xml")//x/select-narrow::y')
        assert ids(result) == ["i"]

    def test_unknown_standoff_option_rejected(self):
        from repro.errors import XQueryStaticError

        db = Database()
        db.add_document("t.xml", "<a/>")
        with pytest.raises(XQueryStaticError):
            db.query('declare option standoff-oops "x"\n 1')


class TestStepSemantics:
    """§3.3: StandOff steps behave like XPath steps."""

    def test_same_fragment_only(self):
        db = Database()
        db.add_document("a.xml",
                        '<d><c id="ctx" start="0" end="100"/></d>')
        db.add_document("b.xml",
                        '<d><t id="other" start="10" end="20"/></d>')
        result = db.query('doc("a.xml")//c/select-narrow::t')
        assert result == []

    def test_context_without_region_yields_nothing(self):
        db = Database()
        db.add_document("a.xml",
                        '<d><c id="ctx"/><t start="1" end="2"/></d>')
        assert db.query('doc("a.xml")//c/select-narrow::t') == []

    def test_empty_context_yields_nothing_even_for_reject(self):
        db = Database()
        db.add_document("a.xml", '<d><t start="1" end="2"/></d>')
        assert db.query('doc("a.xml")//zzz/reject-narrow::t') == []

    def test_step_on_constructed_fragment(self):
        db = Database()
        result = db.query(
            'let $f := <d><c start="0" end="9"/>'
            '<t id="x" start="2" end="3"/></d> '
            'return $f/c/select-narrow::t')
        assert ids(result) == ["x"]

    def test_predicate_after_standoff_step(self):
        db = Database()
        db.add_document("v.xml", FIGURE1)
        result = db.query(
            'doc("v.xml")//music[@artist="U2"]'
            '/select-wide::shot[@id="Interview"]')
        assert ids(result) == ["Interview"]

    def test_positional_predicate_after_standoff_step(self):
        db = Database()
        db.add_document("v.xml", FIGURE1)
        result = db.query(
            'doc("v.xml")//music[@artist="U2"]/select-wide::shot[2]')
        assert ids(result) == ["Interview"]

    def test_wildcard_standoff_step(self):
        db = Database()
        db.add_document("v.xml", FIGURE1)
        result = db.query(
            'doc("v.xml")//music[@artist="U2"]/select-narrow::*')
        # Intro is contained; so is the U2 annotation itself (regions are
        # inclusive, and a region contains itself).  Document order.
        labels = [node.get_attribute("id") or node.get_attribute("artist")
                  for node in result]
        assert labels == ["Intro", "U2"]
