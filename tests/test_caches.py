"""Cross-query cache correctness: plans and fragment shreds.

The differential contract: a warm cache must be answer-invisible.
Repeated mixed batches with the plan cache and the content-hash shred
cache enabled serialize identically to cold-cache runs — including
after forced evictions at tiny budgets — and node identity stays
per-fragment even when content-equal fragments share one column set.
"""

import gc
import io

import pytest

from repro.xmldb.shred import SHRED_CACHE, fragment_fingerprint, \
    shred_fragment
from repro.xquery import Database

#: A mixed batch: stored-document paths, positional predicates and
#: constructed fragments (the shapes both caches serve).
BATCH = (
    'doc("f.xml")//a',
    'doc("f.xml")/r/child::*[position() mod 2 = 1]',
    'doc("f.xml")//a/ancestor::*[last()]',
    'let $f := <w><p/>text<q/></w> return $f/child::*[2]',
    'let $f := <w><p/>text<q/></w> return count($f/child::node())',
    'for $x in doc("f.xml")//a '
    'let $f := <v>{$x/child::node()}</v> '
    'return $f/descendant-or-self::node()[position() < 3]',
    'count((<w><p/></w>, <w><p/></w>)/child::p)',
)

XML = "<r><a><b/>t1<a i='1'><b/></a></a><a>t2</a><b/></r>"


@pytest.fixture
def pristine_shred_cache():
    """Snapshot/restore the process-wide shred cache around a test."""
    saved = (SHRED_CACHE.max_entries, SHRED_CACHE.max_bytes)
    SHRED_CACHE.clear()
    SHRED_CACHE.reset_stats()
    yield SHRED_CACHE
    SHRED_CACHE.configure(max_entries=saved[0], max_bytes=saved[1])
    SHRED_CACHE.clear()
    SHRED_CACHE.reset_stats()


def run_batch(db, rounds=1):
    out = []
    for _ in range(rounds):
        for query in BATCH:
            for strategy in ("basic", "ll"):
                out.append(db.query(query, strategy=strategy,
                                    shard_min_rows=1).serialize())
    return out


def cold_answers():
    """Every query on a fresh Database with both caches off."""
    SHRED_CACHE.configure(max_entries=0)
    try:
        db = Database(plan_cache_size=0)
        db.add_document("f.xml", XML)
        return run_batch(db)
    finally:
        SHRED_CACHE.configure(max_entries=512)


def test_warm_caches_answer_identical_to_cold(pristine_shred_cache):
    cold = cold_answers()
    pristine_shred_cache.configure(max_entries=512,
                                   max_bytes=64 * 1024 * 1024)
    db = Database(plan_cache_size=256)
    db.add_document("f.xml", XML)
    for _round in range(3):
        assert run_batch(db) == cold
    plan = db.plan_cache.stats()
    shred = pristine_shred_cache.stats()
    assert plan["hits"] > 0 and plan["misses"] > 0
    assert shred["hits"] > 0 and shred["misses"] > 0


def test_forced_evictions_stay_correct(pristine_shred_cache):
    """Tiny budgets force constant eviction churn; answers must not
    change (an evicted entry rebuilds, it never corrupts)."""
    cold = cold_answers()
    pristine_shred_cache.configure(max_entries=1, max_bytes=400)
    db = Database(plan_cache_size=2)
    db.add_document("f.xml", XML)
    for _round in range(3):
        assert run_batch(db) == cold
    assert db.plan_cache.stats()["evictions"] > 0
    assert pristine_shred_cache.stats()["evictions"] > 0


def test_plan_cache_counters_and_disable():
    warm = Database(plan_cache_size=8)
    warm.add_document("f.xml", XML)
    warm.query('doc("f.xml")//a')
    warm.query('doc("f.xml")//a')
    stats = warm.plan_cache.stats()
    assert stats == {"entries": 1, "max_entries": 8, "hits": 1,
                     "misses": 1, "evictions": 0}
    warm.plan_cache.clear()
    assert warm.plan_cache.stats()["entries"] == 0

    off = Database(plan_cache_size=0)
    off.add_document("f.xml", XML)
    off.query('doc("f.xml")//a')
    off.query('doc("f.xml")//a')
    assert off.plan_cache.stats()["entries"] == 0
    assert not off.plan_cache.enabled


def test_shred_cache_rebinds_node_identity(pristine_shred_cache):
    """A content-hash hit shares columns but never node identity: each
    fragment resolves ``node_by_pre`` to its *own* DOM nodes."""
    pristine_shred_cache.configure(max_entries=8,
                                   max_bytes=1 << 20)
    db = Database()
    first = list(db.query("<w><x/>y</w>"))[0]
    second = list(db.query("<w><x/>y</w>"))[0]
    assert first is not second
    s1 = shred_fragment(first)
    s2 = shred_fragment(second)
    stats = pristine_shred_cache.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1
    assert s1.pre is s2.pre and s1.parent is s2.parent
    assert s1.root is first and s2.root is second
    for pre in range(len(s1)):
        assert s1.node_by_pre(pre) is not s2.node_by_pre(pre)
    # identity-sensitive query semantics over content-equal fragments
    assert db.query(
        'let $a := <w><x/></w> let $b := <w><x/></w> '
        'return count(($a/child::x, $b/child::x))',
        strategy="ll").serialize() == "2"


def test_shred_cache_entry_survives_fragment_gc(pristine_shred_cache):
    """Entries hold a strong root reference: after the producing
    fragment is collected, a content-equal newcomer still hits and is
    rebound to live nodes (never a recycled address)."""
    pristine_shred_cache.configure(max_entries=8,
                                   max_bytes=1 << 20)
    db = Database()
    victim = list(db.query("<w><x/>y</w>"))[0]
    shred_fragment(victim)
    del victim
    gc.collect()
    fresh = list(db.query("<w><x/>y</w>"))[0]
    reshredded = shred_fragment(fresh)
    stats = pristine_shred_cache.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1
    assert reshredded.root is fresh
    assert reshredded.node_by_pre(0) is fresh


def test_oversized_shred_served_uncached(pristine_shred_cache):
    pristine_shred_cache.configure(max_entries=8, max_bytes=1)
    db = Database()
    node = list(db.query("<w><x/><y/><z/></w>"))[0]
    shredded = shred_fragment(node)
    assert shredded.nbytes > 1
    assert pristine_shred_cache.stats()["entries"] == 0
    # disabled entirely: shred_fragment bypasses the cache
    pristine_shred_cache.configure(max_entries=0)
    pristine_shred_cache.reset_stats()
    again = shred_fragment(node)
    assert again.node_by_pre(0) is node
    assert pristine_shred_cache.stats()["misses"] == 0


def test_fingerprint_distinguishes_adjacent_text():
    """Serialized XML would collapse ``('x', 'y')`` vs ``('xy',)`` text
    siblings; the per-node length-prefixed fingerprint must not."""
    db = Database()
    merged = list(db.query('<w>xy</w>'))[0]
    split = list(db.query('<w>{"x"}{"y"}</w>'))[0]
    from repro.xmldb.dom import renumber_fragment
    fp_merged = fragment_fingerprint(renumber_fragment(merged))
    fp_split = fragment_fingerprint(renumber_fragment(split))
    if len(merged.children) != len(split.children):
        assert fp_merged != fp_split
    # same content, distinct fragments -> same fingerprint
    twin = list(db.query('<w>xy</w>'))[0]
    assert fragment_fingerprint(renumber_fragment(twin)) == fp_merged


def test_cli_cache_commands(pristine_shred_cache):
    from repro.cli import CliSession

    out = io.StringIO()
    session = CliSession(out=out, plan_cache_size=4)
    session.handle('let $f := <w><x/></w> return $f/child::x')
    session.handle('let $f := <w><x/></w> return $f/child::x')
    session.handle('\\cache stats')
    text = out.getvalue()
    assert "plan cache:" in text and "shred cache:" in text
    assert "hits=1" in text
    out.truncate(0)
    out.seek(0)
    session.handle('\\cache clear')
    session.handle('\\cache stats')
    cleared = out.getvalue()
    assert "caches cleared" in cleared
    assert "entries=0/4" in cleared
