"""DOM axis functions against brute-force oracles (hypothesis-driven)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmldb import Element, parse_document
from repro.xquery.ast import NodeTest
from repro.xquery.axes import (
    AXIS_FUNCTIONS,
    REVERSE_AXES,
    axis_following,
    axis_preceding,
    matches_test,
)

DOC = parse_document(
    "<r><a><b1/><b2><c/></b2><b3/></a><d><e/>text</d></r>")


def by_tag(tag):
    return next(n for n in DOC.descendants()
                if getattr(n, "tag", None) == tag)


class TestAxesOnFixedTree:
    def test_child(self):
        a = by_tag("a")
        assert [n.tag for n in AXIS_FUNCTIONS["child"](a)] == \
            ["b1", "b2", "b3"]

    def test_descendant(self):
        a = by_tag("a")
        tags = [getattr(n, "tag", "#text")
                for n in AXIS_FUNCTIONS["descendant"](a)]
        assert tags == ["b1", "b2", "c", "b3"]

    def test_parent_and_ancestors(self):
        c = by_tag("c")
        assert [n.tag for n in AXIS_FUNCTIONS["parent"](c)] == ["b2"]
        anc = list(AXIS_FUNCTIONS["ancestor"](c))
        assert [getattr(n, "tag", "#doc") for n in anc] == \
            ["b2", "a", "r", "#doc"]

    def test_siblings(self):
        b2 = by_tag("b2")
        assert [n.tag for n in
                AXIS_FUNCTIONS["following-sibling"](b2)] == ["b3"]
        assert [n.tag for n in
                AXIS_FUNCTIONS["preceding-sibling"](b2)] == ["b1"]

    def test_following(self):
        b2 = by_tag("b2")
        tags = [getattr(n, "tag", "#text") for n in axis_following(b2)]
        assert tags == ["b3", "d", "e", "#text"]

    def test_preceding(self):
        d = by_tag("d")
        tags = [getattr(n, "tag", "#text") for n in axis_preceding(d)]
        # reverse document order, ancestors excluded
        assert tags == ["b3", "c", "b2", "b1", "a"]

    def test_attribute_axis(self):
        doc = parse_document('<x p="1" q="2"/>')
        attrs = list(AXIS_FUNCTIONS["attribute"](doc.root_element))
        assert [a.name for a in attrs] == ["p", "q"]

    def test_self(self):
        a = by_tag("a")
        assert list(AXIS_FUNCTIONS["self"](a)) == [a]


class TestNodeTests:
    def test_name_test_elements_only(self):
        doc = parse_document("<a>text</a>")
        el = doc.root_element
        text = el.children[0]
        test = NodeTest("name", "a")
        assert matches_test(el, test)
        assert not matches_test(text, test)

    def test_wildcard(self):
        doc = parse_document("<a><b/></a>")
        assert matches_test(doc.root_element, NodeTest("name", "*"))

    def test_kind_tests(self):
        doc = parse_document("<a>t<!--c--><?p d?></a>")
        text, comment, pi = doc.root_element.children
        assert matches_test(text, NodeTest("text"))
        assert not matches_test(text, NodeTest("comment"))
        assert matches_test(comment, NodeTest("comment"))
        assert matches_test(pi, NodeTest("processing-instruction"))
        for node in (text, comment, pi):
            assert matches_test(node, NodeTest("node"))

    def test_attribute_axis_principal_kind(self):
        doc = parse_document('<a x="1"/>')
        attr = doc.root_element.attribute_node("x")
        assert matches_test(attr, NodeTest("name", "x"), axis="attribute")
        assert not matches_test(attr, NodeTest("name", "x"), axis="child")

    def test_prefixed_name_matches_local(self):
        doc = parse_document('<ns:a xmlns:ns="u"/>')
        el = doc.root_element
        assert matches_test(el, NodeTest("name", "ns:a"))
        assert matches_test(el, NodeTest("name", "a"))


# property tests: axes partition / invert correctly

trees = st.lists(st.integers(0, 8), min_size=0, max_size=30).map(
    lambda shape: parse_document(_tree_xml(shape)))


def _tree_xml(shape):
    parts = ["<r>"]
    depth = 0
    for n in shape:
        if n % 3 == 0 and depth > 0:
            parts.append("</n>")
            depth -= 1
        else:
            parts.append("<n>")
            depth += 1
    parts.extend("</n>" * depth)
    parts.append("</r>")
    return "".join(parts)


@given(trees)
@settings(max_examples=40, deadline=None)
def test_descendant_inverse_of_ancestor(doc):
    nodes = [n for n in doc.descendants() if isinstance(n, Element)]
    for node in nodes[:10]:
        for desc in AXIS_FUNCTIONS["descendant"](node):
            assert node in list(AXIS_FUNCTIONS["ancestor"](desc))


@given(trees)
@settings(max_examples=40, deadline=None)
def test_following_preceding_self_ancestors_descendants_partition(doc):
    everything = [n for n in doc.root_element.descendants_or_self()]
    for node in everything[:6]:
        following = set(map(id, axis_following(node)))
        preceding = set(map(id, axis_preceding(node)))
        ancestors = set(map(id, AXIS_FUNCTIONS["ancestor"](node)))
        descendants = set(map(id, AXIS_FUNCTIONS["descendant"](node)))
        ancestors.discard(id(doc))
        union = following | preceding | ancestors | descendants | {id(node)}
        scope = set(map(id, doc.root_element.descendants_or_self()))
        assert union == scope
        # pairwise disjoint
        groups = [following, preceding, ancestors, descendants, {id(node)}]
        for i, g1 in enumerate(groups):
            for g2 in groups[i + 1:]:
                assert not (g1 & g2)


@given(trees)
@settings(max_examples=40, deadline=None)
def test_forward_axes_in_document_order(doc):
    for axis in ("child", "descendant", "following-sibling", "following"):
        for node in list(doc.descendants())[:6]:
            result = list(AXIS_FUNCTIONS[axis](node))
            pres = [n.pre for n in result]
            assert pres == sorted(pres), axis


@given(trees)
@settings(max_examples=40, deadline=None)
def test_preceding_streams_identical_to_collect_and_sort(doc):
    """The streamed ``axis_preceding`` (per-anchor reverse-document-
    order emission, no global sort, no ancestor id-set) must reproduce
    the legacy collect-filter-sort implementation node for node."""
    from repro.xmldb.dom import Node

    for node in list(doc.descendants_or_self())[:8]:
        ancestors = set(id(a) for a in node.ancestors())
        collected = []
        anchor = node
        while anchor is not None:
            for sib in AXIS_FUNCTIONS["preceding-sibling"](anchor):
                collected.extend(sib.descendants_or_self())
            anchor = anchor.parent
        collected = [n for n in collected if id(n) not in ancestors]
        collected.sort(key=Node.sort_key, reverse=True)
        assert [id(n) for n in axis_preceding(node)] == \
            [id(n) for n in collected]


@given(trees)
@settings(max_examples=40, deadline=None)
def test_reverse_axes_reversed(doc):
    for axis in sorted(REVERSE_AXES):
        for node in list(doc.descendants())[:6]:
            result = list(AXIS_FUNCTIONS[axis](node))
            pres = [n.pre for n in result]
            assert pres == sorted(pres, reverse=True), axis
