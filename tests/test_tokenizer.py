"""XML tokenizer event-stream tests (independent of the DOM parser)."""

import pytest

from repro.errors import XMLSyntaxError
from repro.xmldb.tokenizer import tokenize


def events(text):
    return list(tokenize(text))


class TestEvents:
    def test_start_end(self):
        assert events("<a></a>") == [
            ("start", "a", [], False), ("end", "a")]

    def test_self_closing(self):
        assert events("<a/>") == [("start", "a", [], True)]

    def test_attributes_in_order(self):
        ((_, _, attrs, _),) = events('<a x="1" y="2"/>')
        assert attrs == [("x", "1"), ("y", "2")]

    def test_attribute_entity_expansion(self):
        ((_, _, attrs, _),) = events('<a t="a&lt;b&#33;"/>')
        assert attrs == [("t", "a<b!")]

    def test_text_between_tags(self):
        assert events("<a>hi</a>")[1] == ("text", "hi")

    def test_cdata_becomes_text(self):
        assert events("<a><![CDATA[<raw>&]]></a>")[1] == \
            ("text", "<raw>&")

    def test_comment_event(self):
        assert events("<a><!--note--></a>")[1] == ("comment", "note")

    def test_pi_event(self):
        assert events("<a><?target some data?></a>")[1] == \
            ("pi", "target", "some data")

    def test_xml_declaration_suppressed(self):
        assert events('<?xml version="1.0"?><a/>') == \
            [("start", "a", [], True)]

    def test_doctype_with_internal_subset_skipped(self):
        text = ('<!DOCTYPE a [<!ENTITY e "v"><!ELEMENT a (#PCDATA)>]>'
                "<a/>")
        assert events(text) == [("start", "a", [], True)]

    def test_whitespace_in_tags(self):
        ((_, name, attrs, selfclosing),) = events('<a  x = "1"  />')
        assert name == "a"
        assert attrs == [("x", "1")]
        assert selfclosing

    def test_multibyte_names(self):
        evs = events("<héllo/>")
        assert evs[0][1] == "héllo"


class TestTokenizerErrors:
    @pytest.mark.parametrize("bad", [
        "<a", "<a x=1/>", "<a x='1' x='2'/>", "<!-- unterminated",
        "<![CDATA[", "<?pi", "<a x='<'/>", "<!DOCTYPE unterminated",
        "<a>&nope;</a>", "<1/>",
    ])
    def test_rejects(self, bad):
        with pytest.raises(XMLSyntaxError):
            events(bad)

    def test_error_position_points_at_problem(self):
        with pytest.raises(XMLSyntaxError) as info:
            events("<a>\n\n<b x=bad/></a>")
        assert info.value.line == 3
